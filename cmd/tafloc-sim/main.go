// Command tafloc-sim runs one configurable end-to-end scenario: deploy a
// testbed, survey at day 0, drift to a chosen age, optionally run the
// TafLoc low-cost update, and evaluate localization on a batch of random
// targets.
//
// Usage:
//
//	tafloc-sim -days 90 -update -targets 40
//	tafloc-sim -edge 12 -days 30 -seed 5
package main

import (
	"flag"
	"fmt"
	"log"

	"tafloc"
)

func main() {
	log.SetFlags(0)
	edge := flag.Float64("edge", 0, "square area edge in metres (0 = paper room 7.2x4.8)")
	days := flag.Float64("days", 90, "age of the environment in days")
	update := flag.Bool("update", true, "run the TafLoc low-cost update at the given age")
	targets := flag.Int("targets", 40, "number of random evaluation targets")
	window := flag.Int("window", 10, "live samples averaged per localization")
	seed := flag.Uint64("seed", 1, "channel seed (selects the random universe)")
	matcher := flag.String("matcher", "wknn",
		fmt.Sprintf("localization matcher %v", tafloc.MatcherNames()))
	flag.Parse()

	cfg := tafloc.PaperConfig()
	if *edge > 0 {
		cfg = tafloc.SquareConfig(*edge)
	}
	cfg.RF.Seed = *seed
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d links, %d cells, channel seed %d\n",
		dep.Channel.M(), dep.Grid.Cells(), *seed)

	sys, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher(*matcher))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day-0 survey: %.2f h, %d reference locations (matcher %s)\n",
		dep.FullSurveyCost().Hours(), len(sys.References()), *matcher)

	if *update {
		refCols, cost := dep.SurveyCells(sys.References(), *days)
		rec, err := sys.Update(refCols, dep.VacantCapture(*days, 100))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update at day %.0f: %.2f h, rank %d, %d iterations\n",
			*days, cost.Hours(), rec.Rank, rec.Iterations)
	} else {
		fmt.Printf("no update: localizing with the day-0 database at day %.0f\n", *days)
	}

	// Evaluate on random targets drawn from a deterministic stream.
	r := newPointStream(*seed * 31)
	var errs []float64
	for k := 0; k < *targets; k++ {
		p := r.next(dep.Grid.Width, dep.Grid.Height)
		y := make([]float64, dep.Channel.M())
		for s := 0; s < *window; s++ {
			one := dep.Channel.MeasureLive(p, *days)
			for i := range y {
				y[i] += one[i] / float64(*window)
			}
		}
		loc, err := sys.Locate(y)
		if err != nil {
			log.Fatal(err)
		}
		errs = append(errs, loc.Point.Dist(p))
	}
	s := tafloc.Summarize(errs)
	fmt.Printf("\nlocalization over %d targets: median %.2f m, mean %.2f m, p90 %.2f m, max %.2f m\n",
		s.Count, s.Median, s.Mean, s.P90, s.Max)
}

// pointStream is a tiny deterministic generator for target positions
// (xorshift64*), independent of the channel's random universe.
type pointStream struct{ s uint64 }

func newPointStream(seed uint64) *pointStream {
	if seed == 0 {
		seed = 1
	}
	return &pointStream{s: seed}
}

func (p *pointStream) float() float64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return float64((p.s*0x2545F4914F6CDD1D)>>11) / (1 << 53)
}

func (p *pointStream) next(w, h float64) tafloc.Point {
	return tafloc.Point{
		X: 0.3 + p.float()*(w-0.6),
		Y: 0.3 + p.float()*(h-0.6),
	}
}
