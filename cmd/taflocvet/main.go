// Command taflocvet is the project-invariant vet tool: a go/analysis
// unitchecker bundling the analyzers in internal/analysis. Run it
// through the standard vet driver so it sees every package in the
// module with full type information:
//
//	go build -o bin/taflocvet ./cmd/taflocvet
//	go vet -vettool=$(pwd)/bin/taflocvet ./...
//
// Add -json for machine-readable output — one object per package,
// keyed by analyzer, each diagnostic carrying "posn" and "message":
//
//	go vet -vettool=$(pwd)/bin/taflocvet -json ./...
//
// The default file:line:col format is what
// .github/problem-matchers/taflocvet.json matches, so CI annotates
// violations inline on pull requests.
//
// CI runs exactly that as a hard gate (see .github/workflows and
// docs/INVARIANTS.md for the contract each analyzer enforces).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"tafloc/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Analyzers()...)
}
