// Command taflocvet is the project-invariant vet tool: a go/analysis
// unitchecker bundling the analyzers in internal/analysis. Run it
// through the standard vet driver so it sees every package in the
// module with full type information:
//
//	go build -o bin/taflocvet ./cmd/taflocvet
//	go vet -vettool=$(pwd)/bin/taflocvet ./...
//
// CI runs exactly that as a hard gate (see .github/workflows and
// docs/INVARIANTS.md for the contract each analyzer enforces).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"tafloc/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Analyzers()...)
}
