// Command tafloc-collect runs the measurement-collection pipeline over
// real sockets: it starts a collector, launches one simulated link agent
// per link, then drives a vacant capture and a survey pass over the
// control plane and prints the aggregated results.
//
// Usage:
//
//	tafloc-collect                       # loopback, default deployment
//	tafloc-collect -cell 40 -samples 50  # survey cell 40 with 50 samples
//	tafloc-collect -rate 100             # 100 reports/s per link
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"tafloc"
)

func main() {
	log.SetFlags(0)
	cell := flag.Int("cell", 40, "grid cell to survey")
	samples := flag.Int("samples", 50, "samples per link per pass")
	rate := flag.Float64("rate", 200, "reports per second per link")
	dataAddr := flag.String("data", "127.0.0.1:0", "UDP data-plane bind address")
	ctrlAddr := flag.String("ctrl", "127.0.0.1:0", "TCP control-plane bind address")
	flag.Parse()

	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	if *cell < 0 || *cell >= dep.Grid.Cells() {
		log.Fatalf("cell %d out of range [0,%d)", *cell, dep.Grid.Cells())
	}

	col, err := tafloc.NewCollector(dep.Channel.M(), 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	da, ca, err := col.Start(ctx, *dataAddr, *ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector up: data %s, control %s\n", da, ca)

	// Shared target state: agents report vacant until the survey starts.
	var mu sync.Mutex
	var surveying bool
	target := dep.Grid.Center(*cell)
	fleet, err := tafloc.NewFleet(dep.Channel, da, tafloc.AgentConfig{
		Interval: time.Duration(float64(time.Second) / *rate),
		Target: func() (tafloc.Point, bool) {
			mu.Lock()
			defer mu.Unlock()
			return target, surveying
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(ctx)
	}()

	orch, err := tafloc.DialOrchestrator(ca)
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()

	// Pass 1: vacant capture.
	if err := orch.StartVacant(*samples); err != nil {
		log.Fatal(err)
	}
	if !col.Store.WaitForCounts(*samples, 30*time.Second) {
		log.Fatal("timed out collecting vacant samples")
	}
	vacMeans, vacCounts, _ := col.Store.EndPass()
	fmt.Printf("\nvacant capture (%d+ samples per link):\n", *samples)
	for i, v := range vacMeans {
		fmt.Printf("  link %2d: %7.2f dBm (%d samples)\n", i, v, vacCounts[i])
	}

	// Pass 2: survey the requested cell ("surveyor walks to the cell").
	mu.Lock()
	surveying = true
	mu.Unlock()
	if err := orch.StartSurvey(*cell, *samples); err != nil {
		log.Fatal(err)
	}
	if !col.Store.WaitForCounts(*samples, 30*time.Second) {
		log.Fatal("timed out collecting survey samples")
	}
	surMeans, _, gotCell := col.Store.EndPass()
	fmt.Printf("\nsurvey pass for cell %d at %v:\n", gotCell, target)
	for i, v := range surMeans {
		fmt.Printf("  link %2d: %7.2f dBm (delta %+.2f dB)\n", i, v, v-vacMeans[i])
	}

	cancel()
	wg.Wait()
	st := col.Store.Stats()
	fmt.Printf("\nstats: %d frames received, %d dropped, %d survey passes, %d vacant passes\n",
		st.FramesReceived, st.FramesDropped, st.SurveyPasses, st.VacantPasses)
}
