// Command tafloc-serve runs the concurrent multi-zone localization
// service over HTTP: it builds one independent TafLoc system per
// monitored zone, starts the sharded serving layer, and (by default)
// drives simulated targets walking through every zone so the endpoints
// return live estimates out of the box. The simulator talks to the
// service the same way any consumer would — through the typed client
// SDK over HTTP — so the served surface is exercised end to end.
//
// Endpoints (see docs/API.md for the full protocol):
//
//	POST   /v1/report, /v2/report       ingest a batch of RSS reports
//	POST   /v2/zones/{id}/reports:stream persistent NDJSON ingest stream
//	GET    /v1/zones, /v2/zones         list zone IDs
//	GET    /v{1,2}/zones/{id}/position  latest estimate for a zone
//	GET    /v2/zones/{id}/track         smoothed trajectory + velocity
//	GET    /v2/zones/{id}/history       raw published-estimate history
//	POST   /v2/zones/{id}               create a zone at runtime (ZoneSpec body)
//	DELETE /v2/zones/{id}               remove a zone at runtime
//	GET    /v2/zones/{id}/watch         stream estimates over SSE
//	GET    /v1/healthz, /v2/healthz     liveness and per-zone counters
//
// With -state-dir the service is stateful across restarts: every zone's
// calibrated deployment (layout, mask, radio map, vacant baseline,
// reference cells, serve config) is checkpointed to versioned,
// CRC-checked snapshot files — periodically (-checkpoint) and once more
// on SIGINT/SIGTERM — and the next boot warm-starts every snapshot it
// finds instead of recalibrating, so a deploy or crash costs seconds of
// blindness, not minutes. See docs/PERSISTENCE.md for the format and
// semantics.
//
// Usage:
//
//	tafloc-serve                          # 4 zones on :8750, simulated traffic
//	tafloc-serve -zones 8 -addr :9000     # 8 zones on :9000
//	tafloc-serve -matcher bayes           # probabilistic matcher for new zones
//	tafloc-serve -sim=false               # serve only; feed reports yourself
//	tafloc-serve -interval 20ms           # faster simulated reporting
//	tafloc-serve -state-dir /var/lib/tafloc   # checkpoint + warm restart
//	tafloc-serve -state-dir ./state -checkpoint 10s
//	tafloc-serve -zones 64 -max-hot-zones 8   # tiered storage: at most 8 resident models
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tafloc"
	"tafloc/client"
	"tafloc/taflocerr"
)

// zoneFactory builds simulated deployments for zones created at startup
// or over POST /v2/zones/{id}, remembering each zone's deployment so the
// simulator can sample its channel.
type zoneFactory struct {
	matcher string
	days    float64
	svc     *tafloc.Service // set after NewService; nil only during startup wiring

	mu   sync.Mutex
	deps map[string]*tafloc.Deployment
}

func (f *zoneFactory) build(_ context.Context, id string, spec tafloc.ZoneSpec) (*tafloc.System, error) {
	// Refuse ids that are already registered before building anything:
	// AddZone would reject the duplicate anyway, but by then this factory
	// would have overwritten the existing zone's deployment in f.deps and
	// desynchronized the simulator from the served database.
	if f.svc != nil {
		for _, z := range f.svc.Zones() {
			if z == id {
				return nil, taflocerr.Errorf(taflocerr.CodeZoneExists,
					"tafloc-serve: zone %q already exists", id)
			}
		}
	}
	cfg := tafloc.PaperConfig()
	if spec.Width > 0 && spec.Height > 0 {
		cfg.RoomW, cfg.RoomH = spec.Width, spec.Height
	}
	if spec.Links > 0 {
		cfg.Links = spec.Links
	}
	if spec.CellSize > 0 {
		cfg.CellSize = spec.CellSize
	}
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	// The zone's day-0 survey happens at the requested environment age
	// (spec.Days, defaulting to the -days flag), so a zone created late
	// in a drifted environment starts from a matching database.
	days := f.days
	if spec.Days > 0 {
		days = spec.Days
	}
	layout, err := tafloc.NewLayout(dep.Channel.Links(), dep.Grid, cfg.RF.MaskExcessM())
	if err != nil {
		return nil, err
	}
	survey, _ := dep.Survey(days)
	sys, err := tafloc.Open(layout, survey, dep.VacantCapture(days, 100),
		tafloc.WithMatcher(f.matcher))
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.deps[id] = dep
	f.mu.Unlock()
	return sys, nil
}

func (f *zoneFactory) deployment(id string) (*tafloc.Deployment, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dep, ok := f.deps[id]
	return dep, ok
}

// config is the parsed command line plus which flags were set
// explicitly (so combination warnings fire only on deliberate choices,
// not defaults).
type config struct {
	addr          string
	zones         int
	days          float64
	interval      time.Duration
	window        int
	threshold     float64
	matcher       string
	detector      string
	sim           bool
	locateWorkers int
	stateDir      string
	checkpoint    time.Duration
	maxHotZones   int

	set map[string]bool
}

func parseFlags(args []string) (*config, error) {
	cfg := &config{set: make(map[string]bool)}
	fs := flag.NewFlagSet("tafloc-serve", flag.ExitOnError)
	fs.StringVar(&cfg.addr, "addr", ":8750", "HTTP listen address")
	fs.IntVar(&cfg.zones, "zones", 4, "number of monitored zones")
	fs.Float64Var(&cfg.days, "days", 0, "simulated environment age in days")
	fs.DurationVar(&cfg.interval, "interval", 100*time.Millisecond, "simulated report interval per zone")
	fs.IntVar(&cfg.window, "window", 8, "per-link live window length")
	fs.Float64Var(&cfg.threshold, "threshold", 0.25, "detection threshold in dB")
	fs.StringVar(&cfg.matcher, "matcher", "wknn",
		fmt.Sprintf("localization matcher %v", tafloc.MatcherNames()))
	fs.StringVar(&cfg.detector, "detector", "mad",
		fmt.Sprintf("presence detector %v", tafloc.DetectorNames()))
	fs.BoolVar(&cfg.sim, "sim", true, "drive simulated targets through every zone via the client SDK")
	fs.IntVar(&cfg.locateWorkers, "locate-workers", 0, "shared locate-executor pool size; zones are goroutine-free state machines scheduled onto it (0 = GOMAXPROCS, negative = single worker)")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "directory for deployment snapshots: checkpoint zones there and warm-restore them on boot")
	fs.DurationVar(&cfg.checkpoint, "checkpoint", 30*time.Second, "checkpoint interval when -state-dir is set")
	fs.IntVar(&cfg.maxHotZones, "max-hot-zones", 0, "cap on zones holding a resident model; over the cap the least-recently-used zone is checkpointed and dropped, rehydrating transparently on its next request (0 = no cap)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) { cfg.set[f.Name] = true })
	return cfg, nil
}

// validate rejects unusable flag values and combinations with
// taxonomy-coded errors, and warns about legal-but-surprising
// combinations (flags that will be silently ignored, or non-durable
// defaults chosen implicitly).
func (cfg *config) validate() error {
	if cfg.zones < 1 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"-zones: need at least one zone, got %d", cfg.zones)
	}
	if cfg.window < 1 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"-window: need a positive live window length, got %d", cfg.window)
	}
	if cfg.interval <= 0 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"-interval: need a positive report interval, got %v", cfg.interval)
	}
	// Validate the strategy flags up front so a CLI typo is a clean
	// usage failure instead of a construction error.
	if !contains(tafloc.DetectorNames(), cfg.detector) {
		return taflocerr.Errorf(taflocerr.CodeUnsupported,
			"-detector: unknown detector %q; registered: %v", cfg.detector, tafloc.DetectorNames())
	}
	if !contains(tafloc.MatcherNames(), cfg.matcher) {
		return taflocerr.Errorf(taflocerr.CodeUnsupported,
			"-matcher: unknown matcher %q; registered: %v", cfg.matcher, tafloc.MatcherNames())
	}
	if cfg.maxHotZones < 0 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"-max-hot-zones: need a non-negative cap, got %d", cfg.maxHotZones)
	}
	if cfg.stateDir != "" && cfg.checkpoint <= 0 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"-checkpoint: need a positive interval with -state-dir, got %v", cfg.checkpoint)
	}
	if cfg.maxHotZones > 0 && cfg.stateDir == "" {
		log.Printf("warning: -max-hot-zones without -state-dir: evicted zones snapshot to the in-process memory store, so eviction saves model RAM but cold state does not survive a restart; set -state-dir for durable tiering")
	}
	if cfg.set["checkpoint"] && cfg.stateDir == "" {
		log.Printf("warning: -checkpoint is ignored without -state-dir; no periodic checkpoints will run")
	}
	if cfg.set["interval"] && !cfg.sim {
		log.Printf("warning: -interval is ignored with -sim=false; it only paces the built-in simulator")
	}
	return nil
}

// storeBackend names the effective snapshot store the tiering layer
// will evict into, for the startup banner.
func (cfg *config) storeBackend() string {
	if cfg.stateDir != "" {
		return "dir store " + cfg.stateDir
	}
	return "in-process memory store (non-durable)"
}

func main() {
	log.SetFlags(0)
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		// ExitOnError: Parse only returns on -h/-help after printing usage.
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		log.Fatalf("tafloc-serve: %v [code=%s]", err, taflocerr.CodeOf(err))
	}
}

func run(cfg *config) error {
	if err := cfg.validate(); err != nil {
		return err
	}

	factory := &zoneFactory{matcher: cfg.matcher, days: cfg.days, deps: make(map[string]*tafloc.Deployment)}
	opts := []tafloc.ServiceOption{
		tafloc.WithWindow(cfg.window),
		tafloc.WithDetectThreshold(cfg.threshold),
		tafloc.WithDetector(cfg.detector),
		tafloc.WithZoneFactory(factory.build),
	}
	if cfg.locateWorkers != 0 {
		opts = append(opts, tafloc.WithLocateWorkers(cfg.locateWorkers))
	}
	if cfg.maxHotZones > 0 {
		opts = append(opts, tafloc.WithMaxHotZones(cfg.maxHotZones))
		if cfg.stateDir != "" {
			// Evicted zones checkpoint into the same directory the
			// periodic checkpointer uses, so cold state doubles as
			// crash-recovery state.
			opts = append(opts, tafloc.WithSnapshotStore(tafloc.NewDirStore(cfg.stateDir)))
		}
	}
	svc, err := tafloc.NewService(opts...)
	if err != nil {
		return err
	}
	factory.svc = svc

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Warm start: every snapshot in the state directory restores a zone
	// without recalibration — the calibrated radio map, mask, references,
	// and per-zone serve config come straight off disk.
	restored := make(map[string]bool)
	if cfg.stateDir != "" {
		ids, err := svc.RestoreDir(cfg.stateDir)
		if err != nil {
			// Damaged snapshots are reported and skipped; the healthy
			// zones (and freshly surveyed ones) still serve.
			log.Printf("state-dir: %v", err)
		}
		for _, id := range ids {
			restored[id] = true
			fmt.Printf("%s: warm-restored from %s\n", id, cfg.stateDir)
		}
	}

	// One independent deployment and system per zone. Day-0 surveys are
	// the expensive part of startup; each zone pays it once — unless a
	// snapshot already covers it.
	for i := 0; i < cfg.zones; i++ {
		id := fmt.Sprintf("zone-%d", i)
		if restored[id] {
			continue
		}
		sys, err := factory.build(ctx, id, tafloc.ZoneSpec{})
		if err != nil {
			return err
		}
		if err := svc.AddZone(id, sys); err != nil {
			return err
		}
		dep, _ := factory.deployment(id)
		fmt.Printf("%s: %d links over %d cells, %d reference locations\n",
			id, dep.Channel.M(), dep.Grid.Cells(), len(sys.References()))
	}

	if err := svc.Start(ctx); err != nil {
		return err
	}
	if cfg.stateDir != "" {
		// Interval checkpoints plus a final one when ctx is cancelled
		// (SIGINT/SIGTERM), so a clean stop persists fully current state.
		if err := svc.StartCheckpointer(ctx, cfg.stateDir, cfg.checkpoint, func(err error) {
			log.Printf("checkpoint: %v", err)
		}); err != nil {
			return err
		}
		fmt.Printf("checkpointing zones to %s every %v\n", cfg.stateDir, cfg.checkpoint)
	}
	if cfg.maxHotZones > 0 {
		fmt.Printf("hot-zone cap: %d resident models, evicting LRU zones to %s\n",
			cfg.maxHotZones, cfg.storeBackend())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "-addr: listen on %s: %w", cfg.addr, err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() {
		<-ctx.Done()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = server.Shutdown(shutCtx)
	}()

	if cfg.sim {
		baseURL := dialableURL(ln.Addr())
		go func() {
			cli, err := client.Dial(ctx, baseURL)
			if err != nil {
				log.Printf("simulator: %v", err)
				return
			}
			for i := 0; i < cfg.zones; i++ {
				id := fmt.Sprintf("zone-%d", i)
				dep, ok := factory.deployment(id)
				if !ok {
					// Warm-restored zones serve the snapshot's radio map;
					// this process has no channel simulator matched to it,
					// so it cannot generate faithful traffic for them.
					log.Printf("simulator: %s was restored from a snapshot; not simulating", id)
					continue
				}
				go simulateZone(ctx, cli, dep, id, cfg.days, cfg.interval)
			}
		}()
		fmt.Printf("simulating one walking target per zone every %v (reports via %s)\n",
			cfg.interval, baseURL)
	}

	fmt.Printf("serving %d zones on %s (matcher %s, detector %s, parallel workers: %d)\n",
		cfg.zones, ln.Addr(), cfg.matcher, cfg.detector, tafloc.Workers())
	if err := server.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	svc.Stop()
	svc.Wait()
	return nil
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// dialableURL turns a listener address into a loopback base URL (a
// wildcard listen address is not dialable as-is).
func dialableURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" || strings.HasPrefix(host, "%") {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// simulateZone walks a target on a Lissajous path through the zone and
// feeds its RSS samples through a client.Reporter: one persistent
// NDJSON ingest stream per zone instead of one HTTP round trip per
// tick, with batching, shedding, and reconnects handled by the SDK.
// Each zone has its own deployment, so the (non-concurrency-safe)
// channel sampler is only touched here.
func simulateZone(ctx context.Context, cli *client.Client, dep *tafloc.Deployment, id string, days float64, interval time.Duration) {
	m := dep.Channel.M()
	rep, err := cli.NewReporter(ctx, id,
		// Flush once per tick's worth of samples so estimate latency
		// matches the old per-request behavior.
		client.WithReporterBatch(m),
		client.WithReporterInterval(interval))
	if err != nil {
		log.Printf("simulator %s: %v", id, err)
		return
	}
	defer rep.Close()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	t := 0.0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		t += interval.Seconds()
		p := tafloc.Point{
			X: dep.Grid.Width * (0.5 + 0.4*math.Sin(0.23*t)),
			Y: dep.Grid.Height * (0.5 + 0.4*math.Sin(0.31*t+1)),
		}
		y := dep.Channel.MeasureLive(p, days)
		batch := make([]client.Report, len(y))
		for i, v := range y {
			batch[i] = client.Report{Link: i, RSS: v}
		}
		// Overload and removal both surface as shed/rejected counts in
		// the reporter's stats, not errors: the service's bounded queues
		// are the backpressure mechanism.
		_ = rep.Send(batch...)
	}
}
