// Command tafloc-serve runs the concurrent multi-zone localization
// service over HTTP: it builds one independent TafLoc system per
// monitored zone, starts the sharded serving layer, and (by default)
// drives simulated targets walking through every zone so the endpoints
// return live estimates out of the box.
//
// Endpoints:
//
//	POST /v1/report              ingest a batch of RSS reports for a zone
//	GET  /v1/zones               list zone IDs
//	GET  /v1/zones/{id}/position latest estimate for a zone
//	GET  /v1/healthz             liveness and per-zone counters
//
// Usage:
//
//	tafloc-serve                          # 4 zones on :8750, simulated traffic
//	tafloc-serve -zones 8 -addr :9000     # 8 zones on :9000
//	tafloc-serve -sim=false               # serve only; feed reports yourself
//	tafloc-serve -interval 20ms           # faster simulated reporting
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"time"

	"tafloc"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8750", "HTTP listen address")
	zones := flag.Int("zones", 4, "number of monitored zones")
	days := flag.Float64("days", 0, "simulated environment age in days")
	interval := flag.Duration("interval", 100*time.Millisecond, "simulated report interval per zone")
	window := flag.Int("window", 8, "per-link live window length")
	threshold := flag.Float64("threshold", 0.25, "detection threshold in dB")
	sim := flag.Bool("sim", true, "drive simulated targets through every zone")
	flag.Parse()
	if *zones < 1 {
		log.Fatalf("need at least one zone, got %d", *zones)
	}

	svc := tafloc.NewService(tafloc.ServiceConfig{
		Window:            *window,
		DetectThresholdDB: *threshold,
	})

	// One independent deployment and system per zone. Day-0 surveys are
	// the expensive part of startup; each zone pays it once.
	deps := make([]*tafloc.Deployment, *zones)
	for i := 0; i < *zones; i++ {
		dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
		if err != nil {
			log.Fatal(err)
		}
		sys, err := tafloc.BuildSystem(dep)
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("zone-%d", i)
		if err := svc.AddZone(id, sys); err != nil {
			log.Fatal(err)
		}
		deps[i] = dep
		fmt.Printf("%s: %d links over %d cells, %d reference locations\n",
			id, dep.Channel.M(), dep.Grid.Cells(), len(sys.References()))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		log.Fatal(err)
	}

	if *sim {
		for i := 0; i < *zones; i++ {
			go simulateZone(ctx, svc, deps[i], fmt.Sprintf("zone-%d", i), *days, *interval)
		}
		fmt.Printf("simulating one walking target per zone every %v\n", *interval)
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		<-ctx.Done()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = server.Shutdown(shutCtx)
	}()
	fmt.Printf("serving %d zones on %s (parallel workers: %d)\n", *zones, *addr, tafloc.Workers())
	if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	svc.Stop()
	svc.Wait()
}

// simulateZone walks a target on a Lissajous path through the zone and
// feeds one report batch per tick. Each zone has its own deployment, so
// the (non-concurrency-safe) channel sampler is only touched here.
func simulateZone(ctx context.Context, svc *tafloc.Service, dep *tafloc.Deployment, id string, days float64, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	t := 0.0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		t += interval.Seconds()
		p := tafloc.Point{
			X: dep.Grid.Width * (0.5 + 0.4*math.Sin(0.23*t)),
			Y: dep.Grid.Height * (0.5 + 0.4*math.Sin(0.31*t+1)),
		}
		y := dep.Channel.MeasureLive(p, days)
		batch := make([]tafloc.ZoneReport, len(y))
		for i, v := range y {
			batch[i] = tafloc.ZoneReport{Link: i, RSS: v}
		}
		// Shed silently on overload: the service's bounded queues are the
		// backpressure mechanism.
		_ = svc.Report(id, batch)
	}
}
