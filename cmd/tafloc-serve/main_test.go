package main

import (
	"errors"
	"testing"

	"tafloc/taflocerr"
)

func parseForTest(t *testing.T, args ...string) *config {
	t.Helper()
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	return cfg
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want taflocerr.Code
	}{
		{"no zones", []string{"-zones", "0"}, taflocerr.CodeBadRequest},
		{"bad window", []string{"-window", "0"}, taflocerr.CodeBadRequest},
		{"bad interval", []string{"-interval", "-1s"}, taflocerr.CodeBadRequest},
		{"unknown matcher", []string{"-matcher", "nope"}, taflocerr.CodeUnsupported},
		{"unknown detector", []string{"-detector", "nope"}, taflocerr.CodeUnsupported},
		{"negative hot cap", []string{"-max-hot-zones", "-1"}, taflocerr.CodeBadRequest},
		{"bad checkpoint", []string{"-state-dir", "x", "-checkpoint", "0s"}, taflocerr.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parseForTest(t, tc.args...).validate()
			if err == nil {
				t.Fatalf("validate(%v): want error, got nil", tc.args)
			}
			if got := taflocerr.CodeOf(err); got != tc.want {
				t.Fatalf("validate(%v): code %s, want %s (err: %v)", tc.args, got, tc.want, err)
			}
			if !errors.Is(err, taflocerr.FromCode(tc.want)) {
				t.Fatalf("validate(%v): error %v does not match sentinel for %s", tc.args, err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsWarnOnlyCombos(t *testing.T) {
	// Surprising-but-legal combinations must stay usable: they warn,
	// they do not fail startup.
	for _, args := range [][]string{
		{},
		{"-max-hot-zones", "2"}, // memory store fallback: warn only
		{"-checkpoint", "5s"},   // ignored without -state-dir: warn only
		{"-sim=false", "-interval", "5ms"},
		{"-state-dir", "x", "-checkpoint", "5s", "-max-hot-zones", "2"},
	} {
		if err := parseForTest(t, args...).validate(); err != nil {
			t.Errorf("validate(%v): unexpected error %v", args, err)
		}
	}
}

func TestStoreBackendBanner(t *testing.T) {
	if got := parseForTest(t, "-max-hot-zones", "2").storeBackend(); got != "in-process memory store (non-durable)" {
		t.Fatalf("default backend = %q", got)
	}
	if got := parseForTest(t, "-max-hot-zones", "2", "-state-dir", "/var/lib/tafloc").storeBackend(); got != "dir store /var/lib/tafloc" {
		t.Fatalf("dir backend = %q", got)
	}
}
