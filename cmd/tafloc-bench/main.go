// Command tafloc-bench regenerates every table and figure of the paper's
// evaluation on stdout.
//
// Usage:
//
//	tafloc-bench                 # everything
//	tafloc-bench -fig 3          # one figure (1, 3, 4, 5)
//	tafloc-bench -fig drift      # in-text drift table
//	tafloc-bench -fig cost       # in-text cost table
//	tafloc-bench -fig ablation   # design-choice ablation
//	tafloc-bench -seed 9 -targets 120
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tafloc"
)

func main() {
	log.SetFlags(0)
	fig := flag.String("fig", "all", "which result to regenerate: 1, 3, 4, 5, drift, cost, ablation, all")
	seed := flag.Uint64("seed", 7, "harness seed (test-target placement)")
	targets := flag.Int("targets", 60, "number of Fig 5 evaluation targets")
	window := flag.Int("window", 10, "live samples averaged per localization")
	flag.Parse()

	cfg := tafloc.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.TestTargets = *targets
	cfg.LiveWindow = *window

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("1", func() error { return printFig(tafloc.Fig1(cfg)) })
	run("drift", func() error { return printTable(tafloc.DriftTable(cfg)) })
	run("cost", func() error { return printTable(tafloc.CostTable()) })
	run("3", func() error { return printFig(tafloc.Fig3(cfg)) })
	run("4", func() error { return printFig(tafloc.Fig4()) })
	run("5", func() error { return printFig(tafloc.Fig5(cfg)) })
	run("ablation", func() error { return printTable(tafloc.Ablation(cfg)) })

	if *fig != "all" {
		switch *fig {
		case "1", "3", "4", "5", "drift", "cost", "ablation":
		default:
			fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
			flag.Usage()
			os.Exit(2)
		}
	}
}

func printFig(f *tafloc.Figure, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(f.Render())
	return nil
}

func printTable(t *tafloc.Table, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(t.Render())
	return nil
}
