// Command elderlycare simulates the paper's motivating application: a
// device-free resident tracked in a monitored room over three months.
// The environment drifts continuously; a TafLoc low-cost update runs
// every two weeks, while a comparison system keeps its day-0 database.
// The program prints the weekly tracking error of both, showing how the
// periodic cheap updates hold accuracy while the stale database decays.
package main

import (
	"fmt"
	"log"
	"math"

	"tafloc"
)

func main() {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Two independent systems built from the same day-0 survey: one gets
	// biweekly TafLoc updates, the other never updates.
	maintained, err := tafloc.BuildSystem(dep)
	if err != nil {
		log.Fatal(err)
	}
	neglected, err := tafloc.BuildSystem(dep)
	if err != nil {
		log.Fatal(err)
	}
	totalCost := 0.0

	fmt.Println("week  maintained_err_m  neglected_err_m  update")
	for week := 1; week <= 12; week++ {
		days := float64(week * 7)

		// Biweekly low-cost refresh of the maintained system.
		updated := ""
		if week%2 == 0 {
			refCols, cost := dep.SurveyCells(maintained.References(), days)
			if _, err := maintained.Update(refCols, dep.VacantCapture(days, 100)); err != nil {
				log.Fatal(err)
			}
			totalCost += cost.Hours()
			updated = fmt.Sprintf("yes (%.2f h)", cost.Hours())
		}

		// The resident walks a fixed daily path; track 20 waypoints.
		var errMaintained, errNeglected float64
		const steps = 20
		for k := 0; k < steps; k++ {
			p := walkPath(float64(k) / steps)
			y := liveWindow(dep, p, days, 8)
			locM, err := maintained.Locate(y)
			if err != nil {
				log.Fatal(err)
			}
			locN, err := neglected.Locate(y)
			if err != nil {
				log.Fatal(err)
			}
			errMaintained += locM.Point.Dist(p) / steps
			errNeglected += locN.Point.Dist(p) / steps
		}
		fmt.Printf("%4d  %16.2f  %15.2f  %s\n", week, errMaintained, errNeglected, updated)
	}
	full := dep.FullSurveyCost().Hours()
	fmt.Printf("\ntotal maintenance cost: %.2f hours over 12 weeks "+
		"(full re-surveys would have cost %.2f hours)\n", totalCost, 6*full)
}

// walkPath traces a loop through the room parameterized by t in [0,1).
func walkPath(t float64) tafloc.Point {
	angle := 2 * math.Pi * t
	return tafloc.Point{
		X: 3.6 + 2.4*math.Cos(angle),
		Y: 2.4 + 1.5*math.Sin(angle),
	}
}

func liveWindow(dep *tafloc.Deployment, p tafloc.Point, days float64, win int) []float64 {
	y := make([]float64, dep.Channel.M())
	for s := 0; s < win; s++ {
		one := dep.Channel.MeasureLive(p, days)
		for i := range y {
			y[i] += one[i] / float64(win)
		}
	}
	return y
}
