// Command elderlycare simulates the paper's motivating application: a
// device-free resident tracked in a monitored room over three months.
// The environment drifts continuously; a TafLoc low-cost update runs
// every two weeks, while a comparison system keeps its day-0 database.
//
// Both systems run as zones of one multi-zone service ("maintained" and
// "neglected"), and the whole experiment is driven through the typed
// client SDK over a real HTTP connection: the resident's RSS reports
// flow in through a client.Reporter (one persistent NDJSON ingest
// stream per zone, auto-batched) and the weekly tracking error is read
// back from cli.Position — showing how the periodic cheap updates hold
// accuracy while the stale database decays.
//
// Run with -short for a reduced deployment and fewer weeks (CI mode).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"time"

	"tafloc"
	"tafloc/client"
)

func main() {
	short := flag.Bool("short", false, "reduced deployment and fewer weeks")
	flag.Parse()

	cfg := tafloc.PaperConfig()
	weeks := 12
	const win = 4
	if *short {
		cfg.SamplesPerCell = 5
		weeks = 4
	}
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Two independent systems built from the same day-0 survey: one gets
	// biweekly TafLoc updates, the other never updates.
	maintained, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("wknn"))
	if err != nil {
		log.Fatal(err)
	}
	neglected, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("wknn"))
	if err != nil {
		log.Fatal(err)
	}

	// Serve both as zones and talk to them only through the client SDK.
	svc, err := tafloc.NewService(
		tafloc.WithWindow(win),
		tafloc.WithBatch(win*dep.Channel.M()),
		tafloc.WithDetectThreshold(0.05),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.AddZone("maintained", maintained); err != nil {
		log.Fatal(err)
	}
	if err := svc.AddZone("neglected", neglected); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	cli, err := client.Dial(ctx, "http://"+ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	// One persistent ingest stream per zone; the reporter batches the
	// win samples of each waypoint into single NDJSON lines.
	zones := []string{"maintained", "neglected"}
	reporters := map[string]*client.Reporter{}
	for _, zone := range zones {
		rep, err := cli.NewReporter(ctx, zone)
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		reporters[zone] = rep
	}

	totalCost := 0.0

	fmt.Println("week  maintained_err_m  neglected_err_m  update")
	for week := 1; week <= weeks; week++ {
		days := float64(week * 7)

		// Biweekly low-cost refresh of the maintained zone. The update
		// runs server-side against the live System while the zone keeps
		// serving; the context would let us abort a long reconstruction.
		updated := ""
		if week%2 == 0 {
			sys, _ := svc.System("maintained")
			refCols, cost := dep.SurveyCells(sys.References(), days)
			if _, err := sys.UpdateContext(ctx, refCols, dep.VacantCapture(days, 100)); err != nil {
				log.Fatal(err)
			}
			totalCost += cost.Hours()
			updated = fmt.Sprintf("yes (%.2f h)", cost.Hours())
		}

		// The resident walks a fixed daily path; track the waypoints
		// through both zones via the client.
		var errMaintained, errNeglected float64
		steps := 20
		if *short {
			steps = 6
		}
		for k := 0; k < steps; k++ {
			p := walkPath(float64(k) / float64(steps))
			for s := 0; s < win; s++ {
				y := dep.Channel.MeasureLive(p, days)
				batch := make([]client.Report, len(y))
				for i, v := range y {
					batch[i] = client.Report{Link: i, RSS: v}
				}
				for _, zone := range zones {
					if err := reporters[zone].Send(batch...); err != nil {
						log.Fatal(err)
					}
				}
			}
			// Flush forces the waypoint's buffered samples out and waits
			// for the server's acks, so Stats().Accepted is exact and the
			// settle check below cannot race the stream.
			var errs [2]float64
			for zi, zone := range zones {
				rep := reporters[zone]
				if err := rep.Flush(ctx); err != nil {
					log.Fatal(err)
				}
				est, err := settledPosition(ctx, cli, zone, rep.Stats().Accepted)
				if err != nil {
					log.Fatal(err)
				}
				errs[zi] = est.Point.Dist(p) / float64(steps)
			}
			errMaintained += errs[0]
			errNeglected += errs[1]
		}
		fmt.Printf("%4d  %16.2f  %15.2f  %s\n", week, errMaintained, errNeglected, updated)
	}
	full := dep.FullSurveyCost().Hours()
	fmt.Printf("\ntotal maintenance cost: %.2f hours over %d weeks "+
		"(full re-surveys would have cost %.2f hours)\n", totalCost, weeks, float64(weeks/2)*full)
	cancel()
	svc.Wait()
}

// settledPosition polls the zone until its published estimate reflects
// every report sent so far, so consecutive waypoints do not bleed into
// each other.
func settledPosition(ctx context.Context, cli *client.Client, zone string, reports uint64) (client.Estimate, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		est, err := cli.Position(ctx, zone)
		if err == nil && est.Reports >= reports {
			return est, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				return est, fmt.Errorf("zone %s: estimate stuck at %d of %d reports", zone, est.Reports, reports)
			}
			return est, err
		}
		time.Sleep(time.Millisecond)
	}
}

// walkPath traces a loop through the room parameterized by t in [0,1).
func walkPath(t float64) tafloc.Point {
	angle := 2 * math.Pi * t
	return tafloc.Point{
		X: 3.6 + 2.4*math.Cos(angle),
		Y: 2.4 + 1.5*math.Sin(angle),
	}
}
