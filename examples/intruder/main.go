// Command intruder runs the full networked pipeline on localhost: a
// collector listens on UDP/TCP, simulated link agents stream RSS report
// frames, the collector's batch sink feeds the multi-zone service
// through the shared Ingestor path, and the service is watched through
// the typed client SDK — alerts arrive as streamed position estimates
// over the /v2 SSE watch, with the smoothed trajectory (position,
// velocity) read back from /v2/zones/{id}/track: the paper's
// intruder-detection motivation end to end. When the demo window
// closes, the zone is removed over the API and the watch stream ends
// with its terminal event.
//
// Run with -short for a faster, smaller demo (CI mode).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"tafloc"
	"tafloc/client"
)

func main() {
	short := flag.Bool("short", false, "reduced deployment and run time")
	flag.Parse()

	cfg := tafloc.PaperConfig()
	runFor := 9 * time.Second
	enterAt := 2.0
	if *short {
		cfg.SamplesPerCell = 5
		runFor = 4 * time.Second
		enterAt = 1.0
	}
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("wknn"))
	if err != nil {
		log.Fatal(err)
	}

	// The serving layer: one zone, fed by the collector sink below,
	// gated by the "mad" presence detector.
	svc, err := tafloc.NewService(
		tafloc.WithWindow(8),
		tafloc.WithDetectThreshold(0.8),
		tafloc.WithDetector("mad"),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.AddZone("room", sys); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		log.Fatal(err)
	}

	// Start the collector on loopback and forward every decoded datagram
	// batch into the service's shared ingest path.
	col, err := tafloc.NewCollector(dep.Channel.M(), 8)
	if err != nil {
		log.Fatal(err)
	}
	col.SetBatchSink(tafloc.IngestSink(svc, "room"))
	dataAddr, ctrlAddr, err := col.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector: data %s, control %s\n", dataAddr, ctrlAddr)

	// The intruder enters the room at enterAt seconds and walks
	// diagonally. The target function is shared by all agents, so every
	// link observes a consistent position.
	start := time.Now()
	var mu sync.Mutex
	intruderAt := func() (tafloc.Point, bool) {
		mu.Lock()
		defer mu.Unlock()
		elapsed := time.Since(start).Seconds()
		if elapsed < enterAt {
			return tafloc.Point{}, false // room still empty
		}
		frac := (elapsed - enterAt) / 6
		if frac > 1 {
			frac = 1
		}
		return tafloc.Point{X: 0.9 + frac*5.4, Y: 0.9 + frac*3.0}, true
	}

	// Agents stream at 50 Hz (accelerated from the paper's 1 Hz so the
	// demo finishes quickly).
	fleet, err := tafloc.NewFleet(dep.Channel, dataAddr, tafloc.AgentConfig{
		Interval: 20 * time.Millisecond,
		Target:   intruderAt,
	})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(ctx)
	}()

	// Health check over the collector's control plane.
	orch, err := tafloc.DialOrchestrator(ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	if err := orch.Snapshot(); err != nil {
		log.Fatal(err)
	}

	// Serve the HTTP surface and watch the zone through the client SDK.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	cli, err := client.Dial(ctx, "http://"+ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	ch, err := cli.Watch(ctx, "room")
	if err != nil {
		log.Fatal(err)
	}

	// Close the demo window by removing the zone over the API: the watch
	// stream then delivers its terminal event and ends.
	go func() {
		time.Sleep(runFor)
		if err := cli.RemoveZone(context.Background(), "room"); err != nil {
			log.Printf("remove zone: %v", err)
		}
	}()

	fmt.Println("monitoring (alerts stream over /v2 watch)...")
	alerts := 0
	var lastPrint time.Time
	for est := range ch {
		if est.Final {
			fmt.Println("zone removed; watch stream terminated")
			break
		}
		if !est.Present {
			continue
		}
		alerts++
		// The watch delivers every published estimate; print at most 4/s.
		if time.Since(lastPrint) < 250*time.Millisecond {
			continue
		}
		lastPrint = time.Now()
		truth, _ := intruderAt()
		fmt.Printf("ALERT t=%4.1fs deviation %.2f dB -> intruder near %v (truth %v, err %.2f m)\n",
			time.Since(start).Seconds(), est.DeviationDB, est.Point, truth, est.Point.Dist(truth))
		// The smoothed trajectory adds what a raw estimate cannot: where
		// the intruder is heading and how fast.
		if pts, err := cli.Track(ctx, "room", 1); err == nil && len(pts) == 1 {
			tp := pts[0]
			speed := math.Hypot(tp.Velocity.X, tp.Velocity.Y)
			fmt.Printf("      track: smoothed %v moving %.2f m/s (±%.2f m)\n",
				tp.Point, speed, tp.PosStd)
		}
	}
	cancel()
	wg.Wait()
	stats := col.Store.Stats()
	fmt.Printf("\ndone: %d alerts, %d frames received, %d dropped\n",
		alerts, stats.FramesReceived, stats.FramesDropped)
	svc.Wait()
}
