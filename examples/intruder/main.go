// Command intruder runs the full networked pipeline on localhost: a
// collector listens on UDP/TCP, simulated link agents stream RSS report
// frames, and a detection loop watches for a device-free intruder. When
// presence is detected, the live window is localized and an alert is
// printed — the paper's intruder-detection motivation end to end.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"tafloc"
)

func main() {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tafloc.BuildSystem(dep)
	if err != nil {
		log.Fatal(err)
	}

	// Start the collector on loopback.
	col, err := tafloc.NewCollector(dep.Channel.M(), 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dataAddr, ctrlAddr, err := col.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector: data %s, control %s\n", dataAddr, ctrlAddr)

	// The intruder enters the room at t=2s and walks diagonally. The
	// target function is shared by all agents, so every link observes a
	// consistent position.
	start := time.Now()
	var mu sync.Mutex
	intruderAt := func() (tafloc.Point, bool) {
		mu.Lock()
		defer mu.Unlock()
		elapsed := time.Since(start).Seconds()
		if elapsed < 2 {
			return tafloc.Point{}, false // room still empty
		}
		frac := (elapsed - 2) / 6
		if frac > 1 {
			frac = 1
		}
		return tafloc.Point{X: 0.9 + frac*5.4, Y: 0.9 + frac*3.0}, true
	}

	// Agents stream at 50 Hz (accelerated from the paper's 1 Hz so the
	// demo finishes quickly).
	fleet, err := tafloc.NewFleet(dep.Channel, dataAddr, tafloc.AgentConfig{
		Interval: 20 * time.Millisecond,
		Target:   intruderAt,
	})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(ctx)
	}()

	// Health check over the control plane.
	orch, err := tafloc.DialOrchestrator(ctrlAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	if err := orch.Snapshot(); err != nil {
		log.Fatal(err)
	}

	// Detection loop: poll the live window, gate on presence, localize.
	fmt.Println("monitoring...")
	alerts := 0
	deadline := time.After(9 * time.Second)
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			y, ok := col.Store.LiveVector()
			if !ok {
				continue // not all links reporting yet
			}
			present, dev := sys.Detect(y, 0.8)
			if !present {
				continue
			}
			loc, err := sys.Locate(y)
			if err != nil {
				log.Fatal(err)
			}
			truth, _ := intruderAt()
			alerts++
			fmt.Printf("ALERT t=%4.1fs deviation %.2f dB -> intruder near %v (truth %v, err %.2f m)\n",
				time.Since(start).Seconds(), dev, loc.Point, truth, loc.Point.Dist(truth))
		}
	}
	cancel()
	wg.Wait()
	stats := col.Store.Stats()
	fmt.Printf("\ndone: %d alerts, %d frames received, %d dropped\n",
		alerts, stats.FramesReceived, stats.FramesDropped)
}
