// Command comparison runs the Fig 5 head-to-head on one deployment:
// TafLoc, RTI, and RASS with/without the reconstruction scheme, all
// localizing the same targets three months after the initial survey. It
// prints per-system medians and the full error CDFs, then serves the
// TafLoc system as a zone and queries it back through the typed client
// SDK over a real HTTP connection.
//
// Run with -short for a reduced harness (CI mode).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"tafloc"
	"tafloc/client"
)

func main() {
	short := flag.Bool("short", false, "reduced harness (fewer targets and samples)")
	flag.Parse()

	cfg := tafloc.DefaultExperimentConfig()
	if *short {
		cfg.Testbed.SamplesPerCell = 5
		cfg.TestTargets = 10
		cfg.LiveWindow = 4
	}
	fig, err := tafloc.Fig5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Localization at 3 months, four systems, shared targets")
	fmt.Println()
	for _, note := range fig.Notes {
		fmt.Println("  " + note)
	}
	fmt.Println()
	fmt.Print(fig.Render())

	// Also show the cost asymmetry that makes the comparison meaningful:
	// TafLoc's database freshness costs minutes, not hours.
	dep, err := tafloc.NewDeployment(cfg.Testbed)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		log.Fatal(err)
	}
	_, refCost := dep.SurveyCells(sys.References(), 90)
	fmt.Printf("\nupdate cost: TafLoc %.2f h vs full re-survey %.2f h\n",
		refCost.Hours(), dep.FullSurveyCost().Hours())

	// Serve the day-0 system as a zone and read one estimate back
	// through the client SDK.
	svc, err := tafloc.NewService(tafloc.WithWindow(4), tafloc.WithDetectThreshold(0.25))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.AddZone("arena", sys); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()

	cli, err := client.Dial(ctx, "http://"+ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	target := tafloc.Point{X: 0.4 * dep.Grid.Width, Y: 0.6 * dep.Grid.Height}
	rep, err := cli.NewReporter(ctx, "arena")
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		y := dep.Channel.MeasureLive(target, 0)
		batch := make([]client.Report, len(y))
		for i, v := range y {
			batch[i] = client.Report{Link: i, RSS: v}
		}
		if err := rep.Send(batch...); err != nil {
			log.Fatal(err)
		}
	}
	if err := rep.Close(); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		est, err := cli.Position(ctx, "arena")
		if err == nil && est.Present {
			fmt.Printf("served estimate via client SDK: %v (target %v, err %.2f m)\n",
				est.Point, target, est.Point.Dist(target))
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("no served estimate before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	svc.Wait()
}
