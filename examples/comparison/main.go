// Command comparison runs the Fig 5 head-to-head on one deployment:
// TafLoc, RTI, and RASS with/without the reconstruction scheme, all
// localizing the same targets three months after the initial survey. It
// prints per-system medians and the full error CDFs.
package main

import (
	"fmt"
	"log"

	"tafloc"
)

func main() {
	cfg := tafloc.DefaultExperimentConfig()
	fig, err := tafloc.Fig5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Localization at 3 months, four systems, shared targets")
	fmt.Println()
	for _, note := range fig.Notes {
		fmt.Println("  " + note)
	}
	fmt.Println()
	fmt.Print(fig.Render())

	// Also show the cost asymmetry that makes the comparison meaningful:
	// TafLoc's database freshness costs minutes, not hours.
	dep, err := tafloc.NewDeployment(cfg.Testbed)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tafloc.BuildSystem(dep)
	if err != nil {
		log.Fatal(err)
	}
	_, refCost := dep.SurveyCells(sys.References(), 90)
	fmt.Printf("\nupdate cost: TafLoc %.2f h vs full re-survey %.2f h\n",
		refCost.Hours(), dep.FullSurveyCost().Hours())
}
