// Command quickstart walks the full TafLoc lifecycle on the paper's
// deployment: day-0 survey, three months of environmental drift, a
// low-cost fingerprint update from 10-ish reference locations, and a
// localization before/after comparison.
package main

import (
	"fmt"
	"log"

	"tafloc"
)

func main() {
	// 1. Deploy the paper testbed: 96 cells of 0.6 m, 10 links.
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d links over %d cells (%gm x %gm)\n",
		dep.Channel.M(), dep.Grid.Cells(), dep.Grid.Width, dep.Grid.Height)

	// 2. Day-0 full survey builds the system (the one expensive pass).
	sys, err := tafloc.BuildSystem(dep)
	if err != nil {
		log.Fatal(err)
	}
	full := dep.FullSurveyCost()
	fmt.Printf("day-0 survey: %d cells, %.2f hours\n", full.CellsVisited, full.Hours())
	fmt.Printf("reference locations selected: %v\n", sys.References())

	// 3. Three months later the RSS has drifted. Localizing with the
	// stale database degrades.
	const days = 90
	target := tafloc.Point{X: 4.5, Y: 2.7}
	y := liveWindow(dep, target, days, 10)
	locStale, err := sys.Locate(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d days, stale-database estimate: %v (error %.2f m)\n",
		days, locStale.Point, locStale.Point.Dist(target))

	// 4. TafLoc update: survey only the reference cells plus one vacant
	// capture, then reconstruct the whole database with LoLi-IR.
	refCols, cost := dep.SurveyCells(sys.References(), days)
	rec, err := sys.Update(refCols, dep.VacantCapture(days, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTafLoc update: %d cells surveyed, %.2f hours (%.0fx cheaper)\n",
		cost.CellsVisited, cost.Hours(), full.Hours()/cost.Hours())
	fmt.Printf("LoLi-IR: rank %d, %d iterations, converged=%v\n",
		rec.Rank, rec.Iterations, rec.Converged)

	// 5. Localize again with the refreshed database.
	locFresh, err := sys.Locate(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdated-database estimate: %v (error %.2f m)\n",
		locFresh.Point, locFresh.Point.Dist(target))
}

// liveWindow averages win noisy live samples, as a tracker would.
func liveWindow(dep *tafloc.Deployment, p tafloc.Point, days float64, win int) []float64 {
	y := make([]float64, dep.Channel.M())
	for s := 0; s < win; s++ {
		one := dep.Channel.MeasureLive(p, days)
		for i := range y {
			y[i] += one[i] / float64(win)
		}
	}
	return y
}
