// Command quickstart walks the full TafLoc lifecycle on the paper's
// deployment with the v2 API: day-0 survey via tafloc.OpenDeployment
// with functional options, three months of environmental drift, a
// cancellable low-cost fingerprint update, a localization before/after
// comparison — and finally serves the refreshed system over HTTP and
// streams live position estimates back through the typed client SDK.
//
// Run with -short for a reduced deployment (used by CI to catch API
// drift in the examples).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"tafloc"
	"tafloc/client"
)

func main() {
	short := flag.Bool("short", false, "reduced deployment and sample counts")
	flag.Parse()

	// 1. Deploy the paper testbed: 96 cells of 0.6 m, 10 links.
	cfg := tafloc.PaperConfig()
	win := 10
	if *short {
		cfg.RoomW, cfg.RoomH = 3.6, 2.4
		cfg.Links = 6
		cfg.SamplesPerCell = 5
		win = 4
	}
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d links over %d cells (%gm x %gm)\n",
		dep.Channel.M(), dep.Grid.Cells(), dep.Grid.Width, dep.Grid.Height)

	// 2. Day-0 full survey builds the system (the one expensive pass).
	// Functional options select the strategies; "wknn" is the mask-aware
	// default matcher.
	sys, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("wknn"))
	if err != nil {
		log.Fatal(err)
	}
	full := dep.FullSurveyCost()
	fmt.Printf("day-0 survey: %d cells, %.2f hours\n", full.CellsVisited, full.Hours())
	fmt.Printf("reference locations selected: %v\n", sys.References())

	// 3. Three months later the RSS has drifted. Localizing with the
	// stale database degrades.
	const days = 90
	target := tafloc.Point{X: 0.45 * dep.Grid.Width, Y: 0.55 * dep.Grid.Height}
	y := liveWindow(dep, target, days, win)
	locStale, err := sys.Locate(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d days, stale-database estimate: %v (error %.2f m)\n",
		days, locStale.Point, locStale.Point.Dist(target))

	// 4. TafLoc update: survey only the reference cells plus one vacant
	// capture, then reconstruct the whole database with LoLi-IR. The
	// context makes long reconstructions cancellable.
	ctx := context.Background()
	refCols, cost := dep.SurveyCells(sys.References(), days)
	rec, err := sys.UpdateContext(ctx, refCols, dep.VacantCapture(days, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTafLoc update: %d cells surveyed, %.2f hours (%.0fx cheaper)\n",
		cost.CellsVisited, cost.Hours(), full.Hours()/cost.Hours())
	fmt.Printf("LoLi-IR: rank %d, %d iterations, converged=%v\n",
		rec.Rank, rec.Iterations, rec.Converged)

	// 5. Localize again with the refreshed database.
	locFresh, err := sys.Locate(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdated-database estimate: %v (error %.2f m)\n",
		locFresh.Point, locFresh.Point.Dist(target))

	// 6. Serve the refreshed system as a zone and consume it the way any
	// remote client would: reports in over HTTP, estimates streamed back
	// over the SSE watch.
	svc, err := tafloc.NewService(
		tafloc.WithWindow(win),
		tafloc.WithDetectThreshold(0.25),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.AddZone("room", sys); err != nil {
		log.Fatal(err)
	}
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()
	if err := svc.Start(srvCtx); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()

	cli, err := client.Dial(ctx, "http://"+ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	ch, err := cli.Watch(watchCtx, "room")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		// The auto-batching reporter streams the samples over one
		// persistent NDJSON connection instead of 24 HTTP round trips.
		rep, err := cli.NewReporter(watchCtx, "room")
		if err != nil {
			return
		}
		defer rep.Close()
		for i := 0; i < 24; i++ {
			batch := make([]client.Report, len(y))
			live := dep.Channel.MeasureLive(target, days)
			for j, v := range live {
				batch[j] = client.Report{Link: j, RSS: v}
			}
			if err := rep.Send(batch...); err != nil {
				return
			}
		}
	}()

	fmt.Printf("\nserving zone \"room\" on %s; streaming estimates over /v2 watch:\n", ln.Addr())
	seen := 0
	for est := range ch {
		fmt.Printf("  estimate seq=%d present=%v point=%v (error %.2f m)\n",
			est.Seq, est.Present, est.Point, est.Point.Dist(target))
		if seen++; seen == 3 {
			stopWatch() // cancelling the context ends the stream
		}
	}
	fmt.Println("watch stream closed; done")
	svc.Stop()
	svc.Wait()
}

// liveWindow averages win noisy live samples, as a tracker would.
func liveWindow(dep *tafloc.Deployment, p tafloc.Point, days float64, win int) []float64 {
	y := make([]float64, dep.Channel.M())
	for s := 0; s < win; s++ {
		one := dep.Channel.MeasureLive(p, days)
		for i := range y {
			y[i] += one[i] / float64(win)
		}
	}
	return y
}
