package track

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tafloc/internal/geom"
)

func TestOptionsValidation(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.ProcessStd = 0 },
		func(o *Options) { o.MeasurementStd = -1 },
		func(o *Options) { o.GateSigma = -1 },
		func(o *Options) { o.MaxCoast = -1 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
		if _, err := NewFilter(o); err == nil {
			t.Fatalf("case %d: NewFilter accepted invalid options", i)
		}
	}
}

func TestObserveRequiresPositiveDt(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	if _, _, err := f.Observe(geom.Point{}, 0); err == nil {
		t.Fatal("dt=0 accepted")
	}
}

func TestFirstObservationInitializes(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	if f.Initialized() {
		t.Fatal("fresh filter should be uninitialized")
	}
	st, accepted, err := f.Observe(geom.Point{X: 2, Y: 3}, 1)
	if err != nil || !accepted {
		t.Fatalf("first observe: %v accepted=%v", err, accepted)
	}
	if st.Position != (geom.Point{X: 2, Y: 3}) {
		t.Fatalf("initial state %v", st.Position)
	}
	if !f.Initialized() {
		t.Fatal("filter should be initialized")
	}
}

func TestTracksConstantVelocityTarget(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	rng := rand.New(rand.NewSource(1))
	vx, vy := 0.7, -0.3
	var tailErr, tailRaw float64
	var tailN int
	for k := 0; k < 200; k++ {
		truth := geom.Point{X: 1 + vx*float64(k), Y: 80 + vy*float64(k)}
		fix := geom.Point{
			X: truth.X + 0.8*rng.NormFloat64(),
			Y: truth.Y + 0.8*rng.NormFloat64(),
		}
		st, _, err := f.Observe(fix, 1)
		if err != nil {
			t.Fatal(err)
		}
		if k >= 50 {
			tailErr += st.Position.Dist(truth)
			tailRaw += fix.Dist(truth)
			tailN++
		}
	}
	meanFilt := tailErr / float64(tailN)
	meanRaw := tailRaw / float64(tailN)
	if meanFilt >= meanRaw*0.85 {
		t.Fatalf("tracking does not beat raw fixes: filtered %.2f m vs raw %.2f m", meanFilt, meanRaw)
	}
	// Velocity estimate converged to the true motion.
	st, _, _ := f.Observe(geom.Point{X: 1 + vx*200, Y: 80 + vy*200}, 1)
	if math.Abs(st.Velocity.X-vx) > 0.3 || math.Abs(st.Velocity.Y-vy) > 0.3 {
		t.Fatalf("velocity estimate %v, want ~(%.1f, %.1f)", st.Velocity, vx, vy)
	}
}

func TestFilterSmoothsNoise(t *testing.T) {
	// Against a stationary target, a filter tuned for slow dynamics must
	// cut the error well below the raw fix error. (The default walker
	// tuning is deliberately agile and smooths less.)
	opts := DefaultOptions()
	opts.ProcessStd = 0.15
	f, _ := NewFilter(opts)
	rng := rand.New(rand.NewSource(2))
	truth := geom.Point{X: 5, Y: 5}
	var rawSum, filtSum float64
	n := 100
	for k := 0; k < n; k++ {
		fix := geom.Point{
			X: truth.X + rng.NormFloat64(),
			Y: truth.Y + rng.NormFloat64(),
		}
		st, _, err := f.Observe(fix, 1)
		if err != nil {
			t.Fatal(err)
		}
		if k >= 20 { // after burn-in
			rawSum += fix.Dist(truth)
			filtSum += st.Position.Dist(truth)
		}
	}
	if filtSum >= rawSum*0.6 {
		t.Fatalf("filter does not smooth: filtered %.2f vs raw %.2f", filtSum, rawSum)
	}
}

func TestGateRejectsOutliers(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	for k := 0; k < 10; k++ {
		if _, _, err := f.Observe(geom.Point{X: 1, Y: 1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A wild fix far from the track must be gated.
	st, accepted, err := f.Observe(geom.Point{X: 40, Y: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Fatal("outlier fix accepted")
	}
	if st.Position.Dist(geom.Point{X: 1, Y: 1}) > 1 {
		t.Fatalf("coasted state jumped to %v", st.Position)
	}
}

func TestTrackResetsAfterMaxCoast(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxCoast = 2
	f, _ := NewFilter(opts)
	for k := 0; k < 5; k++ {
		f.Observe(geom.Point{X: 1, Y: 1}, 1)
	}
	// Persistent fixes at a new location: after MaxCoast rejections the
	// track re-initializes there (target genuinely moved, e.g. after an
	// occlusion).
	far := geom.Point{X: 30, Y: 30}
	var accepted bool
	for k := 0; k < opts.MaxCoast+1; k++ {
		_, accepted, _ = f.Observe(far, 1)
	}
	if !accepted {
		t.Fatal("track did not re-initialize after MaxCoast rejections")
	}
	st, _, _ := f.Observe(far, 1)
	if st.Position.Dist(far) > 1 {
		t.Fatalf("re-initialized track at %v, want near %v", st.Position, far)
	}
}

func TestPredictCoasts(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	if _, err := f.Predict(1); err == nil {
		t.Fatal("Predict on uninitialized filter accepted")
	}
	// Constant-velocity burn-in, then predict forward.
	for k := 0; k < 30; k++ {
		f.Observe(geom.Point{X: float64(k), Y: 0}, 1)
	}
	st, err := f.Predict(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Position.X-31) > 1.5 {
		t.Fatalf("2-second prediction %v, want x~31", st.Position)
	}
	if _, err := f.Predict(0); err == nil {
		t.Fatal("Predict dt=0 accepted")
	}
}

func TestUncertaintyGrowsWhileCoasting(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	for k := 0; k < 20; k++ {
		f.Observe(geom.Point{X: 1, Y: 1}, 1)
	}
	st0, _ := f.Predict(1)
	st1, _ := f.Predict(1)
	st2, _ := f.Predict(1)
	if !(st2.PosStd > st1.PosStd && st1.PosStd > st0.PosStd) {
		t.Fatalf("uncertainty not growing: %.3f %.3f %.3f", st0.PosStd, st1.PosStd, st2.PosStd)
	}
}

func TestReset(t *testing.T) {
	f, _ := NewFilter(DefaultOptions())
	f.Observe(geom.Point{X: 1, Y: 1}, 1)
	f.Reset()
	if f.Initialized() {
		t.Fatal("Reset did not clear the track")
	}
	st, accepted, err := f.Observe(geom.Point{X: 9, Y: 9}, 1)
	if err != nil || !accepted || st.Position != (geom.Point{X: 9, Y: 9}) {
		t.Fatalf("re-initialization after Reset failed: %v %v %v", st, accepted, err)
	}
}

// TestExportRestoreRoundTrip: a restored filter continues exactly
// where the original would — same state, same outputs for the same
// subsequent fixes.
func TestExportRestoreRoundTrip(t *testing.T) {
	f, err := NewFilter(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fixes := []geom.Point{{X: 1, Y: 1}, {X: 1.4, Y: 1.2}, {X: 1.8, Y: 1.4}}
	for _, p := range fixes {
		if _, _, err := f.Observe(p, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Export()
	g, err := NewFilterFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	next := geom.Point{X: 2.2, Y: 1.6}
	sf, af, err1 := f.Observe(next, 0.5)
	sg, ag, err2 := g.Observe(next, 0.5)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if sf != sg || af != ag {
		t.Errorf("restored filter diverges: %+v vs %+v", sg, sf)
	}

	// Invalid exported state fails restoration closed.
	bad := st
	bad.Opts.ProcessStd = 0
	if _, err := NewFilterFromState(bad); err == nil {
		t.Error("invalid options restored successfully")
	}
	bad = st
	bad.Coasts = -1
	if _, err := NewFilterFromState(bad); err == nil {
		t.Error("negative coast count restored successfully")
	}
}

// TestTrackerDtRule pins the wall-clock dt contract: the first fix
// initializes regardless of time, later fixes use at - last, and
// non-advancing timestamps are floored at MinDT instead of erroring.
func TestTrackerDtRule(t *testing.T) {
	tr, err := NewTracker(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(100, 0)
	st, acc := tr.Observe(geom.Point{X: 1, Y: 1}, t0)
	if !acc || st.Position != (geom.Point{X: 1, Y: 1}) {
		t.Fatalf("initializing fix: %+v acc=%v", st, acc)
	}
	// Same timestamp again: must not panic or error — dt is floored.
	tr.Observe(geom.Point{X: 1.01, Y: 1}, t0)
	// The tracker mirrors a hand-driven filter fed the same dt sequence.
	mirror, err := NewFilter(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mirror.Observe(geom.Point{X: 1, Y: 1}, 1)
	mirror.Observe(geom.Point{X: 1.01, Y: 1}, MinDT)
	t1 := time.Unix(101, 500_000_000)
	stT, _ := tr.Observe(geom.Point{X: 1.5, Y: 1.3}, t1)
	stM, _, err := mirror.Observe(geom.Point{X: 1.5, Y: 1.3}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if stT != stM {
		t.Errorf("tracker %+v diverges from hand-driven filter %+v", stT, stM)
	}

	// Tracker state survives export/restore, including the last-fix time.
	ts := tr.Export()
	tr2, err := NewTrackerFromState(ts)
	if err != nil {
		t.Fatal(err)
	}
	t2 := time.Unix(102, 0)
	a, accA := tr.Observe(geom.Point{X: 2, Y: 1.6}, t2)
	b, accB := tr2.Observe(geom.Point{X: 2, Y: 1.6}, t2)
	if a != b || accA != accB {
		t.Errorf("restored tracker diverges: %+v vs %+v", b, a)
	}
}
