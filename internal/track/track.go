// Package track turns per-measurement location estimates into smooth
// trajectories: a constant-velocity Kalman filter over the 2-D position
// stream produced by a localization matcher, with innovation gating to
// reject the occasional gross mismatch.
//
// The paper's motivating applications (elderly care, intruder tracking)
// consume trajectories, not isolated fixes; this package is the layer
// between System.Locate and those applications.
package track

import (
	"fmt"
	"math"
	"time"

	"tafloc/internal/geom"
)

// Options configures the filter.
type Options struct {
	// ProcessStd is the acceleration-noise standard deviation in m/s²
	// (how agile the target is; walking humans ~0.5-1).
	ProcessStd float64
	// MeasurementStd is the localization error standard deviation in
	// metres (use the matcher's typical error, ~1 m after an update).
	MeasurementStd float64
	// GateSigma rejects fixes whose innovation exceeds this many standard
	// deviations (0 disables gating).
	GateSigma float64
	// MaxCoast is the number of consecutive gated/missing fixes the
	// filter will coast through before declaring the track lost.
	MaxCoast int
}

// DefaultOptions returns a configuration suited to walking targets
// localized about once per second.
func DefaultOptions() Options {
	return Options{
		ProcessStd:     0.4,
		MeasurementStd: 1.0,
		GateSigma:      3.5,
		MaxCoast:       5,
	}
}

// Validate reports the first invalid option, or nil.
func (o Options) Validate() error {
	switch {
	case o.ProcessStd <= 0:
		return fmt.Errorf("track: ProcessStd must be positive, got %g", o.ProcessStd)
	case o.MeasurementStd <= 0:
		return fmt.Errorf("track: MeasurementStd must be positive, got %g", o.MeasurementStd)
	case o.GateSigma < 0:
		return fmt.Errorf("track: GateSigma must be non-negative, got %g", o.GateSigma)
	case o.MaxCoast < 0:
		return fmt.Errorf("track: MaxCoast must be non-negative, got %d", o.MaxCoast)
	}
	return nil
}

// State is the filter's kinematic estimate.
type State struct {
	Position geom.Point
	Velocity geom.Point // metres per second
	// PosStd is the 1-sigma position uncertainty (metres, isotropic
	// approximation).
	PosStd float64
}

// Filter is a constant-velocity Kalman filter over 2-D position fixes.
// The x and y axes are filtered independently (the CV model decouples),
// each with state [position, velocity].
//
// A Filter is not safe for concurrent use.
type Filter struct {
	opts Options

	initialized bool
	coasts      int

	// Per-axis state and covariance [p, v], [[Ppp, Ppv], [Pvp, Pvv]].
	x, y   [2]float64
	px, py [2][2]float64
}

// NewFilter builds a filter.
func NewFilter(opts Options) (*Filter, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Filter{opts: opts}, nil
}

// Reset clears the track; the next Observe initializes it.
func (f *Filter) Reset() {
	f.initialized = false
	f.coasts = 0
}

// Initialized reports whether the filter holds a live track.
func (f *Filter) Initialized() bool { return f.initialized }

// Observe feeds one position fix taken dt seconds after the previous one
// and returns the filtered state. accepted=false means the fix failed the
// innovation gate and the filter coasted on its motion model instead.
// After MaxCoast consecutive rejections the track resets and the next fix
// re-initializes it.
func (f *Filter) Observe(fix geom.Point, dt float64) (st State, accepted bool, err error) {
	if dt <= 0 {
		return State{}, false, fmt.Errorf("track: dt must be positive, got %g", dt)
	}
	if !f.initialized {
		f.initialize(fix)
		return f.state(), true, nil
	}
	f.predict(dt)

	// Innovation gate on the predicted position.
	r := f.opts.MeasurementStd * f.opts.MeasurementStd
	sx := f.px[0][0] + r
	sy := f.py[0][0] + r
	innX := fix.X - f.x[0]
	innY := fix.Y - f.y[0]
	if g := f.opts.GateSigma; g > 0 {
		d2 := innX*innX/sx + innY*innY/sy
		if d2 > g*g {
			f.coasts++
			if f.coasts > f.opts.MaxCoast {
				f.initialize(fix)
				return f.state(), true, nil
			}
			return f.state(), false, nil
		}
	}
	f.coasts = 0
	updateAxis(&f.x, &f.px, fix.X, r)
	updateAxis(&f.y, &f.py, fix.Y, r)
	return f.state(), true, nil
}

// Predict advances the motion model dt seconds without a measurement and
// returns the predicted state (e.g. between fixes, or during occlusion).
func (f *Filter) Predict(dt float64) (State, error) {
	if dt <= 0 {
		return State{}, fmt.Errorf("track: dt must be positive, got %g", dt)
	}
	if !f.initialized {
		return State{}, fmt.Errorf("track: filter not initialized")
	}
	f.predict(dt)
	return f.state(), nil
}

func (f *Filter) initialize(fix geom.Point) {
	f.initialized = true
	f.coasts = 0
	f.x = [2]float64{fix.X, 0}
	f.y = [2]float64{fix.Y, 0}
	r := f.opts.MeasurementStd * f.opts.MeasurementStd
	init := [2][2]float64{{r, 0}, {0, 4}} // generous velocity prior
	f.px = init
	f.py = init
}

func (f *Filter) predict(dt float64) {
	predictAxis(&f.x, &f.px, dt, f.opts.ProcessStd)
	predictAxis(&f.y, &f.py, dt, f.opts.ProcessStd)
}

// predictAxis applies x' = F x, P' = F P Fᵀ + Q with F = [[1, dt], [0, 1]]
// and white-acceleration process noise Q.
func predictAxis(x *[2]float64, p *[2][2]float64, dt, q float64) {
	x[0] += dt * x[1]
	p00 := p[0][0] + dt*(p[1][0]+p[0][1]) + dt*dt*p[1][1]
	p01 := p[0][1] + dt*p[1][1]
	p10 := p[1][0] + dt*p[1][1]
	p11 := p[1][1]
	// Discretized white-acceleration noise.
	q2 := q * q
	p00 += q2 * dt * dt * dt * dt / 4
	p01 += q2 * dt * dt * dt / 2
	p10 += q2 * dt * dt * dt / 2
	p11 += q2 * dt * dt
	p[0][0], p[0][1], p[1][0], p[1][1] = p00, p01, p10, p11
}

// updateAxis applies the scalar-measurement Kalman update with H = [1 0].
func updateAxis(x *[2]float64, p *[2][2]float64, z, r float64) {
	s := p[0][0] + r
	k0 := p[0][0] / s
	k1 := p[1][0] / s
	inn := z - x[0]
	x[0] += k0 * inn
	x[1] += k1 * inn
	p00 := (1 - k0) * p[0][0]
	p01 := (1 - k0) * p[0][1]
	p10 := p[1][0] - k1*p[0][0]
	p11 := p[1][1] - k1*p[0][1]
	p[0][0], p[0][1], p[1][0], p[1][1] = p00, p01, p10, p11
}

func (f *Filter) state() State {
	return State{
		Position: geom.Point{X: f.x[0], Y: f.y[0]},
		Velocity: geom.Point{X: f.x[1], Y: f.y[1]},
		PosStd:   math.Sqrt(math.Max(0, (f.px[0][0]+f.py[0][0])/2)),
	}
}

// FilterState is the complete serializable state of a Filter, as
// exported by Filter.Export and consumed by NewFilterFromState — the
// unit the persistence layer embeds in zone snapshots so a warm-started
// zone resumes its track instead of re-initializing it.
type FilterState struct {
	Opts        Options
	Initialized bool
	Coasts      int
	X, Y        [2]float64
	PX, PY      [2][2]float64
}

// Export deep-copies the filter's state.
func (f *Filter) Export() FilterState {
	return FilterState{
		Opts:        f.opts,
		Initialized: f.initialized,
		Coasts:      f.coasts,
		X:           f.x,
		Y:           f.y,
		PX:          f.px,
		PY:          f.py,
	}
}

// NewFilterFromState rebuilds a filter from an exported state. The
// options are re-validated, so a state decoded from a damaged snapshot
// fails here instead of producing a filter that divides by zero.
func NewFilterFromState(st FilterState) (*Filter, error) {
	if err := st.Opts.Validate(); err != nil {
		return nil, err
	}
	if st.Coasts < 0 {
		return nil, fmt.Errorf("track: negative coast count %d", st.Coasts)
	}
	return &Filter{
		opts:        st.Opts,
		initialized: st.Initialized,
		coasts:      st.Coasts,
		x:           st.X,
		y:           st.Y,
		px:          st.PX,
		py:          st.PY,
	}, nil
}

// MinDT is the floor applied to the inter-fix interval when a Tracker
// folds timestamped fixes: two estimates published in the same
// nanosecond advance the motion model by this much instead of failing
// the filter's dt > 0 precondition. The value is part of the trajectory
// contract — replaying the same (fix, time) sequence through a fresh
// Filter with this rule reproduces the served track bit for bit.
const MinDT = 1e-9

// Tracker folds a stream of timestamped position fixes into a smoothed
// trajectory: it owns a Filter plus the previous fix time, deriving
// each observation's dt from wall-clock timestamps. The first fix
// initializes the track (the filter ignores dt there); subsequent fixes
// use dt = at - last, floored at MinDT.
//
// A Tracker is not safe for concurrent use.
type Tracker struct {
	f       *Filter
	hasFix  bool
	lastFix time.Time
}

// NewTracker builds a tracker over a fresh filter.
func NewTracker(opts Options) (*Tracker, error) {
	f, err := NewFilter(opts)
	if err != nil {
		return nil, err
	}
	return &Tracker{f: f}, nil
}

// Observe feeds one fix taken at the given wall-clock time and returns
// the filtered state; accepted is false when the fix failed the
// innovation gate and the filter coasted instead.
func (t *Tracker) Observe(fix geom.Point, at time.Time) (State, bool) {
	if !t.hasFix {
		t.hasFix = true
		t.lastFix = at
		// dt is irrelevant on the initializing fix; 1 satisfies the
		// filter's precondition.
		st, acc, _ := t.f.Observe(fix, 1)
		return st, acc
	}
	dt := at.Sub(t.lastFix).Seconds()
	if dt < MinDT {
		dt = MinDT
	}
	t.lastFix = at
	st, acc, _ := t.f.Observe(fix, dt)
	return st, acc
}

// TrackerState is the serializable state of a Tracker.
type TrackerState struct {
	Filter  FilterState
	HasFix  bool
	LastFix time.Time
}

// Export deep-copies the tracker's state.
func (t *Tracker) Export() TrackerState {
	return TrackerState{Filter: t.f.Export(), HasFix: t.hasFix, LastFix: t.lastFix}
}

// NewTrackerFromState rebuilds a tracker from an exported state.
func NewTrackerFromState(st TrackerState) (*Tracker, error) {
	f, err := NewFilterFromState(st.Filter)
	if err != nil {
		return nil, err
	}
	return &Tracker{f: f, hasFix: st.HasFix, lastFix: st.LastFix}, nil
}
