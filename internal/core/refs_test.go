package core

import (
	"math/rand"
	"sort"
	"testing"

	"tafloc/internal/mat"
)

func lowRankMatrix(rng *rand.Rand, m, n, r int, noise float64) *mat.Matrix {
	l := mat.New(m, r)
	rr := mat.New(n, r)
	l.Apply(func(i, j int, v float64) float64 { return rng.NormFloat64() })
	rr.Apply(func(i, j int, v float64) float64 { return rng.NormFloat64() })
	x := mat.MulT(l, rr)
	if noise > 0 {
		x.Apply(func(i, j int, v float64) float64 { return v + noise*rng.NormFloat64() })
	}
	return x
}

func TestSelectReferencesForcedCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankMatrix(rng, 10, 50, 4, 0)
	refs, err := SelectReferences(x, ReferenceOptions{Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 7 {
		t.Fatalf("got %d refs, want 7", len(refs))
	}
	if !sort.IntsAreSorted(refs) {
		t.Fatalf("refs not sorted: %v", refs)
	}
	seen := map[int]bool{}
	for _, r := range refs {
		if r < 0 || r >= 50 || seen[r] {
			t.Fatalf("invalid ref set %v", refs)
		}
		seen[r] = true
	}
}

func TestSelectReferencesSpansColumnSpace(t *testing.T) {
	// For an exactly rank-4 matrix, any 4 leading pivot columns must span
	// the column space: projecting every column onto them leaves ~zero
	// residual.
	rng := rand.New(rand.NewSource(2))
	x := lowRankMatrix(rng, 12, 40, 4, 0)
	refs, err := SelectReferences(x, ReferenceOptions{Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	xr := x.SelectCols(refs)
	z, err := mat.RidgeSolve(xr, x, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	resid := mat.Sub(x, mat.Mul(xr, z))
	if mat.FrobNorm(resid) > 1e-6*mat.FrobNorm(x) {
		t.Fatalf("reference columns do not span: residual %g", mat.FrobNorm(resid))
	}
}

func TestSelectReferencesAutoCountPicksAtLeastRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := lowRankMatrix(rng, 10, 60, 5, 0.01)
	refs, err := SelectReferences(x, ReferenceOptions{EnergyFrac: 0.995, Min: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 5 {
		t.Fatalf("auto count %d below true rank 5", len(refs))
	}
	if len(refs) > 20 {
		t.Fatalf("auto count %d implausibly large", len(refs))
	}
}

func TestSelectReferencesMinClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := lowRankMatrix(rng, 8, 30, 2, 0)
	refs, err := SelectReferences(x, ReferenceOptions{EnergyFrac: 0.99, Min: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Fatalf("min clamp not applied: %d", len(refs))
	}
}

func TestSelectReferencesMaxClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := lowRankMatrix(rng, 10, 30, 8, 0.5)
	refs, err := SelectReferences(x, ReferenceOptions{EnergyFrac: 0.9999, Min: 1, Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5 {
		t.Fatalf("max clamp not applied: %d", len(refs))
	}
}

func TestSelectReferencesCountExceedingColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankMatrix(rng, 5, 6, 2, 0)
	refs, err := SelectReferences(x, ReferenceOptions{Count: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 6 {
		t.Fatalf("count clamp to N failed: %d", len(refs))
	}
}

func TestSelectReferencesEmptyErrors(t *testing.T) {
	if _, err := SelectReferences(nil, DefaultReferenceOptions()); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := SelectReferences(mat.New(0, 0), DefaultReferenceOptions()); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestReferenceCountForLayout(t *testing.T) {
	l := testLayout(t)
	n := ReferenceCountForLayout(l, 10)
	if n < 10 {
		t.Fatalf("below min: %d", n)
	}
	if n > l.N() {
		t.Fatalf("count %d exceeds cells %d", n, l.N())
	}
	// Scales with links: the layout has 10 links so M+1 = 11 >= 10.
	if n != 11 {
		t.Fatalf("count = %d, want 11 for 10 links", n)
	}
}
