package core

import (
	"fmt"
	"math"
)

// DriftMonitor implements the time-adaptive part of TafLoc: instead of
// refreshing the fingerprint database on a fixed calendar, it watches
// cheap signals — periodic vacant captures and occasional spot checks at
// a single reference location — and recommends an update only when the
// observed drift would degrade localization.
//
// The monitor is deliberately conservative about cost: a vacant capture
// needs no surveyor at all, and a single-cell spot check costs 100
// seconds, so both can run daily while the full reference survey
// (~0.3 h) runs only when triggered.
type DriftMonitor struct {
	// TriggerDB is the mean absolute drift (dB) at which an update is
	// recommended. The paper's Fig 3 shows reconstructions stay reliable
	// while drift is within the noise band (1-4 dBm); the default 2.5
	// matches the 5-day drift anchor.
	TriggerDB float64

	baseVacant []float64
	baseSpot   []float64 // fingerprint column at the spot-check cell
	spotCell   int
}

// NewDriftMonitor builds a monitor from the baselines captured at the
// last update: the vacant vector and the fingerprint column at one
// reference cell (pass nil to monitor vacant drift only). triggerDB <= 0
// defaults to 2.5 dB.
func NewDriftMonitor(vacant []float64, spotCol []float64, spotCell int, triggerDB float64) (*DriftMonitor, error) {
	if len(vacant) == 0 {
		return nil, fmt.Errorf("core: empty vacant baseline")
	}
	if spotCol != nil && len(spotCol) != len(vacant) {
		return nil, fmt.Errorf("core: spot column length %d != links %d", len(spotCol), len(vacant))
	}
	if triggerDB <= 0 {
		triggerDB = 2.5
	}
	m := &DriftMonitor{
		TriggerDB:  triggerDB,
		baseVacant: append([]float64(nil), vacant...),
		spotCell:   spotCell,
	}
	if spotCol != nil {
		m.baseSpot = append([]float64(nil), spotCol...)
	}
	return m, nil
}

// SpotCell returns the cell the monitor expects spot checks at.
func (m *DriftMonitor) SpotCell() int { return m.spotCell }

// DriftEstimate is the monitor's assessment of one check.
type DriftEstimate struct {
	// VacantDriftDB is the mean absolute vacant-RSS change since the
	// last update.
	VacantDriftDB float64
	// SpotDriftDB is the mean absolute change of the spot-check column
	// (NaN when no spot measurement was provided).
	SpotDriftDB float64
	// UpdateRecommended is true when either signal crosses the trigger.
	UpdateRecommended bool
}

// Check assesses fresh measurements against the stored baselines.
// vacant is required; spotCol may be nil to skip the spot signal.
func (m *DriftMonitor) Check(vacant, spotCol []float64) (DriftEstimate, error) {
	if len(vacant) != len(m.baseVacant) {
		return DriftEstimate{}, fmt.Errorf("core: vacant length %d != %d", len(vacant), len(m.baseVacant))
	}
	est := DriftEstimate{SpotDriftDB: math.NaN()}
	var sum float64
	for i := range vacant {
		sum += math.Abs(vacant[i] - m.baseVacant[i])
	}
	est.VacantDriftDB = sum / float64(len(vacant))

	if spotCol != nil {
		if m.baseSpot == nil {
			return DriftEstimate{}, fmt.Errorf("core: monitor has no spot baseline")
		}
		if len(spotCol) != len(m.baseSpot) {
			return DriftEstimate{}, fmt.Errorf("core: spot column length %d != %d", len(spotCol), len(m.baseSpot))
		}
		sum = 0
		for i := range spotCol {
			sum += math.Abs(spotCol[i] - m.baseSpot[i])
		}
		est.SpotDriftDB = sum / float64(len(spotCol))
	}

	est.UpdateRecommended = est.VacantDriftDB > m.TriggerDB ||
		(!math.IsNaN(est.SpotDriftDB) && est.SpotDriftDB > m.TriggerDB)
	return est, nil
}

// Rebase replaces the baselines after an update completed.
func (m *DriftMonitor) Rebase(vacant, spotCol []float64) error {
	if len(vacant) != len(m.baseVacant) {
		return fmt.Errorf("core: vacant length %d != %d", len(vacant), len(m.baseVacant))
	}
	copy(m.baseVacant, vacant)
	if spotCol != nil {
		if len(spotCol) != len(m.baseVacant) {
			return fmt.Errorf("core: spot column length %d != %d", len(spotCol), len(m.baseVacant))
		}
		if m.baseSpot == nil {
			m.baseSpot = make([]float64, len(spotCol))
		}
		copy(m.baseSpot, spotCol)
	}
	return nil
}
