package core
