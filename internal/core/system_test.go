package core

import (
	"sync"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rf"
	"tafloc/internal/testbed"
)

// systemFixture wires a full deployment and a day-0 System.
type systemFixture struct {
	dep *testbed.Deployment
	l   *Layout
	sys *System
}

func newSystemFixture(t *testing.T, seed uint64) *systemFixture {
	t.Helper()
	cfg := testbed.PaperConfig()
	cfg.RF.Seed = seed
	dep, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(dep.Channel.Links(), dep.Grid, cfg.RF.MaskExcessM())
	if err != nil {
		t.Fatal(err)
	}
	survey, _ := dep.Survey(0)
	vac := dep.VacantCapture(0, 100)
	sys, err := NewSystem(l, survey, vac, DefaultSystemOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &systemFixture{dep: dep, l: l, sys: sys}
}

func TestNewSystemValidation(t *testing.T) {
	f := newSystemFixture(t, 1)
	survey := f.sys.Fingerprints()
	vac := f.sys.Vacant()
	if _, err := NewSystem(nil, survey, vac, DefaultSystemOptions()); err == nil {
		t.Fatal("nil layout accepted")
	}
	if _, err := NewSystem(f.l, mat.New(2, 2), vac, DefaultSystemOptions()); err == nil {
		t.Fatal("wrong survey shape accepted")
	}
	if _, err := NewSystem(f.l, survey, vac[:1], DefaultSystemOptions()); err == nil {
		t.Fatal("wrong vacant length accepted")
	}
}

func TestSystemReferencesSelected(t *testing.T) {
	f := newSystemFixture(t, 2)
	refs := f.sys.References()
	if len(refs) < 10 {
		t.Fatalf("only %d references", len(refs))
	}
	if len(refs) > f.l.N()/2 {
		t.Fatalf("%d references defeats the low-cost premise", len(refs))
	}
	// Returned slice must be a copy.
	refs[0] = -99
	if f.sys.References()[0] == -99 {
		t.Fatal("References leaked internal state")
	}
}

func TestSystemLocateDay0(t *testing.T) {
	f := newSystemFixture(t, 3)
	// Average several live samples like a real tracker does.
	p := geom.Point{X: 3.3, Y: 2.1}
	y := averagedLive(f.dep.Channel, p, 0, 10)
	loc, err := f.sys.Locate(y)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dist(loc.Point); d > 1.5 {
		t.Fatalf("day-0 localization error %.2f m", d)
	}
}

func TestSystemUpdateRestoresAccuracy(t *testing.T) {
	f := newSystemFixture(t, 4)
	const days = 90
	// After three months without update, localization degrades; after a
	// TafLoc update it must improve on average over a spread of targets.
	var testPoints []geom.Point
	for _, x := range []float64{0.9, 2.1, 3.3, 4.5, 5.7, 6.6} {
		for _, y := range []float64{0.9, 2.4, 3.9} {
			testPoints = append(testPoints, geom.Point{X: x, Y: y})
		}
	}
	evalErr := func() float64 {
		var sum float64
		for _, p := range testPoints {
			y := averagedLive(f.dep.Channel, p, days, 10)
			loc, err := f.sys.Locate(y)
			if err != nil {
				t.Fatal(err)
			}
			sum += p.Dist(loc.Point)
		}
		return sum / float64(len(testPoints))
	}
	staleErr := evalErr()

	refs := f.sys.References()
	refCols, _ := f.dep.SurveyCells(refs, days)
	vac := f.dep.VacantCapture(days, 100)
	rec, err := f.sys.Update(refCols, vac)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Iterations == 0 || !rec.X.IsFinite() {
		t.Fatalf("degenerate reconstruction: %+v", rec)
	}
	freshErr := evalErr()
	if freshErr >= staleErr {
		t.Fatalf("update did not help: stale %.2f m, fresh %.2f m", staleErr, freshErr)
	}
	t.Logf("90-day localization: stale %.2f m -> updated %.2f m", staleErr, freshErr)
}

func TestSystemUpdateInstallsAtomically(t *testing.T) {
	f := newSystemFixture(t, 5)
	refs := f.sys.References()
	refCols, _ := f.dep.SurveyCells(refs, 30)
	vac := f.dep.VacantCapture(30, 100)

	// Concurrent Locate calls while Update runs must never observe a
	// torn database (run with -race).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := geom.Point{X: 2, Y: 2}
		for {
			select {
			case <-stop:
				return
			default:
			}
			y := averagedLive(f.dep.Channel, p, 30, 2)
			if _, err := f.sys.Locate(y); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if _, err := f.sys.Update(refCols, vac); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

func TestSystemUpdateRejectsBadInput(t *testing.T) {
	f := newSystemFixture(t, 6)
	if _, err := f.sys.Update(mat.New(1, 1), f.sys.Vacant()); err == nil {
		t.Fatal("bad refCols accepted")
	}
	refs := f.sys.References()
	refCols, _ := f.dep.SurveyCells(refs, 10)
	if _, err := f.sys.Update(refCols, nil); err == nil {
		t.Fatal("nil vacant accepted")
	}
}

func TestSystemReselect(t *testing.T) {
	f := newSystemFixture(t, 7)
	refs, err := f.sys.Reselect()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("empty reselection")
	}
	got := f.sys.References()
	if len(got) != len(refs) {
		t.Fatal("Reselect did not install the new set")
	}
}

func TestSystemDetect(t *testing.T) {
	f := newSystemFixture(t, 8)
	vacRead := averagedVacant(f.dep.Channel, 0, 10)
	if present, dev := f.sys.Detect(vacRead, 1.2); present {
		t.Fatalf("vacant room flagged (dev %.2f)", dev)
	}
	// The sensitive band is displaced per link, so probe each link's
	// midpoint and require detection at the strongest response.
	var best float64
	var bestP = f.l.Links[0].Midpoint()
	for i := range f.l.Links {
		p := f.l.Links[i].Midpoint()
		y := averagedLive(f.dep.Channel, p, 0, 10)
		if _, dev := f.sys.Detect(y, 0); dev > best {
			best, bestP = dev, p
		}
	}
	y := averagedLive(f.dep.Channel, bestP, 0, 10)
	if present, dev := f.sys.Detect(y, 0); !present {
		t.Fatalf("target missed at strongest point (dev %.2f)", dev)
	}
}

func TestSystemFingerprintsCopy(t *testing.T) {
	f := newSystemFixture(t, 9)
	x := f.sys.Fingerprints()
	x.Set(0, 0, 12345)
	if f.sys.Fingerprints().At(0, 0) == 12345 {
		t.Fatal("Fingerprints leaked internal state")
	}
	v := f.sys.Vacant()
	v[0] = 12345
	if f.sys.Vacant()[0] == 12345 {
		t.Fatal("Vacant leaked internal state")
	}
}

// averagedLive averages k noisy live measurement vectors.
func averagedLive(ch *rf.Channel, p geom.Point, days float64, k int) []float64 {
	out := make([]float64, ch.M())
	for s := 0; s < k; s++ {
		y := ch.MeasureLive(p, days)
		for i := range out {
			out[i] += y[i]
		}
	}
	for i := range out {
		out[i] /= float64(k)
	}
	return out
}

func averagedVacant(ch *rf.Channel, days float64, k int) []float64 {
	return ch.MeasureVacant(days, k)
}
