package core

import (
	"math"
	"math/rand"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// matchFixture builds a layout, synthetic truth, and a helper producing
// live measurement vectors for arbitrary points.
type matchFixture struct {
	l     *Layout
	truth *mat.Matrix
	vac   []float64
	m     *Model
}

// mustModel wraps a bare database and layout as an immutable Model, the
// unit every matcher now operates on.
func mustModel(t testing.TB, l *Layout, x *mat.Matrix) *Model {
	t.Helper()
	m, err := NewModel(l, x, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newMatchFixture(t *testing.T, seed int64) *matchFixture {
	t.Helper()
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(seed)))
	return &matchFixture{l: l, truth: truth, vac: vac, m: mustModel(t, l, truth)}
}

// liveAt synthesizes the noise-free measurement vector for a target at p
// using the same forward model as syntheticTruth.
func (f *matchFixture) liveAt(p geom.Point) []float64 {
	y := make([]float64, f.l.M())
	for i := range y {
		seg := f.l.Links[i]
		excess := seg.ExcessPathLength(p)
		atten := 0.0
		if excess <= f.l.EllipseExcess {
			atten = 8 * math.Exp(-excess/0.25)
		}
		y[i] = f.vac[i] - atten
	}
	return y
}

func TestNNMatcherExactColumns(t *testing.T) {
	f := newMatchFixture(t, 1)
	// A measurement equal to a fingerprint column must match that cell.
	for _, j := range []int{0, 17, f.l.N() / 2, f.l.N() - 1} {
		loc, err := NNMatcher{}.Match(f.m, f.truth.Col(j), nil)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Distance > 1e-9 {
			t.Fatalf("distance %g for exact column", loc.Distance)
		}
		// Ambiguity caveat: cells with identical fingerprints (no link
		// coverage) can alias; accept any zero-distance match.
		got := f.truth.Col(loc.Cell)
		want := f.truth.Col(j)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cell %d matched column differs from cell %d", loc.Cell, j)
			}
		}
	}
}

func TestNNMatcherNoisyMeasurement(t *testing.T) {
	f := newMatchFixture(t, 2)
	rng := rand.New(rand.NewSource(3))
	var totalErr float64
	trials := 40
	for k := 0; k < trials; k++ {
		j := rng.Intn(f.l.N())
		y := f.truth.Col(j)
		for i := range y {
			y[i] += 0.4 * rng.NormFloat64()
		}
		loc, err := NNMatcher{}.Match(f.m, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalErr += f.l.Grid.Center(j).Dist(loc.Point)
	}
	if mean := totalErr / float64(trials); mean > 1.5 {
		t.Fatalf("mean NN localization error %.2f m too large", mean)
	}
}

func TestKNNMatcherSubCellRefinement(t *testing.T) {
	f := newMatchFixture(t, 4)
	// Target off cell centres: KNN should produce a point estimate whose
	// error is no worse than a cell diagonal.
	p := geom.Point{X: 2.05, Y: 2.35}
	loc, err := KNNMatcher{K: 3}.Match(f.m, f.liveAt(p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dist(loc.Point); d > 0.85 {
		t.Fatalf("KNN error %.2f m exceeds cell diagonal", d)
	}
}

func TestKNNMatcherDefaultsAndClamps(t *testing.T) {
	f := newMatchFixture(t, 5)
	y := f.truth.Col(10)
	if _, err := (KNNMatcher{}).Match(f.m, y, nil); err != nil {
		t.Fatalf("zero K: %v", err)
	}
	if _, err := (KNNMatcher{K: 10000}).Match(f.m, y, nil); err != nil {
		t.Fatalf("huge K: %v", err)
	}
}

func TestBayesMatcherConfidence(t *testing.T) {
	f := newMatchFixture(t, 6)
	j := 30
	loc, err := BayesMatcher{SigmaDB: 1}.Match(f.m, f.truth.Col(j), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Confidence <= 0 || loc.Confidence > 1 {
		t.Fatalf("confidence %g out of (0,1]", loc.Confidence)
	}
	// Exact column: the winning cell's fingerprint must equal column j's.
	got := f.truth.Col(loc.Cell)
	want := f.truth.Col(j)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Bayes matched wrong fingerprint")
		}
	}
}

func TestBayesMatcherPosteriorCentroidInsideArea(t *testing.T) {
	f := newMatchFixture(t, 7)
	rng := rand.New(rand.NewSource(8))
	for k := 0; k < 20; k++ {
		y := f.truth.Col(rng.Intn(f.l.N()))
		for i := range y {
			y[i] += rng.NormFloat64()
		}
		loc, err := BayesMatcher{}.Match(f.m, y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if loc.Point.X < 0 || loc.Point.X > f.l.Grid.Width ||
			loc.Point.Y < 0 || loc.Point.Y > f.l.Grid.Height {
			t.Fatalf("posterior centroid %v outside area", loc.Point)
		}
	}
}

func TestMatchersValidateInput(t *testing.T) {
	f := newMatchFixture(t, 9)
	short := make([]float64, 3)
	for _, m := range []Matcher{NNMatcher{}, KNNMatcher{}, BayesMatcher{}, WeightedKNNMatcher{}} {
		if _, err := m.Match(f.m, short, nil); err == nil {
			t.Fatalf("%T accepted short measurement", m)
		}
		if _, err := m.Match(nil, f.vac, nil); err == nil {
			t.Fatalf("%T accepted nil model", m)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	f := newMatchFixture(t, 12)
	if _, err := NewModel(nil, f.truth, nil, nil, nil, nil); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewModel(f.l, mat.New(2, 2), nil, nil, nil, nil); err == nil {
		t.Error("wrong database shape accepted")
	}
	if _, err := NewModel(f.l, f.truth, mat.New(2, 2), nil, nil, nil); err == nil {
		t.Error("wrong observed shape accepted")
	}
	if _, err := NewModel(f.l, f.truth, nil, f.vac[:2], nil, nil); err == nil {
		t.Error("wrong vacant length accepted")
	}
	if _, err := NewModel(f.l, f.truth, nil, nil, []int{-1}, nil); err == nil {
		t.Error("out-of-range reference accepted")
	}
	m, err := NewModel(f.l, f.truth, nil, f.vac, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Matcher().(WeightedKNNMatcher); !ok {
		t.Errorf("nil matcher resolved to %T, want WeightedKNNMatcher", m.Matcher())
	}
	refs := m.References()
	refs[0] = -99
	if m.References()[0] == -99 {
		t.Error("References leaked internal state")
	}
}

func TestDetector(t *testing.T) {
	f := newMatchFixture(t, 10)
	d := Detector{Vacant: f.vac, ThresholdDB: 1}
	// Vacant reading: no target.
	if present, dev := d.Present(f.vac); present || dev != 0 {
		t.Fatalf("vacant flagged present (dev %.2f)", dev)
	}
	// Target on a link midpoint: present.
	p := f.l.Links[0].Midpoint()
	if present, dev := d.Present(f.liveAt(p)); !present {
		t.Fatalf("target not detected (dev %.2f)", dev)
	}
	// Length mismatch: not present, no panic.
	if present, _ := d.Present(f.vac[:2]); present {
		t.Fatal("mismatched length reported present")
	}
}

func TestDetectorDefaultThreshold(t *testing.T) {
	f := newMatchFixture(t, 11)
	d := Detector{Vacant: f.vac}
	p := f.l.Links[2].Midpoint()
	if present, _ := d.Present(f.liveAt(p)); !present {
		t.Fatal("default threshold missed an on-LoS target")
	}
}
