package core

import (
	"fmt"
	"math"
	"slices"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// Location is a localization estimate: the best-matching grid cell plus a
// fine-grained continuous position refined from the k nearest fingerprint
// columns.
type Location struct {
	// Cell is the best-matching grid cell index.
	Cell int
	// Point is the fine-grained position estimate in metres.
	Point geom.Point
	// Distance is the fingerprint-space distance to the winning column.
	Distance float64
	// Confidence is the probabilistic matcher's posterior mass of the
	// winning cell (1 = certain); 0 when the matcher does not compute it.
	Confidence float64
}

// Matcher compares a live measurement vector against a zone's immutable
// Model and produces a location estimate. Implementations must be safe
// for concurrent use after construction: the Model carries every piece
// of shared read state (database, grid, observed mask), and all mutable
// per-call state lives in the Scratch, so the same Matcher value may
// serve any number of goroutines at once.
type Matcher interface {
	// Match locates the measurement vector y (length M) against the
	// model. sc holds the reusable working buffers; implementations must
	// tolerate nil by borrowing from the shared pool.
	Match(m *Model, y []float64, sc *Scratch) (Location, error)
}

// NNMatcher is the plain nearest-neighbour matcher: the estimated
// location is the cell whose fingerprint column is closest to y in
// Euclidean distance.
type NNMatcher struct{}

// Match implements Matcher.
//
//tafloc:noalloc steady-state matching must not allocate (PR 5 pin, AllocsPerRun-tested); growth happens only inside the Scratch.
func (NNMatcher) Match(m *Model, y []float64, sc *Scratch) (Location, error) {
	if err := checkMatch(m, y); err != nil {
		return Location{}, err
	}
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	dists := sc.distances(m.x.Cols())
	columnDistsInto(dists, m.x, y)
	best, bestD := -1, math.Inf(1)
	for j, d := range dists {
		if d < bestD {
			best, bestD = j, d
		}
	}
	return Location{Cell: best, Point: m.layout.Grid.Center(best), Distance: bestD}, nil
}

// KNNMatcher refines the estimate to sub-cell granularity by averaging
// the centres of the K best-matching cells with inverse-distance weights —
// the paper's "fine-grained" output.
type KNNMatcher struct {
	// K is the neighbour count (default 3 when zero).
	K int
}

// Match implements Matcher.
//
//tafloc:noalloc steady-state matching must not allocate; see NNMatcher.Match.
func (km KNNMatcher) Match(m *Model, y []float64, sc *Scratch) (Location, error) {
	if err := checkMatch(m, y); err != nil {
		return Location{}, err
	}
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	k := km.K
	if k <= 0 {
		k = 3
	}
	if k > m.x.Cols() {
		k = m.x.Cols()
	}
	dists := sc.distances(m.x.Cols())
	columnDistsInto(dists, m.x, y)
	cands := sc.candidates(m.x.Cols())
	for j, d := range dists {
		cands[j] = cand{j, d}
	}
	sortCands(cands)
	var wsum float64
	var px, py float64
	const eps = 1e-6
	for _, c := range cands[:k] {
		w := 1 / (c.d + eps)
		p := m.layout.Grid.Center(c.j)
		px += w * p.X
		py += w * p.Y
		wsum += w
	}
	return Location{
		Cell:     cands[0].j,
		Point:    geom.Point{X: px / wsum, Y: py / wsum},
		Distance: cands[0].d,
	}, nil
}

// BayesMatcher assumes i.i.d. Gaussian measurement noise per link and
// returns the maximum-a-posteriori cell together with its posterior mass,
// refining the point estimate with the posterior-weighted centroid over
// the top cells.
type BayesMatcher struct {
	// SigmaDB is the assumed per-link noise standard deviation
	// (default 2 dB when zero).
	SigmaDB float64
}

// Match implements Matcher.
//
//tafloc:noalloc steady-state matching must not allocate; see NNMatcher.Match.
func (bm BayesMatcher) Match(m *Model, y []float64, sc *Scratch) (Location, error) {
	if err := checkMatch(m, y); err != nil {
		return Location{}, err
	}
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	sigma := bm.SigmaDB
	if sigma <= 0 {
		sigma = 2
	}
	n := m.x.Cols()
	dists := sc.distances(n)
	columnDistsInto(dists, m.x, y)
	logp, post := sc.posteriors(n)
	maxLog := math.Inf(-1)
	for j := 0; j < n; j++ {
		d := dists[j]
		logp[j] = -d * d / (2 * sigma * sigma)
		if logp[j] > maxLog {
			maxLog = logp[j]
		}
	}
	var total float64
	for j := range post {
		post[j] = math.Exp(logp[j] - maxLog)
		total += post[j]
	}
	best, bestP := 0, 0.0
	var px, py float64
	for j := range post {
		post[j] /= total
		if post[j] > bestP {
			best, bestP = j, post[j]
		}
		p := m.layout.Grid.Center(j)
		px += post[j] * p.X
		py += post[j] * p.Y
	}
	return Location{
		Cell:       best,
		Point:      geom.Point{X: px, Y: py},
		Distance:   dists[best],
		Confidence: bestP,
	}, nil
}

// WeightedKNNMatcher is the mask-aware matcher the TafLoc System uses
// after a low-cost update: each fingerprint entry is weighted by the
// inverse of its error variance, so measured entries (fresh vacant
// captures and reference columns, ~survey-noise accurate) dominate the
// coarse cell selection while reconstructed entries (LoLi-IR output with
// a few dB of error) refine it with an appropriate discount. The exact
// entries give an implicit triangulation: a candidate cell whose covered
// link set disagrees with the live vector is rejected on near-noiseless
// evidence. The observed-entry mask travels in the Model, so one matcher
// value serves every calibration generation.
type WeightedKNNMatcher struct {
	// ObsSigmaDB is the error std of measured entries (default 0.5).
	ObsSigmaDB float64
	// RecSigmaDB is the error std of reconstructed entries (default 4).
	RecSigmaDB float64
	// LiveSigmaDB is the live-measurement noise std (default 0.7).
	LiveSigmaDB float64
	// K is the neighbour count for the centroid refinement (default 3).
	K int
	// Refine enables the sub-cell refinement stage: a local grid search
	// over bilinearly interpolated fingerprints around the best cell,
	// exploiting the paper's continuity property. It helps on a freshly
	// surveyed database; on a reconstructed database the interpolation
	// can chase reconstruction error, so it is opt-in.
	Refine bool
	// RefineRadiusM and RefineStepM control the refinement search
	// (defaults 0.9 m and 0.1 m).
	RefineRadiusM float64
	RefineStepM   float64
}

// Match implements Matcher.
//
//tafloc:noalloc steady-state matching must not allocate; see NNMatcher.Match.
func (wm WeightedKNNMatcher) Match(m *Model, y []float64, sc *Scratch) (Location, error) {
	if err := checkMatch(m, y); err != nil {
		return Location{}, err
	}
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	obsSigma := wm.ObsSigmaDB
	if obsSigma <= 0 {
		obsSigma = 0.5
	}
	recSigma := wm.RecSigmaDB
	if recSigma <= 0 {
		recSigma = 4
	}
	liveSigma := wm.LiveSigmaDB
	if liveSigma <= 0 {
		liveSigma = 0.7
	}
	wObs := 1 / (obsSigma*obsSigma + liveSigma*liveSigma)
	wRec := 1 / (recSigma*recSigma + liveSigma*liveSigma)
	x, obs, grid := m.x, m.observed, m.layout.Grid
	k := wm.K
	if k <= 0 {
		k = 3
	}
	if k > x.Cols() {
		k = x.Cols()
	}
	dists := sc.distances(x.Cols())
	weightedDistsInto(dists, x, obs, y, wObs, wRec)
	cands := sc.candidates(x.Cols())
	for j, d := range dists {
		cands[j] = cand{j, d}
	}
	sortCands(cands)
	var wsum, px, py float64
	const eps = 1e-6
	for _, c := range cands[:k] {
		w := 1 / (c.d + eps)
		p := grid.Center(c.j)
		px += w * p.X
		py += w * p.Y
		wsum += w
	}
	loc := Location{
		Cell:     cands[0].j,
		Point:    geom.Point{X: px / wsum, Y: py / wsum},
		Distance: cands[0].d,
	}
	if !wm.Refine {
		return loc, nil
	}
	// Sub-cell refinement: the paper's continuity property means the
	// fingerprint varies smoothly between neighbouring cells, so the
	// database supports bilinear interpolation to a virtual fine grid. A
	// local search around the coarse estimate picks the continuous
	// position whose interpolated fingerprint best explains y.
	radius := wm.RefineRadiusM
	if radius <= 0 {
		radius = 0.9
	}
	step := wm.RefineStepM
	if step <= 0 {
		step = 0.1
	}
	center := grid.Center(loc.Cell)
	bestP := loc.Point
	bestD := math.Inf(1)
	f, fObs := sc.interp(x.Rows())
	for dx := -radius; dx <= radius; dx += step {
		for dy := -radius; dy <= radius; dy += step {
			p := geom.Point{X: center.X + dx, Y: center.Y + dy}
			if p.X < 0 || p.X > grid.Width || p.Y < 0 || p.Y > grid.Height {
				continue
			}
			interpFingerprint(x, obs, grid, p, f, fObs)
			var s float64
			for i := range f {
				d := f[i] - y[i]
				w := wObs
				if !fObs[i] {
					w = wRec
				}
				s += w * d * d
			}
			if s < bestD {
				bestD = s
				bestP = p
			}
		}
	}
	if !math.IsInf(bestD, 1) {
		loc.Point = bestP
		loc.Distance = math.Sqrt(bestD)
		if c := grid.CellAt(bestP); c >= 0 {
			loc.Cell = c
		}
	}
	return loc, nil
}

// interpFingerprint fills f with the bilinear interpolation of the
// database columns at point p, and fObs with whether all four
// interpolation corners of that link's entry are observed. Points beyond
// the cell-centre lattice clamp to the border cells.
func interpFingerprint(x, obs *mat.Matrix, grid *geom.Grid, p geom.Point, f []float64, fObs []bool) {
	nx, ny := grid.NX(), grid.NY()
	u := p.X/grid.CellSize - 0.5
	v := p.Y/grid.CellSize - 0.5
	clampF := func(val float64, hi int) (int, int, float64) {
		f0 := math.Floor(val)
		i0 := int(f0)
		i1 := i0 + 1
		if i0 < 0 {
			return 0, 0, 0
		}
		if i1 >= hi {
			return hi - 1, hi - 1, 0
		}
		return i0, i1, val - f0
	}
	ix0, ix1, fx := clampF(u, nx)
	iy0, iy1, fy := clampF(v, ny)
	j00 := iy0*nx + ix0
	j10 := iy0*nx + ix1
	j01 := iy1*nx + ix0
	j11 := iy1*nx + ix1
	for i := 0; i < x.Rows(); i++ {
		g00 := x.At(i, j00)
		g10 := x.At(i, j10)
		g01 := x.At(i, j01)
		g11 := x.At(i, j11)
		f[i] = (1-fy)*((1-fx)*g00+fx*g10) + fy*((1-fx)*g01+fx*g11)
		if obs == nil {
			fObs[i] = true
		} else {
			fObs[i] = obs.At(i, j00) == 1 && obs.At(i, j10) == 1 &&
				obs.At(i, j01) == 1 && obs.At(i, j11) == 1
		}
	}
}

// Detector decides whether a target is present at all by comparing a live
// measurement vector against the vacant baseline — the gate in front of
// localization for intruder-detection workloads.
type Detector struct {
	// Vacant is the empty-room RSS per link.
	Vacant []float64
	// ThresholdDB is the mean absolute deviation (dB across links) above
	// which a target is declared present (default 1 dB when zero).
	ThresholdDB float64
}

// Present reports whether y indicates a target in the area, along with
// the measured mean absolute deviation from the vacant baseline.
func (d Detector) Present(y []float64) (bool, float64) {
	if len(y) != len(d.Vacant) {
		return false, 0
	}
	thr := d.ThresholdDB
	if thr <= 0 {
		thr = 1
	}
	var dev float64
	for i := range y {
		dev += math.Abs(y[i] - d.Vacant[i])
	}
	dev /= float64(len(y))
	return dev > thr, dev
}

// sortCands orders candidates by ascending distance — the same
// comparison the matchers have always used, so sorted output (and thus
// every location estimate) is unchanged by the scratch refactor.
//
//tafloc:noalloc the comparator captures nothing, so the func literal is a static singleton and SortFunc sorts in place.
func sortCands(cands []cand) {
	slices.SortFunc(cands, func(a, b cand) int {
		switch {
		case a.d < b.d:
			return -1
		case b.d < a.d:
			return 1
		default:
			return 0
		}
	})
}

func columnDist(x *mat.Matrix, j int, y []float64) float64 {
	var s float64
	for i := 0; i < x.Rows(); i++ {
		d := x.At(i, j) - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// columnDistsInto fills dst with the Euclidean distance from y to every
// fingerprint column, fanning the per-cell work items out across the mat
// worker pool when the database is large enough to pay for it. The
// single-chunk case runs as a plain loop — no goroutines, no closure —
// so small-database matching allocates nothing; either way every element
// is computed with identical per-element arithmetic, so results are
// bitwise independent of the worker count.
//
//tafloc:noalloc the FanOut gate keeps the common small-database case on the closure-free loop; only the fanned-out path pays the one closure.
func columnDistsInto(dst []float64, x *mat.Matrix, y []float64) {
	n := x.Cols()
	if !mat.FanOut(n, matchChunk(x.Rows())) {
		for j := 0; j < n; j++ {
			dst[j] = columnDist(x, j, y)
		}
		return
	}
	//tafloc:alloc-ok one closure per fanned-out round, amortized over >=1 chunk of per-cell work each worth thousands of flops
	mat.ParallelFor(n, matchChunk(x.Rows()), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = columnDist(x, j, y)
		}
	})
}

// weightedDistsInto is columnDistsInto with per-entry inverse-variance
// weights: wObs for observed (measured) entries, wRec for reconstructed
// ones. A nil observed mask weighs every entry wObs.
//
//tafloc:noalloc same shape as columnDistsInto: closure-free unless the database is large enough to fan out.
func weightedDistsInto(dst []float64, x, obs *mat.Matrix, y []float64, wObs, wRec float64) {
	n := x.Cols()
	if !mat.FanOut(n, matchChunk(x.Rows())) {
		for j := 0; j < n; j++ {
			dst[j] = weightedDist(x, obs, j, y, wObs, wRec)
		}
		return
	}
	//tafloc:alloc-ok one closure per fanned-out round; see columnDistsInto
	mat.ParallelFor(n, matchChunk(x.Rows()), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = weightedDist(x, obs, j, y, wObs, wRec)
		}
	})
}

func weightedDist(x, obs *mat.Matrix, j int, y []float64, wObs, wRec float64) float64 {
	var s float64
	for i := 0; i < x.Rows(); i++ {
		d := x.At(i, j) - y[i]
		w := wObs
		if obs != nil && obs.At(i, j) == 0 {
			w = wRec
		}
		s += w * d * d
	}
	return math.Sqrt(s)
}

// matchChunk sizes per-cell matching chunks: ~4 flops per link entry
// (subtract, square, accumulate, optional weight).
func matchChunk(links int) int {
	if links < 1 {
		links = 1
	}
	return mat.ChunkFor(4 * links)
}

func checkMatch(m *Model, y []float64) error {
	if m == nil || m.x == nil || m.x.Cols() == 0 {
		return fmt.Errorf("core: nil model or empty fingerprint matrix")
	}
	if len(y) != m.x.Rows() {
		return fmt.Errorf("core: measurement length %d != links %d", len(y), m.x.Rows())
	}
	return nil
}
