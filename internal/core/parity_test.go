package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// This file pins the scratch refactor to the pre-refactor matchers: the
// reference implementations below are verbatim copies of the match code
// as it stood before Matcher took a Model and a Scratch (per-call
// allocation, sort.Slice, closure-based weighted distance). Every
// matcher must produce bit-identical Locations — equality is ==, not a
// tolerance.

func refNNMatch(x *mat.Matrix, grid *geom.Grid, y []float64) Location {
	dists := refColumnDists(x, y)
	best, bestD := -1, math.Inf(1)
	for j, d := range dists {
		if d < bestD {
			best, bestD = j, d
		}
	}
	return Location{Cell: best, Point: grid.Center(best), Distance: bestD}
}

func refKNNMatch(k int, x *mat.Matrix, grid *geom.Grid, y []float64) Location {
	if k <= 0 {
		k = 3
	}
	if k > x.Cols() {
		k = x.Cols()
	}
	dists := refColumnDists(x, y)
	type cand struct {
		j int
		d float64
	}
	cands := make([]cand, x.Cols())
	for j, d := range dists {
		cands[j] = cand{j, d}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	var wsum float64
	var px, py float64
	const eps = 1e-6
	for _, c := range cands[:k] {
		w := 1 / (c.d + eps)
		p := grid.Center(c.j)
		px += w * p.X
		py += w * p.Y
		wsum += w
	}
	return Location{
		Cell:     cands[0].j,
		Point:    geom.Point{X: px / wsum, Y: py / wsum},
		Distance: cands[0].d,
	}
}

func refBayesMatch(sigma float64, x *mat.Matrix, grid *geom.Grid, y []float64) Location {
	if sigma <= 0 {
		sigma = 2
	}
	n := x.Cols()
	dists := refColumnDists(x, y)
	logp := make([]float64, n)
	maxLog := math.Inf(-1)
	for j := 0; j < n; j++ {
		d := dists[j]
		logp[j] = -d * d / (2 * sigma * sigma)
		if logp[j] > maxLog {
			maxLog = logp[j]
		}
	}
	var total float64
	post := make([]float64, n)
	for j := range post {
		post[j] = math.Exp(logp[j] - maxLog)
		total += post[j]
	}
	best, bestP := 0, 0.0
	var px, py float64
	for j := range post {
		post[j] /= total
		if post[j] > bestP {
			best, bestP = j, post[j]
		}
		p := grid.Center(j)
		px += post[j] * p.X
		py += post[j] * p.Y
	}
	return Location{
		Cell:       best,
		Point:      geom.Point{X: px, Y: py},
		Distance:   dists[best],
		Confidence: bestP,
	}
}

func refWKNNMatch(m WeightedKNNMatcher, observed *mat.Matrix, x *mat.Matrix, grid *geom.Grid, y []float64) Location {
	obsSigma := m.ObsSigmaDB
	if obsSigma <= 0 {
		obsSigma = 0.5
	}
	recSigma := m.RecSigmaDB
	if recSigma <= 0 {
		recSigma = 4
	}
	liveSigma := m.LiveSigmaDB
	if liveSigma <= 0 {
		liveSigma = 0.7
	}
	wObs := 1 / (obsSigma*obsSigma + liveSigma*liveSigma)
	wRec := 1 / (recSigma*recSigma + liveSigma*liveSigma)
	dist := func(j int) float64 {
		var s float64
		for i := 0; i < x.Rows(); i++ {
			d := x.At(i, j) - y[i]
			w := wObs
			if observed != nil && observed.At(i, j) == 0 {
				w = wRec
			}
			s += w * d * d
		}
		return math.Sqrt(s)
	}
	k := m.K
	if k <= 0 {
		k = 3
	}
	if k > x.Cols() {
		k = x.Cols()
	}
	type cand struct {
		j int
		d float64
	}
	cands := make([]cand, x.Cols())
	for j := range cands {
		cands[j] = cand{j, dist(j)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	var wsum, px, py float64
	const eps = 1e-6
	for _, c := range cands[:k] {
		w := 1 / (c.d + eps)
		p := grid.Center(c.j)
		px += w * p.X
		py += w * p.Y
		wsum += w
	}
	loc := Location{
		Cell:     cands[0].j,
		Point:    geom.Point{X: px / wsum, Y: py / wsum},
		Distance: cands[0].d,
	}
	if !m.Refine {
		return loc
	}
	radius := m.RefineRadiusM
	if radius <= 0 {
		radius = 0.9
	}
	step := m.RefineStepM
	if step <= 0 {
		step = 0.1
	}
	center := grid.Center(loc.Cell)
	bestP := loc.Point
	bestD := math.Inf(1)
	f := make([]float64, x.Rows())
	fObs := make([]bool, x.Rows())
	for dx := -radius; dx <= radius; dx += step {
		for dy := -radius; dy <= radius; dy += step {
			p := geom.Point{X: center.X + dx, Y: center.Y + dy}
			if p.X < 0 || p.X > grid.Width || p.Y < 0 || p.Y > grid.Height {
				continue
			}
			interpFingerprint(x, observed, grid, p, f, fObs)
			var s float64
			for i := range f {
				d := f[i] - y[i]
				w := wObs
				if !fObs[i] {
					w = wRec
				}
				s += w * d * d
			}
			if s < bestD {
				bestD = s
				bestP = p
			}
		}
	}
	if !math.IsInf(bestD, 1) {
		loc.Point = bestP
		loc.Distance = math.Sqrt(bestD)
		if c := grid.CellAt(bestP); c >= 0 {
			loc.Cell = c
		}
	}
	return loc
}

func refColumnDists(x *mat.Matrix, y []float64) []float64 {
	dists := make([]float64, x.Cols())
	for j := range dists {
		dists[j] = columnDist(x, j, y)
	}
	return dists
}

// TestMatcherParityWithPreRefactor runs all four matchers over a bank of
// noisy measurements and requires exact equality with the pre-refactor
// reference implementations, with and without an observed-entry mask,
// with refinement on and off, and with a shared reused Scratch (the
// steady-state serving pattern) as well as fresh ones.
func TestMatcherParityWithPreRefactor(t *testing.T) {
	l := testLayout(t)
	rng := rand.New(rand.NewSource(41))
	truth, vac := syntheticTruth(l, rng)

	// A plausible observed mask: measured entries where the survey sits
	// near the vacant baseline plus a scattering of "reference columns".
	observed := mat.New(truth.Rows(), truth.Cols())
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if math.Abs(truth.At(i, j)-vac[i]) < 1.5 || j%7 == 0 {
				observed.Set(i, j, 1)
			}
		}
	}

	bare := mustModel(t, l, truth)
	masked, err := NewModel(l, truth, observed, vac, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var ys [][]float64
	for k := 0; k < 25; k++ {
		y := truth.Col(rng.Intn(truth.Cols()))
		for i := range y {
			y[i] += 1.2 * rng.NormFloat64()
		}
		ys = append(ys, y)
	}

	shared := NewScratch()
	for yi, y := range ys {
		type pinned struct {
			name string
			got  Location
			err  error
			want Location
		}
		cases := []pinned{}

		got, err := NNMatcher{}.Match(bare, y, shared)
		cases = append(cases, pinned{"nn", got, err, refNNMatch(truth, l.Grid, y)})

		got, err = KNNMatcher{K: 4}.Match(bare, y, shared)
		cases = append(cases, pinned{"knn", got, err, refKNNMatch(4, truth, l.Grid, y)})

		got, err = KNNMatcher{}.Match(bare, y, NewScratch())
		cases = append(cases, pinned{"knn-default", got, err, refKNNMatch(0, truth, l.Grid, y)})

		got, err = BayesMatcher{SigmaDB: 1.5}.Match(bare, y, shared)
		cases = append(cases, pinned{"bayes", got, err, refBayesMatch(1.5, truth, l.Grid, y)})

		wm := WeightedKNNMatcher{}
		got, err = wm.Match(bare, y, shared)
		cases = append(cases, pinned{"wknn-bare", got, err, refWKNNMatch(wm, nil, truth, l.Grid, y)})

		got, err = wm.Match(masked, y, shared)
		cases = append(cases, pinned{"wknn-masked", got, err, refWKNNMatch(wm, observed, truth, l.Grid, y)})

		wr := WeightedKNNMatcher{K: 4, RecSigmaDB: 3, Refine: true}
		got, err = wr.Match(masked, y, shared)
		cases = append(cases, pinned{"wknn-refine", got, err, refWKNNMatch(wr, observed, truth, l.Grid, y)})

		for _, c := range cases {
			if c.err != nil {
				t.Fatalf("y[%d] %s: %v", yi, c.name, c.err)
			}
			if c.got != c.want {
				t.Errorf("y[%d] %s: %+v != pre-refactor %+v (bit-identity break)", yi, c.name, c.got, c.want)
			}
		}
	}
}

// TestSystemLocateParityWithPreRefactor pins the full System path (the
// built-in mask-aware matcher over a LoLi-IR-reconstructed database,
// i.e. a real Observed mask) to the reference implementation.
func TestSystemLocateParityWithPreRefactor(t *testing.T) {
	f := newSystemFixture(t, 77)
	refCols, _ := f.dep.SurveyCells(f.sys.References(), 30)
	vacant := f.dep.VacantCapture(30, 50)
	if _, err := f.sys.Update(refCols, vacant); err != nil {
		t.Fatal(err)
	}
	m := f.sys.Model()
	x, observed := m.x, m.observed
	if observed == nil {
		t.Fatal("post-update model has no observed mask")
	}
	for k := 0; k < 10; k++ {
		p := geom.Point{X: 0.4 + 0.5*float64(k), Y: 0.3 + 0.4*float64(k%5)}
		y := f.dep.Channel.MeasureLive(p, 30)
		got, err := f.sys.Locate(y)
		if err != nil {
			t.Fatal(err)
		}
		want := refWKNNMatch(WeightedKNNMatcher{}, observed, x, f.l.Grid, y)
		if got != want {
			t.Errorf("target %d: System.Locate %+v != pre-refactor %+v", k, got, want)
		}
	}
}
