package core

import (
	"math/rand"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// TestParallelReconstructMatchesSerial requires a full LoLi-IR run to be
// bitwise identical under parallel fan-out: every kernel partitions by
// independent output range, so the worker count must not change results.
func TestParallelReconstructMatchesSerial(t *testing.T) {
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(geom.CrossedDeployment(7.2, 4.8, 10), grid, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	truth, vac := syntheticTruth(layout, rand.New(rand.NewSource(11)))
	rc, err := NewReconstructor(layout, DefaultLoLiOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := makeUpdateInput(layout, truth, vac, pickRefs(layout, 10))

	prev := mat.SetWorkers(1)
	defer mat.SetWorkers(prev)
	serial, err := rc.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	mat.SetWorkers(8)
	parallel, err := rc.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.X.Equal(serial.X, 0) {
		t.Error("parallel reconstruction differs from serial")
	}
	if parallel.Iterations != serial.Iterations || parallel.Rank != serial.Rank {
		t.Errorf("parallel run took rank %d / %d iters, serial rank %d / %d",
			parallel.Rank, parallel.Iterations, serial.Rank, serial.Iterations)
	}
}

// TestParallelMatchMatchesSerial checks the per-cell parallel matchers
// against their serial execution.
func TestParallelMatchMatchesSerial(t *testing.T) {
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(geom.CrossedDeployment(7.2, 4.8, 10), grid, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	truth, _ := syntheticTruth(layout, rng)
	y := truth.Col(37)
	for i := range y {
		y[i] += 0.3 * rng.NormFloat64()
	}
	model := mustModel(t, layout, truth)
	matchers := []Matcher{
		NNMatcher{},
		KNNMatcher{K: 4},
		BayesMatcher{},
		WeightedKNNMatcher{},
	}
	for _, m := range matchers {
		prev := mat.SetWorkers(1)
		serial, err1 := m.Match(model, y, NewScratch())
		mat.SetWorkers(8)
		parallel, err2 := m.Match(model, y, NewScratch())
		mat.SetWorkers(prev)
		if err1 != nil || err2 != nil {
			t.Fatalf("%T: %v / %v", m, err1, err2)
		}
		if serial != parallel {
			t.Errorf("%T: parallel %+v differs from serial %+v", m, parallel, serial)
		}
	}
}
