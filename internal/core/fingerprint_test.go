package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

func testLayout(t *testing.T) *Layout {
	t.Helper()
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(geom.CrossedDeployment(7.2, 4.8, 10), grid, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	grid, _ := geom.NewGrid(6, 6, 0.6)
	links := geom.OppositeSidePairs(6, 6, 4)
	if _, err := NewLayout(nil, grid, 0.5); err == nil {
		t.Fatal("accepted empty links")
	}
	if _, err := NewLayout(links, nil, 0.5); err == nil {
		t.Fatal("accepted nil grid")
	}
	if _, err := NewLayout(links, grid, 0); err == nil {
		t.Fatal("accepted zero ellipse excess")
	}
}

func TestMaskConsistentWithDistorted(t *testing.T) {
	l := testLayout(t)
	b := l.Mask()
	count := 0
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			v := b.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("mask entry (%d,%d) = %g not binary", i, j, v)
			}
			if (v == 0) != l.Distorted(i, j) {
				t.Fatalf("mask inconsistent at (%d,%d)", i, j)
			}
			if v == 0 {
				count++
			}
		}
	}
	if count != l.DistortedCount() {
		t.Fatalf("DistortedCount %d != mask zeros %d", l.DistortedCount(), count)
	}
	// The distorted set must be a strict, non-empty subset: the matrix is
	// mostly observable but every link has a path.
	if count == 0 || count == l.M()*l.N() {
		t.Fatalf("degenerate distorted count %d of %d", count, l.M()*l.N())
	}
}

func TestDistortedBandFollowsLoS(t *testing.T) {
	l := testLayout(t)
	// Cells on the LoS midpoint must be distorted; far corners must not.
	for i := range l.Links {
		mid := l.Links[i].Midpoint()
		j := l.Grid.CellAt(mid)
		if j >= 0 && !l.Distorted(i, j) {
			t.Fatalf("link %d midpoint cell not distorted", i)
		}
	}
}

func TestSmootherPairCountsPositive(t *testing.T) {
	l := testLayout(t)
	s := NewSmoother(l)
	if s.GPairs() == 0 {
		t.Fatal("no continuity pairs found")
	}
	if s.HPairs() == 0 {
		t.Fatal("no similarity pairs found")
	}
}

// Property: the smoothness penalties equal the quadratic form of their
// Laplacian operators: penalty(x) = <x, Apply(x)>.
func TestSmootherQuadraticFormIdentity(t *testing.T) {
	l := testLayout(t)
	s := NewSmoother(l)
	rng := rand.New(rand.NewSource(1))
	f := func(_ int64) bool {
		x := mat.New(l.M(), l.N())
		for i := 0; i < l.M(); i++ {
			for j := 0; j < l.N(); j++ {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		gx := s.ApplyG(x)
		hx := s.ApplyH(x)
		var ipG, ipH float64
		for i := 0; i < l.M(); i++ {
			for j := 0; j < l.N(); j++ {
				ipG += x.At(i, j) * gx.At(i, j)
				ipH += x.At(i, j) * hx.At(i, j)
			}
		}
		okG := math.Abs(ipG-s.PenaltyG(x)) < 1e-8*math.Max(1, s.PenaltyG(x))
		okH := math.Abs(ipH-s.PenaltyH(x)) < 1e-8*math.Max(1, s.PenaltyH(x))
		return okG && okH
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSmootherPenaltiesNonNegative(t *testing.T) {
	l := testLayout(t)
	s := NewSmoother(l)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		x := mat.New(l.M(), l.N())
		x.Apply(func(i, j int, v float64) float64 { return rng.NormFloat64() * 10 })
		if s.PenaltyG(x) < 0 || s.PenaltyH(x) < 0 {
			t.Fatal("negative smoothness penalty")
		}
	}
}

func TestSmootherZeroOnConstantMatrix(t *testing.T) {
	l := testLayout(t)
	s := NewSmoother(l)
	x := mat.New(l.M(), l.N())
	x.Fill(-47)
	if s.PenaltyG(x) != 0 {
		t.Fatal("constant matrix must have zero continuity penalty")
	}
	if s.PenaltyH(x) != 0 {
		t.Fatal("constant matrix must have zero similarity penalty")
	}
	if mat.FrobNorm(s.ApplyG(x)) != 0 || mat.FrobNorm(s.ApplyH(x)) != 0 {
		t.Fatal("Laplacian of constant matrix must vanish")
	}
}

func TestSmootherLinearity(t *testing.T) {
	l := testLayout(t)
	s := NewSmoother(l)
	rng := rand.New(rand.NewSource(3))
	x := mat.New(l.M(), l.N())
	y := mat.New(l.M(), l.N())
	x.Apply(func(i, j int, v float64) float64 { return rng.NormFloat64() })
	y.Apply(func(i, j int, v float64) float64 { return rng.NormFloat64() })
	lhs := s.ApplyG(mat.AddM(x, y))
	rhs := mat.AddM(s.ApplyG(x), s.ApplyG(y))
	if !lhs.Equal(rhs, 1e-10) {
		t.Fatal("ApplyG is not linear")
	}
	lhsH := s.ApplyH(mat.AddM(x, y))
	rhsH := mat.AddM(s.ApplyH(x), s.ApplyH(y))
	if !lhsH.Equal(rhsH, 1e-10) {
		t.Fatal("ApplyH is not linear")
	}
}
