package core

import (
	"math"
	"testing"

	"tafloc/internal/testbed"
)

func TestNewDriftMonitorValidation(t *testing.T) {
	if _, err := NewDriftMonitor(nil, nil, 0, 1); err == nil {
		t.Fatal("empty vacant accepted")
	}
	if _, err := NewDriftMonitor([]float64{1, 2}, []float64{1}, 0, 1); err == nil {
		t.Fatal("mismatched spot column accepted")
	}
	m, err := NewDriftMonitor([]float64{1, 2}, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.TriggerDB != 2.5 {
		t.Fatalf("default trigger %g, want 2.5", m.TriggerDB)
	}
}

func TestDriftMonitorNoDriftNoTrigger(t *testing.T) {
	vac := []float64{-50, -52, -48}
	m, err := NewDriftMonitor(vac, nil, 0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.Check(vac, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.UpdateRecommended || est.VacantDriftDB != 0 {
		t.Fatalf("no-drift check triggered: %+v", est)
	}
	if !math.IsNaN(est.SpotDriftDB) {
		t.Fatal("spot drift should be NaN without a spot measurement")
	}
}

func TestDriftMonitorTriggersOnVacantDrift(t *testing.T) {
	vac := []float64{-50, -52, -48}
	m, _ := NewDriftMonitor(vac, nil, 0, 2.0)
	drifted := []float64{-53, -55, -51}
	est, err := m.Check(drifted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.UpdateRecommended {
		t.Fatalf("3 dB drift not flagged: %+v", est)
	}
	if math.Abs(est.VacantDriftDB-3) > 1e-12 {
		t.Fatalf("drift estimate %g, want 3", est.VacantDriftDB)
	}
}

func TestDriftMonitorSpotSignal(t *testing.T) {
	vac := []float64{-50, -52}
	spot := []float64{-55, -60}
	m, err := NewDriftMonitor(vac, spot, 7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpotCell() != 7 {
		t.Fatalf("SpotCell = %d", m.SpotCell())
	}
	// Vacant is stable but the spot column moved: the target-affected
	// structure drifted even though the baseline did not.
	est, err := m.Check(vac, []float64{-58, -63})
	if err != nil {
		t.Fatal(err)
	}
	if !est.UpdateRecommended || math.Abs(est.SpotDriftDB-3) > 1e-12 {
		t.Fatalf("spot drift not flagged: %+v", est)
	}
	// Checking a spot column without a baseline errors.
	m2, _ := NewDriftMonitor(vac, nil, 0, 2.0)
	if _, err := m2.Check(vac, spot); err == nil {
		t.Fatal("spot check without baseline accepted")
	}
}

func TestDriftMonitorRebase(t *testing.T) {
	vac := []float64{-50, -52}
	m, _ := NewDriftMonitor(vac, []float64{-55, -60}, 3, 2.0)
	newVac := []float64{-53, -55}
	newSpot := []float64{-58, -64}
	if err := m.Rebase(newVac, newSpot); err != nil {
		t.Fatal(err)
	}
	est, err := m.Check(newVac, newSpot)
	if err != nil {
		t.Fatal(err)
	}
	if est.UpdateRecommended {
		t.Fatalf("rebased monitor still triggered: %+v", est)
	}
	if err := m.Rebase(newVac[:1], nil); err == nil {
		t.Fatal("bad rebase length accepted")
	}
}

func TestDriftMonitorEndToEndSchedule(t *testing.T) {
	// Against the simulated channel, the monitor must stay quiet in the
	// first days and trigger within the month (drift crosses 2.5 dB at
	// ~5 days by calibration).
	dep, err := testbed.New(testbed.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	vac0 := dep.VacantCapture(0, 100)
	spotCell := dep.Grid.Cells() / 2
	spot0, _ := dep.SurveyCells([]int{spotCell}, 0)
	m, err := NewDriftMonitor(vac0, spot0.Col(0), spotCell, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	triggerDay := -1
	for _, day := range []float64{1, 2, 3, 5, 8, 13, 21, 34} {
		spot, _ := dep.SurveyCells([]int{spotCell}, day)
		est, err := m.Check(dep.VacantCapture(day, 100), spot.Col(0))
		if err != nil {
			t.Fatal(err)
		}
		if est.UpdateRecommended {
			triggerDay = int(day)
			break
		}
	}
	if triggerDay < 0 {
		t.Fatal("monitor never triggered within 34 days of drift")
	}
	if triggerDay < 2 {
		t.Fatalf("monitor triggered on day %d, too eager", triggerDay)
	}
	t.Logf("time-adaptive trigger fired on day %d", triggerDay)
}
