package core

import (
	"math"
	"math/rand"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rf"
)

// syntheticTruth builds a fingerprint-shaped ground truth over a layout:
// per-link vacant baselines minus a smooth attenuation bump along each
// link's path — structurally what the rf package produces, but with
// direct control and no dependence on the channel model.
func syntheticTruth(l *Layout, rng *rand.Rand) (*mat.Matrix, []float64) {
	vac := make([]float64, l.M())
	for i := range vac {
		vac[i] = -45 - 10*rng.Float64()
	}
	x := mat.New(l.M(), l.N())
	for i := 0; i < l.M(); i++ {
		seg := l.Links[i]
		for j := 0; j < l.N(); j++ {
			excess := seg.ExcessPathLength(l.Grid.Center(j))
			atten := 0.0
			if excess <= l.EllipseExcess {
				atten = 8 * math.Exp(-excess/0.25)
			}
			x.Set(i, j, vac[i]-atten)
		}
	}
	return x, vac
}

func makeUpdateInput(l *Layout, truth *mat.Matrix, vac []float64, refs []int) UpdateInput {
	return UpdateInput{
		RefIdx:  refs,
		RefCols: truth.SelectCols(refs),
		Vacant:  vac,
	}
}

func pickRefs(l *Layout, n int) []int {
	// Spread references evenly over the grid.
	refs := make([]int, 0, n)
	step := l.N() / n
	if step < 1 {
		step = 1
	}
	for j := step / 2; j < l.N() && len(refs) < n; j += step {
		refs = append(refs, j)
	}
	return refs
}

func TestLoLiOptionsValidate(t *testing.T) {
	if err := DefaultLoLiOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLoLiOptions()
	bad.Lambda = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative lambda accepted")
	}
	bad = DefaultLoLiOptions()
	bad.Lambda, bad.Alpha = 0, 0
	if err := bad.Validate(); err == nil {
		t.Fatal("all-zero regularization accepted")
	}
	bad = DefaultLoLiOptions()
	bad.Rank = -2
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestUpdateInputValidation(t *testing.T) {
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(1)))
	good := makeUpdateInput(l, truth, vac, pickRefs(l, 10))
	if err := good.Validate(l); err != nil {
		t.Fatal(err)
	}
	cases := []UpdateInput{
		{RefIdx: nil, RefCols: good.RefCols, Vacant: vac},
		{RefIdx: good.RefIdx, RefCols: mat.New(3, 3), Vacant: vac},
		{RefIdx: good.RefIdx, RefCols: good.RefCols, Vacant: vac[:2]},
		{RefIdx: []int{-1}, RefCols: truth.SelectCols([]int{0}), Vacant: vac},
		{RefIdx: []int{5, 5}, RefCols: truth.SelectCols([]int{5, 5}), Vacant: vac},
		{RefIdx: []int{l.N() + 3}, RefCols: truth.SelectCols([]int{0}), Vacant: vac},
	}
	for i, in := range cases {
		if err := in.Validate(l); err == nil {
			t.Fatalf("case %d: invalid input accepted", i)
		}
	}
}

func TestReconstructNoiselessRecovery(t *testing.T) {
	// With noiseless inputs the reconstruction must land well inside the
	// paper's own error band (2.7 dB mean at its freshest epoch). Note a
	// sub-dB result is not attainable even in principle here: the per-link
	// attenuation profiles have disjoint supports, so the attenuation
	// matrix is full rank and the distorted entries of non-reference
	// columns are identified only through the continuity/similarity
	// priors, which bound the floor near ~1.8 dB. The paper's reported
	// 2.7-4.1 dBm errors sit in exactly this regime.
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(2)))
	rc, err := NewReconstructor(l, DefaultLoLiOptions())
	if err != nil {
		t.Fatal(err)
	}
	refs, err := SelectReferences(truth, ReferenceOptions{Count: 12})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rc.Reconstruct(makeUpdateInput(l, truth, vac, refs))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var count int
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if l.Distorted(i, j) {
				sum += math.Abs(rec.X.At(i, j) - truth.At(i, j))
				count++
			}
		}
	}
	meanErr := sum / float64(count)
	if meanErr > 2.2 {
		t.Fatalf("noiseless mean reconstruction error %.3f dB too large", meanErr)
	}
}

func TestReconstructObjectiveNonIncreasing(t *testing.T) {
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(3)))
	rc, err := NewReconstructor(l, DefaultLoLiOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rc.Reconstruct(makeUpdateInput(l, truth, vac, pickRefs(l, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Objective) < 2 {
		t.Fatalf("too few iterations traced: %d", len(rec.Objective))
	}
	for k := 1; k < len(rec.Objective); k++ {
		if rec.Objective[k] > rec.Objective[k-1]*(1+1e-6) {
			t.Fatalf("objective increased at iter %d: %g -> %g", k, rec.Objective[k-1], rec.Objective[k])
		}
	}
}

func TestReconstructObservedEntriesClamped(t *testing.T) {
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(4)))
	rc, _ := NewReconstructor(l, DefaultLoLiOptions())
	refs := pickRefs(l, 10)
	in := makeUpdateInput(l, truth, vac, refs)
	rec, err := rc.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	// Reference columns are measured: must be exact.
	for k, j := range refs {
		for i := 0; i < l.M(); i++ {
			if rec.X.At(i, j) != in.RefCols.At(i, k) {
				t.Fatalf("reference entry (%d,%d) not clamped", i, j)
			}
		}
	}
	// Undistorted entries equal the vacant capture.
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if !l.Distorted(i, j) && !contains(refs, j) {
				if rec.X.At(i, j) != vac[i] {
					t.Fatalf("undistorted entry (%d,%d) not clamped to vacant", i, j)
				}
			}
		}
	}
}

func TestReconstructWithNoisyInput(t *testing.T) {
	l := testLayout(t)
	rng := rand.New(rand.NewSource(5))
	truth, vac := syntheticTruth(l, rng)
	refs := pickRefs(l, 12)
	in := makeUpdateInput(l, truth, vac, refs)
	// Corrupt inputs with 0.3 dB noise (post survey averaging).
	in.RefCols.Apply(func(i, j int, v float64) float64 { return v + 0.3*rng.NormFloat64() })
	noisyVac := append([]float64(nil), vac...)
	for i := range noisyVac {
		noisyVac[i] += 0.3 * rng.NormFloat64()
	}
	in.Vacant = noisyVac
	rc, _ := NewReconstructor(l, DefaultLoLiOptions())
	rec, err := rc.Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var count int
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if l.Distorted(i, j) {
				sum += math.Abs(rec.X.At(i, j) - truth.At(i, j))
				count++
			}
		}
	}
	if meanErr := sum / float64(count); meanErr > 2.8 {
		t.Fatalf("noisy mean reconstruction error %.3f dB too large", meanErr)
	}
}

func TestReconstructForcedRank(t *testing.T) {
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(6)))
	opts := DefaultLoLiOptions()
	opts.Rank = 3
	rc, err := NewReconstructor(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rc.Reconstruct(makeUpdateInput(l, truth, vac, pickRefs(l, 10)))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rank != 3 {
		t.Fatalf("Rank = %d, want 3", rec.Rank)
	}
}

func TestReconstructAblationSmoothersOff(t *testing.T) {
	// Disabling G/H must still produce a finite reconstruction (ablation
	// path used by the benchmark harness).
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(7)))
	opts := DefaultLoLiOptions()
	opts.Beta, opts.Gamma = 0, 0
	rc, err := NewReconstructor(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rc.Reconstruct(makeUpdateInput(l, truth, vac, pickRefs(l, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.X.IsFinite() {
		t.Fatal("non-finite reconstruction")
	}
}

func TestReconstructSingleReference(t *testing.T) {
	// Degenerate but legal: one reference column.
	l := testLayout(t)
	truth, vac := syntheticTruth(l, rand.New(rand.NewSource(8)))
	rc, _ := NewReconstructor(l, DefaultLoLiOptions())
	rec, err := rc.Reconstruct(makeUpdateInput(l, truth, vac, []int{l.N() / 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.X.IsFinite() {
		t.Fatal("non-finite reconstruction with one reference")
	}
}

func TestReconstructEndToEndWithChannelDrift(t *testing.T) {
	// Integration: reconstruct the drifted matrix from the rf channel and
	// verify the error is far below the stale-fingerprint error.
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := rf.DefaultParams()
	p.Seed = 99
	ch, err := rf.NewChannel(p, geom.CrossedDeployment(7.2, 4.8, 10), grid)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(ch.Links(), grid, p.MaskExcessM())
	if err != nil {
		t.Fatal(err)
	}
	const days = 45
	truth := ch.TrueFingerprint(days)
	old := ch.TrueFingerprint(0)
	refs, err := SelectReferences(old, DefaultReferenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewReconstructor(l, DefaultLoLiOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rc.Reconstruct(UpdateInput{
		RefIdx:  refs,
		RefCols: truth.SelectCols(refs),
		Vacant:  ch.TrueVacant(days),
	})
	if err != nil {
		t.Fatal(err)
	}
	var recErr, staleErr float64
	var count int
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if !l.Distorted(i, j) {
				continue
			}
			recErr += math.Abs(rec.X.At(i, j) - truth.At(i, j))
			staleErr += math.Abs(old.At(i, j) - truth.At(i, j))
			count++
		}
	}
	recErr /= float64(count)
	staleErr /= float64(count)
	if recErr >= staleErr {
		t.Fatalf("reconstruction (%.2f dB) no better than stale fingerprints (%.2f dB)", recErr, staleErr)
	}
	t.Logf("45-day reconstruction error %.2f dB vs stale %.2f dB", recErr, staleErr)
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
