package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// TestLocateConsistentDuringUpdate hammers Locate from many goroutines
// while Update swaps the Model mid-flight (run with -race). LoLi-IR is
// deterministic for a fixed input, so the expected location under each
// calibration is known exactly: every concurrent result must equal one
// of them — a reader sees entirely the old Model or entirely the new
// one, never a torn mix of the two.
func TestLocateConsistentDuringUpdate(t *testing.T) {
	f := newSystemFixture(t, 5)
	refs := f.sys.References()
	inputs := []struct {
		refCols *mat.Matrix
		vacant  []float64
	}{}
	for _, day := range []float64{20, 60} {
		refCols, _ := f.dep.SurveyCells(refs, day)
		inputs = append(inputs, struct {
			refCols *mat.Matrix
			vacant  []float64
		}{refCols, f.dep.VacantCapture(day, 50)})
	}
	y := f.dep.Channel.MeasureLive(geom.Point{X: 2.1, Y: 1.5}, 20)

	// Expected location under each calibration, computed serially first.
	expect := make(map[Location]string)
	day0, err := f.sys.Locate(y)
	if err != nil {
		t.Fatal(err)
	}
	expect[day0] = "day0"
	for i, in := range inputs {
		if _, err := f.sys.Update(in.refCols, in.vacant); err != nil {
			t.Fatal(err)
		}
		loc, err := f.sys.Locate(y)
		if err != nil {
			t.Fatal(err)
		}
		expect[loc] = fmt.Sprintf("update-%d", i)
	}

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScratch()
			for {
				select {
				case <-stop:
					return
				default:
				}
				loc, err := f.sys.Model().Locate(y, sc)
				if err != nil {
					errs <- err.Error()
					return
				}
				if _, ok := expect[loc]; !ok {
					errs <- fmt.Sprintf("torn read: %+v matches no published calibration", loc)
					return
				}
			}
		}()
	}
	for round := 0; round < 4; round++ {
		in := inputs[round%len(inputs)]
		if _, err := f.sys.Update(in.refCols, in.vacant); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestLocateZeroAllocSteadyState is the acceptance pin for the scratch
// refactor: once warmed up, nn and knn localization (both through
// System.Locate's pooled scratch and through an explicit reused Scratch
// on the Model) allocates nothing per call.
func TestLocateZeroAllocSteadyState(t *testing.T) {
	// One worker keeps the distance kernel on the inline serial path —
	// fan-out spawns goroutines, which is exactly what the guard avoids.
	prev := mat.SetWorkers(1)
	defer mat.SetWorkers(prev)
	f := newSystemFixture(t, 6)
	y := f.dep.Channel.MeasureLive(geom.Point{X: 1.2, Y: 2.0}, 0)
	for _, name := range []string{MatcherNN, MatcherKNN} {
		opts := DefaultSystemOptions()
		opts.MatcherName = name
		sys, err := NewSystem(f.l, f.sys.Fingerprints(), f.sys.Vacant(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Locate(y); err != nil { // warm the scratch pool
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := sys.Locate(y); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: System.Locate allocates %.1f/op in steady state, want 0", name, allocs)
		}
		m := sys.Model()
		sc := NewScratch()
		if _, err := m.Locate(y, sc); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := m.Locate(y, sc); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Model.Locate with reused scratch allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestModelSurvivesUpdate pins the RCU contract: a Model loaded before
// an Update keeps serving the old calibration unchanged afterwards.
func TestModelSurvivesUpdate(t *testing.T) {
	f := newSystemFixture(t, 7)
	old := f.sys.Model()
	y := f.dep.Channel.MeasureLive(geom.Point{X: 2.4, Y: 1.2}, 0)
	before, err := old.Locate(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	refCols, _ := f.dep.SurveyCells(f.sys.References(), 45)
	if _, err := f.sys.Update(refCols, f.dep.VacantCapture(45, 50)); err != nil {
		t.Fatal(err)
	}
	if f.sys.Model() == old {
		t.Fatal("Update did not publish a new Model")
	}
	after, err := old.Locate(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("retained Model drifted across Update: %+v then %+v", before, after)
	}
}

// TestScratchPoolReuse checks the pooled buffers grow to the largest
// database seen and then stop allocating, across models of different
// sizes.
func TestScratchPoolReuse(t *testing.T) {
	prev := mat.SetWorkers(1)
	defer mat.SetWorkers(prev)
	l := testLayout(t)
	truth, _ := syntheticTruth(l, rand.New(rand.NewSource(13)))
	m := mustModel(t, l, truth)
	y := truth.Col(3)
	sc := NewScratch()
	for _, matcher := range []Matcher{NNMatcher{}, KNNMatcher{}, BayesMatcher{}, WeightedKNNMatcher{Refine: true}} {
		if _, err := matcher.Match(m, y, sc); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if _, err := matcher.Match(m, y, sc); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%T: reused scratch allocates %.1f/op, want 0", matcher, allocs)
		}
	}
}
