package core

import (
	"errors"
	"math"
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/taflocerr"
)

// stateTestSystem builds a small calibrated system directly from
// synthetic data (no testbed dependency — core cannot import it).
func stateTestSystem(t *testing.T, opts SystemOptions) (*System, *Layout) {
	t.Helper()
	grid, err := geom.NewGrid(3.0, 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	links := geom.CrossedDeployment(3.0, 2.0, 5)
	layout, err := NewLayout(links, grid, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	m, n := layout.M(), layout.N()
	survey := mat.New(m, n)
	vacant := make([]float64, m)
	for i := 0; i < m; i++ {
		vacant[i] = -40 - float64(i)
		for j := 0; j < n; j++ {
			// Deterministic, link- and cell-dependent structure so matching
			// is non-trivial and reference selection has rank to find.
			survey.Set(i, j, -40-float64(i)-0.8*float64(j%7)-0.3*float64((i*j)%5))
		}
	}
	sys, err := NewSystem(layout, survey, vacant, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, layout
}

// TestExportRestoreRoundTrip pins warm-start fidelity at the core layer:
// a restored system must locate identically to the original on the same
// inputs — bit for bit, not approximately.
func TestExportRestoreRoundTrip(t *testing.T) {
	for _, matcher := range []string{"", MatcherWKNN, MatcherNN, MatcherBayes} {
		opts := DefaultSystemOptions()
		opts.MatcherName = matcher
		sys, layout := stateTestSystem(t, opts)

		st := sys.ExportState()
		restored, err := RestoreSystem(st)
		if err != nil {
			t.Fatalf("matcher %q: restore: %v", matcher, err)
		}

		if got, want := restored.References(), sys.References(); len(got) != len(want) {
			t.Fatalf("matcher %q: references %v != %v", matcher, got, want)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("matcher %q: references %v != %v", matcher, got, want)
				}
			}
		}
		if !restored.Fingerprints().Equal(sys.Fingerprints(), 0) {
			t.Fatalf("matcher %q: fingerprint database differs after restore", matcher)
		}
		if !restored.Mask().Equal(sys.Mask(), 0) {
			t.Fatalf("matcher %q: mask differs after restore", matcher)
		}

		m := layout.M()
		for trial := 0; trial < 8; trial++ {
			y := make([]float64, m)
			for i := range y {
				y[i] = -41 - float64(i) - 0.5*float64((trial*i)%3)
			}
			a, err1 := sys.Locate(y)
			b, err2 := restored.Locate(y)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("matcher %q: locate errors diverge: %v vs %v", matcher, err1, err2)
			}
			if a != b {
				t.Fatalf("matcher %q: locate diverges after restore: %+v vs %+v", matcher, a, b)
			}
		}
	}
}

// TestRestoreAfterUpdateKeepsObservedMask checks the restored system
// carries the observed-entry matrix an update installs (it weights the
// default matcher), again to bit-identical locate results.
func TestRestoreAfterUpdateKeepsObservedMask(t *testing.T) {
	sys, layout := stateTestSystem(t, DefaultSystemOptions())
	m := layout.M()
	refs := sys.References()
	refCols := mat.New(m, len(refs))
	vac := make([]float64, m)
	for i := 0; i < m; i++ {
		vac[i] = -40.5 - float64(i)
		for k := range refs {
			refCols.Set(i, k, -41-float64(i)-0.7*float64(refs[k]%7))
		}
	}
	if _, err := sys.Update(refCols, vac); err != nil {
		t.Fatal(err)
	}

	st := sys.ExportState()
	if st.Observed == nil {
		t.Fatal("exported state after an update should carry the observed-entry matrix")
	}
	restored, err := RestoreSystem(st)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, m)
	for i := range y {
		y[i] = -42 - 0.9*float64(i)
	}
	a, err1 := sys.Locate(y)
	b, err2 := restored.Locate(y)
	if err1 != nil || err2 != nil {
		t.Fatalf("locate: %v / %v", err1, err2)
	}
	if a != b {
		t.Fatalf("locate diverges after post-update restore: %+v vs %+v", a, b)
	}
}

// TestRestoreSystemFailsClosed: structurally inconsistent states must
// yield taflocerr.ErrSnapshotCorrupt, not a panic or a broken system.
func TestRestoreSystemFailsClosed(t *testing.T) {
	sys, _ := stateTestSystem(t, DefaultSystemOptions())
	base := sys.ExportState()

	cases := map[string]func(*SystemState){
		"nil X":           func(st *SystemState) { st.X = nil },
		"wrong X dims":    func(st *SystemState) { st.X = mat.New(2, 2) },
		"wrong mask dims": func(st *SystemState) { st.Mask = mat.New(1, 1) },
		"short vacant":    func(st *SystemState) { st.Vacant = st.Vacant[:1] },
		"no refs":         func(st *SystemState) { st.RefCells = nil },
		"ref out of range": func(st *SystemState) {
			st.RefCells = append(append([]int(nil), st.RefCells...), 10_000)
		},
		"bad grid":       func(st *SystemState) { st.GridCellSize = -1 },
		"no links":       func(st *SystemState) { st.Links = nil },
		"wrong observed": func(st *SystemState) { st.Observed = mat.New(1, 3) },
		"unknown matcher": func(st *SystemState) {
			st.MatcherName = "no-such-matcher"
		},
		"non-finite X": func(st *SystemState) {
			st.X = st.X.Clone()
			st.X.Set(0, 0, math.NaN())
		},
	}
	for name, corrupt := range cases {
		st := *base // shallow copy; corruptors replace fields rather than mutate shared ones
		corrupt(&st)
		if _, err := RestoreSystem(&st); err == nil {
			t.Errorf("%s: restore accepted a corrupt state", name)
		} else if !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
			t.Errorf("%s: error %v does not match ErrSnapshotCorrupt", name, err)
		}
	}
	if _, err := RestoreSystem(nil); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("nil state: %v", err)
	}
}
