package core

import (
	"fmt"
	"sort"

	"tafloc/internal/mat"
)

// ReferenceOptions controls reference-location selection.
type ReferenceOptions struct {
	// EnergyFrac is the singular-value energy fraction used to estimate
	// the numerical rank of the historical fingerprint matrix; the
	// reference count defaults to that rank.
	EnergyFrac float64
	// Min and Max clamp the reference count. Max <= 0 means no upper
	// clamp beyond N.
	Min, Max int
	// Count forces an exact reference count, bypassing rank estimation,
	// when positive.
	Count int
}

// DefaultReferenceOptions matches the paper's deployment: rank-driven
// count with a floor of 10 references (the paper uses 10 for 96 cells).
func DefaultReferenceOptions() ReferenceOptions {
	return ReferenceOptions{EnergyFrac: 0.995, Min: 10, Max: 0}
}

// SelectReferences chooses reference locations from a historical
// fingerprint matrix x (M links x N cells): the columns picked first by
// column-pivoted QR, i.e. the maximally linearly independent columns the
// paper calls for. The returned indices are sorted ascending.
//
// The count is opts.Count when positive; otherwise the energy rank of x
// clamped to [opts.Min, opts.Max].
func SelectReferences(x *mat.Matrix, opts ReferenceOptions) ([]int, error) {
	if x == nil || x.Cols() == 0 || x.Rows() == 0 {
		return nil, fmt.Errorf("core: empty fingerprint matrix")
	}
	n := opts.Count
	if n <= 0 {
		frac := opts.EnergyFrac
		if frac <= 0 || frac > 1 {
			frac = 0.995
		}
		// Center columns before rank estimation: the shared vacant
		// baseline is a rank-1 component that would otherwise hide the
		// distortion structure.
		centered := x.Clone()
		for i := 0; i < centered.Rows(); i++ {
			row := centered.RawRow(i)
			var mean float64
			for _, v := range row {
				mean += v
			}
			mean /= float64(len(row))
			for j := range row {
				row[j] -= mean
			}
		}
		svd := mat.SVDecompose(centered)
		n = svd.EnergyRank(frac) + 1 // +1 for the removed baseline direction
		if opts.Min > 0 && n < opts.Min {
			n = opts.Min
		}
		if opts.Max > 0 && n > opts.Max {
			n = opts.Max
		}
	}
	if n > x.Cols() {
		n = x.Cols()
	}
	piv := mat.QRPivoted(x)
	refs := piv.LeadingPivots(n)
	sort.Ints(refs)
	return refs, nil
}

// ReferenceCountForLayout estimates how many reference locations a
// deployment needs without a historical matrix, from the layout's link
// count: the fingerprint matrix rank is bounded by M (plus the baseline),
// so the reference count scales with the number of links. Used by the
// Fig 4 area sweep.
func ReferenceCountForLayout(l *Layout, min int) int {
	n := l.M() + 1
	if n < min {
		n = min
	}
	if n > l.N() {
		n = l.N()
	}
	return n
}
