package core

import (
	"context"
	"fmt"
	"sync"

	"tafloc/internal/mat"
	"tafloc/taflocerr"
)

// SystemOptions configures a System.
type SystemOptions struct {
	// LoLi are the reconstruction hyperparameters.
	LoLi LoLiOptions
	// Refs controls reference-location selection.
	Refs ReferenceOptions
	// Matcher locates live measurements. Nil selects the built-in
	// mask-aware WeightedKNNMatcher, which tracks which database entries
	// are measured vs reconstructed across updates.
	Matcher Matcher
	// MatcherName selects a matcher from the registry by name when
	// Matcher is nil. The name "wknn" (or empty) keeps the built-in
	// mask-aware path; any other name is resolved through
	// NewMatcherByName at construction, so an unknown name fails fast.
	MatcherName string
	// RecSigmaDB is the assumed error std of reconstructed entries for
	// the built-in weighted matcher (default 4 dB, the paper's 3-month
	// reconstruction error scale).
	RecSigmaDB float64
	// MaskThresholdDB is the |survey - vacant| deviation above which an
	// entry counts as largely distorted when the mask is learned from the
	// day-0 survey (default 1.5 dB). Zero keeps the default; negative
	// forces the geometric ellipse mask instead.
	MaskThresholdDB float64
}

// DefaultSystemOptions returns the configuration used throughout the
// reproduction: built-in weighted matching.
func DefaultSystemOptions() SystemOptions {
	return SystemOptions{
		LoLi: DefaultLoLiOptions(),
		Refs: DefaultReferenceOptions(),
	}
}

// System is the end-to-end TafLoc pipeline: it holds the current
// fingerprint database, selects reference locations, performs low-cost
// updates via LoLi-IR, and localizes live measurements.
//
// A System is safe for concurrent use: Locate may be called while Update
// runs (Update installs the new database atomically).
type System struct {
	layout *Layout
	opts   SystemOptions
	recon  *Reconstructor

	mu       sync.RWMutex
	x        *mat.Matrix // current fingerprint database
	observed *mat.Matrix // nil = every entry measured (full survey)
	vacant   []float64   // latest vacant baseline
	refs     []int       // current reference cells
}

// NewSystem builds a System from the day-0 full survey.
//
// survey is the full M x N fingerprint matrix; vacant the empty-room RSS
// per link at survey time.
func NewSystem(layout *Layout, survey *mat.Matrix, vacant []float64, opts SystemOptions) (*System, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if survey == nil || survey.Rows() != layout.M() || survey.Cols() != layout.N() {
		return nil, fmt.Errorf("core: survey must be %dx%d", layout.M(), layout.N())
	}
	if len(vacant) != layout.M() {
		return nil, fmt.Errorf("core: vacant must have length %d", layout.M())
	}
	// Learn the undistorted-entry mask from the survey itself: the true
	// sensitive band of each link is shaped by multipath, so the measured
	// deviation from the vacant baseline beats the geometric ellipse.
	var recon *Reconstructor
	var err error
	if opts.MaskThresholdDB >= 0 {
		thr := opts.MaskThresholdDB
		if thr == 0 {
			thr = 1.5
		}
		mask, merr := MaskFromSurvey(survey, vacant, thr)
		if merr != nil {
			return nil, merr
		}
		recon, err = NewReconstructorWithMask(layout, mask, opts.LoLi)
	} else {
		recon, err = NewReconstructor(layout, opts.LoLi)
	}
	if err != nil {
		return nil, err
	}
	refs, err := SelectReferences(survey, opts.Refs)
	if err != nil {
		return nil, err
	}
	if opts.Matcher == nil && opts.MatcherName != "" && opts.MatcherName != MatcherWKNN {
		m, merr := NewMatcherByName(opts.MatcherName)
		if merr != nil {
			return nil, merr
		}
		opts.Matcher = m
	}
	v := append([]float64(nil), vacant...)
	return &System{
		layout: layout,
		opts:   opts,
		recon:  recon,
		x:      survey.Clone(),
		vacant: v,
		refs:   refs,
	}, nil
}

// Layout returns the deployment geometry.
func (s *System) Layout() *Layout { return s.layout }

// Mask returns the undistorted-entry mask the system reconstructs with
// (1 = undistorted; learned from the day-0 survey by default).
func (s *System) Mask() *mat.Matrix { return s.recon.Mask().Clone() }

// References returns the current reference cell indices (copy).
func (s *System) References() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]int(nil), s.refs...)
}

// Fingerprints returns a copy of the current fingerprint database.
func (s *System) Fingerprints() *mat.Matrix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.x.Clone()
}

// Vacant returns a copy of the current vacant baseline.
func (s *System) Vacant() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]float64(nil), s.vacant...)
}

// Update performs a TafLoc low-cost fingerprint update: given fresh
// measurements at the reference locations (refCols, M x len(refs) in
// the order returned by References) and a fresh vacant capture, it
// reconstructs the whole database with LoLi-IR and installs it.
func (s *System) Update(refCols *mat.Matrix, vacant []float64) (*Reconstruction, error) {
	return s.UpdateContext(context.Background(), refCols, vacant)
}

// UpdateContext is Update with cancellation: the LoLi-IR solver checks
// ctx once per outer iteration, so a long reconstruction terminates
// promptly when ctx is cancelled and the previous database stays
// installed.
func (s *System) UpdateContext(ctx context.Context, refCols *mat.Matrix, vacant []float64) (*Reconstruction, error) {
	s.mu.RLock()
	refs := append([]int(nil), s.refs...)
	s.mu.RUnlock()

	rec, err := s.recon.ReconstructContext(ctx, UpdateInput{
		RefIdx:  refs,
		RefCols: refCols,
		Vacant:  vacant,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.x = rec.X
	s.observed = rec.Observed
	s.vacant = append([]float64(nil), vacant...)
	s.mu.Unlock()
	return rec, nil
}

// Reselect re-derives the reference set from the current database, e.g.
// after an update revealed structural change.
func (s *System) Reselect() ([]int, error) {
	s.mu.RLock()
	x := s.x
	s.mu.RUnlock()
	refs, err := SelectReferences(x, s.opts.Refs)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.refs = refs
	s.mu.Unlock()
	return append([]int(nil), refs...), nil
}

// Locate matches a live measurement vector against the current database.
// With the default options it uses the mask-aware weighted matcher, which
// trusts measured entries (vacant fills and reference columns) above
// LoLi-IR-reconstructed ones.
func (s *System) Locate(y []float64) (Location, error) {
	return s.LocateContext(context.Background(), y)
}

// LocateContext is Locate with cancellation: a single match query is
// fast, so ctx is checked once on entry; an already-cancelled context
// returns immediately without touching the database.
func (s *System) LocateContext(ctx context.Context, y []float64) (Location, error) {
	if err := ctx.Err(); err != nil {
		return Location{}, taflocerr.Errorf(taflocerr.CodeCancelled, "core: locate cancelled: %w", err)
	}
	s.mu.RLock()
	x := s.x
	obs := s.observed
	s.mu.RUnlock()
	if s.opts.Matcher != nil {
		return s.opts.Matcher.Match(x, s.layout.Grid, y)
	}
	return WeightedKNNMatcher{
		Observed:   obs,
		RecSigmaDB: s.opts.RecSigmaDB,
	}.Match(x, s.layout.Grid, y)
}

// Detect reports whether a target is present, using the current vacant
// baseline.
func (s *System) Detect(y []float64, thresholdDB float64) (bool, float64) {
	s.mu.RLock()
	vac := s.vacant
	s.mu.RUnlock()
	return Detector{Vacant: vac, ThresholdDB: thresholdDB}.Present(y)
}
