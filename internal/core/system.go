package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tafloc/internal/mat"
	"tafloc/taflocerr"
)

// SystemOptions configures a System.
type SystemOptions struct {
	// LoLi are the reconstruction hyperparameters.
	LoLi LoLiOptions
	// Refs controls reference-location selection.
	Refs ReferenceOptions
	// Matcher locates live measurements. Nil selects the built-in
	// mask-aware WeightedKNNMatcher, which reads the observed-entry mask
	// from the current Model on every call.
	Matcher Matcher
	// MatcherName selects a matcher from the registry by name when
	// Matcher is nil. The name "wknn" (or empty) keeps the built-in
	// mask-aware path; any other name is resolved through
	// NewMatcherByName at construction, so an unknown name fails fast.
	MatcherName string
	// RecSigmaDB is the assumed error std of reconstructed entries for
	// the built-in weighted matcher (default 4 dB, the paper's 3-month
	// reconstruction error scale).
	RecSigmaDB float64
	// MaskThresholdDB is the |survey - vacant| deviation above which an
	// entry counts as largely distorted when the mask is learned from the
	// day-0 survey (default 1.5 dB). Zero keeps the default; negative
	// forces the geometric ellipse mask instead.
	MaskThresholdDB float64
}

// DefaultSystemOptions returns the configuration used throughout the
// reproduction: built-in weighted matching.
func DefaultSystemOptions() SystemOptions {
	return SystemOptions{
		LoLi: DefaultLoLiOptions(),
		Refs: DefaultReferenceOptions(),
	}
}

// System is the end-to-end TafLoc pipeline, split into two planes. The
// calibration plane (this struct) owns the LoLi-IR reconstructor and the
// construction options; it is the only writer. The read plane is an
// immutable Model — radio map, geometry, observed mask, matcher, and
// vacant baseline frozen together — published through an atomic pointer.
// Locate never takes a lock: it loads the current Model and matches
// against it, so any number of goroutines can localize concurrently
// while Update reconstructs; Update builds a complete new Model and
// swaps the pointer (RCU style), leaving in-flight readers on the old
// one. Calibration writers (Update, Reselect) serialize on an internal
// mutex.
type System struct {
	layout  *Layout
	opts    SystemOptions
	recon   *Reconstructor
	matcher Matcher // resolved once at construction; never nil

	//tafloc:lock-order 60 calibration writer lock; innermost — never wraps a serve-layer lock
	calMu sync.Mutex // serializes calibration writers
	//tafloc:atomic
	model atomic.Pointer[Model]
}

// NewSystem builds a System from the day-0 full survey.
//
// survey is the full M x N fingerprint matrix; vacant the empty-room RSS
// per link at survey time.
func NewSystem(layout *Layout, survey *mat.Matrix, vacant []float64, opts SystemOptions) (*System, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if survey == nil || survey.Rows() != layout.M() || survey.Cols() != layout.N() {
		return nil, fmt.Errorf("core: survey must be %dx%d", layout.M(), layout.N())
	}
	if len(vacant) != layout.M() {
		return nil, fmt.Errorf("core: vacant must have length %d", layout.M())
	}
	// Learn the undistorted-entry mask from the survey itself: the true
	// sensitive band of each link is shaped by multipath, so the measured
	// deviation from the vacant baseline beats the geometric ellipse.
	var recon *Reconstructor
	var err error
	if opts.MaskThresholdDB >= 0 {
		thr := opts.MaskThresholdDB
		if thr == 0 {
			thr = 1.5
		}
		mask, merr := MaskFromSurvey(survey, vacant, thr)
		if merr != nil {
			return nil, merr
		}
		recon, err = NewReconstructorWithMask(layout, mask, opts.LoLi)
	} else {
		recon, err = NewReconstructor(layout, opts.LoLi)
	}
	if err != nil {
		return nil, err
	}
	refs, err := SelectReferences(survey, opts.Refs)
	if err != nil {
		return nil, err
	}
	if opts.Matcher == nil && opts.MatcherName != "" && opts.MatcherName != MatcherWKNN {
		m, merr := NewMatcherByName(opts.MatcherName)
		if merr != nil {
			return nil, merr
		}
		opts.Matcher = m
	}
	s := &System{
		layout:  layout,
		opts:    opts,
		recon:   recon,
		matcher: resolveMatcher(opts),
	}
	s.install(survey.Clone(), nil, append([]float64(nil), vacant...), refs)
	return s, nil
}

// resolveMatcher picks the concrete matcher a System localizes with: an
// injected implementation wins, otherwise the built-in mask-aware
// weighted matcher (the observed mask itself travels in each Model).
func resolveMatcher(opts SystemOptions) Matcher {
	if opts.Matcher != nil {
		return opts.Matcher
	}
	return WeightedKNNMatcher{RecSigmaDB: opts.RecSigmaDB}
}

// install publishes a new immutable Model assembled from freshly built
// (never again mutated) parts.
func (s *System) install(x, observed *mat.Matrix, vacant []float64, refs []int) {
	s.model.Store(&Model{
		layout:   s.layout,
		x:        x,
		observed: observed,
		vacant:   vacant,
		refs:     refs,
		matcher:  s.matcher,
	})
}

// Layout returns the deployment geometry.
func (s *System) Layout() *Layout { return s.layout }

// Model returns the current immutable read plane. The Model never
// changes after publication, so the caller may localize against it from
// any number of goroutines, and may keep using it after a concurrent
// Update swaps in a successor (it then serves the older calibration).
func (s *System) Model() *Model { return s.model.Load() }

// Mask returns the undistorted-entry mask the system reconstructs with
// (1 = undistorted; learned from the day-0 survey by default).
func (s *System) Mask() *mat.Matrix { return s.recon.Mask().Clone() }

// References returns the current reference cell indices (copy).
func (s *System) References() []int { return s.model.Load().References() }

// Fingerprints returns a copy of the current fingerprint database.
func (s *System) Fingerprints() *mat.Matrix { return s.model.Load().Fingerprints() }

// Vacant returns a copy of the current vacant baseline.
func (s *System) Vacant() []float64 { return s.model.Load().Vacant() }

// Update performs a TafLoc low-cost fingerprint update: given fresh
// measurements at the reference locations (refCols, M x len(refs) in
// the order returned by References) and a fresh vacant capture, it
// reconstructs the whole database with LoLi-IR and publishes it as a
// new Model.
func (s *System) Update(refCols *mat.Matrix, vacant []float64) (*Reconstruction, error) {
	return s.UpdateContext(context.Background(), refCols, vacant)
}

// UpdateContext is Update with cancellation: the LoLi-IR solver checks
// ctx once per outer iteration, so a long reconstruction terminates
// promptly when ctx is cancelled and the previous Model stays
// published.
func (s *System) UpdateContext(ctx context.Context, refCols *mat.Matrix, vacant []float64) (*Reconstruction, error) {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	refs := s.model.Load().refs

	rec, err := s.recon.ReconstructContext(ctx, UpdateInput{
		RefIdx:  refs,
		RefCols: refCols,
		Vacant:  vacant,
	})
	if err != nil {
		return nil, err
	}
	s.install(rec.X, rec.Observed, append([]float64(nil), vacant...), refs)
	return rec, nil
}

// Reselect re-derives the reference set from the current database, e.g.
// after an update revealed structural change. The new Model shares the
// (immutable) database of the old one and differs only in its reference
// cells.
func (s *System) Reselect() ([]int, error) {
	s.calMu.Lock()
	defer s.calMu.Unlock()
	m := s.model.Load()
	refs, err := SelectReferences(m.x, s.opts.Refs)
	if err != nil {
		return nil, err
	}
	s.install(m.x, m.observed, m.vacant, refs)
	return append([]int(nil), refs...), nil
}

// Locate matches a live measurement vector against the current Model.
// With the default options it uses the mask-aware weighted matcher, which
// trusts measured entries (vacant fills and reference columns) above
// LoLi-IR-reconstructed ones. The steady state is allocation-free: the
// working buffers come from the shared Scratch pool, and the Model read
// is one atomic load, so concurrent callers never contend.
func (s *System) Locate(y []float64) (Location, error) {
	return s.model.Load().Locate(y, nil)
}

// LocateContext is Locate with cancellation: a single match query is
// fast, so ctx is checked once on entry; an already-cancelled context
// returns immediately without touching the database.
func (s *System) LocateContext(ctx context.Context, y []float64) (Location, error) {
	if err := ctx.Err(); err != nil {
		return Location{}, taflocerr.Errorf(taflocerr.CodeCancelled, "core: locate cancelled: %w", err)
	}
	return s.Locate(y)
}

// Detect reports whether a target is present, using the current vacant
// baseline.
func (s *System) Detect(y []float64, thresholdDB float64) (bool, float64) {
	return s.model.Load().Detect(y, thresholdDB)
}
