package core

import (
	"sync"

	"tafloc/internal/mat"
)

// Scratch holds the per-call working buffers of the matchers: candidate
// distances, posterior accumulators, and the refinement interpolation
// vectors. Threading one Scratch through repeated Locate calls makes
// the steady-state match path allocation-free — the buffers grow to the
// largest database seen and are reused verbatim afterwards. A Scratch
// is not safe for concurrent use; give each goroutine its own (the
// pooled GetScratch/PutScratch pair is the cheap way to do that).
type Scratch struct {
	dists []float64
	logp  []float64
	post  []float64
	f     []float64
	fObs  []bool
	cands []cand
}

// cand is one candidate cell with its fingerprint-space distance.
type cand struct {
	j int
	d float64
}

// NewScratch returns an empty Scratch; buffers are allocated lazily on
// first use and reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch borrows a Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool. The caller must not
// use sc afterwards.
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// floats returns *buf resized to length n, growing through the mat
// float pool when the capacity is insufficient.
//
//tafloc:pool-ownership grown buffers are retained in the Scratch across calls (that amortization is the point); they return to the mat pool when the next grow swaps them out, not via defer here.
func (sc *Scratch) floats(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		mat.PutFloats(s)
		s = mat.GetFloats(n)
	}
	s = s[:n]
	*buf = s
	return s
}

// distances returns the candidate-distance buffer, length n.
//
//tafloc:noalloc
func (sc *Scratch) distances(n int) []float64 { return sc.floats(&sc.dists, n) }

// posteriors returns the two posterior buffers (log-likelihoods and
// normalized masses), each length n.
//
//tafloc:noalloc
func (sc *Scratch) posteriors(n int) ([]float64, []float64) {
	return sc.floats(&sc.logp, n), sc.floats(&sc.post, n)
}

// candidates returns the candidate buffer, length n.
//
//tafloc:noalloc steady state reuses the retained buffer; only growth allocates.
func (sc *Scratch) candidates(n int) []cand {
	if cap(sc.cands) < n {
		sc.cands = make([]cand, n) //tafloc:alloc-ok amortized grow to the largest database seen
	}
	sc.cands = sc.cands[:n]
	return sc.cands
}

// interp returns the refinement interpolation buffers, each length m.
//
//tafloc:noalloc steady state reuses the retained buffers; only growth allocates.
func (sc *Scratch) interp(m int) ([]float64, []bool) {
	f := sc.floats(&sc.f, m)
	if cap(sc.fObs) < m {
		sc.fObs = make([]bool, m) //tafloc:alloc-ok amortized grow to the largest database seen
	}
	sc.fObs = sc.fObs[:m]
	return f, sc.fObs
}
