// Package core implements the TafLoc system itself: the fingerprint
// matrix model, the undistorted-entry mask, reference-location selection
// via rank-revealing QR, the LoLi-IR fingerprint reconstruction algorithm,
// and the location matchers that compare live measurements against the
// reconstructed database.
//
// Terminology follows the paper: the fingerprint matrix X is M links by
// N grid cells; X_R holds freshly measured columns at n reference
// locations; B masks the entries a target at cell j leaves undistorted on
// link i; X_D is the complementary largely-distorted set whose structure
// (continuity along a link, similarity across adjacent links) regularizes
// the reconstruction.
package core

import (
	"fmt"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// Layout captures the deployment geometry the fingerprint matrix is
// defined over. It is immutable after construction.
type Layout struct {
	Links []geom.Segment
	Grid  *geom.Grid
	// EllipseExcess is the excess-path-length threshold (metres) that
	// separates largely-distorted entries from undistorted ones.
	EllipseExcess float64
}

// NewLayout validates and builds a Layout.
func NewLayout(links []geom.Segment, grid *geom.Grid, ellipseExcess float64) (*Layout, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("core: need at least one link")
	}
	if grid == nil {
		return nil, fmt.Errorf("core: nil grid")
	}
	if ellipseExcess <= 0 {
		return nil, fmt.Errorf("core: EllipseExcess must be positive, got %g", ellipseExcess)
	}
	return &Layout{
		Links:         append([]geom.Segment(nil), links...),
		Grid:          grid,
		EllipseExcess: ellipseExcess,
	}, nil
}

// M returns the number of links.
func (l *Layout) M() int { return len(l.Links) }

// N returns the number of grid cells.
func (l *Layout) N() int { return l.Grid.Cells() }

// Distorted reports whether a target at cell j largely distorts link i,
// i.e. whether the cell centre lies inside the link's sensitivity
// ellipse.
func (l *Layout) Distorted(i, j int) bool {
	return l.Links[i].InEllipse(l.Grid.Center(j), l.EllipseExcess)
}

// Mask returns the paper's binary matrix B: B(i,j) = 1 when the RSS of
// link i is undistorted by a target at cell j (so the entry is known from
// a vacant capture), 0 when it belongs to the largely-distorted set X_D.
func (l *Layout) Mask() *mat.Matrix {
	b := mat.New(l.M(), l.N())
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if !l.Distorted(i, j) {
				b.Set(i, j, 1)
			}
		}
	}
	return b
}

// DistortedCount returns the number of largely-distorted entries.
func (l *Layout) DistortedCount() int {
	count := 0
	for i := 0; i < l.M(); i++ {
		for j := 0; j < l.N(); j++ {
			if l.Distorted(i, j) {
				count++
			}
		}
	}
	return count
}

// MaskFromSurvey derives the paper's mask B empirically from a day-0
// full survey: B(i,j) = 1 (undistorted) when the surveyed fingerprint
// deviates from the vacant baseline by less than thresholdDB. This is
// how a deployed system determines the mask — the true sensitive band of
// a link is shaped by multipath and need not follow the geometric
// Fresnel ellipse. thresholdDB <= 0 defaults to 1 dB.
func MaskFromSurvey(survey *mat.Matrix, vacant []float64, thresholdDB float64) (*mat.Matrix, error) {
	if survey == nil || survey.Rows() == 0 || survey.Cols() == 0 {
		return nil, fmt.Errorf("core: empty survey")
	}
	if len(vacant) != survey.Rows() {
		return nil, fmt.Errorf("core: vacant length %d != links %d", len(vacant), survey.Rows())
	}
	if thresholdDB <= 0 {
		thresholdDB = 1
	}
	b := mat.New(survey.Rows(), survey.Cols())
	for i := 0; i < survey.Rows(); i++ {
		for j := 0; j < survey.Cols(); j++ {
			if abs(survey.At(i, j)-vacant[i]) < thresholdDB {
				b.Set(i, j, 1)
			}
		}
	}
	return b, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// cellPair is an ordered pair of cells adjacent in the grid, both
// distorted for one link.
type cellPair struct{ j1, j2 int }

// linkPair is a pair of links both distorted at one cell.
type linkPair struct{ i1, i2 int }

// Smoother applies the paper's two structural regularizers as linear
// operators on the fingerprint matrix:
//
//   - G (continuity): for every link i and every pair of grid-adjacent
//     cells both on link i's path, the entries should be close —
//     ‖X_D·G‖²_F in the paper's notation.
//   - H (similarity): for every cell j and every pair of links whose
//     paths both cover j, the entries should be close — ‖H·X_D‖²_F.
//
// Both penalties are quadratic forms X ↦ Σ (x_a - x_b)²; Apply* computes
// the gradient-defining Laplacian L(X) with penalty = <X, L(X)>.
type Smoother struct {
	m, n     int
	rowPairs [][]cellPair // per link i: adjacent distorted cell pairs
	colPairs [][]linkPair // per cell j: co-distorted link pairs
	gPairs   int
	hPairs   int
}

// NewSmoother precomputes the pair structure from a layout's geometric
// mask. Prefer NewSmootherFromMask with an empirically learned mask when
// a day-0 survey exists.
func NewSmoother(l *Layout) *Smoother {
	return NewSmootherFromMask(l.Mask(), l.Grid)
}

// NewSmootherFromMask precomputes the pair structure from an explicit
// undistorted-entry mask (1 = undistorted, 0 = largely distorted) over
// the given grid.
func NewSmootherFromMask(mask *mat.Matrix, grid *geom.Grid) *Smoother {
	m, n := mask.Dims()
	distorted := func(i, j int) bool { return mask.At(i, j) == 0 }
	s := &Smoother{
		m:        m,
		n:        n,
		rowPairs: make([][]cellPair, m),
		colPairs: make([][]linkPair, n),
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if !distorted(i, j) {
				continue
			}
			for _, nb := range grid.Neighbors4(j) {
				if nb > j && distorted(i, nb) {
					s.rowPairs[i] = append(s.rowPairs[i], cellPair{j, nb})
					s.gPairs++
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 < m; i1++ {
			if !distorted(i1, j) {
				continue
			}
			for i2 := i1 + 1; i2 < m; i2++ {
				if distorted(i2, j) {
					s.colPairs[j] = append(s.colPairs[j], linkPair{i1, i2})
					s.hPairs++
				}
			}
		}
	}
	return s
}

// GPairs returns the number of continuity (along-link) pairs.
func (s *Smoother) GPairs() int { return s.gPairs }

// HPairs returns the number of similarity (across-link) pairs.
func (s *Smoother) HPairs() int { return s.hPairs }

// ApplyG returns the continuity Laplacian applied to x: the matrix L_G(x)
// with Σ_pairs (x_a-x_b)² = <x, L_G(x)>.
func (s *Smoother) ApplyG(x *mat.Matrix) *mat.Matrix {
	out := mat.New(s.m, s.n)
	for i := 0; i < s.m; i++ {
		xi := x.RawRow(i)
		oi := out.RawRow(i)
		for _, p := range s.rowPairs[i] {
			d := xi[p.j1] - xi[p.j2]
			oi[p.j1] += d
			oi[p.j2] -= d
		}
	}
	return out
}

// ApplyH returns the similarity Laplacian applied to x.
func (s *Smoother) ApplyH(x *mat.Matrix) *mat.Matrix {
	out := mat.New(s.m, s.n)
	for j := 0; j < s.n; j++ {
		for _, p := range s.colPairs[j] {
			d := x.At(p.i1, j) - x.At(p.i2, j)
			out.Add(p.i1, j, d)
			out.Add(p.i2, j, -d)
		}
	}
	return out
}

// PenaltyG returns the continuity penalty Σ (x_a - x_b)².
func (s *Smoother) PenaltyG(x *mat.Matrix) float64 {
	var sum float64
	for i := 0; i < s.m; i++ {
		xi := x.RawRow(i)
		for _, p := range s.rowPairs[i] {
			d := xi[p.j1] - xi[p.j2]
			sum += d * d
		}
	}
	return sum
}

// PenaltyH returns the similarity penalty Σ (x_a - x_b)².
func (s *Smoother) PenaltyH(x *mat.Matrix) float64 {
	var sum float64
	for j := 0; j < s.n; j++ {
		for _, p := range s.colPairs[j] {
			d := x.At(p.i1, j) - x.At(p.i2, j)
			sum += d * d
		}
	}
	return sum
}
