package core

import (
	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/taflocerr"
)

// SystemState is the complete calibrated state of a System: everything an
// identical replacement needs to publish the same estimates without
// redoing the day-0 survey, mask learning, reference selection, or any
// LoLi-IR reconstruction. It is the unit internal/snap serializes for
// warm restarts.
//
// A custom Matcher implementation injected through SystemOptions.Matcher
// cannot travel in a state (it is arbitrary code); only MatcherName is
// captured. A system built with an unregistered custom matcher restores
// onto the built-in mask-aware weighted path.
type SystemState struct {
	// Deployment geometry.
	Links         []geom.Segment
	GridWidth     float64
	GridHeight    float64
	GridCellSize  float64
	EllipseExcess float64

	// Construction options (minus the non-serializable Matcher impl).
	LoLi            LoLiOptions
	Refs            ReferenceOptions
	MatcherName     string
	RecSigmaDB      float64
	MaskThresholdDB float64

	// Calibrated state.
	Mask     *mat.Matrix // undistorted-entry mask the reconstructor uses
	X        *mat.Matrix // current fingerprint database (M x N)
	Observed *mat.Matrix // nil = every entry measured (full survey)
	Vacant   []float64   // current vacant baseline (length M)
	RefCells []int       // current reference cell indices
}

// ExportState captures the system's calibrated state as an independent
// deep copy; the system may keep serving (and updating) while the copy is
// serialized. The export reads one immutable Model, so a snapshot taken
// mid-update is always internally consistent — entirely the old
// calibration or entirely the new, never a torn mix.
func (s *System) ExportState() *SystemState {
	m := s.model.Load()
	st := &SystemState{
		Links:           append([]geom.Segment(nil), s.layout.Links...),
		GridWidth:       s.layout.Grid.Width,
		GridHeight:      s.layout.Grid.Height,
		GridCellSize:    s.layout.Grid.CellSize,
		EllipseExcess:   s.layout.EllipseExcess,
		LoLi:            s.opts.LoLi,
		Refs:            s.opts.Refs,
		MatcherName:     s.opts.MatcherName,
		RecSigmaDB:      s.opts.RecSigmaDB,
		MaskThresholdDB: s.opts.MaskThresholdDB,
		Mask:            s.recon.Mask().Clone(),
		X:               m.x.Clone(),
		Vacant:          append([]float64(nil), m.vacant...),
		RefCells:        append([]int(nil), m.refs...),
	}
	if m.observed != nil {
		st.Observed = m.observed.Clone()
	}
	return st
}

// RestoreSystem rebuilds a System from an exported state without any
// recalibration: no survey, no mask learning, no reference selection.
// Every structural invariant is revalidated — a state decoded from an
// untrusted or damaged snapshot fails closed with
// taflocerr.CodeSnapshotCorrupt rather than producing a system that
// panics later.
func RestoreSystem(st *SystemState) (*System, error) {
	if st == nil {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: nil system state")
	}
	grid, err := geom.NewGrid(st.GridWidth, st.GridHeight, st.GridCellSize)
	if err != nil {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: restore: %w", err)
	}
	layout, err := NewLayout(st.Links, grid, st.EllipseExcess)
	if err != nil {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: restore: %w", err)
	}
	m, n := layout.M(), layout.N()
	if st.X == nil || st.X.Rows() != m || st.X.Cols() != n {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"core: restore: fingerprint database must be %dx%d", m, n)
	}
	if !st.X.IsFinite() {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"core: restore: fingerprint database has non-finite entries")
	}
	if st.Observed != nil && (st.Observed.Rows() != m || st.Observed.Cols() != n) {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"core: restore: observed mask must be %dx%d", m, n)
	}
	if len(st.Vacant) != m {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"core: restore: vacant baseline must have length %d", m)
	}
	if len(st.RefCells) == 0 {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: restore: no reference cells")
	}
	for _, r := range st.RefCells {
		if r < 0 || r >= n {
			return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
				"core: restore: reference cell %d out of range %d", r, n)
		}
	}
	recon, err := NewReconstructorWithMask(layout, st.Mask, st.LoLi)
	if err != nil {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: restore: %w", err)
	}
	opts := SystemOptions{
		LoLi:            st.LoLi,
		Refs:            st.Refs,
		MatcherName:     st.MatcherName,
		RecSigmaDB:      st.RecSigmaDB,
		MaskThresholdDB: st.MaskThresholdDB,
	}
	if opts.MatcherName != "" && opts.MatcherName != MatcherWKNN {
		mm, merr := NewMatcherByName(opts.MatcherName)
		if merr != nil {
			return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "core: restore: %w", merr)
		}
		opts.Matcher = mm
	}
	sys := &System{
		layout:  layout,
		opts:    opts,
		recon:   recon,
		matcher: resolveMatcher(opts),
	}
	var observed *mat.Matrix
	if st.Observed != nil {
		observed = st.Observed.Clone()
	}
	sys.install(st.X.Clone(), observed,
		append([]float64(nil), st.Vacant...),
		append([]int(nil), st.RefCells...))
	return sys, nil
}
