package core

import (
	"fmt"

	"tafloc/internal/mat"
)

// Model is the immutable read plane of a calibrated zone: the
// fingerprint database (radio map), the deployment geometry, the
// observed-entry mask, the resolved matcher, and the detector's vacant
// baseline, frozen together at one calibration instant. A Model is
// never mutated after construction, so any number of goroutines may
// Locate against the same Model — or against different Models of the
// same System mid-swap — without locks. System publishes its current
// Model through an atomic pointer and replaces it wholesale on every
// Update (RCU style): readers that loaded the old Model keep a fully
// consistent view, never a torn mix of old and new calibration.
type Model struct {
	layout   *Layout
	x        *mat.Matrix // fingerprint database, M x N
	observed *mat.Matrix // nil = every entry measured (full survey)
	vacant   []float64   // vacant baseline (detector reference), length M
	refs     []int       // reference cell indices
	matcher  Matcher     // resolved matcher; never nil
}

// NewModel assembles an immutable Model from its parts. The Model takes
// ownership of every argument — callers must not mutate x, observed,
// vacant, or refs afterwards; immutability is what makes the Model safe
// to share without locks. A nil matcher selects the mask-aware
// WeightedKNNMatcher. vacant and refs may be nil for matcher-only use
// (Detect and References are then unavailable).
func NewModel(layout *Layout, x, observed *mat.Matrix, vacant []float64, refs []int, matcher Matcher) (*Model, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	m, n := layout.M(), layout.N()
	if x == nil || x.Rows() != m || x.Cols() != n {
		return nil, fmt.Errorf("core: model database must be %dx%d", m, n)
	}
	if observed != nil && (observed.Rows() != m || observed.Cols() != n) {
		return nil, fmt.Errorf("core: observed mask must be %dx%d", m, n)
	}
	if vacant != nil && len(vacant) != m {
		return nil, fmt.Errorf("core: vacant baseline must have length %d", m)
	}
	for _, r := range refs {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("core: reference cell %d out of range %d", r, n)
		}
	}
	if matcher == nil {
		matcher = WeightedKNNMatcher{}
	}
	return &Model{layout: layout, x: x, observed: observed, vacant: vacant, refs: refs, matcher: matcher}, nil
}

// Layout returns the deployment geometry.
func (m *Model) Layout() *Layout { return m.layout }

// Fingerprints returns a copy of the fingerprint database.
func (m *Model) Fingerprints() *mat.Matrix { return m.x.Clone() }

// Observed returns a copy of the observed-entry mask, or nil when every
// entry is measured.
func (m *Model) Observed() *mat.Matrix {
	if m.observed == nil {
		return nil
	}
	return m.observed.Clone()
}

// Vacant returns a copy of the vacant baseline.
func (m *Model) Vacant() []float64 { return append([]float64(nil), m.vacant...) }

// References returns a copy of the reference cell indices.
func (m *Model) References() []int { return append([]int(nil), m.refs...) }

// Matcher returns the resolved matcher the model localizes with.
func (m *Model) Matcher() Matcher { return m.matcher }

// Locate matches a live measurement vector against the model. sc holds
// the per-call working buffers; passing the same Scratch across calls
// makes the steady state allocation-free. A nil sc borrows one from the
// shared pool. Locate is safe to call from any number of goroutines
// concurrently (each with its own Scratch).
func (m *Model) Locate(y []float64, sc *Scratch) (Location, error) {
	if sc == nil {
		sc = GetScratch()
		defer PutScratch(sc)
	}
	return m.matcher.Match(m, y, sc)
}

// Detect reports whether a target is present, comparing y against the
// model's vacant baseline with the plain MAD detector.
func (m *Model) Detect(y []float64, thresholdDB float64) (bool, float64) {
	return Detector{Vacant: m.vacant, ThresholdDB: thresholdDB}.Present(y)
}
