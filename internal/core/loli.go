package core

import (
	"context"
	"fmt"
	"math"

	"tafloc/internal/mat"
	"tafloc/taflocerr"
)

// LoLiOptions are the hyperparameters of the LoLi-IR reconstruction
// algorithm (the paper's alternating iterative solver over the low-rank
// factors L and R, hence "Low-rank / Linear-representation Iterative
// Reconstruction").
type LoLiOptions struct {
	// Rank is the factorization rank r. Zero lets the solver pick the
	// energy rank of the initializer (clamped to [2, n]).
	Rank int
	// Lambda is the Tikhonov weight on ‖L‖²+‖R‖² (the rank surrogate).
	Lambda float64
	// Alpha weights the linear-representation term ‖X̂ - X_R·Z‖².
	Alpha float64
	// Beta weights the along-link continuity term (G).
	Beta float64
	// Gamma weights the adjacent-link similarity term (H).
	Gamma float64
	// Mu is the ridge used in the closed-form Z update.
	Mu float64
	// MaxIter bounds the outer alternations; Tol stops early when the
	// relative objective decrease falls below it.
	MaxIter int
	Tol     float64
	// CGTol and CGMaxIter control the inner conjugate-gradient solves.
	CGTol     float64
	CGMaxIter int
}

// DefaultLoLiOptions returns the hyperparameters used in the
// reproduction's experiments.
func DefaultLoLiOptions() LoLiOptions {
	return LoLiOptions{
		Rank:      0,
		Lambda:    0.05,
		Alpha:     0.6,
		Beta:      0.35,
		Gamma:     0.15,
		Mu:        1e-2,
		MaxIter:   40,
		Tol:       1e-5,
		CGTol:     1e-7,
		CGMaxIter: 120,
	}
}

// Validate reports the first invalid option, or nil.
func (o LoLiOptions) Validate() error {
	switch {
	case o.Lambda < 0 || o.Alpha < 0 || o.Beta < 0 || o.Gamma < 0 || o.Mu < 0:
		return fmt.Errorf("core: LoLi weights must be non-negative")
	case o.Rank < 0:
		return fmt.Errorf("core: negative rank %d", o.Rank)
	case o.Lambda == 0 && o.Alpha == 0:
		return fmt.Errorf("core: need Lambda or Alpha positive for a well-posed problem")
	}
	return nil
}

// UpdateInput bundles the cheap measurements a TafLoc update consumes.
type UpdateInput struct {
	// RefIdx are the reference cell indices (ascending, distinct).
	RefIdx []int
	// RefCols is M x len(RefIdx): freshly measured fingerprint columns at
	// the reference locations.
	RefCols *mat.Matrix
	// Vacant is the fresh empty-room RSS per link (length M), filling the
	// undistorted entries.
	Vacant []float64
}

// Validate checks the input against a layout.
func (u UpdateInput) Validate(l *Layout) error {
	if len(u.RefIdx) == 0 {
		return fmt.Errorf("core: no reference locations")
	}
	if u.RefCols == nil || u.RefCols.Rows() != l.M() || u.RefCols.Cols() != len(u.RefIdx) {
		return fmt.Errorf("core: RefCols must be %dx%d", l.M(), len(u.RefIdx))
	}
	if len(u.Vacant) != l.M() {
		return fmt.Errorf("core: Vacant must have length %d, got %d", l.M(), len(u.Vacant))
	}
	seen := make(map[int]bool)
	for _, j := range u.RefIdx {
		if j < 0 || j >= l.N() {
			return fmt.Errorf("core: reference cell %d out of range %d", j, l.N())
		}
		if seen[j] {
			return fmt.Errorf("core: duplicate reference cell %d", j)
		}
		seen[j] = true
	}
	return nil
}

// Reconstruction is the result of one LoLi-IR run.
type Reconstruction struct {
	// X is the reconstructed M x N fingerprint matrix.
	X *mat.Matrix
	// Observed marks which entries of X were measured (1) rather than
	// inferred (0): the undistorted entries plus the reference columns.
	// Matchers use it to weight trusted entries above reconstructed ones.
	Observed *mat.Matrix
	// Rank is the factorization rank used.
	Rank int
	// Iterations is the number of outer alternations performed.
	Iterations int
	// Objective traces the objective value after every iteration.
	Objective []float64
	// Converged reports whether the relative-decrease tolerance was met.
	Converged bool
}

// Reconstructor runs LoLi-IR for one layout, reusing the precomputed mask
// and smoothness structure across updates.
type Reconstructor struct {
	layout   *Layout
	opts     LoLiOptions
	mask     *mat.Matrix
	smoother *Smoother
}

// NewReconstructor builds a Reconstructor with the layout's geometric
// mask. Prefer NewReconstructorWithMask when a day-0 survey allows
// learning the mask empirically (MaskFromSurvey).
func NewReconstructor(l *Layout, opts LoLiOptions) (*Reconstructor, error) {
	return NewReconstructorWithMask(l, l.Mask(), opts)
}

// NewReconstructorWithMask builds a Reconstructor over an explicit
// undistorted-entry mask (1 = undistorted).
func NewReconstructorWithMask(l *Layout, mask *mat.Matrix, opts LoLiOptions) (*Reconstructor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if mask == nil || mask.Rows() != l.M() || mask.Cols() != l.N() {
		return nil, fmt.Errorf("core: mask must be %dx%d", l.M(), l.N())
	}
	return &Reconstructor{
		layout:   l,
		opts:     opts,
		mask:     mask.Clone(),
		smoother: NewSmootherFromMask(mask, l.Grid),
	}, nil
}

// Mask returns the undistorted-entry mask in use (not a copy; treat as
// read-only).
func (rc *Reconstructor) Mask() *mat.Matrix { return rc.mask }

// Layout returns the layout the reconstructor was built for.
func (rc *Reconstructor) Layout() *Layout { return rc.layout }

// Reconstruct runs LoLi-IR on the given update measurements and returns
// the reconstructed fingerprint matrix.
//
// The observation set is the union of (a) undistorted entries, valued at
// the fresh vacant capture, and (b) every entry of the reference columns.
// The solver alternates: closed-form ridge update of the correlation
// matrix Z, then conjugate-gradient solves of the two factor subproblems.
//
// Implementation note: internally the solver works in attenuation space,
// A = vacant·1ᵀ - X. The affine shift leaves the paper's objective
// unchanged (every term is translation-covariant once X_I and X_R are
// shifted identically) but removes the large shared baseline, so the
// low-rank structure the factorization captures is the target-induced
// distortion pattern itself rather than a rank-1 baseline that would
// otherwise dominate the spectrum and defeat rank selection.
func (rc *Reconstructor) Reconstruct(in UpdateInput) (*Reconstruction, error) {
	return rc.ReconstructContext(context.Background(), in)
}

// ReconstructContext is Reconstruct with cancellation: ctx is checked
// before the expensive initialization and once per outer alternation, so
// a long LoLi-IR run on a large deployment terminates within one
// iteration of the context being cancelled. The returned error wraps
// ctx.Err() and carries taflocerr.CodeCancelled.
func (rc *Reconstructor) ReconstructContext(ctx context.Context, in UpdateInput) (*Reconstruction, error) {
	l := rc.layout
	if err := in.Validate(l); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, taflocerr.Errorf(taflocerr.CodeCancelled, "core: reconstruction cancelled: %w", err)
	}
	m, n := l.M(), l.N()
	o := rc.opts

	// Observation mask and values, in attenuation space: undistorted
	// entries observe zero attenuation; reference columns observe
	// vacant - measured.
	obs := rc.mask.Clone() // 1 = observed
	xi := mat.New(m, n)
	for k, j := range in.RefIdx {
		for i := 0; i < m; i++ {
			obs.Set(i, j, 1)
			xi.Set(i, j, in.Vacant[i]-in.RefCols.At(i, k))
		}
	}

	// Reference matrix in attenuation space.
	xr := mat.New(m, len(in.RefIdx))
	for k := range in.RefIdx {
		for i := 0; i < m; i++ {
			xr.Set(i, k, in.Vacant[i]-in.RefCols.At(i, k))
		}
	}

	// ---- Initialization ----
	// Fill unobserved entries per column by ridge regression of the
	// observed rows onto the reference columns, then truncate by SVD.
	x0 := rc.initialize(obs, xi, xr)
	svd := mat.SVDecompose(x0)
	rank := o.Rank
	if rank <= 0 {
		// In attenuation space the spectrum directly reflects the
		// distortion structure, so a high energy fraction recovers the
		// true rank; keep one slack dimension for drift.
		rank = svd.EnergyRank(0.995) + 1
		if rank < 2 {
			rank = 2
		}
	}
	maxRank := len(svd.S)
	if rank > maxRank {
		rank = maxRank
	}
	lf, rf := svd.Truncate(rank)

	// Initial Z against the initial estimate.
	z, err := mat.RidgeSolve(xr, mat.MulT(lf, rf), o.Mu)
	if err != nil {
		return nil, fmt.Errorf("core: initial Z solve: %w", err)
	}

	maxIter := o.MaxIter
	if maxIter <= 0 {
		maxIter = 40
	}
	tol := o.Tol
	if tol <= 0 {
		tol = 1e-5
	}

	rec := &Reconstruction{Rank: rank}
	prevObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, taflocerr.Errorf(taflocerr.CodeCancelled,
				"core: reconstruction cancelled after %d iterations: %w", iter, err)
		}
		xrz := mat.Mul(xr, z)

		// ---- L update: solve A_L(L) = b_L by CG ----
		opL := mat.LinOpFunc(func(v *mat.Matrix) *mat.Matrix {
			xh := mat.MulT(v, rf) // M x N
			acc := mat.Hadamard(obs, xh)
			mat.AXPY(acc, o.Alpha, xh)
			if o.Beta > 0 {
				mat.AXPY(acc, o.Beta, rc.smoother.ApplyG(xh))
			}
			if o.Gamma > 0 {
				mat.AXPY(acc, o.Gamma, rc.smoother.ApplyH(xh))
			}
			out := mat.Mul(acc, rf) // M x r
			mat.AXPY(out, o.Lambda, v)
			return out
		})
		bL := mat.Mul(mat.Hadamard(obs, xi), rf)
		mat.AXPY(bL, o.Alpha, mat.Mul(xrz, rf))
		lf, _ = mat.CG(opL, bL, lf, o.CGTol, o.CGMaxIter)

		// ---- R update: solve A_R(R) = b_R by CG (v is N x r, X̂ = L·vᵀ) ----
		opR := mat.LinOpFunc(func(v *mat.Matrix) *mat.Matrix {
			xh := mat.MulT(lf, v) // M x N
			acc := mat.Hadamard(obs, xh)
			mat.AXPY(acc, o.Alpha, xh)
			if o.Beta > 0 {
				mat.AXPY(acc, o.Beta, rc.smoother.ApplyG(xh))
			}
			if o.Gamma > 0 {
				mat.AXPY(acc, o.Gamma, rc.smoother.ApplyH(xh))
			}
			out := mat.TMul(acc, lf) // N x r
			mat.AXPY(out, o.Lambda, v)
			return out
		})
		bR := mat.TMul(mat.Hadamard(obs, xi), lf)
		mat.AXPY(bR, o.Alpha, mat.TMul(xrz, lf))
		rf, _ = mat.CG(opR, bR, rf, o.CGTol, o.CGMaxIter)

		// ---- Z update (closed form) ----
		xhat := mat.MulT(lf, rf)
		z, err = mat.RidgeSolve(xr, xhat, o.Mu)
		if err != nil {
			return nil, fmt.Errorf("core: Z solve at iter %d: %w", iter, err)
		}

		obj := rc.objective(lf, rf, obs, xi, mat.Mul(xr, z))
		rec.Objective = append(rec.Objective, obj)
		rec.Iterations = iter + 1
		if prevObj-obj <= tol*math.Max(1, math.Abs(prevObj)) && iter > 0 {
			rec.Converged = true
			break
		}
		prevObj = obj
	}

	// Convert back to fingerprint space: X = vacant·1ᵀ - Â, clamping
	// observed entries exactly — they were measured, not inferred.
	ahat := mat.MulT(lf, rf)
	xhat := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if obs.At(i, j) == 1 {
				xhat.Set(i, j, in.Vacant[i]-xi.At(i, j))
			} else {
				xhat.Set(i, j, in.Vacant[i]-ahat.At(i, j))
			}
		}
	}
	rec.X = xhat
	rec.Observed = obs
	if !xhat.IsFinite() {
		return nil, fmt.Errorf("core: reconstruction diverged to non-finite values")
	}
	return rec, nil
}

// initialize fills unobserved entries by per-column ridge regression onto
// the reference columns using only that column's observed rows. Columns
// are independent work items, so the fill fans out across the mat worker
// pool: each worker owns a disjoint column range of out.
func (rc *Reconstructor) initialize(obs, xi, xr *mat.Matrix) *mat.Matrix {
	m, n := xi.Dims()
	nr := xr.Cols()
	out := xi.Clone()
	mat.ParallelFor(n, 8, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			rc.initColumn(obs, xi, xr, out, j, m, nr)
		}
	})
	return out
}

// initColumn fills the unobserved entries of column j of out.
func (rc *Reconstructor) initColumn(obs, xi, xr, out *mat.Matrix, j, m, nr int) {
	// Gather observed rows of column j.
	var rows []int
	for i := 0; i < m; i++ {
		if obs.At(i, j) == 1 {
			rows = append(rows, i)
		}
	}
	if len(rows) == m {
		return // fully observed
	}
	var zj []float64
	if len(rows) >= 1 {
		a := mat.New(len(rows), nr)
		b := make([]float64, len(rows))
		for k, i := range rows {
			for c := 0; c < nr; c++ {
				a.Set(k, c, xr.At(i, c))
			}
			b[k] = xi.At(i, j)
		}
		bm := mat.New(len(rows), 1)
		bm.SetCol(0, b)
		if sol, err := mat.RidgeSolve(a, bm, 0.5); err == nil {
			zj = sol.Col(0)
		}
	}
	for i := 0; i < m; i++ {
		if obs.At(i, j) == 1 {
			continue
		}
		var v float64
		if zj != nil {
			for c := 0; c < nr; c++ {
				v += xr.At(i, c) * zj[c]
			}
		} else {
			// No observations in this column at all: fall back to the
			// mean of the reference columns for this link.
			for c := 0; c < nr; c++ {
				v += xr.At(i, c)
			}
			v /= float64(nr)
		}
		out.Set(i, j, v)
	}
}

// objective evaluates the full LoLi-IR objective.
func (rc *Reconstructor) objective(lf, rf, obs, xi, xrz *mat.Matrix) float64 {
	o := rc.opts
	xhat := mat.MulT(lf, rf)
	obj := o.Lambda * (mat.FrobNorm2(lf) + mat.FrobNorm2(rf))
	diff := mat.Hadamard(obs, mat.Sub(xhat, xi))
	obj += mat.FrobNorm2(diff)
	obj += o.Alpha * mat.FrobNorm2(mat.Sub(xhat, xrz))
	if o.Beta > 0 {
		obj += o.Beta * rc.smoother.PenaltyG(xhat)
	}
	if o.Gamma > 0 {
		obj += o.Gamma * rc.smoother.PenaltyH(xhat)
	}
	return obj
}
