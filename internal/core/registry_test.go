package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tafloc/taflocerr"
)

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{MatcherNN, MatcherKNN, MatcherBayes, MatcherWKNN} {
		m, err := NewMatcherByName(name)
		if err != nil {
			t.Fatalf("builtin matcher %q: %v", name, err)
		}
		if m == nil {
			t.Fatalf("builtin matcher %q: nil", name)
		}
	}
	vac := []float64{-40, -41, -42}
	for _, name := range []string{DetectorMAD, DetectorRMS, DetectorMaxLink} {
		d, err := NewDetectorByName(name, vac, 1)
		if err != nil {
			t.Fatalf("builtin detector %q: %v", name, err)
		}
		if present, _ := d.Present(vac); present {
			t.Errorf("detector %q: vacant baseline read as present", name)
		}
		disturbed := []float64{-40, -41, -50}
		if present, _ := d.Present(disturbed); !present {
			t.Errorf("detector %q: 8 dB single-link disturbance read as absent", name)
		}
	}
}

func TestRegistryUnknownNames(t *testing.T) {
	if _, err := NewMatcherByName("nope"); !errors.Is(err, taflocerr.ErrBadRequest) {
		t.Errorf("unknown matcher: %v, want CodeBadRequest", err)
	}
	if _, err := NewDetectorByName("nope", nil, 1); !errors.Is(err, taflocerr.ErrBadRequest) {
		t.Errorf("unknown detector: %v, want CodeBadRequest", err)
	}
	if err := RegisterMatcher("", nil); err == nil {
		t.Error("empty registration accepted")
	}
}

func TestRegisterCustomMatcher(t *testing.T) {
	if err := RegisterMatcher("custom-nn", func() Matcher { return NNMatcher{} }); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatcherByName("custom-nn"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range MatcherNames() {
		if n == "custom-nn" {
			found = true
		}
	}
	if !found {
		t.Errorf("custom name missing from MatcherNames: %v", MatcherNames())
	}
}

func TestSystemMatcherByName(t *testing.T) {
	f := newSystemFixture(t, 11)
	survey := f.sys.Fingerprints()
	vac := f.sys.Vacant()

	opts := DefaultSystemOptions()
	opts.MatcherName = MatcherBayes
	sys, err := NewSystem(f.l, survey, vac, opts)
	if err != nil {
		t.Fatal(err)
	}
	y := averagedLive(f.dep.Channel, f.dep.Grid.Center(10), 0, 8)
	loc, err := sys.Locate(y)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Confidence == 0 {
		t.Error("bayes matcher selected by name should report a confidence")
	}

	opts.MatcherName = "no-such-matcher"
	if _, err := NewSystem(f.l, survey, vac, opts); !errors.Is(err, taflocerr.ErrBadRequest) {
		t.Errorf("unknown matcher name at construction: %v, want CodeBadRequest", err)
	}

	// "wknn" selects the built-in mask-aware path, equivalent to leaving
	// the name empty.
	opts.MatcherName = MatcherWKNN
	if _, err := NewSystem(f.l, survey, vac, opts); err != nil {
		t.Fatalf("wknn by name: %v", err)
	}
}

// TestReconstructContextCancelled checks both cancellation points: an
// already-cancelled context fails before initialization, and cancelling
// mid-run terminates within iterations, not at MaxIter.
func TestReconstructContextCancelled(t *testing.T) {
	f := newSystemFixture(t, 12)
	refCols, _ := f.dep.SurveyCells(f.sys.References(), 60)
	vac := f.dep.VacantCapture(60, 50)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.sys.UpdateContext(ctx, refCols, vac); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled update: %v, want context.Canceled in chain", err)
	} else if !errors.Is(err, taflocerr.ErrCancelled) {
		t.Fatalf("pre-cancelled update: %v, want CodeCancelled", err)
	}

	// Mid-run: force a long run (tiny tolerance, huge iteration budget)
	// and cancel shortly after it starts. The solver must return well
	// before the iteration budget would.
	opts := DefaultLoLiOptions()
	opts.MaxIter = 1_000_000
	opts.Tol = 1e-300
	rc, err := NewReconstructor(f.l, opts)
	if err != nil {
		t.Fatal(err)
	}
	in := UpdateInput{RefIdx: f.sys.References(), RefCols: refCols, Vacant: vac}
	ctx2, cancel2 := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := rc.ReconstructContext(ctx2, in)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel2()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel: %v, want context.Canceled in chain", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("reconstruction did not terminate after cancellation")
	}

	// LocateContext honours an already-cancelled context too.
	if _, err := f.sys.LocateContext(ctx, make([]float64, f.l.M())); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled locate: %v", err)
	}
}
