package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tafloc/taflocerr"
)

// Canonical names of the built-in strategies. Third parties may register
// additional names; these are always present.
const (
	// MatcherNN is plain nearest-neighbour matching.
	MatcherNN = "nn"
	// MatcherKNN is inverse-distance-weighted k-NN centroid refinement.
	MatcherKNN = "knn"
	// MatcherBayes is the probabilistic matcher with posterior confidences.
	MatcherBayes = "bayes"
	// MatcherWKNN is the mask-aware weighted k-NN matcher. The
	// observed-entry mask travels in the Model the matcher is applied
	// to, so every WeightedKNNMatcher — built-in, registry-built, or
	// injected — weighs measured entries above reconstructed ones on a
	// post-update Model and runs unmasked on a Model without one.
	MatcherWKNN = "wknn"

	// DetectorMAD gates presence on the mean absolute deviation from the
	// vacant baseline (the paper's detector).
	DetectorMAD = "mad"
	// DetectorRMS gates on the root-mean-square deviation, which weighs a
	// single strongly-disturbed link higher than MAD does.
	DetectorRMS = "rms"
	// DetectorMaxLink gates on the single most-disturbed link — the most
	// sensitive choice for sparse deployments where a target shadows only
	// one or two links at a time.
	DetectorMaxLink = "maxlink"
)

// MatcherFactory builds a fresh Matcher instance.
type MatcherFactory func() Matcher

// DetectorFactory builds a presence detector over a vacant baseline and
// a threshold in dB.
type DetectorFactory func(vacant []float64, thresholdDB float64) Presence

// Presence is the detection-gate interface: report whether a live
// measurement vector indicates a target, along with the detection
// signal in dB. Implementations must be safe for concurrent use.
type Presence interface {
	Present(y []float64) (bool, float64)
}

var registry struct {
	mu        sync.RWMutex
	matchers  map[string]MatcherFactory
	detectors map[string]DetectorFactory
}

func init() {
	registry.matchers = map[string]MatcherFactory{
		MatcherNN:    func() Matcher { return NNMatcher{} },
		MatcherKNN:   func() Matcher { return KNNMatcher{} },
		MatcherBayes: func() Matcher { return BayesMatcher{} },
		MatcherWKNN:  func() Matcher { return WeightedKNNMatcher{} },
	}
	registry.detectors = map[string]DetectorFactory{
		DetectorMAD: func(vacant []float64, thr float64) Presence {
			return Detector{Vacant: vacant, ThresholdDB: thr}
		},
		DetectorRMS: func(vacant []float64, thr float64) Presence {
			return RMSDetector{Vacant: vacant, ThresholdDB: thr}
		},
		DetectorMaxLink: func(vacant []float64, thr float64) Presence {
			return MaxLinkDetector{Vacant: vacant, ThresholdDB: thr}
		},
	}
}

// RegisterMatcher installs (or replaces) a named matcher factory, making
// the strategy selectable by name in SystemOptions.MatcherName, serve
// configurations, and command-line flags. Safe for concurrent use.
func RegisterMatcher(name string, f MatcherFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: RegisterMatcher needs a name and a factory")
	}
	registry.mu.Lock()
	registry.matchers[name] = f
	registry.mu.Unlock()
	return nil
}

// RegisterDetector installs (or replaces) a named detector factory.
func RegisterDetector(name string, f DetectorFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: RegisterDetector needs a name and a factory")
	}
	registry.mu.Lock()
	registry.detectors[name] = f
	registry.mu.Unlock()
	return nil
}

// NewMatcherByName builds a matcher from the registry.
func NewMatcherByName(name string) (Matcher, error) {
	registry.mu.RLock()
	f, ok := registry.matchers[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"core: unknown matcher %q (registered: %v)", name, MatcherNames())
	}
	return f(), nil
}

// NewDetectorByName builds a presence detector from the registry.
func NewDetectorByName(name string, vacant []float64, thresholdDB float64) (Presence, error) {
	registry.mu.RLock()
	f, ok := registry.detectors[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"core: unknown detector %q (registered: %v)", name, DetectorNames())
	}
	return f(vacant, thresholdDB), nil
}

// MatcherNames returns the registered matcher names, sorted.
func MatcherNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.matchers))
	for n := range registry.matchers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DetectorNames returns the registered detector names, sorted.
func DetectorNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	names := make([]string, 0, len(registry.detectors))
	for n := range registry.detectors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RMSDetector declares a target present when the root-mean-square
// deviation from the vacant baseline exceeds the threshold.
type RMSDetector struct {
	Vacant      []float64
	ThresholdDB float64
}

// Present implements Presence.
func (d RMSDetector) Present(y []float64) (bool, float64) {
	if len(y) != len(d.Vacant) {
		return false, 0
	}
	thr := d.ThresholdDB
	if thr <= 0 {
		thr = 1
	}
	var s float64
	for i := range y {
		diff := y[i] - d.Vacant[i]
		s += diff * diff
	}
	dev := math.Sqrt(s / float64(len(y)))
	return dev > thr, dev
}

// MaxLinkDetector declares a target present when any single link
// deviates from the vacant baseline by more than the threshold.
type MaxLinkDetector struct {
	Vacant      []float64
	ThresholdDB float64
}

// Present implements Presence.
func (d MaxLinkDetector) Present(y []float64) (bool, float64) {
	if len(y) != len(d.Vacant) {
		return false, 0
	}
	thr := d.ThresholdDB
	if thr <= 0 {
		thr = 1
	}
	var dev float64
	for i := range y {
		if diff := math.Abs(y[i] - d.Vacant[i]); diff > dev {
			dev = diff
		}
	}
	return dev > thr, dev
}
