package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tafloc/internal/api"
	"tafloc/internal/geom"
	"tafloc/taflocerr"
)

// streamTestPoint is a position comfortably inside the test deployment.
var streamTestPoint = geom.Point{X: 1.5, Y: 1.2}

// streamAcks POSTs body to the NDJSON ingest route and returns the
// parsed ack lines (trailer last).
func streamAcks(t *testing.T, srv *httptest.Server, zone, body string) []api.StreamAck {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v2/zones/"+zone+"/reports:stream",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var acks []api.StreamAck
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var a api.StreamAck
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Text(), err)
		}
		acks = append(acks, a)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return acks
}

// TestReportStreamProtocol pins the NDJSON contract: per-line acks in
// order, malformed and invalid lines cost exactly one line each, and
// the trailer's accounting adds up.
func TestReportStreamProtocol(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	good, _ := json.Marshal(targetBatch(dep, streamTestPoint))
	badLink := `[{"link":99,"rss":-40}]`
	body := string(good) + "\n" +
		"this is not json\n" +
		"\n" + // blank keepalive, not a line
		badLink + "\n" +
		string(good) + "\n"

	acks := streamAcks(t, srv, "z", body)
	if len(acks) != 5 {
		t.Fatalf("got %d response lines, want 4 acks + trailer: %+v", len(acks), acks)
	}
	batchLen := len(targetBatch(dep, streamTestPoint))
	for i, want := range []api.StreamAck{
		{Seq: 1, Accepted: batchLen},
		{Seq: 2, Code: taflocerr.CodeBadRequest},
		{Seq: 3, Code: taflocerr.CodeBadLink},
		{Seq: 4, Accepted: batchLen},
	} {
		got := acks[i]
		if got.Seq != want.Seq || got.Accepted != want.Accepted || got.Code != want.Code {
			t.Errorf("ack %d: got %+v, want seq=%d accepted=%d code=%q",
				i, got, want.Seq, want.Accepted, want.Code)
		}
	}
	tr := acks[4].Trailer
	if tr == nil {
		t.Fatalf("last line is not a trailer: %+v", acks[4])
	}
	want := api.StreamSummary{
		Lines:    4,
		Reports:  uint64(2*batchLen + 1), // the unparsable line contributes none; bad-link line has 1
		Accepted: uint64(2 * batchLen),
		Shed:     0,
		Rejected: 1,
	}
	if *tr != want {
		t.Errorf("trailer %+v, want %+v", *tr, want)
	}

	// The accepted reports reached the same counters HTTP ingest uses.
	if st := svc.Stats()["z"]; st.Received != uint64(2*batchLen) || st.Dropped != 1 {
		t.Errorf("zone stats after stream: %+v", st)
	}
}

// TestReportStreamBackpressure checks shed accounting: on a stopped
// service with an unbuffered queue every batch sheds, acked queue_full,
// and the stream stays up.
func TestReportStreamBackpressure(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{QueueDepth: -1}) // unbuffered; no worker running
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	line, _ := json.Marshal(targetBatch(dep, streamTestPoint))
	body := string(line) + "\n" + string(line) + "\n"
	acks := streamAcks(t, srv, "z", body)
	if len(acks) != 3 {
		t.Fatalf("got %d response lines: %+v", len(acks), acks)
	}
	for i := 0; i < 2; i++ {
		if acks[i].Code != taflocerr.CodeQueueFull {
			t.Errorf("ack %d: %+v, want queue_full", i, acks[i])
		}
	}
	n := uint64(len(targetBatch(dep, streamTestPoint)))
	if tr := acks[2].Trailer; tr == nil || tr.Shed != 2*n || tr.Accepted != 0 {
		t.Errorf("trailer %+v, want shed=%d", acks[2].Trailer, 2*n)
	}
}

// TestReportStreamUnknownZone checks the stream is refused up front
// with the taxonomy error for a zone that does not exist.
func TestReportStreamUnknownZone(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v2/zones/nope/reports:stream",
		"application/x-ndjson", strings.NewReader("[]\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Code != taflocerr.CodeUnknownZone {
		t.Errorf("error body %+v, %v", eb, err)
	}
}

// TestReportStreamZoneRemovedMidStream: removing the zone ends the
// stream after an unknown_zone ack, with the trailer still delivered.
func TestReportStreamZoneRemovedMidStream(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	line, _ := json.Marshal(targetBatch(dep, streamTestPoint))
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/zones/z/reports:stream", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewScanner(resp.Body)

	// First line accepted while the zone is alive.
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	if !br.Scan() {
		t.Fatal("no ack for first line")
	}
	var ack api.StreamAck
	if err := json.Unmarshal(br.Bytes(), &ack); err != nil || ack.Code != "" {
		t.Fatalf("first ack %s: %v", br.Text(), err)
	}

	if err := svc.RemoveZone("z"); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	if !br.Scan() {
		t.Fatal("no ack after removal")
	}
	if err := json.Unmarshal(br.Bytes(), &ack); err != nil || ack.Code != taflocerr.CodeUnknownZone {
		t.Fatalf("post-removal ack %s: %v", br.Text(), err)
	}
	// The server ends the stream on its own: trailer, then EOF —
	// without the client closing its side first.
	if !br.Scan() {
		t.Fatal("no trailer after removal")
	}
	if err := json.Unmarshal(br.Bytes(), &ack); err != nil || ack.Trailer == nil {
		t.Fatalf("expected trailer, got %s (%v)", br.Text(), err)
	}
	if br.Scan() {
		t.Errorf("unexpected line after trailer: %s", br.Text())
	}
	pw.Close()
}
