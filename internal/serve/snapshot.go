package serve

import (
	"context"
	"errors"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/snap"
	"tafloc/internal/track"
	"tafloc/taflocerr"
)

// Persistence: a calibrated zone exports as a versioned, CRC-checked
// binary snapshot (see internal/snap) and restores without any
// recalibration — no survey, no mask learning, no reference selection,
// no LoLi-IR. A restored zone publishes the same estimates the original
// would for the same report stream, and keeps the serving configuration
// (window, detector, threshold) it was captured under even when the
// restoring service was built with different defaults.

// SnapshotZone exports a zone's calibrated deployment as an encoded
// snapshot. The export is a consistent deep copy — the zone keeps
// serving while the bytes are written out.
func (s *Service) SnapshotZone(id string) ([]byte, error) {
	sn, err := s.snapshotZone(id)
	if err != nil {
		return nil, err
	}
	return snap.Encode(sn)
}

func (s *Service) snapshotZone(id string) (*snap.Snapshot, error) {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownZone
	}
	history := z.zc.history
	if history == 0 {
		history = -1 // explicitly disabled — distinct from v1's "not recorded"
	}
	sn := &snap.Snapshot{
		Zone:    id,
		SavedAt: time.Now(),
		Config: snap.ZoneConfig{
			Window:            z.zc.window,
			DetectThresholdDB: z.zc.thrDB,
			Detector:          z.zc.detector,
			History:           history,
			Track:             z.zc.trk,
		},
		State: z.sys.ExportState(),
	}
	z.trackMu.Lock()
	if z.tracker != nil {
		ts := z.tracker.Export()
		sn.Track = &ts
	}
	z.trackMu.Unlock()
	return sn, nil
}

// RestoreZone warm-starts a zone from an encoded snapshot: decode,
// validate, rebuild the core.System, and register it under the
// snapshot's zone ID with the snapshot's per-zone serving
// configuration. It returns the restored zone's ID. Corrupt or
// truncated snapshots fail closed with taflocerr.CodeSnapshotCorrupt
// (or CodeSnapshotVersion); an already-registered ID fails with
// ErrZoneExists, leaving the live zone untouched.
func (s *Service) RestoreZone(data []byte) (string, error) {
	sn, err := snap.Decode(data)
	if err != nil {
		return "", err
	}
	return s.restoreSnapshot(sn)
}

// maxRestoreWindow bounds the per-link window length a snapshot may
// request. Legitimate windows are single-digit to low hundreds; the cap
// keeps a crafted-but-CRC-valid snapshot from driving newZone into a
// huge (or impossible) per-link allocation.
const maxRestoreWindow = 1 << 16

// maxRestoreHistory likewise bounds the history/trajectory ring depth a
// snapshot may request.
const maxRestoreHistory = 1 << 20

func (s *Service) restoreSnapshot(sn *snap.Snapshot) (string, error) {
	if sn.Zone == "" {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "serve: snapshot has no zone id")
	}
	if sn.Config.Window > maxRestoreWindow {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot window %d exceeds limit %d", sn.Config.Window, maxRestoreWindow)
	}
	if sn.Config.History > maxRestoreHistory {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot history depth %d exceeds limit %d", sn.Config.History, maxRestoreHistory)
	}
	sys, err := core.RestoreSystem(sn.State)
	if err != nil {
		return "", err
	}
	window := sn.Config.Window
	if window < 1 {
		window = s.cfg.Window
	}
	detector := sn.Config.Detector
	if detector == "" {
		detector = s.cfg.Detector
	}
	// History semantics: positive = the captured depth, -1 = the zone had
	// tracking explicitly disabled, 0 = a version-1 snapshot that never
	// recorded it (the restoring service's default applies). Same for the
	// zero-valued track options.
	history := sn.Config.History
	switch {
	case history == 0:
		history = s.cfg.History
	case history < 0:
		history = 0
	}
	trkOpts := sn.Config.Track
	if trkOpts == (track.Options{}) {
		trkOpts = s.cfg.Track
	}
	zc, err := newZoneConfig(window, sn.Config.DetectThresholdDB, detector, history, trkOpts)
	if err != nil {
		// The snapshot names a detector (or filter configuration) this
		// build does not accept; that is a property of the file, not of
		// the request.
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot for zone %q: %w", sn.Zone, err)
	}
	var tracker *track.Tracker
	if sn.Track != nil && zc.history > 0 {
		tracker, err = track.NewTrackerFromState(*sn.Track)
		if err != nil {
			return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
				"serve: snapshot for zone %q: tracker state: %w", sn.Zone, err)
		}
	}
	if err := s.addZone(sn.Zone, sys, zc, tracker); err != nil {
		return "", err
	}
	return sn.Zone, nil
}

// snapFileName maps a zone ID to its snapshot file name. IDs arrive
// over HTTP and may contain path separators; escaping keeps every zone
// inside the state directory and the mapping reversible.
func snapFileName(id string) string {
	return url.PathEscape(id) + ".snap"
}

// Checkpoint snapshots every registered zone into dir, one
// atomically-replaced "<escaped-id>.snap" file per zone. Zones removed
// mid-walk are skipped. The first write error aborts the walk.
//
// The service owns the directory: after writing, Checkpoint prunes
// ".snap" files whose zone is no longer registered, so a zone removed
// at runtime stays removed across restarts instead of resurrecting
// from its stale snapshot on the next boot.
func (s *Service) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, id := range s.Zones() {
		sn, err := s.snapshotZone(id)
		if err != nil {
			if errors.Is(err, ErrUnknownZone) {
				continue // removed since Zones()
			}
			return err
		}
		if err := snap.WriteFile(filepath.Join(dir, snapFileName(id)), sn); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".snap") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".snap"))
		if err != nil {
			continue // not a name this service wrote; leave it alone
		}
		// Re-check liveness per file rather than against the earlier
		// Zones() slice, so a zone added mid-checkpoint is never pruned.
		s.mu.RLock()
		_, live := s.zones[id]
		s.mu.RUnlock()
		if !live {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// RestoreDir warm-starts every "*.snap" file in dir, in sorted order.
// It returns the IDs restored. Files that fail to decode or restore do
// not stop the others; their errors are joined into the returned error,
// so a boot can both serve the healthy zones and report the damaged
// files. A missing directory restores nothing.
func (s *Service) RestoreDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".snap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var restored []string
	var errs []error
	for _, name := range names {
		sn, err := snap.ReadFile(filepath.Join(dir, name))
		if err != nil {
			errs = append(errs, taflocerr.Errorf(taflocerr.CodeOf(err), "serve: restore %s: %w", name, err))
			continue
		}
		id, err := s.restoreSnapshot(sn)
		if err != nil {
			errs = append(errs, taflocerr.Errorf(taflocerr.CodeOf(err), "serve: restore %s: %w", name, err))
			continue
		}
		restored = append(restored, id)
	}
	return restored, errors.Join(errs...)
}

// StartCheckpointer runs a background checkpoint loop: every interval
// it writes all zones to dir, and when ctx is cancelled (service
// shutdown, SIGTERM) it writes one final checkpoint before exiting, so
// the state on disk is at most one interval old in a crash and fully
// current on a clean stop. Checkpoint errors are reported to onErr (may
// be nil) and do not stop the loop. The goroutine is counted in Wait.
func (s *Service) StartCheckpointer(ctx context.Context, dir string, interval time.Duration, onErr func(error)) error {
	if interval <= 0 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: checkpoint interval must be positive, got %v", interval)
	}
	report := func(err error) {
		if err != nil && onErr != nil {
			onErr(err)
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				report(s.Checkpoint(dir))
				return
			case <-ticker.C:
				report(s.Checkpoint(dir))
			}
		}
	}()
	return nil
}
