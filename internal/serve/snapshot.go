package serve

import (
	"context"
	"errors"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/snap"
	"tafloc/internal/store"
	"tafloc/internal/track"
	"tafloc/taflocerr"
)

// Persistence: a calibrated zone exports as a versioned, CRC-checked
// binary snapshot (see internal/snap) and restores without any
// recalibration — no survey, no mask learning, no reference selection,
// no LoLi-IR. A restored zone publishes the same estimates the original
// would for the same report stream, and keeps the serving configuration
// (window, detector, threshold) it was captured under even when the
// restoring service was built with different defaults.
//
// Snapshots move through the internal/store.Store interface: Checkpoint
// and RestoreDir are thin wrappers binding the historical directory
// layout (store.Dir) to the store-generic CheckpointStore and
// RestoreStore, and the residency tier (residency.go) moves the same
// artifact through the same interface when it evicts and rehydrates
// zones — tiered storage and crash recovery share one format, one
// integrity check, and one store abstraction.

// SnapshotZone exports a zone's calibrated deployment as an encoded
// snapshot. The export is a consistent deep copy — the zone keeps
// serving while the bytes are written out. A cold zone is rehydrated
// first (an export wants the current Model, and touching a zone is
// exactly what makes it recently used).
func (s *Service) SnapshotZone(id string) ([]byte, error) {
	sn, err := s.snapshotZone(id)
	if err != nil {
		return nil, err
	}
	return snap.Encode(sn)
}

func (s *Service) snapshotZone(id string) (*snap.Snapshot, error) {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownZone
	}
	sys, err := s.ensureHot(z)
	if err != nil {
		return nil, err
	}
	return s.buildSnapshot(z, sys), nil
}

// buildSnapshot captures a zone's persistent state over an explicit
// System: the calibrated state export plus the per-zone serving
// configuration and the live trajectory filter. Shared by the export,
// checkpoint, and eviction paths, so every snapshot the service writes
// has identical shape regardless of why it was written.
func (s *Service) buildSnapshot(z *zone, sys *core.System) *snap.Snapshot {
	history := z.zc.history
	if history == 0 {
		history = -1 // explicitly disabled — distinct from v1's "not recorded"
	}
	sn := &snap.Snapshot{
		Zone:    z.id,
		SavedAt: time.Now(),
		Config: snap.ZoneConfig{
			Window:            z.zc.window,
			DetectThresholdDB: z.zc.thrDB,
			Detector:          z.zc.detector,
			History:           history,
			Track:             z.zc.trk,
		},
		State: sys.ExportState(),
	}
	z.trackMu.Lock()
	if z.tracker != nil {
		ts := z.tracker.Export()
		sn.Track = &ts
	}
	z.trackMu.Unlock()
	return sn
}

// RestoreZone warm-starts a zone from an encoded snapshot: decode,
// validate, rebuild the core.System, and register it under the
// snapshot's zone ID with the snapshot's per-zone serving
// configuration. It returns the restored zone's ID. Corrupt or
// truncated snapshots fail closed with taflocerr.CodeSnapshotCorrupt
// (or CodeSnapshotVersion); an already-registered ID fails with
// ErrZoneExists, leaving the live zone untouched.
func (s *Service) RestoreZone(data []byte) (string, error) {
	sn, err := snap.Decode(data)
	if err != nil {
		return "", err
	}
	id, err := s.restoreSnapshot(sn)
	if err != nil {
		return "", err
	}
	s.enforceCap()
	return id, nil
}

// maxRestoreWindow bounds the per-link window length a snapshot may
// request. Legitimate windows are single-digit to low hundreds; the cap
// keeps a crafted-but-CRC-valid snapshot from driving newZone into a
// huge (or impossible) per-link allocation.
const maxRestoreWindow = 1 << 16

// maxRestoreHistory likewise bounds the history/trajectory ring depth a
// snapshot may request.
const maxRestoreHistory = 1 << 20

func (s *Service) restoreSnapshot(sn *snap.Snapshot) (string, error) {
	if sn.Zone == "" {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "serve: snapshot has no zone id")
	}
	if sn.Config.Window > maxRestoreWindow {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot window %d exceeds limit %d", sn.Config.Window, maxRestoreWindow)
	}
	if sn.Config.History > maxRestoreHistory {
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot history depth %d exceeds limit %d", sn.Config.History, maxRestoreHistory)
	}
	sys, err := core.RestoreSystem(sn.State)
	if err != nil {
		return "", err
	}
	window := sn.Config.Window
	if window < 1 {
		window = s.cfg.Window
	}
	detector := sn.Config.Detector
	if detector == "" {
		detector = s.cfg.Detector
	}
	// History semantics: positive = the captured depth, -1 = the zone had
	// tracking explicitly disabled, 0 = a version-1 snapshot that never
	// recorded it (the restoring service's default applies). Same for the
	// zero-valued track options.
	history := sn.Config.History
	switch {
	case history == 0:
		history = s.cfg.History
	case history < 0:
		history = 0
	}
	trkOpts := sn.Config.Track
	if trkOpts == (track.Options{}) {
		trkOpts = s.cfg.Track
	}
	zc, err := newZoneConfig(window, sn.Config.DetectThresholdDB, detector, history, trkOpts)
	if err != nil {
		// The snapshot names a detector (or filter configuration) this
		// build does not accept; that is a property of the file, not of
		// the request.
		return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"serve: snapshot for zone %q: %w", sn.Zone, err)
	}
	var tracker *track.Tracker
	if sn.Track != nil && zc.history > 0 {
		tracker, err = track.NewTrackerFromState(*sn.Track)
		if err != nil {
			return "", taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
				"serve: snapshot for zone %q: tracker state: %w", sn.Zone, err)
		}
	}
	if err := s.addZone(sn.Zone, sys, zc, tracker); err != nil {
		return "", err
	}
	return sn.Zone, nil
}

// CheckpointStore snapshots every registered zone into dst. Hot zones
// export their live state; cold zones copy their already-current bytes
// straight from the residency store, so a checkpoint never rehydrates
// the cold tier (the whole point of which is not being resident). Zones
// removed mid-walk are skipped. The first write error aborts the walk.
//
// The service owns the destination's snapshot namespace: after writing,
// CheckpointStore prunes stored zones that are no longer registered, so
// a zone removed at runtime stays removed across restarts instead of
// resurrecting from its stale snapshot on the next boot. Entries a
// backend cannot attribute to this service (foreign files in a shared
// directory, say) are never listed by the backend and thus never
// pruned.
func (s *Service) CheckpointStore(dst store.Store) error {
	for _, id := range s.Zones() {
		s.mu.RLock()
		z, ok := s.zones[id]
		s.mu.RUnlock()
		if !ok {
			continue // removed since Zones()
		}
		// Hold resMu across the copy-or-export decision so a concurrent
		// eviction cannot drop the System between the load and the
		// export, nor a rehydrate race the cold-bytes copy.
		z.resMu.Lock()
		var err error
		if sys := z.sys.Load(); sys != nil {
			err = snap.WriteStore(dst, s.buildSnapshot(z, sys))
		} else if s.store != nil && dst != s.store {
			var data []byte
			if data, err = s.store.Get(id); err == nil {
				err = dst.Put(id, data)
			}
		}
		// else: cold zone, checkpointing into the residency store itself —
		// the store already holds the zone's current snapshot (eviction
		// wrote it); copying it onto itself would be a no-op.
		z.resMu.Unlock()
		if err != nil {
			return err
		}
	}
	stored, err := dst.List()
	if err != nil {
		return err
	}
	for _, id := range stored {
		// Re-check liveness per entry rather than against the earlier
		// Zones() slice, so a zone added mid-checkpoint is never pruned.
		s.mu.RLock()
		_, live := s.zones[id]
		s.mu.RUnlock()
		if !live {
			if err := dst.Delete(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint snapshots every registered zone into dir, one
// atomically-replaced "<escaped-id>.snap" file per zone — the
// directory-store binding of CheckpointStore, byte-compatible with
// every state directory previous releases wrote.
func (s *Service) Checkpoint(dir string) error {
	return s.CheckpointStore(store.NewDir(dir))
}

// RestoreStore warm-starts every zone stored in src, in sorted order,
// and returns the IDs restored. Entries that fail to read, decode, or
// restore do not stop the others; their errors are joined into the
// returned error, so a boot can both serve the healthy zones and report
// the damaged entries. When the service runs a hot-zone cap, restored
// zones beyond it are evicted again as they register — a node can boot
// a store holding far more zones than fit in memory.
func (s *Service) RestoreStore(src store.Store) ([]string, error) {
	zones, err := src.List()
	if err != nil {
		return nil, err
	}
	var restored []string
	var errs []error
	for _, zoneID := range zones {
		sn, err := snap.ReadStore(src, zoneID)
		if err != nil {
			errs = append(errs, taflocerr.Errorf(taflocerr.CodeOf(err), "serve: restore %q: %w", zoneID, err))
			continue
		}
		id, err := s.restoreSnapshot(sn)
		if err != nil {
			errs = append(errs, taflocerr.Errorf(taflocerr.CodeOf(err), "serve: restore %q: %w", zoneID, err))
			continue
		}
		restored = append(restored, id)
		s.enforceCap()
	}
	return restored, errors.Join(errs...)
}

// RestoreDir warm-starts every "*.snap" file in dir — the
// directory-store binding of RestoreStore. A missing directory restores
// nothing.
func (s *Service) RestoreDir(dir string) ([]string, error) {
	return s.RestoreStore(store.NewDir(dir))
}

// StartCheckpointer runs a background checkpoint loop: every interval
// it writes all zones to dir, and when ctx is cancelled (service
// shutdown, SIGTERM) it writes one final checkpoint before exiting, so
// the state on disk is at most one interval old in a crash and fully
// current on a clean stop. Checkpoint errors are reported to onErr (may
// be nil) and do not stop the loop. The goroutine is counted in Wait.
func (s *Service) StartCheckpointer(ctx context.Context, dir string, interval time.Duration, onErr func(error)) error {
	if interval <= 0 {
		return taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: checkpoint interval must be positive, got %v", interval)
	}
	report := func(err error) {
		if err != nil && onErr != nil {
			onErr(err)
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				report(s.Checkpoint(dir))
				return
			case <-ticker.C:
				report(s.Checkpoint(dir))
			}
		}
	}()
	return nil
}
