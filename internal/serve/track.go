package serve

import (
	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// Trajectory serving: each zone keeps a bounded ring of its published
// estimates (raw history) and a parallel ring of smoothed track points
// produced by folding every present fix through the zone's
// constant-velocity Kalman filter (internal/track). The rings are
// capped at the zone's configured history depth, so the memory cost per
// zone is fixed and the oldest samples fall off. Both are read over
// GET /v2/zones/{id}/history and /track.

// TrackPoint is one sample of a zone's smoothed trajectory (shared
// wire type; see internal/api).
type TrackPoint = api.TrackPoint

// ring is a fixed-capacity FIFO over the last cap pushed values.
type ring[T any] struct {
	buf []T
	idx int // next write position
	n   int // values held (<= len(buf))
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	r.buf[r.idx] = v
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// last returns up to n values, oldest first (all buffered when n <= 0).
func (r *ring[T]) last(n int) []T {
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]T, n)
	start := r.idx - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// copyFrom overwrites r with src's contents. Capacities may differ; the
// newest min(cap, src.n) values survive.
func (r *ring[T]) copyFrom(src *ring[T]) {
	for _, v := range src.last(0) {
		r.push(v)
	}
}

// recordTrack appends a freshly published estimate to the zone's
// history and, for present fixes, folds it through the trajectory
// filter. Called from the publish path (worker goroutine, under s.mu);
// the track mutex serializes against HTTP readers.
func (z *zone) recordTrack(e Estimate) {
	if z.hist == nil {
		return
	}
	z.trackMu.Lock()
	defer z.trackMu.Unlock()
	z.hist.push(e)
	if !e.Present || e.Cell < 0 {
		return
	}
	st, accepted := z.tracker.Observe(e.Point, e.Time)
	z.trk.push(api.TrackPoint{
		Seq:      e.Seq,
		Time:     e.Time,
		Cell:     e.Cell,
		Raw:      e.Point,
		Point:    st.Position,
		Velocity: st.Velocity,
		PosStd:   st.PosStd,
		Accepted: accepted,
	})
}

// errHistoryDisabled reports the history/track routes on a zone whose
// history depth is zero (Config.History negative, or WithHistory(0)).
var errHistoryDisabled error = taflocerr.New(taflocerr.CodeUnsupported,
	"serve: history and tracking are disabled for this zone")

// Track returns up to n samples of a zone's smoothed trajectory, oldest
// first (all buffered samples when n <= 0). Each sample pairs the raw
// published fix with the trajectory filter's position, velocity, and
// uncertainty after folding it. A zone with history disabled fails with
// taflocerr.ErrUnsupported.
func (s *Service) Track(id string, n int) ([]api.TrackPoint, error) {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownZone
	}
	if z.trk == nil {
		return nil, errHistoryDisabled
	}
	z.trackMu.Lock()
	defer z.trackMu.Unlock()
	return z.trk.last(n), nil
}

// History returns up to n of a zone's most recently published
// estimates, oldest first (all buffered when n <= 0). Unlike Position,
// which holds only the latest value, History exposes how the estimate
// evolved — including absent samples the track skips. A zone with
// history disabled fails with taflocerr.ErrUnsupported.
func (s *Service) History(id string, n int) ([]Estimate, error) {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownZone
	}
	if z.hist == nil {
		return nil, errHistoryDisabled
	}
	z.trackMu.Lock()
	defer z.trackMu.Unlock()
	return z.hist.last(n), nil
}
