package serve

// The locate executor: a small shared pool of workers that runs every
// zone's fold and localization rounds. Zones are pure state machines —
// an idle zone costs a map entry and a queue, not a goroutine — so the
// goroutine count is Config.LocateWorkers regardless of whether the
// service holds ten zones or ten thousand. Scheduling guarantees at
// most one fold task and one locate task in flight per zone (see the
// zone state machine in serve.go), so the fold state needs no locking
// and per-zone estimate order is preserved, while a hot zone's next
// fold can overlap its previous locate on another worker.

import (
	"sync"

	"tafloc/internal/core"
)

// taskKind selects what a queued task does.
type taskKind uint8

const (
	// foldTask drains a zone's report queue into its live windows and
	// prepares the next estimate.
	foldTask taskKind = iota
	// locateTask runs the match query for a prepared estimate and
	// publishes it.
	locateTask
)

// task is one unit of executor work. Locate tasks carry the prepared
// live vector and the partially-filled estimate by value, so queueing a
// task allocates nothing beyond its queue slot. They also carry the
// *core.System the fold round resolved: the zone's residency slot may
// be evicted to nil at any moment, but a System already in flight is
// immutable and completes its match correctly regardless.
type task struct {
	z    *zone
	kind taskKind
	sys  *core.System
	y    []float64
	e    Estimate
}

// executor is a FIFO run queue drained by a fixed set of workers. The
// queue is a mutex-guarded growable ring: at most one fold and one
// locate entry can exist per zone, so its length is bounded by twice
// the zone count.
type executor struct {
	//tafloc:lock-order 50 executor queue lock; nests inside the zone locks
	mu     sync.Mutex
	cond   sync.Cond
	queue  []task
	head   int
	closed bool
}

func newExecutor() *executor {
	e := &executor{}
	e.cond.L = &e.mu
	return e
}

// submit appends a task for the workers and reports whether it was
// accepted. After close it returns false without queueing or running
// anything: the workers may already have exited, and running the task
// inline would deadlock — every call site holds the zone's schedMu,
// which the task body re-locks. A rejected caller must unwind its own
// scheduling state (busy flag, task count, pooled buffers) under the
// lock it already holds; the dropped work matches the shutdown
// contract, which discards reports still queued when the service
// stops.
func (e *executor) submit(t task) bool {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, t)
	e.cond.Signal()
	e.mu.Unlock()
	return true
}

// next blocks for the next task. ok is false when the executor is
// closed and the queue fully drained — the worker should exit.
func (e *executor) next() (task, bool) {
	e.mu.Lock()
	for e.head == len(e.queue) && !e.closed {
		e.cond.Wait()
	}
	if e.head == len(e.queue) {
		e.mu.Unlock()
		return task{}, false
	}
	t := e.queue[e.head]
	e.queue[e.head] = task{}
	e.head++
	switch {
	case e.head == len(e.queue):
		e.queue = e.queue[:0]
		e.head = 0
	case e.head > len(e.queue)/2 && e.head >= 64:
		// Compact the drained prefix so a queue under continuous load
		// does not grow without bound.
		n := copy(e.queue, e.queue[e.head:])
		for i := n; i < len(e.queue); i++ {
			e.queue[i] = task{}
		}
		e.queue = e.queue[:n]
		e.head = 0
	}
	e.mu.Unlock()
	return t, true
}

// close wakes every worker; they drain the remaining queue and exit.
func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}
