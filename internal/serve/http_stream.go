package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"

	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// POST /v2/zones/{id}/reports:stream — persistent streaming ingest.
//
// The request body is NDJSON: one JSON array of reports per line,
//
//	[{"link":0,"rss":-41.5},{"link":1,"rss":-39.0}]
//
// held open for as long as the producer likes. The response (also
// NDJSON, written full-duplex while the request body is still being
// read) carries one ack line per request line and a final trailer:
//
//	{"seq":1,"accepted":2}
//	{"seq":2,"code":"queue_full","error":"serve: zone queue full"}
//	{"trailer":{"lines":2,"reports":4,"accepted":2,"shed":2,"rejected":0}}
//
// Each line's batch travels the same Ingest path as every other
// transport. Backpressure is end to end: a batch arriving on a full
// zone queue is shed and acked with queue_full (the producer's signal
// to slow down), and a producer outpacing the server's ack writes
// blocks on the connection itself. Malformed lines and validation
// failures cost exactly one line — the stream continues. The stream
// ends when the client closes its body (normal completion), the
// request context is cancelled, or the zone is removed mid-stream; the
// trailer is written in every case the connection still allows.
func (s *Service) handleReportStream(w http.ResponseWriter, r *http.Request, id string) {
	// Full duplex must be enabled before ANY write on this request —
	// including error responses. Without it the HTTP/1.x server drains
	// the entire request body before the first write, and this request's
	// body is an open-ended stream: an error write would block forever
	// against a producer that waits for the response. (HTTP/2 is duplex
	// natively and may not support the call; the flush test below
	// catches real failures.)
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor < 2 {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeUnsupported,
			"serve: connection cannot stream acks: %v", err))
		return
	}
	// A stream owns its connection. Closing it afterwards (instead of
	// returning it to the keep-alive pool) matters for correctness, not
	// just hygiene: most exits leave the request body partially read —
	// an error response, the zone removed mid-stream, a malformed
	// producer — and a full-duplex handler that returns with an unread
	// body must not let the server read the connection for a next
	// request (net/http panics on the concurrent read).
	w.Header().Set("Connection", "close")
	if r.Method != http.MethodPost {
		methodNotAllowedV2(w, http.MethodPost)
		return
	}
	if !s.zoneExists(id) {
		errorV2(w, ErrUnknownZone)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)

	writeAck := func(a api.StreamAck) bool {
		data, err := json.Marshal(a)
		if err != nil {
			return false
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	var sum api.StreamSummary
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 4096), maxStreamLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // blank lines are producer keepalives, not batches
		}
		sum.Lines++
		ack := api.StreamAck{Seq: sum.Lines}
		var reports []Report
		if err := json.Unmarshal(line, &reports); err != nil {
			ack.Code = taflocerr.CodeBadRequest
			ack.Error = "serve: bad stream line: " + err.Error()
			if !writeAck(ack) {
				return
			}
			continue
		}
		sum.Reports += uint64(len(reports))
		err := s.Ingest(id, reports)
		switch {
		case err == nil:
			ack.Accepted = len(reports)
			sum.Accepted += uint64(len(reports))
		case errors.Is(err, ErrQueueFull):
			ack.Code = taflocerr.CodeQueueFull
			ack.Error = err.Error()
			sum.Shed += uint64(len(reports))
		default:
			ack.Code = taflocerr.CodeOf(err)
			ack.Error = err.Error()
			sum.Rejected += uint64(len(reports))
		}
		if !writeAck(ack) {
			return
		}
		if errors.Is(err, ErrUnknownZone) {
			// The zone was removed mid-stream; no later line can succeed.
			break
		}
	}
	writeAck(api.StreamAck{Trailer: &sum})
}

// maxStreamLine bounds one NDJSON request line (same budget as a whole
// /v2/report body — a line is a batch).
const maxStreamLine = maxReportBody
