package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tafloc/internal/api"
	"tafloc/internal/core"
	"tafloc/internal/mat"
	"tafloc/internal/store"
	"tafloc/internal/track"
	"tafloc/internal/wire"
	"tafloc/taflocerr"
)

// Service errors. Each carries a taflocerr code, so callers can branch
// with errors.Is against either these exact values or the canonical
// taflocerr sentinels; the messages are frozen because the /v1 handlers
// serialize them verbatim.
var (
	ErrZoneExists  error = taflocerr.New(taflocerr.CodeZoneExists, "serve: zone already registered")
	ErrUnknownZone error = taflocerr.New(taflocerr.CodeUnknownZone, "serve: unknown zone")
	ErrQueueFull   error = taflocerr.New(taflocerr.CodeQueueFull, "serve: zone queue full")
	ErrStarted     error = taflocerr.New(taflocerr.CodeStarted, "serve: service already started")
	ErrBadReport   error = taflocerr.New(taflocerr.CodeBadLink, "serve: report link out of range")
	ErrRehydrate   error = taflocerr.New(taflocerr.CodeRehydrateFailed, "serve: zone rehydrate failed")
)

// ZoneFactory builds a core.System for a zone created over the wire
// (POST /v2/zones/{id}). The factory decides what a ZoneSpec means —
// cmd/tafloc-serve surveys a simulated deployment of the requested
// geometry. A service without a factory rejects wire-side creation with
// taflocerr.CodeUnsupported.
type ZoneFactory func(ctx context.Context, id string, spec api.ZoneSpec) (*core.System, error)

// Config tunes the service. A zero field means "unset" and selects the
// default noted on it; a negative value means "explicitly the minimum" —
// zero for fields where zero is meaningful (an unbuffered queue, a
// disabled detection gate, no heartbeat), the smallest legal value
// otherwise. The two cannot be conflated: Config{} keeps every default,
// while Config{DetectThresholdDB: -1} genuinely disables presence
// gating. The functional options in the root package translate explicit
// zero arguments into the negative sentinels, so
// tafloc.WithDetectThreshold(0) does what it says.
type Config struct {
	// QueueDepth is the number of pending report batches each zone's
	// bounded queue holds before Report sheds load (default 256;
	// negative = 0, an unbuffered queue that rendezvouses with the
	// zone's fold round and sheds whenever one is in flight).
	QueueDepth int
	// BatchSize is the maximum number of reports a zone's fold round
	// consumes before answering one batched match query (default 64;
	// negative = 1, one match query per batch).
	BatchSize int
	// Window is the per-link live-window length the fold rounds average
	// over (default 8, matching the collector's default; negative = 1,
	// no averaging).
	Window int
	// DetectThresholdDB gates localization on target presence: batches
	// whose live vector deviates less than this from the zone's vacant
	// baseline publish an absent estimate without paying for matching
	// (default 1 dB; negative = gating disabled, every batch localizes).
	DetectThresholdDB float64
	// Detector names the presence-detection strategy from the core
	// registry (default core.DetectorMAD). Unknown names fail NewService
	// with a taflocerr error and panic the legacy New.
	Detector string
	// LocateWorkers is the size of the shared locate-executor pool that
	// runs every zone's fold and match rounds. Zones are goroutine-free
	// state machines, so this — not the zone count — is the service's
	// compute concurrency (default GOMAXPROCS; negative = 1).
	LocateWorkers int
	// WatchBuffer is the per-watcher event buffer; a watcher that falls
	// more than this many estimates behind misses the intermediate ones
	// (default 16; negative = 1).
	WatchBuffer int
	// WatchHeartbeat is how often an idle SSE watch stream emits a
	// ": heartbeat" comment so proxy and load-balancer idle timeouts do
	// not kill it (default 15s; negative = no heartbeats).
	WatchHeartbeat time.Duration
	// History is the per-zone ring capacity of the published-estimate
	// history and the smoothed trajectory behind GET
	// /v2/zones/{id}/history and /track (default 256; negative =
	// history and trajectory tracking disabled, the routes answer
	// unsupported).
	History int
	// Track configures the per-zone trajectory filter fed from the
	// publish path. The zero value selects track.DefaultOptions();
	// invalid options fail NewService with a taflocerr error.
	Track track.Options
	// ZoneFactory enables zone creation over the /v2 HTTP surface.
	ZoneFactory ZoneFactory
	// MaxHotZones caps how many zones may hold a resident Model at once
	// (default 0 = unlimited, every zone stays hot; negative = 1, the
	// smallest useful cache). When the service is over the cap, the
	// least-recently-touched hot zone is checkpointed into Store and its
	// Model dropped; the zone stays registered and rehydrates
	// transparently on its next report, locate, track, or snapshot
	// request.
	MaxHotZones int
	// Store is the snapshot store behind eviction, rehydration, and the
	// forced EvictZone/RehydrateZone transitions. Leaving it nil with a
	// positive MaxHotZones selects an in-memory store (eviction then
	// bounds resident Models without surviving the process); production
	// deployments point it at the same directory store the checkpointer
	// uses, so evicted state and crash-recovery state are one artifact.
	Store store.Store
}

// withDefaults normalizes a Config: zero fields become the documented
// defaults, negative fields become their explicit minimum. After
// normalization every field holds its effective value (in particular
// DetectThresholdDB == 0 means the gate is off and WatchHeartbeat == 0
// means no heartbeats).
func (c Config) withDefaults() Config {
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 256
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	switch {
	case c.BatchSize == 0:
		c.BatchSize = 64
	case c.BatchSize < 0:
		c.BatchSize = 1
	}
	switch {
	case c.Window == 0:
		c.Window = 8
	case c.Window < 0:
		c.Window = 1
	}
	switch {
	case c.DetectThresholdDB == 0:
		c.DetectThresholdDB = 1
	case c.DetectThresholdDB < 0:
		c.DetectThresholdDB = 0
	}
	if c.Detector == "" {
		c.Detector = core.DetectorMAD
	}
	switch {
	case c.LocateWorkers == 0:
		c.LocateWorkers = runtime.GOMAXPROCS(0)
	case c.LocateWorkers < 0:
		c.LocateWorkers = 1
	}
	switch {
	case c.WatchBuffer == 0:
		c.WatchBuffer = 16
	case c.WatchBuffer < 0:
		c.WatchBuffer = 1
	}
	switch {
	case c.WatchHeartbeat == 0:
		c.WatchHeartbeat = 15 * time.Second
	case c.WatchHeartbeat < 0:
		c.WatchHeartbeat = 0
	}
	switch {
	case c.History == 0:
		c.History = 256
	case c.History < 0:
		c.History = 0
	}
	if c.Track == (track.Options{}) {
		c.Track = track.DefaultOptions()
	}
	if c.MaxHotZones < 0 {
		c.MaxHotZones = 1
	}
	if c.MaxHotZones > 0 && c.Store == nil {
		c.Store = store.NewMem()
	}
	return c
}

// Report is one RSS sample addressed to one link of a zone (shared wire
// type; see internal/api).
type Report = api.Report

// Estimate is a zone's most recent position estimate, as published to
// the read-mostly snapshot (shared wire type; see internal/api).
type Estimate = api.Estimate

// ZoneStats snapshots one zone's counters (shared wire type; see
// internal/api).
type ZoneStats = api.ZoneStats

// FromWire converts a decoded data-plane frame into a service report.
func FromWire(r *wire.RSSReport) Report {
	return Report{Link: int(r.LinkID), RSS: r.RSS(), Vacant: r.Vacant()}
}

// zoneConfig is the per-zone slice of the serving configuration: the
// knobs that shape what a zone publishes (as opposed to how the service
// schedules it). Zones default to the service-wide Config; a zone
// restored from a snapshot keeps the configuration it was captured
// under, so a restored zone serves exactly as the original did.
type zoneConfig struct {
	window   int
	thrDB    float64 // normalized: 0 = presence gating disabled
	detector string
	det      core.DetectorFactory
	history  int           // normalized: 0 = history and tracking disabled
	trk      track.Options // always concrete (zero value replaced by defaults)
}

// zone is one shard: a core.System plus ingest state, scheduled as a
// run-state machine over the shared executor pool instead of owning a
// goroutine. The scheduling invariant is at most one fold task and one
// locate task in flight per zone: the fold state (win/vwin rings,
// folded) is touched only by the single fold task, so it needs no
// locking, and the locate chain serializes publishes, so per-zone
// estimate order is what it was under the worker-per-zone design. An
// idle zone costs no goroutine at all.
type zone struct {
	id string
	// sys is the zone's residency slot: the System (and its Model) when
	// the zone is hot, nil when it has been evicted to the snapshot
	// store. Tasks resolve it once per round through ensureHot and carry
	// the resolved pointer, so a concurrent eviction can never yank a
	// System out from under a running fold or locate. Transitions are
	// serialized by resMu; see residency.go.
	//
	//tafloc:atomic
	sys        atomic.Pointer[core.System]
	zc         zoneConfig
	queue      chan []Report
	unbuffered bool // QueueDepth 0: rendezvous semantics over a cap-1 queue

	// Residency machinery: resMu serializes evict/rehydrate transitions
	// (never held on the steady-state hot path); lastTouch is the zone's
	// logical LRU timestamp, written on every touch, scanned only when
	// the service is over its hot cap.
	//
	//tafloc:lock-order 20 zone residency lock; nests inside Service.mu
	resMu     sync.Mutex
	lastTouch atomic.Int64

	// per-link ring windows: win holds every sample (a vacant room is a
	// valid live measurement); vwin holds only vacant-flagged samples and
	// feeds the refreshed detection baseline. Fold-task-owned.
	win    [][]float64
	widx   []int
	wfill  []int
	vwin   [][]float64
	vidx   []int
	vfill  []int
	folded uint64 // reports folded so far (fold-task-owned)

	received    atomic.Uint64
	dropped     atomic.Uint64
	batches     atomic.Uint64
	estimates   atomic.Uint64
	matchErrors atomic.Uint64
	starved     atomic.Uint64

	// Residency counters (see api.ZoneStats for what each one means to
	// an operator).
	evictions       atomic.Uint64
	rehydrates      atomic.Uint64
	rehydrateErrors atomic.Uint64
	evictErrors     atomic.Uint64

	// Run-state machine, guarded by schedMu. foldBusy marks a fold task
	// scheduled or running; locBusy a locate task. pend holds the one
	// coalesced estimate waiting for the locate chain (freshest wins —
	// under sustained overload intermediate rounds are superseded, the
	// same freshness-over-completeness rule the watch streams follow).
	// stopped is set by RemoveZone/UpdateZone/zone swap; tasks counts
	// the in-flight tasks a lifecycle mutation must wait out.
	//
	//tafloc:lock-order 30 zone scheduler lock; nests inside resMu
	schedMu  sync.Mutex
	foldBusy bool
	locBusy  bool
	pend     task
	hasPend  bool
	stopped  bool
	tasks    sync.WaitGroup

	// Trajectory state: the publish path appends every estimate to hist
	// and folds present fixes through tracker into trk; the /track and
	// /history reads run on other goroutines, so the trio is guarded by
	// its own mutex (taken after s.mu when both are held). All three are
	// nil when the zone's history is disabled.
	//
	//tafloc:lock-order 40 zone trajectory lock; innermost of the zone locks
	trackMu sync.Mutex
	tracker *track.Tracker
	hist    *ring[Estimate]
	trk     *ring[api.TrackPoint]
}

// Service is the sharded multi-zone localization frontend. Register zones
// with AddZone (before or after Start), launch the executor pool with
// Start, ingest with Report, read positions lock-free with Position, and
// stream them with Watch. Zones can be added, removed, and swapped at
// runtime. Folding is cheap and runs as soon as a zone has pending
// reports; localization is dispatched to the shared executor pool, so
// thousands of mostly-idle zones cost no goroutines and a hot zone folds
// its next batch while its previous match query is still running.
type Service struct {
	cfg   Config
	defZC zoneConfig // zone configuration for zones added with AddZone

	//tafloc:lock-order 10 service-wide registry lock; outermost in every nesting
	mu       sync.RWMutex // guards zones/order/watchers mutation and snapshot publication
	zones    map[string]*zone
	order    []string
	watchers map[string]map[chan Estimate]bool

	exec *executor
	// pos is the sharded read-mostly position snapshot: publishes copy
	// and swap one shard, reads load one pointer (see positions.go).
	pos *positions
	// store/hotCount/lruClock drive the residency tier (residency.go):
	// the snapshot store zones evict into, the count of zones holding a
	// resident Model, and the logical clock behind the approximate LRU.
	store    store.Store
	hotCount atomic.Int64
	lruClock atomic.Int64
	seq      atomic.Uint64
	streams  atomic.Int64 // open NDJSON report streams (health gauge)
	started  atomic.Bool
	start    time.Time
	runCtx   context.Context // the Start context; parent of every task
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// NewService builds an empty service with the given configuration. An
// unknown Config.Detector name is surfaced as a taflocerr error
// (matching taflocerr.ErrBadRequest) — the builder path never panics.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	zc, err := newZoneConfig(cfg.Window, cfg.DetectThresholdDB, cfg.Detector, cfg.History, cfg.Track)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		defZC:    zc,
		zones:    make(map[string]*zone),
		watchers: make(map[string]map[chan Estimate]bool),
		store:    cfg.Store,
	}
	s.exec = newExecutor()
	s.pos = newPositions()
	return s, nil
}

// New builds an empty service with the given configuration. An unknown
// Config.Detector name panics: it is a programming error on the same
// level as an invalid literal, and New has no error return for
// compatibility. Builder-style callers should use NewService, which
// returns the error instead.
func New(cfg Config) *Service {
	s, err := NewService(cfg)
	if err != nil {
		panic(fmt.Sprintf("serve: %v", err))
	}
	return s
}

// newZoneConfig validates and assembles a per-zone configuration.
// window, thrDB, and history must already be normalized (window >= 1,
// thrDB >= 0 with 0 meaning the gate is off, history >= 0 with 0
// meaning history and tracking are disabled); trk with its zero value
// selects the default trajectory filter options.
func newZoneConfig(window int, thrDB float64, detector string, history int, trk track.Options) (zoneConfig, error) {
	if window < 1 {
		return zoneConfig{}, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: window must be at least 1, got %d", window)
	}
	if thrDB < 0 {
		thrDB = 0
	}
	if history < 0 {
		history = 0
	}
	if trk == (track.Options{}) {
		trk = track.DefaultOptions()
	}
	if err := trk.Validate(); err != nil {
		return zoneConfig{}, taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: %v", err)
	}
	if _, err := core.NewDetectorByName(detector, nil, 1); err != nil {
		return zoneConfig{}, err
	}
	return zoneConfig{
		window:   window,
		thrDB:    thrDB,
		detector: detector,
		det: func(vacant []float64, thr float64) core.Presence {
			p, _ := core.NewDetectorByName(detector, vacant, thr)
			return p
		},
		history: history,
		trk:     trk,
	}, nil
}

// newZone allocates the shard state for sys under id with the given
// per-zone configuration. A non-nil tracker seeds the trajectory filter
// (the warm-restore path); otherwise a fresh one is built when the
// zone's history is enabled.
func (s *Service) newZone(id string, sys *core.System, zc zoneConfig, tracker *track.Tracker) *zone {
	m := sys.Layout().M()
	depth := s.cfg.QueueDepth
	unbuffered := depth == 0
	if unbuffered {
		// Rendezvous semantics live in the ingest path (see
		// ingestUnbuffered); the slot itself must hold the one batch a
		// fold round is about to consume.
		depth = 1
	}
	z := &zone{
		id:         id,
		zc:         zc,
		queue:      make(chan []Report, depth),
		unbuffered: unbuffered,
		win:        make([][]float64, m),
		widx:       make([]int, m),
		wfill:      make([]int, m),
		vwin:       make([][]float64, m),
		vidx:       make([]int, m),
		vfill:      make([]int, m),
	}
	z.sys.Store(sys)
	for i := range z.win {
		z.win[i] = make([]float64, zc.window)
		z.vwin[i] = make([]float64, zc.window)
	}
	if zc.history > 0 {
		z.hist = newRing[Estimate](zc.history)
		z.trk = newRing[api.TrackPoint](zc.history)
		z.tracker = tracker
		if z.tracker == nil {
			// zc.trk was validated by newZoneConfig, so this cannot fail.
			z.tracker, _ = track.NewTracker(zc.trk)
		}
	}
	return z
}

// stop marks the zone's state machine stopped: scheduled tasks become
// no-ops, no new tasks are accepted, and the coalesced pending estimate
// is dropped. Callers then wait on z.tasks for the in-flight ones.
func (z *zone) stop() {
	z.schedMu.Lock()
	z.stopped = true
	if z.hasPend {
		mat.PutFloats(z.pend.y)
		z.pend = task{}
		z.hasPend = false
	}
	z.schedMu.Unlock()
}

// isStopped reports whether the zone's state machine has been stopped.
func (z *zone) isStopped() bool {
	z.schedMu.Lock()
	st := z.stopped
	z.schedMu.Unlock()
	return st
}

// AddZone registers a monitored zone backed by sys. It may be called
// before Start or while the service is running — zones are goroutine-free
// state machines, so registration is just a map insert either way. A
// stopped service rejects new zones — their reports could never be
// processed.
func (s *Service) AddZone(id string, sys *core.System) error {
	if err := s.addZone(id, sys, s.defZC, nil); err != nil {
		return err
	}
	s.enforceCap()
	return nil
}

// addZone registers a zone under an explicit per-zone configuration
// (AddZone passes the service default; RestoreZone the snapshot's,
// along with the snapshot's trajectory-filter state).
func (s *Service) addZone(id string, sys *core.System, zc zoneConfig, tracker *track.Tracker) error {
	if id == "" {
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: empty zone id")
	}
	if sys == nil {
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: nil system for zone %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stoppedLocked(); err != nil {
		return err
	}
	if _, ok := s.zones[id]; ok {
		return ErrZoneExists
	}
	z := s.newZone(id, sys, zc, tracker)
	s.touch(z)
	s.zones[id] = z
	s.order = append(s.order, id)
	sort.Strings(s.order)
	// A fresh zone is hot by construction; the caller runs enforceCap
	// once s.mu is released (coldestHot read-locks it).
	s.hotCount.Add(1)
	return nil
}

// RemoveZone unregisters a zone at runtime: new reports are rejected
// with ErrUnknownZone, the zone's in-flight fold/locate tasks are waited
// out, the zone's entry leaves the position snapshot, and every watcher
// receives a terminal Final estimate before its channel closes. Reports
// still queued at that moment are dropped. The id may be re-added
// afterwards.
func (s *Service) RemoveZone(id string) error {
	s.mu.Lock()
	z, ok := s.zones[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownZone
	}
	delete(s.zones, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	// Quiesce outside the lock: an in-flight task may be publishing
	// (which takes the lock) at this moment. No publish can follow the
	// Wait, so the terminal event below is truly terminal.
	z.stop()
	z.tasks.Wait()

	// Residency cleanup, serialized with any in-flight eviction or
	// rehydration through resMu: settle the hot accounting against the
	// zone's final state, and make the removal durable by deleting its
	// snapshot from the store — an eviction that raced the removal (its
	// Put completing just before this lock) is erased here, and one that
	// arrives after sees the stopped zone and writes nothing, so a
	// removed zone can never resurrect on the next boot.
	z.resMu.Lock()
	if z.sys.Load() != nil {
		s.hotCount.Add(-1)
	}
	if s.store != nil {
		_ = s.store.Delete(id) // best effort; List/Get failures surface elsewhere
	}
	z.resMu.Unlock()

	s.mu.Lock()
	s.pos.delete(id)
	term := Estimate{
		Zone:  id,
		Seq:   s.seq.Add(1),
		Cell:  -1,
		Final: true,
		Time:  time.Now(),
	}
	for ch := range s.watchers[id] {
		sendOrDropOldest(ch, term)
		close(ch)
	}
	delete(s.watchers, id)
	s.mu.Unlock()
	return nil
}

// UpdateZone swaps the core.System behind a zone: the zone's in-flight
// tasks are quiesced (report batches still queued at that moment are
// dropped, as on RemoveZone), the shard state is rebuilt for the new
// system (window lengths follow the new deployment's link count), the
// ingest counters carry over, and the fresh state machine picks up on
// the next report. Watch subscriptions and the published snapshot entry
// survive the swap. For an in-place fingerprint refresh that keeps the
// same System, use System(id) and call UpdateContext on it instead —
// that path swaps the zone's Model atomically and never pauses serving.
func (s *Service) UpdateZone(id string, sys *core.System) error {
	if sys == nil {
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: nil system for zone %q", id)
	}
	s.mu.Lock()
	if err := s.stoppedLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	z, ok := s.zones[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownZone
	}
	if !s.started.Load() {
		// No task can have been scheduled before Start, so the swap is
		// race-free right here.
		s.swapZoneLocked(z, sys)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// Quiesce outside the lock: an in-flight task may be publishing
	// (which takes the lock) at this moment.
	z.stop()
	z.tasks.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stoppedLocked(); err != nil {
		return err
	}
	if s.zones[id] != z {
		// Lost a race with RemoveZone or another UpdateZone; the zone this
		// call was asked to replace is gone.
		return ErrUnknownZone
	}
	s.swapZoneLocked(z, sys)
	return nil
}

// swapZoneLocked replaces z with a fresh zone over sys, carrying the
// per-zone configuration, the counters (including the fold-task-owned
// folded count, safe to read once the old zone's tasks have been waited
// out or never ran), and the trajectory state — the zone is the same
// physical space, so its track survives a fingerprint-database swap.
// The trajectory state is deep-copied under the old zone's lock: a
// reader still holding the old shard keeps a consistent snapshot and
// can never race the new zone's tasks. Caller holds s.mu.
func (s *Service) swapZoneLocked(z *zone, sys *core.System) {
	// Stop the old shard unconditionally (the running path already did;
	// the pre-Start path has no tasks, so this only flips the flag) and
	// settle residency: the replacement is hot by construction, so a
	// cold old zone means one more resident Model. resMu serializes the
	// read against an eviction that was mid-write when the swap began.
	z.stop()
	z.resMu.Lock()
	if z.sys.Load() == nil {
		s.hotCount.Add(1)
	}
	z.resMu.Unlock()
	z.trackMu.Lock()
	var tracker *track.Tracker
	if z.tracker != nil {
		// The exported state round-trips through the same validation as a
		// snapshot restore; it came from a live filter, so it cannot fail.
		tracker, _ = track.NewTrackerFromState(z.tracker.Export())
	}
	nz := s.newZone(z.id, sys, z.zc, tracker)
	if nz.hist != nil && z.hist != nil {
		nz.hist.copyFrom(z.hist)
		nz.trk.copyFrom(z.trk)
	}
	z.trackMu.Unlock()
	nz.folded = z.folded
	nz.received.Store(z.received.Load())
	nz.dropped.Store(z.dropped.Load())
	nz.batches.Store(z.batches.Load())
	nz.estimates.Store(z.estimates.Load())
	nz.matchErrors.Store(z.matchErrors.Load())
	nz.starved.Store(z.starved.Load())
	nz.evictions.Store(z.evictions.Load())
	nz.rehydrates.Store(z.rehydrates.Load())
	nz.rehydrateErrors.Store(z.rehydrateErrors.Load())
	nz.evictErrors.Store(z.evictErrors.Load())
	s.touch(nz)
	s.zones[z.id] = nz
}

// Zones returns the registered zone IDs in sorted order.
func (s *Service) Zones() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// System returns the core.System behind a zone, for fingerprint updates
// (System.Update is safe to run while the zone keeps serving). A cold
// zone is rehydrated first — the caller wants the live Model, and a
// fingerprint update needs somewhere to land. ok is false when the zone
// is unknown or when it is cold and its rehydrate failed (the zone
// stays registered; retry once the store heals).
func (s *Service) System(id string) (*core.System, bool) {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	sys, err := s.ensureHot(z)
	if err != nil {
		return nil, false
	}
	return sys, true
}

// zoneExists is the cheap registration check for request routing: it
// never touches residency, so asking "is this zone registered" (a
// position read, a watch subscription) cannot fault a cold zone's
// Model back in.
func (s *Service) zoneExists(id string) bool {
	s.mu.RLock()
	_, ok := s.zones[id]
	s.mu.RUnlock()
	return ok
}

// Start launches the shared locate-executor pool: Config.LocateWorkers
// goroutines that run every zone's fold and match rounds. Reports
// queued before Start are picked up immediately. The pool stops when
// ctx is cancelled or Stop is called.
func (s *Service) Start(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.Swap(true) {
		cancel()
		return ErrStarted
	}
	s.cancel = cancel
	s.runCtx = ctx
	s.start = time.Now()
	for i := 0; i < s.cfg.LocateWorkers; i++ {
		s.wg.Add(1)
		go s.execWorker()
	}
	// Close the executor when the run context ends; the workers drain
	// the remaining queue (tasks become cheap no-ops) and exit.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-ctx.Done()
		s.exec.close()
	}()
	for _, id := range s.order {
		z := s.zones[id]
		if len(z.queue) > 0 {
			s.scheduleFold(z)
		}
	}
	return nil
}

// execWorker is one executor-pool goroutine.
func (s *Service) execWorker() {
	defer s.wg.Done()
	for {
		t, ok := s.exec.next()
		if !ok {
			return
		}
		s.runTask(t)
	}
}

// runTask dispatches one executor task.
func (s *Service) runTask(t task) {
	switch t.kind {
	case foldTask:
		s.runFold(t.z)
	case locateTask:
		s.runLocate(t.z, t.sys, t.y, t.e)
	}
}

// stoppedLocked reports whether the service has been started and then
// stopped (directly or via its Start context); zone mutations on a
// stopped service would queue work that never runs. Caller holds s.mu.
func (s *Service) stoppedLocked() error {
	if s.started.Load() && s.runCtx != nil && s.runCtx.Err() != nil {
		return taflocerr.Errorf(taflocerr.CodeStarted, "serve: service stopped")
	}
	return nil
}

// serviceStopped reports whether the run context has ended. Only called
// from task context, where Start is guaranteed to have happened.
func (s *Service) serviceStopped() bool {
	return s.runCtx.Err() != nil
}

// Stop cancels the executor pool and ends every watch stream (each open
// channel is closed after a terminal Final estimate, mirroring zone
// removal). It does not wait for the workers; see Wait.
func (s *Service) Stop() {
	s.mu.RLock()
	cancel := s.cancel
	s.mu.RUnlock()
	if cancel != nil {
		cancel()
	}
	s.mu.Lock()
	for id, set := range s.watchers {
		term := Estimate{Zone: id, Seq: s.seq.Add(1), Cell: -1, Final: true, Time: time.Now()}
		for ch := range set {
			sendOrDropOldest(ch, term)
			close(ch)
		}
		delete(s.watchers, id)
	}
	s.mu.Unlock()
}

// Wait blocks until the executor pool has exited.
func (s *Service) Wait() { s.wg.Wait() }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.started.Load() {
		return 0
	}
	return time.Since(s.start)
}

// Position returns the most recent estimate for a zone. The read is one
// atomic snapshot load — no lock, never blocked by ingestion or updates.
// ok is false when the zone is unknown or has not published yet.
func (s *Service) Position(id string) (Estimate, bool) {
	return s.pos.get(id)
}

// Positions returns the current snapshot of all published estimates. The
// returned map is the reader's own copy.
func (s *Service) Positions() map[string]Estimate {
	return s.pos.all()
}

// Watch subscribes to a zone's estimate stream. The returned channel
// receives the zone's current estimate immediately (if one is
// published), then every estimate the zone publishes. A watcher that
// falls more than Config.WatchBuffer events behind misses the oldest
// ones — the stream favours freshness over completeness. When the zone
// is removed, the channel receives a terminal estimate with Final set
// and is closed. The returned stop function detaches the subscription;
// it is idempotent and must be called when the caller is done.
func (s *Service) Watch(id string) (<-chan Estimate, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stoppedLocked(); err != nil {
		// A stopped service has no publishers left; a subscription would
		// block its consumer forever.
		return nil, nil, err
	}
	if _, ok := s.zones[id]; !ok {
		return nil, nil, ErrUnknownZone
	}
	ch := make(chan Estimate, s.cfg.WatchBuffer)
	set := s.watchers[id]
	if set == nil {
		set = make(map[chan Estimate]bool)
		s.watchers[id] = set
	}
	set[ch] = true
	if e, ok := s.pos.get(id); ok {
		ch <- e // buffer is empty here, cannot block
	}
	stop := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if set, ok := s.watchers[id]; ok && set[ch] {
			delete(set, ch)
			if len(set) == 0 {
				delete(s.watchers, id)
			}
		}
	}
	return ch, stop, nil
}

// Stats returns per-zone counters.
func (s *Service) Stats() map[string]ZoneStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]ZoneStats, len(s.zones))
	for id, z := range s.zones {
		out[id] = ZoneStats{
			Received:        z.received.Load(),
			Dropped:         z.dropped.Load(),
			Batches:         z.batches.Load(),
			Estimates:       z.estimates.Load(),
			MatchErrors:     z.matchErrors.Load(),
			Starved:         z.starved.Load(),
			QueueLen:        len(z.queue),
			Cold:            z.sys.Load() == nil,
			Evictions:       z.evictions.Load(),
			Rehydrates:      z.rehydrates.Load(),
			RehydrateErrors: z.rehydrateErrors.Load(),
			EvictErrors:     z.evictErrors.Load(),
		}
	}
	return out
}

// scheduleFold arms the zone's fold stage if it is not already armed.
// Called after a successful enqueue; before Start it is a no-op (Start
// schedules every zone with pending reports).
func (s *Service) scheduleFold(z *zone) {
	z.schedMu.Lock()
	if !z.stopped && !z.foldBusy {
		z.foldBusy = true
		z.tasks.Add(1)
		if !s.exec.submit(task{z: z, kind: foldTask}) {
			// Executor closed (service stopping): unwind. The queued
			// reports are dropped on shutdown, per the stop contract.
			z.foldBusy = false
			z.tasks.Done()
		}
	}
	z.schedMu.Unlock()
}

// runFold is one fold round: drain up to BatchSize reports from the
// zone's queue into the live windows, average them into a live vector,
// gate on presence, and hand the prepared estimate to the locate stage.
// The scheduling invariant (one fold task in flight per zone) makes the
// fold state single-writer without locks.
func (s *Service) runFold(z *zone) {
	defer z.tasks.Done()
	if s.serviceStopped() || z.isStopped() {
		z.schedMu.Lock()
		z.foldBusy = false
		z.schedMu.Unlock()
		return
	}
	drained := 0
drain:
	for drained < s.cfg.BatchSize {
		select {
		case batch := <-z.queue:
			drained += s.fold(z, batch)
		default:
			break drain
		}
	}
	if drained > 0 {
		s.prepareEstimate(z)
	}
	s.foldDone(z)
}

// foldDone disarms the fold stage, or re-arms it when reports arrived
// during the round (the ingest path saw foldBusy and did not schedule).
func (s *Service) foldDone(z *zone) {
	z.schedMu.Lock()
	if !z.stopped && len(z.queue) > 0 && !s.serviceStopped() {
		z.tasks.Add(1)
		if s.exec.submit(task{z: z, kind: foldTask}) { // keep foldBusy armed
			z.schedMu.Unlock()
			return
		}
		z.tasks.Done() // executor closed mid-shutdown: unwind
	}
	z.foldBusy = false
	z.schedMu.Unlock()
}

// fold applies a batch to the zone's per-link ring windows and returns
// the number of reports consumed. Every sample feeds the live window (a
// vacant room is a valid live measurement, so detection sees the target
// leave); vacant-flagged samples additionally refresh the detection
// baseline.
func (s *Service) fold(z *zone, batch []Report) int {
	for _, r := range batch {
		w := z.win[r.Link]
		w[z.widx[r.Link]] = r.RSS
		z.widx[r.Link] = (z.widx[r.Link] + 1) % len(w)
		if z.wfill[r.Link] < len(w) {
			z.wfill[r.Link]++
		}
		if r.Vacant {
			v := z.vwin[r.Link]
			v[z.vidx[r.Link]] = r.RSS
			z.vidx[r.Link] = (z.vidx[r.Link] + 1) % len(v)
			if z.vfill[r.Link] < len(v) {
				z.vfill[r.Link]++
			}
		}
	}
	z.folded += uint64(len(batch))
	return len(batch)
}

// prepareEstimate closes a fold round: average the live windows into a
// pooled vector, count starvation when some link has never reported
// (operators can then tell "no estimate" from "no traffic" on the
// Starved stat), gate on presence, and pass the estimate to the locate
// stage. Absent estimates skip matching but still travel the locate
// chain, which keeps per-zone publish order strict.
//
//tafloc:pool-ownership y is handed to dispatchLocate with the estimate; the locate task (or stop()) returns it to the mat pool after matching, and the early-return paths above that hand-off Put it explicitly.
func (s *Service) prepareEstimate(z *zone) {
	m := len(z.win)
	y := mat.GetFloats(m)
	z.batches.Add(1)
	for i := 0; i < m; i++ {
		if z.wfill[i] == 0 {
			// Some link has never reported: no estimate is possible yet.
			z.starved.Add(1)
			mat.PutFloats(y)
			return
		}
		var sum float64
		for k := 0; k < z.wfill[i]; k++ {
			sum += z.win[i][k]
		}
		y[i] = sum / float64(z.wfill[i])
	}
	// Resolve the zone's System once for the whole fold→locate round and
	// thread it through the task chain: detection and localization then
	// run against one consistent Model even if the zone is evicted (or
	// updated) mid-round. The ingest path already rehydrated, so this
	// only pays a store read when an eviction squeezed in between; a
	// rehydrate failure here ends the round (the error is counted and
	// the next round retries) rather than publishing anything.
	sys, err := s.ensureHot(z)
	if err != nil {
		mat.PutFloats(y)
		return
	}
	present, dev := s.detect(z, sys, y)
	e := Estimate{
		Zone:        z.id,
		Present:     present,
		DeviationDB: dev,
		Cell:        -1,
		Reports:     z.folded,
	}
	if !present {
		mat.PutFloats(y)
		y = nil
	}
	s.dispatchLocate(z, sys, y, e)
}

// dispatchLocate hands a prepared estimate to the zone's locate stage.
// When a locate is already in flight the estimate is coalesced into the
// single pending slot (freshest wins), so a zone whose match queries
// are slower than its ingest folds ahead without queueing unbounded
// work — and the fold stage never blocks on the locate stage.
func (s *Service) dispatchLocate(z *zone, sys *core.System, y []float64, e Estimate) {
	z.schedMu.Lock()
	switch {
	case z.stopped:
		z.schedMu.Unlock()
		mat.PutFloats(y)
		return
	case z.locBusy:
		if z.hasPend {
			mat.PutFloats(z.pend.y)
		}
		z.pend = task{sys: sys, y: y, e: e}
		z.hasPend = true
	default:
		z.locBusy = true
		z.tasks.Add(1)
		if !s.exec.submit(task{z: z, kind: locateTask, sys: sys, y: y, e: e}) {
			// Executor closed (service stopping): unwind and drop the
			// round, as shutdown drops queued work.
			z.locBusy = false
			z.tasks.Done()
			mat.PutFloats(y)
		}
	}
	z.schedMu.Unlock()
}

// runLocate is the zone's locate stage: run the match query against the
// zone's current Model (one atomic load, no locks — the executor
// workers all read shared Models concurrently), publish, and loop onto
// the coalesced pending estimate if one arrived meanwhile.
func (s *Service) runLocate(z *zone, sys *core.System, y []float64, e Estimate) {
	defer z.tasks.Done()
	published := false
	for {
		if !s.serviceStopped() && !z.isStopped() {
			ok := true
			if e.Present && y != nil {
				loc, err := sys.Locate(y)
				if err != nil {
					z.matchErrors.Add(1)
					ok = false
				} else {
					e.Cell = loc.Cell
					e.Point = loc.Point
					e.Distance = loc.Distance
					e.Confidence = loc.Confidence
				}
			}
			if ok {
				s.publish(z, e)
				z.estimates.Add(1)
				published = true
			}
		}
		mat.PutFloats(y)
		z.schedMu.Lock()
		if z.stopped || !z.hasPend {
			z.locBusy = false
			z.schedMu.Unlock()
			// Publishing marked this zone recently used; evict colder
			// ones if the service is over its hot cap. Off the locked
			// publish path: one atomic load when under cap.
			if published {
				s.enforceCap()
			}
			return
		}
		sys, y, e = z.pend.sys, z.pend.y, z.pend.e
		z.pend = task{}
		z.hasPend = false
		z.schedMu.Unlock()
	}
}

// detect gates localization on target presence through the zone's
// detector. When every link has received vacant-flagged samples, the
// mean of those windows is a fresher baseline than the system's last
// vacant capture and is used instead, so detection tracks drift between
// fingerprint updates. A zone with a zero threshold has the gate
// disabled: the deviation is still computed (and published), but the
// target always counts as present.
func (s *Service) detect(z *zone, sys *core.System, y []float64) (bool, float64) {
	vac := sys.Vacant()
	fresh := true
	for i := range z.vfill {
		if z.vfill[i] == 0 {
			fresh = false
			break
		}
	}
	if fresh {
		for i, v := range z.vwin {
			var sum float64
			for k := 0; k < z.vfill[i]; k++ {
				sum += v[k]
			}
			vac[i] = sum / float64(z.vfill[i])
		}
	}
	if z.zc.thrDB <= 0 {
		// Gate disabled. The detector still supplies the deviation signal;
		// the threshold passed is irrelevant because the verdict is ignored.
		_, dev := z.zc.det(vac, 1).Present(y)
		return true, dev
	}
	return z.zc.det(vac, z.zc.thrDB).Present(y)
}

// publish installs an estimate into the read-mostly snapshot, fans it
// out to the zone's watchers, and records it into the zone's trajectory
// state. Writers (the locate stages) serialize on the service mutex and
// swap in a fresh copy; readers keep loading the old snapshot
// untouched. The publish time is wall clock only (Round strips the
// monotonic reading): the trajectory filter derives dt from it, and the
// wall clock is what survives the wire — replaying served history
// timestamps must reproduce the served track exactly.
func (s *Service) publish(z *zone, e Estimate) {
	e.Time = time.Now().Round(0)
	s.mu.Lock()
	e.Seq = s.seq.Add(1)
	s.pos.set(e)
	for ch := range s.watchers[e.Zone] {
		sendOrDropOldest(ch, e)
	}
	if z != nil {
		z.recordTrack(e)
		s.touch(z)
	}
	s.mu.Unlock()
}

// sendOrDropOldest delivers e to a watcher channel without ever blocking
// the publishing worker: when the buffer is full, the oldest pending
// event is discarded to make room. Senders are serialized under s.mu, so
// the drain/retry pair cannot race another sender; a concurrent receiver
// can only make room, in which case the retry succeeds.
func sendOrDropOldest(ch chan Estimate, e Estimate) {
	select {
	case ch <- e:
		return
	default:
	}
	select {
	case <-ch:
	default:
	}
	select {
	case ch <- e:
	default:
	}
}
