package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/wire"
)

// Service errors.
var (
	ErrZoneExists  = errors.New("serve: zone already registered")
	ErrUnknownZone = errors.New("serve: unknown zone")
	ErrQueueFull   = errors.New("serve: zone queue full")
	ErrStarted     = errors.New("serve: service already started")
	ErrBadReport   = errors.New("serve: report link out of range")
)

// Config tunes the service. The zero value selects the defaults noted on
// each field.
type Config struct {
	// QueueDepth is the number of pending report batches each zone's
	// bounded queue holds before Report sheds load (default 256).
	QueueDepth int
	// BatchSize is the maximum number of reports a zone worker folds
	// before answering one batched match query (default 64).
	BatchSize int
	// Window is the per-link live-window length the worker averages over
	// (default 8, matching the collector's default).
	Window int
	// DetectThresholdDB gates localization on target presence: batches
	// whose live vector deviates less than this from the zone's vacant
	// baseline publish an absent estimate without paying for matching
	// (default 1 dB).
	DetectThresholdDB float64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.DetectThresholdDB <= 0 {
		c.DetectThresholdDB = 1
	}
	return c
}

// Report is one RSS sample addressed to one link of a zone.
type Report struct {
	// Link is the link index within the zone's deployment.
	Link int `json:"link"`
	// RSS is the sample in dBm.
	RSS float64 `json:"rss"`
	// Vacant marks a sample known to be taken with no target present.
	// Vacant samples additionally refresh the zone's vacant baseline, so
	// presence detection tracks environmental drift between fingerprint
	// updates.
	Vacant bool `json:"vacant,omitempty"`
}

// FromWire converts a decoded data-plane frame into a service report.
func FromWire(r *wire.RSSReport) Report {
	return Report{Link: int(r.LinkID), RSS: r.RSS(), Vacant: r.Vacant()}
}

// Estimate is a zone's most recent position estimate, as published to the
// read-mostly snapshot.
type Estimate struct {
	// Zone is the zone ID the estimate belongs to.
	Zone string `json:"zone"`
	// Seq increases by one per published estimate across the service, so
	// readers can order estimates and detect staleness.
	Seq uint64 `json:"seq"`
	// Present reports whether the detection gate saw a target; when it is
	// false the location fields are zero and Cell is -1.
	Present bool `json:"present"`
	// DeviationDB is the live vector's mean absolute deviation from the
	// zone's vacant baseline (the detection signal).
	DeviationDB float64 `json:"deviation_db"`
	// Cell is the best-matching grid cell (-1 when absent).
	Cell int `json:"cell"`
	// Point is the fine-grained position estimate in metres.
	Point geom.Point `json:"point"`
	// Distance is the fingerprint-space distance of the winning match.
	Distance float64 `json:"distance"`
	// Confidence is the matcher's posterior mass when it computes one.
	Confidence float64 `json:"confidence,omitempty"`
	// Reports is the total number of reports the zone had consumed when
	// the estimate was computed.
	Reports uint64 `json:"reports"`
	// Time is when the estimate was published.
	Time time.Time `json:"time"`
}

// ZoneStats snapshots one zone's counters.
type ZoneStats struct {
	// Received counts reports accepted into the queue.
	Received uint64 `json:"received"`
	// Dropped counts reports shed because the queue was full or the link
	// index was out of range.
	Dropped uint64 `json:"dropped"`
	// Batches counts processing rounds (batched match queries answered).
	Batches uint64 `json:"batches"`
	// Estimates counts published estimates.
	Estimates uint64 `json:"estimates"`
	// MatchErrors counts batches whose match query failed; a zone whose
	// MatchErrors advances while Estimates stalls is misconfigured, not
	// warming up.
	MatchErrors uint64 `json:"match_errors,omitempty"`
	// QueueLen is the instantaneous number of pending batches.
	QueueLen int `json:"queue_len"`
}

// zone is one shard: a core.System plus the worker-owned ingest state.
// Everything below queue is touched only by the zone's worker goroutine,
// so it needs no locking.
type zone struct {
	id    string
	sys   *core.System
	queue chan []Report

	// per-link ring windows: win holds every sample (a vacant room is a
	// valid live measurement); vwin holds only vacant-flagged samples and
	// feeds the refreshed detection baseline.
	win    [][]float64
	widx   []int
	wfill  []int
	vwin   [][]float64
	vidx   []int
	vfill  []int
	folded uint64 // reports folded so far (worker-owned)

	received    atomic.Uint64
	dropped     atomic.Uint64
	batches     atomic.Uint64
	estimates   atomic.Uint64
	matchErrors atomic.Uint64
}

// Service is the sharded multi-zone localization frontend. Register zones
// with AddZone, launch the workers with Start, ingest with Report, and
// read positions lock-free with Position.
type Service struct {
	cfg Config

	mu    sync.RWMutex // guards zones/order mutation and snapshot publication
	zones map[string]*zone
	order []string

	snap    atomic.Pointer[map[string]Estimate]
	seq     atomic.Uint64
	started atomic.Bool
	start   time.Time
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds an empty service with the given configuration.
func New(cfg Config) *Service {
	s := &Service{cfg: cfg.withDefaults(), zones: make(map[string]*zone)}
	empty := make(map[string]Estimate)
	s.snap.Store(&empty)
	return s
}

// AddZone registers a monitored zone backed by sys. All zones must be
// registered before Start.
func (s *Service) AddZone(id string, sys *core.System) error {
	if id == "" {
		return fmt.Errorf("serve: empty zone id")
	}
	if sys == nil {
		return fmt.Errorf("serve: nil system for zone %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.Load() {
		return ErrStarted
	}
	if _, ok := s.zones[id]; ok {
		return ErrZoneExists
	}
	m := sys.Layout().M()
	z := &zone{
		id:    id,
		sys:   sys,
		queue: make(chan []Report, s.cfg.QueueDepth),
		win:   make([][]float64, m),
		widx:  make([]int, m),
		wfill: make([]int, m),
		vwin:  make([][]float64, m),
		vidx:  make([]int, m),
		vfill: make([]int, m),
	}
	for i := range z.win {
		z.win[i] = make([]float64, s.cfg.Window)
		z.vwin[i] = make([]float64, s.cfg.Window)
	}
	s.zones[id] = z
	s.order = append(s.order, id)
	sort.Strings(s.order)
	return nil
}

// Zones returns the registered zone IDs in sorted order.
func (s *Service) Zones() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// System returns the core.System behind a zone, for fingerprint updates
// (System.Update is safe to run while the zone keeps serving).
func (s *Service) System(id string) (*core.System, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[id]
	if !ok {
		return nil, false
	}
	return z.sys, true
}

// Start launches one worker goroutine per registered zone. The workers
// stop when ctx is cancelled or Stop is called.
func (s *Service) Start(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.Swap(true) {
		cancel()
		return ErrStarted
	}
	s.cancel = cancel
	s.start = time.Now()
	for _, id := range s.order {
		z := s.zones[id]
		s.wg.Add(1)
		go s.runZone(ctx, z)
	}
	return nil
}

// Stop cancels the zone workers. It does not wait; see Wait.
func (s *Service) Stop() {
	s.mu.RLock()
	cancel := s.cancel
	s.mu.RUnlock()
	if cancel != nil {
		cancel()
	}
}

// Wait blocks until all zone workers have exited.
func (s *Service) Wait() { s.wg.Wait() }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.started.Load() {
		return 0
	}
	return time.Since(s.start)
}

// Report enqueues a batch of reports for a zone. On a nil return the
// service has taken ownership of the slice and the caller must not reuse
// it; on any error (including ErrQueueFull) the service retains nothing
// and the caller may retry with the same slice. When the zone's queue is
// full the batch is shed and ErrQueueFull returned — ingestion never
// blocks the caller.
func (s *Service) Report(id string, reports []Report) error {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return ErrUnknownZone
	}
	if len(reports) == 0 {
		return nil
	}
	m := len(z.win)
	for _, r := range reports {
		if r.Link < 0 || r.Link >= m {
			z.dropped.Add(uint64(len(reports)))
			return fmt.Errorf("%w: link %d of %d in zone %q", ErrBadReport, r.Link, m, id)
		}
	}
	select {
	case z.queue <- reports:
		z.received.Add(uint64(len(reports)))
		return nil
	default:
		z.dropped.Add(uint64(len(reports)))
		return ErrQueueFull
	}
}

// Position returns the most recent estimate for a zone. The read is one
// atomic snapshot load — no lock, never blocked by ingestion or updates.
// ok is false when the zone is unknown or has not published yet.
func (s *Service) Position(id string) (Estimate, bool) {
	snap := *s.snap.Load()
	e, ok := snap[id]
	return e, ok
}

// Positions returns the current snapshot of all published estimates. The
// returned map is the reader's own copy.
func (s *Service) Positions() map[string]Estimate {
	snap := *s.snap.Load()
	out := make(map[string]Estimate, len(snap))
	for k, v := range snap {
		out[k] = v
	}
	return out
}

// Stats returns per-zone counters.
func (s *Service) Stats() map[string]ZoneStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]ZoneStats, len(s.zones))
	for id, z := range s.zones {
		out[id] = ZoneStats{
			Received:    z.received.Load(),
			Dropped:     z.dropped.Load(),
			Batches:     z.batches.Load(),
			Estimates:   z.estimates.Load(),
			MatchErrors: z.matchErrors.Load(),
			QueueLen:    len(z.queue),
		}
	}
	return out
}

// runZone is the per-zone worker loop: block for a batch, drain more
// opportunistically up to BatchSize reports, fold them into the live
// windows, then answer one batched match query.
func (s *Service) runZone(ctx context.Context, z *zone) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case batch := <-z.queue:
			n := s.fold(z, batch)
			for n < s.cfg.BatchSize {
				select {
				case more := <-z.queue:
					n += s.fold(z, more)
					continue
				default:
				}
				break
			}
			z.batches.Add(1)
			s.localize(z)
		}
	}
}

// fold applies a batch to the zone's per-link ring windows and returns
// the number of reports consumed. Every sample feeds the live window (a
// vacant room is a valid live measurement, so detection sees the target
// leave); vacant-flagged samples additionally refresh the detection
// baseline.
func (s *Service) fold(z *zone, batch []Report) int {
	for _, r := range batch {
		w := z.win[r.Link]
		w[z.widx[r.Link]] = r.RSS
		z.widx[r.Link] = (z.widx[r.Link] + 1) % len(w)
		if z.wfill[r.Link] < len(w) {
			z.wfill[r.Link]++
		}
		if r.Vacant {
			v := z.vwin[r.Link]
			v[z.vidx[r.Link]] = r.RSS
			z.vidx[r.Link] = (z.vidx[r.Link] + 1) % len(v)
			if z.vfill[r.Link] < len(v) {
				z.vfill[r.Link]++
			}
		}
	}
	z.folded += uint64(len(batch))
	return len(batch)
}

// localize answers the zone's batched match query: average the live
// windows, gate on presence, match, and publish via copy-on-write.
func (s *Service) localize(z *zone) {
	m := len(z.win)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		if z.wfill[i] == 0 {
			return // not every link has reported yet
		}
		var sum float64
		for k := 0; k < z.wfill[i]; k++ {
			sum += z.win[i][k]
		}
		y[i] = sum / float64(z.wfill[i])
	}
	present, dev := s.detect(z, y)
	e := Estimate{
		Zone:        z.id,
		Present:     present,
		DeviationDB: dev,
		Cell:        -1,
		Reports:     z.folded,
	}
	if present {
		loc, err := z.sys.Locate(y)
		if err != nil {
			z.matchErrors.Add(1)
			return
		}
		e.Cell = loc.Cell
		e.Point = loc.Point
		e.Distance = loc.Distance
		e.Confidence = loc.Confidence
	}
	s.publish(e)
	z.estimates.Add(1)
}

// detect gates localization on target presence. When every link has
// received vacant-flagged samples, the mean of those windows is a
// fresher baseline than the system's last vacant capture and is used
// instead, so detection tracks drift between fingerprint updates.
func (s *Service) detect(z *zone, y []float64) (bool, float64) {
	for i := range z.vfill {
		if z.vfill[i] == 0 {
			return z.sys.Detect(y, s.cfg.DetectThresholdDB)
		}
	}
	vac := make([]float64, len(z.vwin))
	for i, v := range z.vwin {
		var sum float64
		for k := 0; k < z.vfill[i]; k++ {
			sum += v[k]
		}
		vac[i] = sum / float64(z.vfill[i])
	}
	return core.Detector{Vacant: vac, ThresholdDB: s.cfg.DetectThresholdDB}.Present(y)
}

// publish installs an estimate into the read-mostly snapshot. Writers
// (the zone workers) serialize on the service mutex and swap in a fresh
// copy; readers keep loading the old snapshot untouched.
func (s *Service) publish(e Estimate) {
	e.Time = time.Now()
	s.mu.Lock()
	e.Seq = s.seq.Add(1)
	old := *s.snap.Load()
	next := make(map[string]Estimate, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[e.Zone] = e
	s.snap.Store(&next)
	s.mu.Unlock()
}
