package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/snap"
	"tafloc/internal/store"
	"tafloc/internal/store/storetest"
	"tafloc/taflocerr"
)

// waitForHotZones polls until the resident-Model count drops to at most
// want. Eviction runs asynchronously after publish (enforceCap fires
// when a locate round drains), so tests must wait for the cap rather
// than assert it at an instant.
func waitForHotZones(t *testing.T, s *Service, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.HotZones() <= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("still %d hot zones (want <= %d) before deadline", s.HotZones(), want)
}

// TestMaxHotZonesCapsResidentModels is the capacity acceptance test of
// the residency tier: a service with MaxHotZones=N serving M > N zones
// keeps every zone registered and publishing while holding at most N
// resident Models, and cold zones rehydrate transparently when traffic
// returns to them.
func TestMaxHotZonesCapsResidentModels(t *testing.T) {
	const zones, hotCap = 6, 2
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, MaxHotZones: hotCap})
	deps := make([]*struct {
		batch []Report
		pt    geom.Point
	}, zones)
	for zi := 0; zi < zones; zi++ {
		dep := testDeployment(t)
		id := fmt.Sprintf("zone-%d", zi)
		if err := svc.AddZone(id, testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
		p := geom.Point{X: 0.6 + 0.4*float64(zi%4), Y: 0.9 + 0.3*float64(zi%3)}
		deps[zi] = &struct {
			batch []Report
			pt    geom.Point
		}{batch: targetBatch(dep, p), pt: p}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Two full passes over all zones: the first forces evictions as each
	// zone's traffic pushes the service over cap, the second forces the
	// evicted zones to rehydrate on their next report.
	feed := func(pass int) {
		for zi := 0; zi < zones; zi++ {
			id := fmt.Sprintf("zone-%d", zi)
			prev := svc.Stats()[id].Estimates
			for svc.Report(id, append([]Report(nil), deps[zi].batch...)) == ErrQueueFull {
				time.Sleep(time.Millisecond)
			}
			waitForEstimate(t, svc, id, func(e Estimate) bool { return e.Seq > prev })
			_ = pass
		}
	}
	feed(1)
	waitForHotZones(t, svc, hotCap)
	feed(2)
	waitForHotZones(t, svc, hotCap)

	if got := svc.residentZones(); got > hotCap {
		t.Errorf("zone table holds %d resident Models, cap is %d", got, hotCap)
	}
	if got := len(svc.Zones()); got != zones {
		t.Errorf("Zones() = %d entries, want %d: eviction must not unregister", got, zones)
	}
	stats := svc.Stats()
	var cold int
	var evictions, rehydrates uint64
	for zi := 0; zi < zones; zi++ {
		id := fmt.Sprintf("zone-%d", zi)
		if _, ok := svc.Position(id); !ok {
			t.Errorf("zone %s: published estimate lost across eviction", id)
		}
		st := stats[id]
		if st.Cold {
			cold++
		}
		evictions += st.Evictions
		rehydrates += st.Rehydrates
		if st.RehydrateErrors != 0 || st.EvictErrors != 0 {
			t.Errorf("zone %s: spurious residency errors %+v", id, st)
		}
	}
	if cold < zones-hotCap {
		t.Errorf("%d cold zones, want >= %d", cold, zones-hotCap)
	}
	if evictions < zones-hotCap {
		t.Errorf("total evictions %d, want >= %d", evictions, zones-hotCap)
	}
	if rehydrates == 0 {
		t.Error("second feeding pass caused no rehydrations")
	}
}

// TestEvictRehydrateFidelity pins the core promise of tiered storage: a
// zone forced through an evict/rehydrate cycle between every batch
// publishes estimates bit-identical to an untouched control fed the
// same reports, and an evict/rehydrate round trip with no intervening
// traffic leaves the exported snapshot identical modulo SavedAt.
func TestEvictRehydrateFidelity(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	cfg := Config{Window: 4, DetectThresholdDB: 0.25}

	control := New(cfg)
	if err := control.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	// Clone the calibrated zone into the evicted service over the
	// snapshot codec so both start from identical state.
	data, err := control.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	evicted := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: store.NewMem()})
	if _, err := evicted.RestoreZone(data); err != nil {
		t.Fatal(err)
	}

	var batches [][]Report
	for i := 0; i < 12; i++ {
		p := geom.Point{X: 0.4 + 0.25*float64(i), Y: 0.5 + 0.15*float64(i%5)}
		batches = append(batches, targetBatch(dep, p))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := control.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := evicted.Start(ctx); err != nil {
		t.Fatal(err)
	}

	a := feedAndCollect(t, control, "z", batches)
	var b []Estimate
	for bi := range batches {
		// Force the full cold path before every batch: the report below
		// must rehydrate from the store to be processed at all.
		if err := evicted.EvictZone("z"); err != nil {
			t.Fatalf("evict before batch %d: %v", bi, err)
		}
		if st := evicted.Stats()["z"]; !st.Cold {
			t.Fatalf("zone still hot after EvictZone before batch %d", bi)
		}
		b = append(b, feedAndCollect(t, evicted, "z", batches[bi:bi+1])...)
	}
	for i := range a {
		if comparableEstimate(a[i]) != comparableEstimate(b[i]) {
			t.Fatalf("estimate %d diverges:\ncontrol: %+v\nevicted: %+v", i, a[i], b[i])
		}
	}

	// Lossless round trip: export, evict, rehydrate, export again.
	before, err := evicted.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	if err := evicted.EvictZone("z"); err != nil {
		t.Fatal(err)
	}
	if err := evicted.RehydrateZone("z"); err != nil {
		t.Fatal(err)
	}
	after, err := evicted.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	sa, err := snap.Decode(before)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := snap.Decode(after)
	if err != nil {
		t.Fatal(err)
	}
	sa.SavedAt, sb.SavedAt = time.Time{}, time.Time{}
	if !reflect.DeepEqual(sa, sb) {
		t.Error("snapshot changed across an idle evict/rehydrate cycle")
	}

	st := evicted.Stats()["z"]
	if st.Evictions == 0 || st.Rehydrates == 0 {
		t.Errorf("counters did not move: %+v", st)
	}
}

// TestRehydrateFailureTypedAndRetries: a store that cannot serve the
// snapshot back turns the zone's requests into CodeRehydrateFailed
// errors — but the zone stays registered, and the moment the store
// heals the next request rehydrates and serves as if nothing happened.
func TestRehydrateFailureTypedAndRetries(t *testing.T) {
	dep := testDeployment(t)
	faults := storetest.New(store.NewMem())
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: faults})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	batch := targetBatch(dep, geom.Point{X: 0.9, Y: 0.9})
	feedAndCollect(t, svc, "z", [][]Report{batch})

	if err := svc.EvictZone("z"); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("backend down")
	faults.FailOp(storetest.OpGet, "z", injected, storetest.Forever)

	err := svc.Report("z", append([]Report(nil), batch...))
	if !errors.Is(err, ErrRehydrate) {
		t.Fatalf("Report on unrehydratable zone = %v, want ErrRehydrate", err)
	}
	if !errors.Is(err, taflocerr.ErrRehydrateFailed) {
		t.Fatalf("error %v does not match the taflocerr sentinel", err)
	}
	if !errors.Is(err, injected) {
		t.Fatalf("error %v does not wrap the store's cause", err)
	}
	// The failure is per-request degradation, not deregistration.
	if got := svc.Zones(); len(got) != 1 || got[0] != "z" {
		t.Fatalf("zone list after failed rehydrate: %v", got)
	}
	if st := svc.Stats()["z"]; !st.Cold || st.RehydrateErrors == 0 {
		t.Fatalf("stats after failed rehydrate: %+v", st)
	}
	// Direct rehydrate fails the same typed way.
	if err := svc.RehydrateZone("z"); !errors.Is(err, ErrRehydrate) {
		t.Fatalf("RehydrateZone = %v, want ErrRehydrate", err)
	}

	faults.Clear()
	feedAndCollect(t, svc, "z", [][]Report{batch})
	if st := svc.Stats()["z"]; st.Cold || st.Rehydrates == 0 {
		t.Fatalf("zone did not recover once the store healed: %+v", st)
	}
}

// TestTornSnapshotFailsClosed: a torn read from the store (truncated
// payload) must surface as a typed rehydrate failure via the snapshot
// codec's CRC, never as a garbage Model — and a later intact read
// recovers the zone.
func TestTornSnapshotFailsClosed(t *testing.T) {
	dep := testDeployment(t)
	faults := storetest.New(store.NewMem())
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: faults})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	batch := targetBatch(dep, geom.Point{X: 1.2, Y: 0.6})
	feedAndCollect(t, svc, "z", [][]Report{batch})
	if err := svc.EvictZone("z"); err != nil {
		t.Fatal(err)
	}

	faults.TearGet("z", 64, storetest.Forever)
	err := svc.Report("z", append([]Report(nil), batch...))
	if !errors.Is(err, ErrRehydrate) {
		t.Fatalf("Report over torn snapshot = %v, want ErrRehydrate", err)
	}
	faults.Clear()
	feedAndCollect(t, svc, "z", [][]Report{batch})
	if calls := faults.Calls(storetest.OpGet, "z"); calls < 2 {
		t.Errorf("expected at least 2 Get attempts (torn + retry), saw %d", calls)
	}
}

// TestEvictFailureKeepsServing: when the store rejects the checkpoint
// write, the eviction aborts — the zone stays hot, the failure is
// counted, and the service keeps serving from the resident Model. A
// broken store costs memory headroom, never availability.
func TestEvictFailureKeepsServing(t *testing.T) {
	dep := testDeployment(t)
	faults := storetest.New(store.NewMem())
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: faults})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	batch := targetBatch(dep, geom.Point{X: 0.7, Y: 1.1})
	feedAndCollect(t, svc, "z", [][]Report{batch})

	injected := errors.New("disk full")
	faults.FailOp(storetest.OpPut, "z", injected, storetest.Forever)
	err := svc.EvictZone("z")
	if !errors.Is(err, injected) {
		t.Fatalf("EvictZone = %v, want the store's error", err)
	}
	st := svc.Stats()["z"]
	if st.Cold {
		t.Fatal("zone went cold despite the checkpoint write failing")
	}
	if st.EvictErrors == 0 || st.Evictions != 0 {
		t.Fatalf("eviction accounting after failed write: %+v", st)
	}
	if svc.HotZones() != 1 {
		t.Fatalf("HotZones = %d after failed eviction, want 1", svc.HotZones())
	}
	// Still serving, from the still-resident Model: no store reads needed.
	feedAndCollect(t, svc, "z", [][]Report{batch})
	if calls := faults.Calls(storetest.OpGet, "z"); calls != 0 {
		t.Errorf("serving a hot zone touched the store: %d Gets", calls)
	}
}

// TestEvictWithoutStoreUnsupported: forcing an eviction on a service
// with no snapshot store is a typed refusal, not a panic or a lost
// Model.
func TestEvictWithoutStoreUnsupported(t *testing.T) {
	svc := New(Config{Window: 4})
	if err := svc.AddZone("z", testSystem(t, testDeployment(t))); err != nil {
		t.Fatal(err)
	}
	err := svc.EvictZone("z")
	if taflocerr.CodeOf(err) != taflocerr.CodeUnsupported {
		t.Fatalf("EvictZone without a store = %v, want code unsupported", err)
	}
	if svc.HotZones() != 1 {
		t.Fatalf("HotZones = %d, want 1", svc.HotZones())
	}
}

// TestRemoveZoneDeletesFromStore: removing a zone deletes its snapshot
// from the residency store, so a later RestoreStore boot cannot
// resurrect it.
func TestRemoveZoneDeletesFromStore(t *testing.T) {
	dep := testDeployment(t)
	mem := store.NewMem()
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: mem})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	feedAndCollect(t, svc, "z", [][]Report{targetBatch(dep, geom.Point{X: 0.8, Y: 0.8})})
	if err := svc.EvictZone("z"); err != nil {
		t.Fatal(err)
	}
	if ids, err := mem.List(); err != nil || len(ids) != 1 {
		t.Fatalf("store after eviction: %v, %v", ids, err)
	}
	if err := svc.RemoveZone("z"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get("z"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("snapshot survived RemoveZone: %v", err)
	}
	boot := New(Config{Window: 4})
	ids, err := boot.RestoreStore(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("removed zone resurrected on boot: %v", ids)
	}
}

// TestCheckpointStorePrunes covers checkpoint pruning through the Store
// interface with the in-memory backend: a removed zone's entry is
// deleted from the checkpoint target on the next pass, exactly as the
// directory backend prunes .snap files.
func TestCheckpointStorePrunes(t *testing.T) {
	depA, depB := testDeployment(t), testDeployment(t)
	svc := New(Config{Window: 4})
	if err := svc.AddZone("a", testSystem(t, depA)); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddZone("b", testSystem(t, depB)); err != nil {
		t.Fatal(err)
	}
	dst := store.NewMem()
	if err := svc.CheckpointStore(dst); err != nil {
		t.Fatal(err)
	}
	if ids, _ := dst.List(); len(ids) != 2 {
		t.Fatalf("checkpoint wrote %v, want 2 zones", ids)
	}
	if err := svc.RemoveZone("b"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CheckpointStore(dst); err != nil {
		t.Fatal(err)
	}
	ids, err := dst.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("checkpoint after removal holds %v, want [a]", ids)
	}
}

// TestRestoreStoreSkipsDamagedEntries: one damaged entry in a backend
// reports a typed error but does not block the healthy zones from
// restoring — the partial-restore contract of RestoreDir, now pinned
// through the Store interface for every backend.
func TestRestoreStoreSkipsDamagedEntries(t *testing.T) {
	dep := testDeployment(t)
	src := store.NewMem()
	seed := New(Config{Window: 4})
	if err := seed.AddZone("good", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	if err := seed.CheckpointStore(src); err != nil {
		t.Fatal(err)
	}
	if err := src.Put("bad", []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}

	boot := New(Config{Window: 4})
	ids, err := boot.RestoreStore(src)
	if err == nil {
		t.Fatal("damaged entry restored without error")
	}
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("restored %v, want [good] despite the damaged sibling", ids)
	}
	if got := boot.Zones(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("zones after partial restore: %v", got)
	}
}
