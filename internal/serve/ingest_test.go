package serve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"tafloc/internal/collector"
	"tafloc/internal/wire"
)

// wireBatch shapes n frames as a UDP batch datagram payload.
func wireBatch(n int, rssBase float64) []wire.RSSReport {
	reports := make([]wire.RSSReport, n)
	for i := range reports {
		reports[i] = wire.RSSReport{LinkID: uint16(i), Seq: uint32(i + 1), Time: time.Now()}
		reports[i].SetRSS(rssBase - float64(i))
	}
	return reports
}

// TestCollectorIngestSharedPath is the collector→Ingestor integration
// test: UDP batch datagrams forwarded through SetBatchSink +
// IngestSink must hit the same validation/shedding/counters as direct
// Ingest calls. The service is deliberately not started and given an
// exactly-known queue depth, so the shed point is deterministic: the
// same sequence of batches produces identical Received/Dropped whether
// it arrives over UDP or in-process.
func TestCollectorIngestSharedPath(t *testing.T) {
	const links = 3
	const depth = 2
	dep := testDeployment(t)

	// Two identical zones on one unstarted service: "udp" is fed through
	// the collector, "direct" through Service.Ingest. Queue depth 2 means
	// batches 3+ shed.
	svc := New(Config{QueueDepth: depth})
	sysA, sysB := testSystem(t, dep), testSystem(t, dep)
	if err := svc.AddZone("udp", sysA); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddZone("direct", sysB); err != nil {
		t.Fatal(err)
	}

	col, err := collector.New(links, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	col.SetBatchSink(IngestSink(svc, "udp"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dataAddr, _, err := col.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		col.Wait()
	})

	conn, err := net.Dial("udp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const batches = 5
	for k := 0; k < batches; k++ {
		frames := wireBatch(links, -40)
		if _, err := conn.Write(wire.EncodeBatch(frames)); err != nil {
			t.Fatal(err)
		}
		// The same batch in-process, converted exactly as the sink does.
		direct := make([]Report, len(frames))
		for i := range frames {
			direct[i] = FromWire(&frames[i])
		}
		err := svc.Ingest("direct", direct)
		if k < depth && err != nil {
			t.Fatalf("direct batch %d unexpectedly failed: %v", k, err)
		}
		if k >= depth && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("direct batch %d: err = %v, want ErrQueueFull", k, err)
		}
	}

	// Wait until the collector has seen all frames.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := col.Store.Stats(); st.FramesReceived == uint64(batches*links) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	stats := svc.Stats()
	udp, direct := stats["udp"], stats["direct"]
	if udp.Received != direct.Received || udp.Dropped != direct.Dropped {
		t.Errorf("UDP path counted differently from direct ingest:\n udp    %+v\n direct %+v", udp, direct)
	}
	wantReceived := uint64(depth * links)
	wantDropped := uint64((batches - depth) * links)
	if direct.Received != wantReceived || direct.Dropped != wantDropped {
		t.Errorf("direct stats %+v, want received=%d dropped=%d", direct, wantReceived, wantDropped)
	}

	// Link validation is shared too: an out-of-range frame is counted
	// dropped on the zone, not just at the collector.
	droppedBefore := svc.Stats()["udp"].Dropped
	bad := wire.RSSReport{LinkID: 99, Seq: 1, Time: time.Now()}
	bad.SetRSS(-40)
	if _, err := conn.Write(wire.EncodeBatch([]wire.RSSReport{bad})); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats()["udp"].Dropped == droppedBefore+1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("bad-link frame not counted: dropped=%d, want %d", svc.Stats()["udp"].Dropped, droppedBefore+1)
}
