package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tafloc/internal/api"
	"tafloc/internal/snap"
	"tafloc/taflocerr"
)

// The /v2 surface: the /v1 routes plus runtime zone lifecycle, a
// streaming watch, and deployment snapshots, with every error carrying
// a taxonomy code.
//
//	POST   /v2/report             ingest a batch (422 + code bad_link on a bad link index)
//	POST   /v2/zones/{id}/reports:stream  persistent NDJSON ingest (per-line acks + trailer)
//	GET    /v2/zones              sorted zone IDs
//	POST   /v2/zones/{id}         create a zone via the configured ZoneFactory
//	DELETE /v2/zones/{id}         remove a zone at runtime
//	GET    /v2/zones/{id}/position latest estimate
//	GET    /v2/zones/{id}/track   smoothed trajectory + velocity (?n=K)
//	GET    /v2/zones/{id}/history raw published-estimate history (?n=K)
//	GET    /v2/zones/{id}/watch   SSE stream of estimates
//	GET    /v2/zones/{id}/snapshot export the zone's calibrated deployment (binary)
//	PUT    /v2/zones/{id}/snapshot warm-start a zone from an uploaded snapshot
//	GET    /v2/healthz            liveness and per-zone counters
//
// The snapshot routes are gated the same way as zone creation: a
// service without a configured ZoneFactory has not opted into remote
// zone administration and answers 501 + code unsupported.

// errorV2 writes the typed error body, deriving status and code from
// the taflocerr taxonomy.
func errorV2(w http.ResponseWriter, err error) {
	code := taflocerr.CodeOf(err)
	writeJSON(w, taflocerr.HTTPStatus(code), api.ErrorBody{Error: err.Error(), Code: code})
}

func methodNotAllowedV2(w http.ResponseWriter, want string) {
	errorV2(w, taflocerr.Errorf(taflocerr.CodeMethodNotAllowed, "serve: %s only", want))
}

func (s *Service) handleReportV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowedV2(w, http.MethodPost)
		return
	}
	var req api.ReportRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody)).Decode(&req); err != nil {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: bad JSON: %v", err))
		return
	}
	if err := s.Report(req.Zone, req.Reports); err != nil {
		errorV2(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.ReportResponse{Accepted: len(req.Reports)})
}

func (s *Service) handleZoneListV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowedV2(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, api.ZoneList{Zones: s.Zones()})
}

func (s *Service) handleZoneV2(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/zones/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: want /v2/zones/{id}[/position|/track|/history|/watch|/snapshot|/reports:stream]"))
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodPost:
			s.handleZoneCreate(w, r, id)
		case http.MethodDelete:
			s.handleZoneDelete(w, id)
		default:
			methodNotAllowedV2(w, "POST or DELETE")
		}
	case "position":
		if r.Method != http.MethodGet {
			methodNotAllowedV2(w, http.MethodGet)
			return
		}
		if !s.zoneExists(id) {
			errorV2(w, ErrUnknownZone)
			return
		}
		e, ok := s.Position(id)
		if !ok {
			errorV2(w, taflocerr.Errorf(taflocerr.CodeNotReady,
				"serve: zone %q has not published an estimate yet", id))
			return
		}
		writeJSON(w, http.StatusOK, e)
	case "watch":
		if r.Method != http.MethodGet {
			methodNotAllowedV2(w, http.MethodGet)
			return
		}
		s.handleWatch(w, r, id)
	case "reports:stream":
		s.handleReportStream(w, r, id)
	case "track":
		if r.Method != http.MethodGet {
			methodNotAllowedV2(w, http.MethodGet)
			return
		}
		points, err := s.Track(id, queryN(r))
		if err != nil {
			errorV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, api.TrackResponse{Zone: id, Points: points})
	case "history":
		if r.Method != http.MethodGet {
			methodNotAllowedV2(w, http.MethodGet)
			return
		}
		ests, err := s.History(id, queryN(r))
		if err != nil {
			errorV2(w, err)
			return
		}
		writeJSON(w, http.StatusOK, api.HistoryResponse{Zone: id, Estimates: ests})
	case "snapshot":
		switch r.Method {
		case http.MethodGet:
			s.handleSnapshotGet(w, id)
		case http.MethodPut:
			s.handleSnapshotPut(w, r, id)
		default:
			methodNotAllowedV2(w, "GET or PUT")
		}
	default:
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: unknown zone subresource %q", sub))
	}
}

// queryN parses the optional ?n=K sample bound of the track and
// history routes; 0 (all buffered samples) when absent or unparsable.
func queryN(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil {
		return 0
	}
	return n
}

// maxSnapshotBody bounds PUT /v2/zones/{id}/snapshot uploads. Radio
// maps are dense float64 matrices, so snapshots are far bigger than
// report batches; 64 MiB covers thousands of cells.
const maxSnapshotBody = 64 << 20

func (s *Service) handleSnapshotGet(w http.ResponseWriter, id string) {
	if s.cfg.ZoneFactory == nil {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeUnsupported,
			"serve: snapshot transfer over HTTP requires a ZoneFactory"))
		return
	}
	data, err := s.SnapshotZone(id)
	if err != nil {
		errorV2(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Service) handleSnapshotPut(w http.ResponseWriter, r *http.Request, id string) {
	if s.cfg.ZoneFactory == nil {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeUnsupported,
			"serve: snapshot transfer over HTTP requires a ZoneFactory"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: read snapshot: %v", err))
		return
	}
	sn, err := snap.Decode(data)
	if err != nil {
		errorV2(w, err)
		return
	}
	if sn.Zone != id {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"serve: snapshot is for zone %q, not %q", sn.Zone, id))
		return
	}
	if _, err := s.restoreSnapshot(sn); err != nil {
		errorV2(w, err)
		return
	}
	// Dimensions come from the decoded snapshot, not a re-lookup — the
	// zone could already have been removed again by a concurrent DELETE.
	writeJSON(w, http.StatusCreated, api.ZoneInfo{
		Zone:  id,
		Links: len(sn.State.Links),
		Cells: sn.State.X.Cols(),
	})
}

func (s *Service) handleZoneCreate(w http.ResponseWriter, r *http.Request, id string) {
	factory := s.cfg.ZoneFactory
	if factory == nil {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeUnsupported,
			"serve: zone creation over HTTP requires a ZoneFactory"))
		return
	}
	var spec api.ZoneSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody)).Decode(&spec); err != nil && !errors.Is(err, io.EOF) {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeBadRequest, "serve: bad JSON: %v", err))
		return
	}
	sys, err := factory(r.Context(), id, spec)
	if err != nil {
		errorV2(w, err)
		return
	}
	if err := s.AddZone(id, sys); err != nil {
		errorV2(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.ZoneInfo{
		Zone:  id,
		Links: sys.Layout().M(),
		Cells: sys.Layout().N(),
	})
}

func (s *Service) handleZoneDelete(w http.ResponseWriter, id string) {
	if err := s.RemoveZone(id); err != nil {
		errorV2(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ZoneInfo{Zone: id, Removed: true})
}

// handleWatch streams a zone's estimates as server-sent events:
//
//	event: estimate
//	data: {json Estimate}
//
// repeated per published estimate, and a final
//
//	event: gone
//	data: {json Estimate with final:true}
//
// when the zone is removed, after which the stream ends. The stream also
// ends when the client disconnects or its request context is cancelled.
//
// Between estimates the stream emits ": heartbeat" comment lines every
// Config.WatchHeartbeat (flushed immediately), so an idle stream — a
// vacant zone publishes nothing — is not killed by proxy or
// load-balancer idle timeouts. SSE clients ignore comment lines by
// protocol; package client does so explicitly.
func (s *Service) handleWatch(w http.ResponseWriter, r *http.Request, id string) {
	ch, stop, err := s.Watch(id)
	if err != nil {
		errorV2(w, err)
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		errorV2(w, taflocerr.Errorf(taflocerr.CodeInternal, "serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	var heartbeat <-chan time.Time
	if s.cfg.WatchHeartbeat > 0 {
		ticker := time.NewTicker(s.cfg.WatchHeartbeat)
		defer ticker.Stop()
		heartbeat = ticker.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case e, open := <-ch:
			if !open {
				// Zone removed; the terminal estimate may have been shed if
				// this watcher was saturated, so synthesize one — the
				// client contract is that the last event is always "gone".
				writeSSE(w, "gone", Estimate{Zone: id, Cell: -1, Final: true})
				fl.Flush()
				return
			}
			event := "estimate"
			if e.Final {
				event = "gone"
			}
			writeSSE(w, event, e)
			fl.Flush()
			if e.Final {
				return
			}
		}
	}
}

func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

func (s *Service) handleHealthzV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowedV2(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, api.Health{
		Status:   "ok",
		Zones:    len(s.Zones()),
		UptimeS:  s.Uptime().Seconds(),
		Stats:    s.Stats(),
		Streams:  int(s.streams.Load()),
		HotZones: s.HotZones(),
	})
}
