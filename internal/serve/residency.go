package serve

// Tiered zone storage: the residency tier over internal/store. A
// registered zone is either hot (its core.System — and therefore its
// immutable Model, the dominant per-zone allocation — is resident) or
// cold (the System pointer is nil and the zone's calibrated state lives
// only as a snapshot in the service's store). Everything else a zone
// owns — ingest queue, fold windows, counters, trajectory state —
// stays resident across eviction, which is why an evicted-and-
// rehydrated zone publishes bit-identical estimates to one that was
// never evicted: eviction removes exactly the state that
// ExportState/RestoreSystem round-trips losslessly, and nothing more.
//
// Transitions are guarded by the per-zone resMu. In-flight fold and
// locate tasks are never quiesced for an eviction: each task carries
// the *core.System it resolved at fold time, and a System's read plane
// is immutable, so a task races an eviction only in the harmless sense
// of finishing against a Model whose zone has since gone cold. The LRU
// is approximate by design — a per-zone logical timestamp bumped on
// every touch, scanned only when the service is over cap — so the
// publish hot path pays one atomic store, never an ordering structure.

import (
	"errors"

	"tafloc/internal/core"
	"tafloc/internal/snap"
	"tafloc/taflocerr"
)

// touch bumps the zone's LRU timestamp: one atomic add and one store,
// cheap enough for every ingest, publish, and read that should count as
// recent use.
func (s *Service) touch(z *zone) {
	z.lastTouch.Store(s.lruClock.Add(1))
}

// ensureHot returns the zone's resident System, rehydrating it from the
// snapshot store first when the zone is cold. Rehydration is
// single-flight per zone (resMu); a failure counts into the zone's
// RehydrateErrors, surfaces as a taflocerr.CodeRehydrateFailed error,
// and leaves the zone registered and cold — the next call retries from
// scratch, so a store that heals heals the zone.
func (s *Service) ensureHot(z *zone) (*core.System, error) {
	s.touch(z)
	if sys := z.sys.Load(); sys != nil {
		return sys, nil
	}
	z.resMu.Lock()
	sys, err := s.rehydrateLocked(z)
	z.resMu.Unlock()
	if err != nil {
		return nil, err
	}
	// The rehydrate may have pushed the service over its hot cap; evict
	// the coldest zone(s) outside resMu (eviction takes the victim's).
	s.enforceCap()
	return sys, nil
}

// rehydrateLocked restores the zone's System from the store. Caller
// holds z.resMu.
func (s *Service) rehydrateLocked(z *zone) (*core.System, error) {
	if sys := z.sys.Load(); sys != nil {
		return sys, nil // lost the race to another rehydrator: done
	}
	if z.isStopped() {
		// Removed (or mid-swap) while we held a stale reference; the zone
		// will not serve again under this shard object.
		return nil, ErrUnknownZone
	}
	fail := func(err error) (*core.System, error) {
		z.rehydrateErrors.Add(1)
		return nil, taflocerr.Errorf(taflocerr.CodeRehydrateFailed,
			"serve: rehydrate zone %q: %w", z.id, err)
	}
	if s.store == nil {
		// Unreachable through eviction (zones only go cold via a store),
		// but a direct construction bug should fail typed, not panic.
		return fail(errors.New("no snapshot store configured"))
	}
	sn, err := snap.ReadStore(s.store, z.id)
	if err != nil {
		return fail(err)
	}
	sys, err := core.RestoreSystem(sn.State)
	if err != nil {
		return fail(err)
	}
	if m := sys.Layout().M(); m != len(z.win) {
		// The zone's resident ingest state was sized for its deployment;
		// a snapshot with a different link count is not this zone's.
		return fail(taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"stored snapshot has %d links, zone has %d", m, len(z.win)))
	}
	z.sys.Store(sys)
	z.rehydrates.Add(1)
	s.hotCount.Add(1)
	return sys, nil
}

// evictZone demotes a zone to cold: snapshot its calibrated state into
// the store, then drop the System. The write happens first and gates
// the drop — on a store failure the zone stays hot (EvictErrors counts
// it) and keeps serving, which is the degradation contract: a broken
// store costs memory headroom, never correctness. A Model swapped in by
// a concurrent UpdateContext between export and drop aborts the
// eviction (the snapshot written is consistent but already stale; the
// zone stays hot and a later pass re-evicts).
func (s *Service) evictZone(z *zone) error {
	z.resMu.Lock()
	defer z.resMu.Unlock()
	if z.isStopped() {
		return nil // being removed or swapped; nothing to demote
	}
	sys := z.sys.Load()
	if sys == nil {
		return nil // already cold
	}
	model := sys.Model()
	sn := s.buildSnapshot(z, sys)
	if err := snap.WriteStore(s.store, sn); err != nil {
		z.evictErrors.Add(1)
		return taflocerr.Errorf(taflocerr.CodeOf(err),
			"serve: evict zone %q: %w", z.id, err)
	}
	if sys.Model() != model { //tafloc:reload deliberate staleness re-check: a concurrent Update during WriteStore means the snapshot is stale and the zone must stay hot
		return taflocerr.Errorf(taflocerr.CodeInternal,
			"serve: zone %q model updated during eviction; zone stays hot", z.id)
	}
	z.sys.Store(nil)
	z.evictions.Add(1)
	s.hotCount.Add(-1)
	return nil
}

// enforceCap evicts least-recently-touched zones until the resident
// count is back under Config.MaxHotZones. It runs off the publish and
// rehydrate paths and costs one atomic load when the service is under
// cap; over cap it scans the zone table per eviction (O(zones), paid
// only while actually evicting). An eviction failure ends the pass —
// the next publish retries — so a wedged store cannot spin a worker.
func (s *Service) enforceCap() {
	max := int64(s.cfg.MaxHotZones)
	if max <= 0 || s.store == nil {
		return
	}
	for s.hotCount.Load() > max {
		v := s.coldestHot()
		if v == nil {
			return
		}
		if err := s.evictZone(v); err != nil {
			return
		}
	}
}

// coldestHot returns the hot zone with the oldest LRU timestamp, or nil
// when no zone is hot.
func (s *Service) coldestHot() *zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *zone
	var bestTouch int64
	for _, z := range s.zones {
		if z.sys.Load() == nil {
			continue
		}
		if t := z.lastTouch.Load(); best == nil || t < bestTouch {
			best, bestTouch = z, t
		}
	}
	return best
}

// HotZones reports how many registered zones currently hold a resident
// Model.
func (s *Service) HotZones() int { return int(s.hotCount.Load()) }

// EvictZone forces a zone cold right now, regardless of the LRU order
// or the hot cap: checkpoint to the snapshot store, then drop the
// resident Model. The zone stays registered and rehydrates on its next
// report, locate, track, or snapshot request. It fails with
// taflocerr.CodeUnsupported when the service has no snapshot store, and
// with the store's error (zone left hot) when the checkpoint write
// fails.
func (s *Service) EvictZone(id string) error {
	if s.store == nil {
		return taflocerr.Errorf(taflocerr.CodeUnsupported,
			"serve: no snapshot store configured; set Config.Store or Config.MaxHotZones")
	}
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return ErrUnknownZone
	}
	return s.evictZone(z)
}

// RehydrateZone forces a cold zone hot right now (a no-op on a hot
// one): the warm-up counterpart of EvictZone, for operators who want a
// zone resident before its first request.
func (s *Service) RehydrateZone(id string) error {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return ErrUnknownZone
	}
	_, err := s.ensureHot(z)
	return err
}

// residentZones counts hot zones directly from the zone table, so
// tests can cross-check the running hotCount against ground truth.
func (s *Service) residentZones() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, z := range s.zones {
		if z.sys.Load() != nil {
			n++
		}
	}
	return n
}
