package serve

import (
	"fmt"

	"tafloc/internal/wire"
)

// Ingestor is the transport-agnostic ingestion surface of the serving
// layer. Every transport — in-process callers, the UDP collector sink
// (IngestSink), the per-request POST /v2/report handler, and the
// persistent NDJSON report stream — funnels into one Ingest
// implementation, so validation, bounded-queue load shedding, and the
// per-zone counters behave identically no matter how a report arrived.
// *Service implements it.
type Ingestor interface {
	// Ingest enqueues a batch of reports for a zone. On a nil return the
	// ingestor has taken ownership of the slice and the caller must not
	// reuse it; on any error the ingestor retains nothing and the caller
	// may retry with the same slice.
	Ingest(zone string, reports []Report) error
}

// Ingest is the shared ingestion path. A report addressing a link
// outside the zone's deployment rejects the whole batch with an error
// matching both ErrBadReport and taflocerr.ErrBadLink; when the zone's
// bounded queue is full the batch is shed and ErrQueueFull returned —
// ingestion never blocks the caller. Rejected and shed reports count
// into the zone's Dropped stat, accepted ones into Received, for every
// transport alike.
func (s *Service) Ingest(id string, reports []Report) error {
	s.mu.RLock()
	z, ok := s.zones[id]
	s.mu.RUnlock()
	if !ok {
		return ErrUnknownZone
	}
	if len(reports) == 0 {
		return nil
	}
	m := len(z.win)
	for _, r := range reports {
		if r.Link < 0 || r.Link >= m {
			z.dropped.Add(uint64(len(reports)))
			return fmt.Errorf("%w: link %d of %d in zone %q", ErrBadReport, r.Link, m, id)
		}
	}
	select {
	case z.queue <- reports:
		z.received.Add(uint64(len(reports)))
		return nil
	default:
		z.dropped.Add(uint64(len(reports)))
		return ErrQueueFull
	}
}

// Report enqueues a batch of reports for a zone. It is the pre-v2.1
// name of Ingest and forwards to it unchanged; both share the one
// validation/shedding/metrics path.
func (s *Service) Report(id string, reports []Report) error {
	return s.Ingest(id, reports)
}

// IngestSink adapts an Ingestor into a collector batch sink for one
// zone: wire it with Collector.SetBatchSink and every decoded UDP batch
// datagram flows through the shared ingest path. Shed or rejected
// batches are dropped silently here — the zone's counters carry the
// accounting, exactly as they do for HTTP ingest — because the sink
// runs on the collector's UDP read loop and must never block or fail
// it.
func IngestSink(ing Ingestor, zone string) func([]wire.RSSReport) {
	return func(frames []wire.RSSReport) {
		reports := make([]Report, len(frames))
		for i := range frames {
			reports[i] = FromWire(&frames[i])
		}
		_ = ing.Ingest(zone, reports)
	}
}
