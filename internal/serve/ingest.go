package serve

import (
	"fmt"

	"tafloc/internal/wire"
)

// Ingestor is the transport-agnostic ingestion surface of the serving
// layer. Every transport — in-process callers, the UDP collector sink
// (IngestSink), the per-request POST /v2/report handler, and the
// persistent NDJSON report stream — funnels into one Ingest
// implementation, so validation, bounded-queue load shedding, and the
// per-zone counters behave identically no matter how a report arrived.
// *Service implements it.
type Ingestor interface {
	// Ingest enqueues a batch of reports for a zone. On a nil return the
	// ingestor has taken ownership of the slice and the caller must not
	// reuse it; on any error the ingestor retains nothing and the caller
	// may retry with the same slice.
	Ingest(zone string, reports []Report) error
}

// Ingest is the shared ingestion path. A report addressing a link
// outside the zone's deployment rejects the whole batch with an error
// matching both ErrBadReport and taflocerr.ErrBadLink; when the zone's
// bounded queue is full the batch is shed and ErrQueueFull returned —
// ingestion never blocks the caller. A batch addressed to a cold zone
// (Model evicted to the snapshot store) rehydrates it first; a failed
// rehydrate rejects the batch with an error matching ErrRehydrate and
// taflocerr.ErrRehydrateFailed while the zone stays registered for
// retry. Rejected and shed reports count
// into the zone's Dropped stat, accepted ones into Received, for every
// transport alike. An accepted batch arms the zone's fold round on the
// shared executor pool (a running service folds promptly; before Start
// the queue simply fills, and Start schedules the backlog).
func (s *Service) Ingest(id string, reports []Report) error {
	s.mu.RLock()
	z, ok := s.zones[id]
	ctx := s.runCtx
	s.mu.RUnlock()
	if !ok {
		return ErrUnknownZone
	}
	if len(reports) == 0 {
		return nil
	}
	m := len(z.win)
	for _, r := range reports {
		if r.Link < 0 || r.Link >= m {
			z.dropped.Add(uint64(len(reports)))
			return fmt.Errorf("%w: link %d of %d in zone %q", ErrBadReport, r.Link, m, id)
		}
	}
	// A cold zone rehydrates here, before its reports enter the queue:
	// ingest is the residency tier's demand signal, and doing it on the
	// ingest path is what turns a failed rehydrate into a typed error
	// the reporter sees (matching ErrRehydrate /
	// taflocerr.ErrRehydrateFailed) instead of estimates silently never
	// arriving. The zone stays registered either way; the next batch
	// retries the store. Hot zones pay one atomic load and an LRU touch.
	if _, err := s.ensureHot(z); err != nil {
		z.dropped.Add(uint64(len(reports)))
		return err
	}
	running := s.started.Load() && ctx != nil && ctx.Err() == nil
	if z.unbuffered {
		return s.ingestUnbuffered(z, reports, running)
	}
	select {
	case z.queue <- reports:
		z.received.Add(uint64(len(reports)))
		if !running {
			// The run context was read before the enqueue; Start may have
			// completed in between, after scanning this zone's then-empty
			// backlog. Re-reading under the same mutex Start holds closes
			// the window: either this re-check observes the started
			// service and schedules, or Start's backlog scan (which runs
			// after this enqueue) does. Duplicate scheduling is harmless —
			// scheduleFold is idempotent while a fold is armed.
			s.mu.RLock()
			ctx = s.runCtx
			s.mu.RUnlock()
			running = s.started.Load() && ctx != nil && ctx.Err() == nil
		}
		if running {
			s.scheduleFold(z)
		}
		return nil
	default:
		z.dropped.Add(uint64(len(reports)))
		return ErrQueueFull
	}
}

// ingestUnbuffered implements the explicit-zero queue depth semantics:
// a batch is accepted only when it can rendezvous with an immediate fold
// round — the zone is idle and nothing else is pending — and shed
// whenever the zone is busy. Without a running executor (before Start,
// after Stop) every batch sheds, exactly as the worker-per-zone design
// shed when no worker was receiving.
func (s *Service) ingestUnbuffered(z *zone, reports []Report, running bool) error {
	n := uint64(len(reports))
	if !running {
		z.dropped.Add(n)
		return ErrQueueFull
	}
	z.schedMu.Lock()
	if z.stopped || z.foldBusy || len(z.queue) > 0 {
		z.schedMu.Unlock()
		z.dropped.Add(n)
		return ErrQueueFull
	}
	// The slot (capacity 1) is verifiably empty and only filled under
	// schedMu, so this send cannot block.
	z.queue <- reports
	z.foldBusy = true
	z.tasks.Add(1)
	if !s.exec.submit(task{z: z, kind: foldTask}) {
		// Executor closed (service stopping): take the slot back and
		// shed, exactly as an unbuffered zone sheds without a receiver.
		<-z.queue
		z.foldBusy = false
		z.tasks.Done()
		z.schedMu.Unlock()
		z.dropped.Add(n)
		return ErrQueueFull
	}
	z.schedMu.Unlock()
	z.received.Add(n)
	return nil
}

// Report enqueues a batch of reports for a zone. It is the pre-v2.1
// name of Ingest and forwards to it unchanged; both share the one
// validation/shedding/metrics path.
func (s *Service) Report(id string, reports []Report) error {
	return s.Ingest(id, reports)
}

// IngestSink adapts an Ingestor into a collector batch sink for one
// zone: wire it with Collector.SetBatchSink and every decoded UDP batch
// datagram flows through the shared ingest path. Shed or rejected
// batches are dropped silently here — the zone's counters carry the
// accounting, exactly as they do for HTTP ingest — because the sink
// runs on the collector's UDP read loop and must never block or fail
// it.
func IngestSink(ing Ingestor, zone string) func([]wire.RSSReport) {
	return func(frames []wire.RSSReport) {
		reports := make([]Report, len(frames))
		for i := range frames {
			reports[i] = FromWire(&frames[i])
		}
		_ = ing.Ingest(zone, reports)
	}
}
