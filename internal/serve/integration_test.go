package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"tafloc/internal/collector"
	"tafloc/internal/geom"
	"tafloc/internal/wire"
)

// TestCollectorToService wires the full ingest path over real sockets:
// a simulated link-agent fleet streams UDP frames to a collector whose
// sink forwards every decoded report into the multi-zone service, which
// must converge to a present estimate near the target.
func TestCollectorToService(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}

	col, err := collector.New(dep.Channel.M(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	col.SetSink(func(r wire.RSSReport) {
		_ = svc.Report("z", []Report{FromWire(&r)})
	})
	dataAddr, _, err := col.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	target := geom.Point{X: 1.5, Y: 1.2}
	fleet, err := collector.NewFleet(dep.Channel, dataAddr, collector.AgentConfig{
		Interval: time.Millisecond,
		Target:   func() (geom.Point, bool) { return target, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(ctx)
	}()

	e := waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Present })
	if d := e.Point.Dist(target); d > 2.0 {
		t.Errorf("localization error %.2f m via collector path (target %v, got %v)", d, target, e.Point)
	}
	cancel()
	wg.Wait()
	col.Wait()
	svc.Wait()
}
