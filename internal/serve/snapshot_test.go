package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tafloc/internal/api"
	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/snap"
	"tafloc/taflocerr"
)

// feedAndCollect drives one batch at a time through a zone and records
// the estimate each batch produces, waiting for the worker between
// batches so every batch is exactly one processing round — which makes
// the published sequence deterministic and comparable across services.
func feedAndCollect(t *testing.T, s *Service, id string, batches [][]Report) []Estimate {
	t.Helper()
	var out []Estimate
	for bi, b := range batches {
		prev := s.Stats()[id].Estimates
		for s.Report(id, append([]Report(nil), b...)) == ErrQueueFull {
			time.Sleep(time.Millisecond)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st := s.Stats()[id]; st.Estimates > prev {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("zone %s: batch %d produced no estimate", id, bi)
			}
			time.Sleep(time.Millisecond)
		}
		e, ok := s.Position(id)
		if !ok {
			t.Fatalf("zone %s: no position after batch %d", id, bi)
		}
		out = append(out, e)
	}
	return out
}

// comparable strips the per-service fields (Seq, Time) that legitimately
// differ between two services publishing the same physics.
func comparableEstimate(e Estimate) Estimate {
	e.Seq = 0
	e.Time = time.Time{}
	return e
}

// TestSnapshotRestoreFidelity is the acceptance test of the persistence
// subsystem: a zone restored from a snapshot must publish estimates
// identical to the never-restarted zone for the same report stream —
// Present, DeviationDB, Cell, Point, Distance, Confidence, and Reports
// all equal, not approximately equal.
func TestSnapshotRestoreFidelity(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	cfg := Config{Window: 4, DetectThresholdDB: 0.25}

	original := New(cfg)
	if err := original.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	data, err := original.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}

	// The restoring service is configured differently on purpose: the
	// snapshot's per-zone config (window 4, threshold 0.25, detector mad)
	// must win over these defaults for the restored zone.
	restoredSvc := New(Config{Window: 16, DetectThresholdDB: 5, Detector: core.DetectorRMS})
	id, err := restoredSvc.RestoreZone(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != "z" {
		t.Fatalf("restored id %q", id)
	}

	var batches [][]Report
	for i := 0; i < 12; i++ {
		p := geom.Point{X: 0.4 + 0.25*float64(i), Y: 0.5 + 0.15*float64(i%5)}
		batches = append(batches, targetBatch(dep, p))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := original.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := restoredSvc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	a := feedAndCollect(t, original, "z", batches)
	b := feedAndCollect(t, restoredSvc, "z", batches)
	for i := range a {
		if comparableEstimate(a[i]) != comparableEstimate(b[i]) {
			t.Fatalf("estimate %d diverges:\noriginal: %+v\nrestored: %+v", i, a[i], b[i])
		}
	}
}

// TestRestoreZoneRejectsDamage: corrupt inputs fail closed with the
// typed snapshot errors and leave the service untouched.
func TestRestoreZoneRejectsDamage(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	data, err := svc.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}

	other := New(Config{})
	if _, err := other.RestoreZone(data[:len(data)/2]); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("truncated: %v", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := other.RestoreZone(flipped); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("bit-flipped: %v", err)
	}
	if zones := other.Zones(); len(zones) != 0 {
		t.Errorf("failed restores registered zones: %v", zones)
	}
	if _, err := other.RestoreZone(data); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
	if _, err := other.RestoreZone(data); !errors.Is(err, ErrZoneExists) {
		t.Errorf("duplicate restore: %v", err)
	}
	if _, err := svc.SnapshotZone("nope"); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("snapshot of unknown zone: %v", err)
	}
}

// TestCheckpointRestoreDir round-trips a whole service through a state
// directory and checks the per-zone config survives.
func TestCheckpointRestoreDir(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25})
	for _, id := range []string{"a", "b", "zone/with slash"} {
		if err := svc.AddZone(id, testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := svc.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	// A stray corrupt file must be reported but not block the others.
	if err := os.WriteFile(filepath.Join(dir, "junk.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := New(Config{Window: 16})
	ids, err := fresh.RestoreDir(dir)
	if err == nil {
		t.Error("RestoreDir swallowed the corrupt file")
	}
	if len(ids) != 3 {
		t.Fatalf("restored %v, want 3 zones", ids)
	}
	got := fresh.Zones()
	want := []string{"a", "b", "zone/with slash"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zones %v, want %v", got, want)
		}
	}

	// The restored zones keep the checkpointing service's window, not the
	// restoring service's.
	rt, err := fresh.SnapshotZone("a")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := snap.Decode(rt)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Config.Window != 4 || sn.Config.DetectThresholdDB != 0.25 {
		t.Errorf("restored zone config %+v, want window 4 / threshold 0.25", sn.Config)
	}

	// Missing directory: restores nothing, no error.
	ids, err = fresh.RestoreDir(filepath.Join(dir, "missing"))
	if err != nil || len(ids) != 0 {
		t.Errorf("missing dir: %v, %v", ids, err)
	}
}

// TestCheckpointPrunesRemovedZones: a zone removed at runtime must not
// resurrect from its stale snapshot file on the next boot.
func TestCheckpointPrunesRemovedZones(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{})
	for _, id := range []string{"keep", "doomed"} {
		if err := svc.AddZone(id, testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := svc.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed.snap")); err != nil {
		t.Fatal(err)
	}
	if err := svc.RemoveZone("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale snapshot of removed zone survived the checkpoint: %v", err)
	}
	fresh := New(Config{})
	ids, err := fresh.RestoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Errorf("restored %v, want only the kept zone", ids)
	}
	// Files the service did not write (no .snap suffix) are left alone.
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := svc.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("checkpoint touched a non-snapshot file: %v", err)
	}
}

// TestRestoreRejectsImplausibleWindow: a CRC-valid snapshot whose
// serve config asks for an absurd window must fail closed instead of
// driving the per-link allocations into a panic or OOM.
func TestRestoreRejectsImplausibleWindow(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	sn, err := svc.snapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	sn.Config.Window = 1 << 52
	data, err := snap.Encode(sn)
	if err != nil {
		t.Fatal(err)
	}
	other := New(Config{})
	if _, err := other.RestoreZone(data); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("implausible window: %v", err)
	}
	if zones := other.Zones(); len(zones) != 0 {
		t.Errorf("rejected snapshot still registered zones: %v", zones)
	}
}

// TestCheckpointerWritesAndFinalizes: the background checkpointer
// produces files at the interval and once more on shutdown.
func TestCheckpointerWritesAndFinalizes(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var cpErr error
	if err := svc.StartCheckpointer(ctx, dir, 20*time.Millisecond, func(err error) { cpErr = err }); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartCheckpointer(ctx, dir, 0, nil); err == nil {
		t.Error("zero interval accepted")
	}

	path := filepath.Join(dir, "z.snap")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint file before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	svc.Wait() // covers the checkpointer goroutine, including the final write
	if cpErr != nil {
		t.Fatalf("checkpoint error: %v", cpErr)
	}
	sn, err := snap.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Zone != "z" {
		t.Errorf("checkpointed zone %q", sn.Zone)
	}
}

// TestSnapshotHTTP covers the /v2 snapshot routes: factory gating, the
// GET/PUT round trip, and typed rejection of damaged uploads.
func TestSnapshotHTTP(t *testing.T) {
	dep := testDeployment(t)

	// Without a ZoneFactory the routes are gated off.
	gated := New(Config{})
	if err := gated.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	gsrv := httptest.NewServer(gated.Handler())
	defer gsrv.Close()
	resp, err := http.Get(gsrv.URL + "/v2/zones/z/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("ungated snapshot GET: %d, want 501", resp.StatusCode)
	}

	svc := New(Config{
		ZoneFactory: func(ctx context.Context, id string, spec api.ZoneSpec) (*core.System, error) {
			return testSystem(t, dep), nil
		},
	})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err = http.Get(srv.URL + "/v2/zones/z/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot GET: %d, %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("snapshot content type %q", ct)
	}
	if _, err := snap.Decode(data); err != nil {
		t.Fatalf("served snapshot does not decode: %v", err)
	}

	put := func(id string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, srv.URL+"/v2/zones/"+id+"/snapshot", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// PUT under a mismatched id is refused.
	if resp := put("other", data); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched id PUT: %d, want 400", resp.StatusCode)
	}
	// Damaged uploads carry the snapshot taxonomy codes.
	if resp := put("z", data[:len(data)-3]); resp.StatusCode != taflocerr.HTTPStatus(taflocerr.CodeSnapshotCorrupt) {
		t.Errorf("truncated PUT: %d", resp.StatusCode)
	}
	if resp := put("z", []byte("garbage")); resp.StatusCode != taflocerr.HTTPStatus(taflocerr.CodeSnapshotCorrupt) {
		t.Errorf("garbage PUT: %d", resp.StatusCode)
	}
	// Existing zone conflicts; after removal the PUT warm-starts it.
	if resp := put("z", data); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate PUT: %d, want 409", resp.StatusCode)
	}
	if err := svc.RemoveZone("z"); err != nil {
		t.Fatal(err)
	}
	if resp := put("z", data); resp.StatusCode != http.StatusCreated {
		t.Errorf("restore PUT: %d, want 201", resp.StatusCode)
	}
	if _, ok := svc.System("z"); !ok {
		t.Error("zone not registered after PUT restore")
	}
}

// TestWatchHeartbeat reads the raw SSE stream of an idle zone and
// requires periodic comment heartbeats between estimates.
func TestWatchHeartbeat(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{WatchHeartbeat: 20 * time.Millisecond})
	if err := svc.AddZone("quiet", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, srv.URL+"/v2/zones/quiet/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	beats := 0
	deadline := time.AfterFunc(5*time.Second, cancelReq)
	defer deadline.Stop()
	for sc.Scan() && beats < 3 {
		if strings.HasPrefix(sc.Text(), ": heartbeat") {
			beats++
		}
	}
	if beats < 3 {
		t.Fatalf("saw %d heartbeats on an idle stream, want >= 3", beats)
	}
}

// TestDisabledDetectionGate: an explicit zero threshold (negative
// sentinel in Config) must disable presence gating — the same vacant
// stream a default zone reports as absent is always Present.
func TestDisabledDetectionGate(t *testing.T) {
	dep := testDeployment(t)

	vacantBatch := func() []Report {
		y := dep.Channel.MeasureVacant(0, 1)
		b := make([]Report, len(y))
		for i, v := range y {
			b[i] = Report{Link: i, RSS: v}
		}
		return b
	}

	gateless := New(Config{Window: 2, DetectThresholdDB: -1})
	if err := gateless.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := gateless.Start(ctx); err != nil {
		t.Fatal(err)
	}
	batches := make([][]Report, 8)
	for i := range batches {
		batches[i] = vacantBatch()
	}
	for _, e := range feedAndCollect(t, gateless, "z", batches) {
		if !e.Present {
			t.Fatalf("gate disabled but estimate reports absent: %+v", e)
		}
		if e.Cell < 0 {
			t.Fatalf("gate disabled but no localization ran: %+v", e)
		}
	}
}

// TestConfigNormalization pins the unset-vs-explicit-zero semantics.
func TestConfigNormalization(t *testing.T) {
	def := Config{}.withDefaults()
	if def.QueueDepth != 256 || def.BatchSize != 64 || def.Window != 8 ||
		def.DetectThresholdDB != 1 || def.WatchBuffer != 16 ||
		def.WatchHeartbeat != 15*time.Second || def.Detector != core.DetectorMAD {
		t.Errorf("zero config defaults: %+v", def)
	}
	exp := Config{
		QueueDepth:        -1,
		BatchSize:         -1,
		Window:            -1,
		DetectThresholdDB: -1,
		WatchBuffer:       -1,
		WatchHeartbeat:    -1,
	}.withDefaults()
	if exp.QueueDepth != 0 {
		t.Errorf("explicit zero queue depth: %d", exp.QueueDepth)
	}
	if exp.BatchSize != 1 || exp.Window != 1 || exp.WatchBuffer != 1 {
		t.Errorf("explicit minimums: %+v", exp)
	}
	if exp.DetectThresholdDB != 0 {
		t.Errorf("explicit zero threshold: %g", exp.DetectThresholdDB)
	}
	if exp.WatchHeartbeat != 0 {
		t.Errorf("explicit zero heartbeat: %v", exp.WatchHeartbeat)
	}
}

// TestNewServiceErrorNotPanic: the builder surfaces configuration errors
// as taflocerr values; only the legacy New panics.
func TestNewServiceErrorNotPanic(t *testing.T) {
	if _, err := NewService(Config{Detector: "no-such"}); !errors.Is(err, taflocerr.ErrBadRequest) {
		t.Errorf("NewService unknown detector: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("legacy New did not panic on an unknown detector")
		}
	}()
	New(Config{Detector: "no-such"})
}

// An unbuffered queue (explicit zero depth) still serves: Report
// rendezvouses with the worker and sheds only when it is busy.
func TestUnbufferedQueueServes(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{QueueDepth: -1, Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.0, Y: 0.9}
	for i := 0; i < 200; i++ {
		b := targetBatch(dep, target)
		for svc.Report("z", b) == ErrQueueFull {
			time.Sleep(time.Millisecond)
		}
	}
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Present })
}

// TestRestorePreRedesignSnapshot is the compatibility acceptance pin:
// a snapshot written in the previous format version (v1, no trajectory
// section) still warm-starts a zone on the redesigned service, with the
// service's own history/track defaults filling the unrecorded fields.
func TestRestorePreRedesignSnapshot(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	sn, err := svc.snapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := snap.EncodeVersion(sn, snap.VersionPrev)
	if err != nil {
		t.Fatal(err)
	}

	other := New(Config{Window: 2, DetectThresholdDB: 0.25, History: 64})
	id, err := other.RestoreZone(legacy)
	if err != nil {
		t.Fatalf("restoring a v%d snapshot failed: %v", snap.VersionPrev, err)
	}
	if id != "z" {
		t.Fatalf("restored id %q", id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := other.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// The restored zone serves, and the restoring service's defaults
	// govern the unrecorded trajectory config: history is available.
	var batches [][]Report
	for i := 0; i < 8; i++ {
		batches = append(batches, targetBatch(dep, geom.Point{X: 1.5, Y: 1.2}))
	}
	feedZone(t, other, "z", batches, 2)
	hist, err := other.History("z", 0)
	if err != nil || len(hist) == 0 {
		t.Errorf("history on v1-restored zone: %d estimates, %v", len(hist), err)
	}
	if _, err := other.Track("z", 0); err != nil {
		t.Errorf("track on v1-restored zone: %v", err)
	}
}

// TestSnapshotCarriesTracker: the trajectory filter state travels in
// the snapshot, so a restored zone's track resumes instead of
// re-initializing — its next smoothed point continues from the
// original's state.
func TestSnapshotCarriesTracker(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var batches [][]Report
	for i := 0; i < 10; i++ {
		batches = append(batches, targetBatch(dep, geom.Point{X: 1.5, Y: 1.2}))
	}
	feedZone(t, svc, "z", batches, 4)

	sn, err := svc.snapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Track == nil {
		t.Fatal("snapshot of a tracking zone has no tracker state")
	}
	if !sn.Track.Filter.Initialized || !sn.Track.HasFix {
		t.Errorf("captured tracker state not live: %+v", sn.Track)
	}
	if sn.Config.History != 256 {
		t.Errorf("captured history depth %d, want the default 256", sn.Config.History)
	}

	data, err := snap.Encode(sn)
	if err != nil {
		t.Fatal(err)
	}
	other := New(Config{})
	if _, err := other.RestoreZone(data); err != nil {
		t.Fatal(err)
	}
	other.mu.RLock()
	z := other.zones["z"]
	other.mu.RUnlock()
	if z.tracker == nil {
		t.Fatal("restored zone has no tracker")
	}
	got := z.tracker.Export()
	if got.Filter != sn.Track.Filter || got.HasFix != sn.Track.HasFix ||
		!got.LastFix.Equal(sn.Track.LastFix) {
		t.Errorf("restored tracker state diverges:\n got  %+v\n want %+v", got, sn.Track)
	}
}
