package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tafloc/internal/api"
	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/taflocerr"
)

// doReq performs one request against the handler and returns status and
// exact body bytes.
func doReq(t *testing.T, h http.Handler, method, path, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header()
}

// TestV1ResponsesFrozen pins the /v1 surface to the pre-redesign bytes:
// every fixture below is the exact status and body the seed handler
// produced, captured before the v2 redesign. Any drift here is a
// compatibility break.
func TestV1ResponsesFrozen(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	fixtures := []struct {
		name, method, path, body string
		wantStatus               int
		wantBody                 string
	}{
		{"report wrong method", http.MethodGet, "/v1/report", "",
			405, `{"error":"POST only"}` + "\n"},
		{"report malformed json", http.MethodPost, "/v1/report", "{",
			400, `{"error":"bad JSON: unexpected EOF"}` + "\n"},
		{"report unknown zone", http.MethodPost, "/v1/report",
			`{"zone":"nope","reports":[{"link":0,"rss":-40}]}`,
			404, `{"error":"serve: unknown zone"}` + "\n"},
		{"report bad link", http.MethodPost, "/v1/report",
			`{"zone":"z","reports":[{"link":99,"rss":-40}]}`,
			400, `{"error":"serve: report link out of range: link 99 of 6 in zone \"z\""}` + "\n"},
		{"zones wrong method", http.MethodPost, "/v1/zones", "",
			405, `{"error":"GET only"}` + "\n"},
		{"zones list", http.MethodGet, "/v1/zones", "",
			200, `{"zones":["z"]}` + "\n"},
		{"position unknown zone", http.MethodGet, "/v1/zones/nope/position", "",
			404, `{"error":"serve: unknown zone"}` + "\n"},
		{"position not ready", http.MethodGet, "/v1/zones/z/position", "",
			404, `{"error":"no estimate published yet"}` + "\n"},
		{"bad subresource", http.MethodGet, "/v1/zones/z/wrong", "",
			404, `{"error":"want /v1/zones/{id}/position"}` + "\n"},
		{"healthz wrong method", http.MethodPost, "/v1/healthz", "",
			405, `{"error":"GET only"}` + "\n"},
	}
	for _, f := range fixtures {
		status, body, hdr := doReq(t, h, f.method, f.path, f.body)
		if status != f.wantStatus {
			t.Errorf("%s: status %d, want %d", f.name, status, f.wantStatus)
		}
		if body != f.wantBody {
			t.Errorf("%s: body %q, want %q (byte-compat break)", f.name, body, f.wantBody)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q", f.name, ct)
		}
	}
}

// TestV2ErrorPaths exercises the same error paths on /v2 and asserts
// every response carries the right status and taxonomy code.
func TestV2ErrorPaths(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{QueueDepth: 1})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 taflocerr.Code
	}{
		{"report wrong method", http.MethodGet, "/v2/report", "",
			405, taflocerr.CodeMethodNotAllowed},
		{"report malformed json", http.MethodPost, "/v2/report", "{",
			400, taflocerr.CodeBadRequest},
		{"report unknown zone", http.MethodPost, "/v2/report",
			`{"zone":"nope","reports":[{"link":0,"rss":-40}]}`,
			404, taflocerr.CodeUnknownZone},
		{"report bad link is 422", http.MethodPost, "/v2/report",
			`{"zone":"z","reports":[{"link":99,"rss":-40}]}`,
			422, taflocerr.CodeBadLink},
		{"zones wrong method", http.MethodPut, "/v2/zones", "",
			405, taflocerr.CodeMethodNotAllowed},
		{"position unknown zone", http.MethodGet, "/v2/zones/nope/position", "",
			404, taflocerr.CodeUnknownZone},
		{"position not ready", http.MethodGet, "/v2/zones/z/position", "",
			404, taflocerr.CodeNotReady},
		{"create without factory", http.MethodPost, "/v2/zones/new", "",
			501, taflocerr.CodeUnsupported},
		{"delete unknown", http.MethodDelete, "/v2/zones/nope", "",
			404, taflocerr.CodeUnknownZone},
		{"watch unknown zone", http.MethodGet, "/v2/zones/nope/watch", "",
			404, taflocerr.CodeUnknownZone},
		{"bad subresource", http.MethodGet, "/v2/zones/z/wrong", "",
			400, taflocerr.CodeBadRequest},
	}
	for _, c := range cases {
		status, body, _ := doReq(t, h, c.method, c.path, c.body)
		if status != c.wantStatus {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, status, c.wantStatus, body)
		}
		var eb api.ErrorBody
		if err := json.Unmarshal([]byte(body), &eb); err != nil {
			t.Errorf("%s: undecodable error body %q: %v", c.name, body, err)
			continue
		}
		if eb.Code != c.wantCode {
			t.Errorf("%s: code %q, want %q", c.name, eb.Code, c.wantCode)
		}
		if eb.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}

	// Queue overflow on the v2 surface: depth-1 queue with no worker
	// running sheds the second batch with 429 + queue_full.
	ok := `{"zone":"z","reports":[{"link":0,"rss":-40}]}`
	if status, _, _ := doReq(t, h, http.MethodPost, "/v2/report", ok); status != 202 {
		t.Fatalf("first v2 report: %d", status)
	}
	status, body, _ := doReq(t, h, http.MethodPost, "/v2/report", ok)
	var eb api.ErrorBody
	_ = json.Unmarshal([]byte(body), &eb)
	if status != 429 || eb.Code != taflocerr.CodeQueueFull {
		t.Errorf("v2 overflow: status %d code %q, want 429 queue_full", status, eb.Code)
	}
}

// TestV2ZoneLifecycleOverHTTP drives create/list/delete through the v2
// surface with a zone factory, asserting codes on the conflict paths.
func TestV2ZoneLifecycleOverHTTP(t *testing.T) {
	dep := testDeployment(t)
	var factoryCalls int
	svc := New(Config{
		Window:            2,
		DetectThresholdDB: 0.25,
		ZoneFactory: func(ctx context.Context, id string, spec api.ZoneSpec) (*core.System, error) {
			factoryCalls++
			return testSystem(t, dep), nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	status, body, _ := doReq(t, h, http.MethodPost, "/v2/zones/room", "")
	if status != 201 {
		t.Fatalf("create: %d (%s)", status, body)
	}
	var zi api.ZoneInfo
	if err := json.Unmarshal([]byte(body), &zi); err != nil {
		t.Fatal(err)
	}
	if zi.Zone != "room" || zi.Links != 6 || zi.Cells == 0 {
		t.Errorf("create response: %+v", zi)
	}
	if factoryCalls != 1 {
		t.Errorf("factory called %d times", factoryCalls)
	}

	// Duplicate create: 409 + zone_exists.
	status, body, _ = doReq(t, h, http.MethodPost, "/v2/zones/room", "")
	var eb api.ErrorBody
	_ = json.Unmarshal([]byte(body), &eb)
	if status != 409 || eb.Code != taflocerr.CodeZoneExists {
		t.Errorf("duplicate create: %d %q", status, eb.Code)
	}

	// The created zone serves reports immediately (worker launched at
	// runtime).
	rb, _ := json.Marshal(api.ReportRequest{Zone: "room", Reports: targetBatch(dep, geom.Point{X: 1.5, Y: 1.2})})
	for i := 0; i < 10; i++ {
		if status, body, _ = doReq(t, h, http.MethodPost, "/v2/report", string(rb)); status != 202 {
			t.Fatalf("report to created zone: %d (%s)", status, body)
		}
	}
	waitForEstimate(t, svc, "room", func(e Estimate) bool { return e.Seq > 0 })
	if status, _, _ = doReq(t, h, http.MethodGet, "/v2/zones/room/position", ""); status != 200 {
		t.Errorf("position after create: %d", status)
	}

	// Delete, then the zone is gone from list and position.
	status, body, _ = doReq(t, h, http.MethodDelete, "/v2/zones/room", "")
	if status != 200 {
		t.Fatalf("delete: %d (%s)", status, body)
	}
	_ = json.Unmarshal([]byte(body), &zi)
	if !zi.Removed || zi.Zone != "room" {
		t.Errorf("delete response: %+v", zi)
	}
	status, _, _ = doReq(t, h, http.MethodGet, "/v2/zones/room/position", "")
	if status != 404 {
		t.Errorf("position after delete: %d", status)
	}
	var zl api.ZoneList
	_, body, _ = doReq(t, h, http.MethodGet, "/v2/zones", "")
	_ = json.Unmarshal([]byte(body), &zl)
	if len(zl.Zones) != 0 {
		t.Errorf("zones after delete: %v", zl.Zones)
	}
	cancel()
	svc.Wait()
}
