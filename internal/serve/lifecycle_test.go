package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/taflocerr"
)

// TestRemoveZoneWhileIngesting hammers Report from concurrent producers
// while the zone is removed and re-added. Run with -race: the point is
// that the drain/swap sequence is clean under fire. After removal,
// Report must reject with ErrUnknownZone; after re-adding the same id,
// ingestion and estimation must work again.
func TestRemoveZoneWhileIngesting(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.5, Y: 1.2}
	var batches [][]Report
	for b := 0; b < 40; b++ {
		batches = append(batches, targetBatch(dep, target))
	}
	waitIngest := func() {
		for i := 0; i < 10; i++ {
			_ = svc.Report("z", append([]Report(nil), batches[i%len(batches)]...))
		}
	}
	waitIngest()
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Seq > 0 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = svc.Report("z", append([]Report(nil), batches[(i+p)%len(batches)]...))
			}
		}(p)
	}
	time.Sleep(5 * time.Millisecond)
	if err := svc.RemoveZone("z"); err != nil {
		t.Fatalf("RemoveZone under fire: %v", err)
	}
	if err := svc.Report("z", batches[0]); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("report after removal: %v, want ErrUnknownZone", err)
	}
	if _, ok := svc.Position("z"); ok {
		t.Error("snapshot still holds removed zone")
	}
	close(stop)
	wg.Wait()

	// Re-adding the same id works and serves fresh estimates.
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatalf("re-add same id: %v", err)
	}
	waitIngest()
	e := waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Present })
	if d := e.Point.Dist(target); d > 2.5 {
		t.Errorf("re-added zone localization error %.2f m", d)
	}
	if err := svc.RemoveZone("nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("remove unknown: %v", err)
	}
	cancel()
	svc.Wait()
}

// TestWatchTerminalEvent subscribes a watcher, streams a few estimates
// through it, then removes the zone and asserts the watcher observes a
// terminal Final estimate followed by channel close.
func TestWatchTerminalEvent(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, BatchSize: 8, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Watch("nope"); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("watch unknown zone: %v", err)
	}
	ch, stopWatch, err := svc.Watch("z")
	if err != nil {
		t.Fatal(err)
	}
	defer stopWatch()

	target := geom.Point{X: 1.2, Y: 0.9}
	go func() {
		for i := 0; i < 30; i++ {
			_ = svc.Report("z", targetBatch(dep, target))
			time.Sleep(time.Millisecond)
		}
	}()

	var got []Estimate
	deadline := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case e, open := <-ch:
			if !open {
				t.Fatal("watch channel closed before removal")
			}
			got = append(got, e)
		case <-deadline:
			t.Fatalf("only %d watched estimates before deadline", len(got))
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Errorf("watch events out of order: seq %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}

	if err := svc.RemoveZone("z"); err != nil {
		t.Fatal(err)
	}
	sawFinal := false
	for {
		select {
		case e, open := <-ch:
			if !open {
				if !sawFinal {
					t.Error("watch channel closed without a terminal Final estimate")
				}
				cancel()
				svc.Wait()
				return
			}
			if e.Final {
				sawFinal = true
				if e.Zone != "z" {
					t.Errorf("terminal event zone = %q", e.Zone)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no terminal event after removal")
		}
	}
}

// TestUpdateZoneSwapsSystem replaces a running zone's backing system and
// checks the swap preserves counters and watch subscriptions while new
// estimates flow from the new system.
func TestUpdateZoneSwapsSystem(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.5, Y: 1.2}
	for i := 0; i < 10; i++ {
		_ = svc.Report("z", targetBatch(dep, target))
	}
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Seq > 0 })
	received := svc.Stats()["z"].Received
	if received == 0 {
		t.Fatal("no reports received before swap")
	}

	ch, stopWatch, err := svc.Watch("z")
	if err != nil {
		t.Fatal(err)
	}
	defer stopWatch()
	drainWatch(ch)

	if err := svc.UpdateZone("z", testSystem(t, dep)); err != nil {
		t.Fatalf("UpdateZone: %v", err)
	}
	if got := svc.Stats()["z"].Received; got < received {
		t.Errorf("counters reset by swap: received %d < %d", got, received)
	}
	for i := 0; i < 10; i++ {
		_ = svc.Report("z", targetBatch(dep, target))
	}
	select {
	case e, open := <-ch:
		if !open {
			t.Fatal("watch channel closed by UpdateZone")
		}
		if e.Final {
			t.Fatal("UpdateZone sent a terminal event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no estimate through surviving watcher after swap")
	}

	if err := svc.UpdateZone("nope", testSystem(t, dep)); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("update unknown zone: %v", err)
	}
	if err := svc.UpdateZone("z", nil); err == nil {
		t.Error("nil system accepted by UpdateZone")
	}
	cancel()
	svc.Wait()
}

// TestAddZoneBeforeStartStillWorks pins the pre-redesign construction
// order: register everything, then Start.
func TestAddZoneBeforeStartStillWorks(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	for i := 0; i < 3; i++ {
		if err := svc.AddZone(fmt.Sprintf("z%d", i), testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.0, Y: 1.0}
	for i := 0; i < 10; i++ {
		_ = svc.Report("z1", targetBatch(dep, target))
	}
	waitForEstimate(t, svc, "z1", func(e Estimate) bool { return e.Seq > 0 })
	cancel()
	svc.Wait()
}

// TestStoppedServiceRejectsMutations pins the post-Stop contract: zone
// mutations and new subscriptions fail instead of creating workers that
// can never run, and existing watchers are terminated.
func TestStoppedServiceRejectsMutations(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	ch, stopWatch, err := svc.Watch("z")
	if err != nil {
		t.Fatal(err)
	}
	defer stopWatch()
	svc.Stop()
	svc.Wait()

	if err := svc.AddZone("late", testSystem(t, dep)); err == nil {
		t.Error("AddZone on a stopped service accepted (reports would be black-holed)")
	}
	if err := svc.UpdateZone("z", testSystem(t, dep)); err == nil {
		t.Error("UpdateZone on a stopped service accepted")
	}
	if _, _, err := svc.Watch("z"); err == nil {
		t.Error("Watch on a stopped service accepted (would block forever)")
	}
	// The pre-Stop watcher was terminated rather than left hanging.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("watcher not terminated by Stop")
		}
	}
}

// drainWatch empties any buffered (replayed) events.
func drainWatch(ch <-chan Estimate) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
