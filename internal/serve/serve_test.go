package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/testbed"
)

// testDeployment builds a small, fast deployment: 6 links over a
// 6x4-cell grid with a cheap survey.
func testDeployment(t testing.TB) *testbed.Deployment {
	t.Helper()
	cfg := testbed.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func testSystem(t testing.TB, dep *testbed.Deployment) *core.System {
	t.Helper()
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, dep.Config.RF.MaskExcessM())
	if err != nil {
		t.Fatal(err)
	}
	survey, _ := dep.Survey(0)
	sys, err := core.NewSystem(layout, survey, dep.VacantCapture(0, 50), core.DefaultSystemOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// targetBatch samples one live measurement of a target at p and shapes it
// as a report batch. The channel sampler is not concurrency-safe, so
// batches are prepared before goroutines fan out.
func targetBatch(dep *testbed.Deployment, p geom.Point) []Report {
	y := dep.Channel.MeasureLive(p, 0)
	batch := make([]Report, len(y))
	for i, v := range y {
		batch[i] = Report{Link: i, RSS: v}
	}
	return batch
}

func waitForEstimate(t *testing.T, s *Service, zone string, want func(Estimate) bool) Estimate {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e, ok := s.Position(zone); ok && want(e) {
			return e
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("zone %s: no matching estimate before deadline", zone)
	return Estimate{}
}

// TestConcurrentIngestAcrossZones drives four zones from concurrent
// producers and checks every zone independently localizes its own target.
func TestConcurrentIngestAcrossZones(t *testing.T) {
	const zones = 4
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25})
	deps := make([]*testbed.Deployment, zones)
	targets := make([]geom.Point, zones)
	batches := make([][][]Report, zones)
	for zi := 0; zi < zones; zi++ {
		deps[zi] = testDeployment(t)
		id := fmt.Sprintf("zone-%d", zi)
		if err := svc.AddZone(id, testSystem(t, deps[zi])); err != nil {
			t.Fatal(err)
		}
		// Distinct target per zone so cross-zone mixups would show up as
		// localization error.
		targets[zi] = geom.Point{X: 0.6 + 0.6*float64(zi), Y: 0.9 + 0.3*float64(zi)}
		for b := 0; b < 30; b++ {
			batches[zi] = append(batches[zi], targetBatch(deps[zi], targets[zi]))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for zi := 0; zi < zones; zi++ {
		wg.Add(1)
		go func(zi int) {
			defer wg.Done()
			id := fmt.Sprintf("zone-%d", zi)
			for _, batch := range batches[zi] {
				for svc.Report(id, batch) == ErrQueueFull {
					time.Sleep(time.Millisecond)
				}
			}
		}(zi)
	}
	wg.Wait()
	for zi := 0; zi < zones; zi++ {
		id := fmt.Sprintf("zone-%d", zi)
		e := waitForEstimate(t, svc, id, func(e Estimate) bool { return e.Present })
		if e.Zone != id {
			t.Errorf("zone %s: estimate labeled %s", id, e.Zone)
		}
		if err := e.Point.Dist(targets[zi]); err > 2.5 {
			t.Errorf("zone %s: localization error %.2f m (target %v, got %v)", id, err, targets[zi], e.Point)
		}
	}
	stats := svc.Stats()
	for zi := 0; zi < zones; zi++ {
		id := fmt.Sprintf("zone-%d", zi)
		st := stats[id]
		if st.Received == 0 || st.Estimates == 0 {
			t.Errorf("zone %s: stats %+v, want nonzero received and estimates", id, st)
		}
	}
	cancel()
	svc.Wait()
}

// TestQueryDuringUpdate hammers the lock-free query path while a LoLi-IR
// fingerprint update and report ingestion run concurrently. Run with
// -race: the point is that no path ever trips the detector.
func TestQueryDuringUpdate(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.5, Y: 1.2}
	var batches [][]Report
	for b := 0; b < 50; b++ {
		batches = append(batches, targetBatch(dep, target))
	}
	refCols, _ := dep.SurveyCells(sys.References(), 30)
	vacant := dep.VacantCapture(30, 20)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // ingest
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = svc.Report("z", append([]Report(nil), batches[i%len(batches)]...))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // reconstruct
		defer wg.Done()
		updSys, _ := svc.System("z")
		for i := 0; i < 3; i++ {
			if _, err := updSys.Update(refCols, vacant); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	go func() { // query
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			svc.Position("z")
			svc.Positions()
			svc.Stats()
		}
	}()
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Seq > 3 })
	close(done)
	wg.Wait()
	cancel()
	svc.Wait()
}

// TestSnapshotConsistency verifies copy-on-write semantics: a published
// estimate for one zone never disturbs another zone's entry, sequence
// numbers increase monotonically, and handed-out snapshots are immutable
// reader copies.
func TestSnapshotConsistency(t *testing.T) {
	svc := New(Config{})
	svc.publish(nil, Estimate{Zone: "a", Cell: 1})
	svc.publish(nil, Estimate{Zone: "b", Cell: 2})
	before := svc.Positions()
	if len(before) != 2 {
		t.Fatalf("want 2 zones in snapshot, got %d", len(before))
	}
	svc.publish(nil, Estimate{Zone: "a", Cell: 3})
	after := svc.Positions()
	if before["a"].Cell != 1 {
		t.Errorf("reader copy mutated: a.Cell = %d, want 1", before["a"].Cell)
	}
	if after["a"].Cell != 3 || after["b"].Cell != 2 {
		t.Errorf("snapshot after publish: a=%+v b=%+v", after["a"], after["b"])
	}
	if !(after["a"].Seq > before["a"].Seq) {
		t.Errorf("sequence not monotonic: %d then %d", before["a"].Seq, after["a"].Seq)
	}
	// Mutating a reader copy must not leak into the service.
	after["b"] = Estimate{Zone: "b", Cell: 99}
	if e, _ := svc.Position("b"); e.Cell != 2 {
		t.Errorf("service snapshot mutated through reader copy: %+v", e)
	}
}

// TestReportErrors covers the ingestion error paths: unknown zone,
// out-of-range link, and queue overflow with load shedding.
func TestReportErrors(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{QueueDepth: 1})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Report("nope", []Report{{Link: 0, RSS: -40}}); err != ErrUnknownZone {
		t.Errorf("unknown zone: got %v", err)
	}
	if err := svc.Report("z", []Report{{Link: 99, RSS: -40}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	// Service not started: the queue (depth 1) fills and then sheds.
	if err := svc.Report("z", []Report{{Link: 0, RSS: -40}}); err != nil {
		t.Errorf("first batch: %v", err)
	}
	if err := svc.Report("z", []Report{{Link: 0, RSS: -40}}); err != ErrQueueFull {
		t.Errorf("overflow: got %v, want ErrQueueFull", err)
	}
	if st := svc.Stats()["z"]; st.Dropped == 0 {
		t.Errorf("dropped counter not incremented: %+v", st)
	}
}

// TestHTTPEndpoints exercises the JSON surface end to end over a real
// HTTP server.
func TestHTTPEndpoints(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, BatchSize: 16, DetectThresholdDB: 0.25})
	if err := svc.AddZone("room-a", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Healthz before traffic.
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Position before any estimate: 404.
	resp, err = http.Get(srv.URL + "/v1/zones/room-a/position")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty position: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Ingest until an estimate appears.
	target := geom.Point{X: 1.8, Y: 1.2}
	for i := 0; i < 10; i++ {
		body, _ := json.Marshal(reportRequest{Zone: "room-a", Reports: targetBatch(dep, target)})
		resp, err = http.Post(srv.URL+"/v1/report", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitForEstimate(t, svc, "room-a", func(e Estimate) bool { return e.Present })

	resp, err = http.Get(srv.URL + "/v1/zones/room-a/position")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("position: %d", resp.StatusCode)
	}
	var e Estimate
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Zone != "room-a" || !e.Present {
		t.Errorf("position estimate: %+v", e)
	}

	// Unknown zone report: 404.
	body, _ := json.Marshal(reportRequest{Zone: "nope", Reports: []Report{{Link: 0, RSS: -40}}})
	resp, err = http.Post(srv.URL+"/v1/report", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown zone report: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Zone list.
	resp, err = http.Get(srv.URL + "/v1/zones")
	if err != nil {
		t.Fatal(err)
	}
	var zl struct {
		Zones []string `json:"zones"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&zl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(zl.Zones) != 1 || zl.Zones[0] != "room-a" {
		t.Errorf("zone list: %v", zl.Zones)
	}
	cancel()
	svc.Wait()
}

// TestVacantReportsRefreshBaseline checks that vacant-flagged samples
// re-anchor presence detection: after the environment drifts, a vacant
// room must read as absent against the refreshed baseline (the stale
// day-0 baseline alone would see the drift as a target), and a real
// deviation on top of the drift must still read as present.
func TestVacantReportsRefreshBaseline(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	day0 := sys.Vacant()
	svc := New(Config{Window: 4, BatchSize: 8, DetectThresholdDB: 1})
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Drifted empty room: every link 3 dB off the day-0 baseline, flagged
	// vacant. Against day-0 alone this looks like a 3 dB target.
	drifted := make([]Report, len(day0))
	for i, v := range day0 {
		drifted[i] = Report{Link: i, RSS: v + 3, Vacant: true}
	}
	for k := 0; k < 8; k++ {
		if err := svc.Report("z", append([]Report(nil), drifted...)); err != nil {
			t.Fatal(err)
		}
	}
	e := waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Reports >= 8*uint64(len(day0)) })
	if e.Present {
		t.Errorf("drifted vacant room read as present (deviation %.2f dB)", e.DeviationDB)
	}
	// A target-like deviation on top of the drift must still be detected.
	live := make([]Report, len(day0))
	for i, v := range day0 {
		live[i] = Report{Link: i, RSS: v + 3 - 5}
	}
	for k := 0; k < 8; k++ {
		if err := svc.Report("z", append([]Report(nil), live...)); err != nil {
			t.Fatal(err)
		}
	}
	e = waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Reports >= 16*uint64(len(day0)) })
	if !e.Present {
		t.Errorf("5 dB deviation from refreshed baseline read as absent (deviation %.2f dB)", e.DeviationDB)
	}
	cancel()
	svc.Wait()
}

// TestAddZoneRules covers registration constraints.
func TestAddZoneRules(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	svc := New(Config{})
	if err := svc.AddZone("", sys); err == nil {
		t.Error("empty id accepted")
	}
	if err := svc.AddZone("z", nil); err == nil {
		t.Error("nil system accepted")
	}
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddZone("z", sys); err != ErrZoneExists {
		t.Errorf("duplicate: got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Runtime lifecycle: zones can now join a started service.
	if err := svc.AddZone("late", sys); err != nil {
		t.Errorf("post-start AddZone: got %v", err)
	}
	if err := svc.Report("late", []Report{{Link: 0, RSS: -40}}); err != nil {
		t.Errorf("report to late-added zone: %v", err)
	}
	if err := svc.Start(ctx); err != ErrStarted {
		t.Errorf("double start: got %v", err)
	}
	cancel()
	svc.Wait()
}
