package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// reportRequest is the POST /v1/report body.
type reportRequest struct {
	Zone    string   `json:"zone"`
	Reports []Report `json:"reports"`
}

// Handler returns the service's HTTP surface.
//
// The frozen v1 routes (responses byte-identical across releases):
//
//	POST /v1/report              {"zone": "z0", "reports": [{"link": 0, "rss": -41.5}, ...]}
//	GET  /v1/zones               sorted zone IDs
//	GET  /v1/zones/{id}/position latest estimate for one zone
//	GET  /v1/healthz             liveness plus per-zone counters
//
// The v2 routes add runtime zone lifecycle, a streaming watch, and
// typed error codes; see http_v2.go and docs/API.md.
//
// Routing is matched manually so the handler behaves identically on every
// supported Go version.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/zones", s.handleZoneList)
	mux.HandleFunc("/v1/zones/", s.handleZone)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v2/report", s.handleReportV2)
	mux.HandleFunc("/v2/zones", s.handleZoneListV2)
	mux.HandleFunc("/v2/zones/", s.handleZoneV2)
	mux.HandleFunc("/v2/healthz", s.handleHealthzV2)
	return mux
}

// maxReportBody bounds the POST /v1/report request body (1 MiB holds
// tens of thousands of reports — far beyond one sampling round).
const maxReportBody = 1 << 20

// handleReport is the frozen /v1 ingest handler.
//
//tafloc:legacy-http the /v1 surface predates the taflocerr taxonomy and its status codes and bodies are pinned byte-identical by fixture tests; new handlers go on /v2 and write errors through errorV2.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req reportRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	err := s.Report(req.Zone, req.Reports)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(req.Reports)})
	case errors.Is(err, ErrUnknownZone):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

// handleZoneList is the frozen /v1 zone index handler.
//
//tafloc:legacy-http pinned /v1 wire format; see handleReport.
func (s *Service) handleZoneList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"zones": s.Zones()})
}

// handleZone is the frozen /v1 position handler.
//
//tafloc:legacy-http pinned /v1 wire format; see handleReport.
func (s *Service) handleZone(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/zones/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || sub != "position" {
		httpError(w, http.StatusNotFound, "want /v1/zones/{id}/position")
		return
	}
	if !s.zoneExists(id) {
		httpError(w, http.StatusNotFound, ErrUnknownZone.Error())
		return
	}
	e, ok := s.Position(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no estimate published yet")
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// handleHealthz is the frozen /v1 health handler.
//
//tafloc:legacy-http pinned /v1 wire format; see handleReport.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"zones":    len(s.Zones()),
		"uptime_s": s.Uptime().Seconds(),
		"stats":    s.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
