package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/store"
)

// TestEvictRehydrateHammer is the concurrency acceptance test of the
// residency tier, meant to run under -race: one victim zone is fed a
// deterministic batch sequence while goroutines force Evict/Rehydrate
// cycles and hammer every read surface (Position, Track, History,
// Snapshot, Stats, Watch) against it, and an unrelated zone churns
// through UpdateZone/RemoveZone/AddZone the whole time. The victim's
// published estimates must be bit-identical to a never-evicted control
// fed the same reports — evictions may cost latency, never physics.
func TestEvictRehydrateHammer(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	cfg := Config{Window: 4, DetectThresholdDB: 0.25}

	control := New(cfg)
	if err := control.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	data, err := control.SnapshotZone("z")
	if err != nil {
		t.Fatal(err)
	}
	hammered := New(Config{Window: 4, DetectThresholdDB: 0.25, Store: store.NewMem()})
	if _, err := hammered.RestoreZone(data); err != nil {
		t.Fatal(err)
	}

	// The churn zone needs real Systems; two are enough to alternate
	// between (a System's read plane is immutable, so reuse is safe).
	churnDep := testDeployment(t)
	churnA, churnB := testSystem(t, churnDep), testSystem(t, churnDep)
	if err := hammered.AddZone("churn", churnA); err != nil {
		t.Fatal(err)
	}

	var batches [][]Report
	for i := 0; i < 30; i++ {
		p := geom.Point{X: 0.3 + 0.2*float64(i%8), Y: 0.4 + 0.25*float64(i%5)}
		batches = append(batches, targetBatch(dep, p))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := control.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hammered.Start(ctx); err != nil {
		t.Fatal(err)
	}

	a := feedAndCollect(t, control, "z", batches)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var evictAttempts atomic.Int64

	// Forced residency churn on the victim.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := hammered.EvictZone("z"); err == nil {
				evictAttempts.Add(1)
			}
			_ = hammered.RehydrateZone("z")
		}
	}()
	// Read surface against the victim: every accessor that can trigger a
	// rehydrate or observe a cold zone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = hammered.Position("z")
			_, _ = hammered.Track("z", 4)
			_, _ = hammered.History("z", 4)
			_, _ = hammered.SnapshotZone("z")
			_ = hammered.Stats()
			_ = hammered.HotZones()
		}
	}()
	// Watch stream: subscribe, drain a few events, unsubscribe, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch, unwatch, err := hammered.Watch("z")
			if err != nil {
				continue
			}
			for i := 0; i < 3; i++ {
				select {
				case <-ch:
				case <-time.After(time.Millisecond):
				case <-stop:
					unwatch()
					return
				}
			}
			unwatch()
		}
	}()
	// Zone-table churn next door: swap, remove, re-add.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			next := churnB
			if i%2 == 1 {
				next = churnA
			}
			_ = hammered.UpdateZone("churn", next)
			if i%3 == 2 {
				_ = hammered.RemoveZone("churn")
				_ = hammered.AddZone("churn", next)
			}
		}
	}()

	b := feedAndCollect(t, hammered, "z", batches)
	close(stop)
	wg.Wait()

	for i := range a {
		if comparableEstimate(a[i]) != comparableEstimate(b[i]) {
			t.Fatalf("estimate %d diverges under residency churn:\ncontrol:  %+v\nhammered: %+v",
				i, a[i], b[i])
		}
	}
	st := hammered.Stats()["z"]
	if st.RehydrateErrors != 0 || st.EvictErrors != 0 {
		t.Errorf("residency errors against a healthy store: %+v", st)
	}
	if got := len(hammered.Zones()); got < 1 {
		t.Errorf("victim zone lost from the table (zones: %d)", got)
	}
	t.Logf("hammer: %d successful forced evictions, %d rehydrates",
		evictAttempts.Load(), st.Rehydrates)
}

// TestManyZonesOverCapServeAll drives MaxHotZones=2 with 8 zones fed
// from concurrent producers — the capacity claim under contention
// rather than in sequence. Every zone must end registered with a
// published estimate while the resident count converges back under the
// cap.
func TestManyZonesOverCapServeAll(t *testing.T) {
	const zones, hotCap = 8, 2
	svc := New(Config{Window: 4, DetectThresholdDB: 0.25, MaxHotZones: hotCap})
	batches := make([][][]Report, zones)
	for zi := 0; zi < zones; zi++ {
		dep := testDeployment(t)
		id := fmt.Sprintf("zone-%d", zi)
		if err := svc.AddZone(id, testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
		p := geom.Point{X: 0.5 + 0.3*float64(zi%5), Y: 0.7 + 0.2*float64(zi%4)}
		for b := 0; b < 10; b++ {
			batches[zi] = append(batches[zi], targetBatch(dep, p))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for zi := 0; zi < zones; zi++ {
		wg.Add(1)
		go func(zi int) {
			defer wg.Done()
			id := fmt.Sprintf("zone-%d", zi)
			for _, batch := range batches[zi] {
				for {
					err := svc.Report(id, append([]Report(nil), batch...))
					if err == nil {
						break
					}
					// Queue pressure and transient rehydrate contention both
					// resolve by retrying; anything else is a real failure.
					if err != ErrQueueFull {
						t.Errorf("zone %s: %v", id, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(zi)
	}
	wg.Wait()
	for zi := 0; zi < zones; zi++ {
		id := fmt.Sprintf("zone-%d", zi)
		waitForEstimate(t, svc, id, func(e Estimate) bool { return e.Seq > 0 })
	}
	waitForHotZones(t, svc, hotCap)
	if got := svc.residentZones(); got > hotCap {
		t.Errorf("%d resident Models after convergence, cap %d", got, hotCap)
	}
	if got := len(svc.Zones()); got != zones {
		t.Errorf("Zones() = %d, want %d", got, zones)
	}
}
