package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/geom"
)

// TestLifecycleHammer drives every reader path (Report, Position,
// Positions, Watch, Stats, SnapshotZone) concurrently with the zone
// lifecycle mutators (RemoveZone, UpdateZone, AddZone) under the race
// detector. The assertions are weak on purpose — the test's job is to
// give -race interleavings, and to prove no operation panics or
// deadlocks while zones churn underneath it.
func TestLifecycleHammer(t *testing.T) {
	dep := testDeployment(t)
	// Pre-build systems and batches: construction is the expensive part
	// and the channel sampler is not concurrency-safe.
	systems := make(chan *core.System, 8)
	for i := 0; i < cap(systems); i++ {
		systems <- testSystem(t, dep)
	}
	var batches [][]Report
	for i := 0; i < 16; i++ {
		batches = append(batches, targetBatch(dep, geom.Point{X: 0.5 + 0.1*float64(i), Y: 0.8}))
	}

	const zones = 3
	svc := New(Config{Window: 2, QueueDepth: 16, DetectThresholdDB: 0.25})
	ids := make([]string, zones)
	for i := range ids {
		ids[i] = fmt.Sprintf("z%d", i)
		sys := <-systems
		if err := svc.AddZone(ids[i], sys); err != nil {
			t.Fatal(err)
		}
		systems <- sys
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	run := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f(i)
			}
		}()
	}

	// Readers and ingestors.
	for g := 0; g < 3; g++ {
		run(func(i int) {
			id := ids[i%zones]
			batch := append([]Report(nil), batches[i%len(batches)]...)
			err := svc.Report(id, batch)
			if err != nil && !errors.Is(err, ErrUnknownZone) && !errors.Is(err, ErrQueueFull) {
				t.Errorf("Report: %v", err)
			}
		})
	}
	run(func(i int) {
		svc.Position(ids[i%zones])
		svc.Positions()
		svc.Stats()
	})
	run(func(i int) {
		if _, err := svc.SnapshotZone(ids[i%zones]); err != nil && !errors.Is(err, ErrUnknownZone) {
			t.Errorf("SnapshotZone: %v", err)
		}
	})
	run(func(i int) {
		ch, stopW, err := svc.Watch(ids[i%zones])
		if err != nil {
			return // zone momentarily gone or service winding down
		}
		// Drain briefly, then detach; removal may close ch mid-drain.
		timeout := time.After(2 * time.Millisecond)
		for {
			select {
			case _, open := <-ch:
				if !open {
					stopW()
					return
				}
			case <-timeout:
				stopW()
				return
			}
		}
	})

	// Lifecycle mutators: each zone id is removed, re-added, and swapped
	// continuously.
	run(func(i int) {
		id := ids[i%zones]
		switch i % 3 {
		case 0:
			if err := svc.RemoveZone(id); err != nil && !errors.Is(err, ErrUnknownZone) {
				t.Errorf("RemoveZone: %v", err)
			}
		case 1:
			sys := <-systems
			err := svc.AddZone(id, sys)
			systems <- sys
			if err != nil && !errors.Is(err, ErrZoneExists) {
				t.Errorf("AddZone: %v", err)
			}
		default:
			sys := <-systems
			err := svc.UpdateZone(id, sys)
			systems <- sys
			if err != nil && !errors.Is(err, ErrUnknownZone) {
				t.Errorf("UpdateZone: %v", err)
			}
		}
	})

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotWhileUpdating: exporting a snapshot concurrently with
// System.Update must always yield a self-consistent snapshot (either the
// old or the new database — never a torn mix that fails restore).
func TestSnapshotWhileUpdating(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	svc := New(Config{})
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	refs := sys.References()
	refCols, _ := dep.SurveyCells(refs, 0)
	vac := dep.VacantCapture(0, 20)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Update(refCols, vac); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		data, err := svc.SnapshotZone("z")
		if err != nil {
			t.Fatal(err)
		}
		other := New(Config{})
		if _, err := other.RestoreZone(data); err != nil {
			t.Fatalf("snapshot %d taken mid-update does not restore: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
