package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tafloc/internal/geom"
)

// TestStarvedCounter pins the starvation satellite: a zone where some
// link never reports publishes nothing (silent before this change), and
// the Starved stat is the operator-visible trace that distinguishes
// that state from a zone with no traffic at all.
func TestStarvedCounter(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, BatchSize: 4, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Reports for link 0 only: every fold round is starved.
	for i := 0; i < 5; i++ {
		if err := svc.Report("z", []Report{{Link: 0, RSS: -40}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats()["z"].Starved == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := svc.Stats()["z"]
	if st.Starved == 0 {
		t.Fatalf("starved rounds not counted: %+v", st)
	}
	if st.Estimates != 0 {
		t.Fatalf("starved zone published estimates: %+v", st)
	}
	if _, ok := svc.Position("z"); ok {
		t.Fatal("starved zone has a published position")
	}

	// Once every link reports, estimates flow and Starved stops advancing.
	target := geom.Point{X: 1.2, Y: 0.9}
	for i := 0; i < 10; i++ {
		if err := svc.Report("z", targetBatch(dep, target)); err != nil {
			t.Fatal(err)
		}
	}
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Present })
	before := svc.Stats()["z"].Starved
	for i := 0; i < 5; i++ {
		_ = svc.Report("z", targetBatch(dep, target))
	}
	waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Reports > 10*6 })
	if after := svc.Stats()["z"].Starved; after != before {
		t.Errorf("healthy zone still counting starvation: %d -> %d", before, after)
	}
	cancel()
	svc.Wait()
}

// TestZoneCountDoesNotScaleGoroutines pins the executor-pool tentpole:
// registering hundreds of zones on a running service adds no goroutines
// — zones are state machines, and compute concurrency is
// Config.LocateWorkers, not the zone count.
func TestZoneCountDoesNotScaleGoroutines(t *testing.T) {
	dep := testDeployment(t)
	sys := testSystem(t, dep)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25, LocateWorkers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()
	// Hundreds of zones sharing one calibrated System: safe now that the
	// read plane is an immutable Model, and the cheapest way to fan a
	// deployment wide.
	const zones = 300
	for i := 0; i < zones; i++ {
		if err := svc.AddZone(fmt.Sprintf("z%03d", i), sys); err != nil {
			t.Fatal(err)
		}
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("%d zones grew goroutines %d -> %d; zones must not own goroutines", zones, base, got)
	}
	// The zones still serve: sparse traffic to a few of them localizes.
	target := geom.Point{X: 1.1, Y: 0.8}
	for i := 0; i < 8; i++ {
		for _, id := range []string{"z000", "z137", "z299"} {
			if err := svc.Report(id, targetBatch(dep, target)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range []string{"z000", "z137", "z299"} {
		waitForEstimate(t, svc, id, func(e Estimate) bool { return e.Present })
	}
	cancel()
	svc.Wait()
}

// TestExecutorSubmitAfterClose pins the shutdown contract of the run
// queue: a submit racing close must be rejected (never queued, never
// run inline — the call sites hold the zone's schedMu, which the task
// bodies re-lock), so callers can unwind their scheduling state and
// zone lifecycle waits can never strand.
func TestExecutorSubmitAfterClose(t *testing.T) {
	e := newExecutor()
	if !e.submit(task{kind: foldTask}) {
		t.Fatal("submit on an open executor rejected")
	}
	e.close()
	if e.submit(task{kind: foldTask}) {
		t.Fatal("submit after close accepted; the workers may be gone")
	}
	// The pre-close task is still drained by a (late) worker.
	got, ok := e.next()
	if !ok || got.kind != foldTask {
		t.Fatalf("pre-close task lost: ok=%v kind=%v", ok, got.kind)
	}
	if _, ok := e.next(); ok {
		t.Fatal("rejected task appeared in the queue")
	}
}

// TestIngestDuringStartNeverStrands races Report against Start: a batch
// accepted in the handover window must still be folded — either by the
// ingest path's post-enqueue re-check or by Start's backlog scan —
// never counted into Received and then silently stranded.
func TestIngestDuringStartNeverStrands(t *testing.T) {
	dep := testDeployment(t)
	target := geom.Point{X: 1.2, Y: 0.9}
	for round := 0; round < 20; round++ {
		svc := New(Config{Window: 2, DetectThresholdDB: 0.25, LocateWorkers: 2})
		if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
			t.Fatal(err)
		}
		batch := targetBatch(dep, target)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := svc.Report("z", append([]Report(nil), batch...)); err != nil {
				t.Errorf("round %d: %v", round, err)
			}
		}()
		if err := svc.Start(ctx); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// One accepted batch covers every link, so exactly one estimate
		// must eventually publish with no further traffic.
		waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Reports >= uint64(len(batch)) })
		cancel()
		svc.Wait()
	}
}

// TestLocateWorkersNormalization pins the new Config field's
// unset-vs-explicit-minimum semantics alongside the existing ones.
func TestLocateWorkersNormalization(t *testing.T) {
	if got := (Config{}).withDefaults().LocateWorkers; got != runtime.GOMAXPROCS(0) {
		t.Errorf("default LocateWorkers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Config{LocateWorkers: -1}).withDefaults().LocateWorkers; got != 1 {
		t.Errorf("explicit minimum LocateWorkers = %d, want 1", got)
	}
	if got := (Config{LocateWorkers: 7}).withDefaults().LocateWorkers; got != 7 {
		t.Errorf("explicit LocateWorkers = %d, want 7", got)
	}
}

// TestHotZoneFoldOverlapsLocate exercises the pipelining path: batches
// arriving while a locate is in flight coalesce into the pending slot
// rather than blocking the fold stage, and the zone keeps publishing
// (run with -race; the assertion is liveness plus monotonic freshness).
func TestHotZoneFoldOverlapsLocate(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, BatchSize: 1, DetectThresholdDB: 0.25, LocateWorkers: 2})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.5, Y: 1.2}
	var batches [][]Report
	for i := 0; i < 32; i++ {
		batches = append(batches, targetBatch(dep, target))
	}
	for i := 0; i < 400; i++ {
		b := append([]Report(nil), batches[i%len(batches)]...)
		for svc.Report("z", b) == ErrQueueFull {
			time.Sleep(100 * time.Microsecond)
		}
	}
	e := waitForEstimate(t, svc, "z", func(e Estimate) bool { return e.Present })
	st := svc.Stats()["z"]
	if st.Batches == 0 || st.Estimates == 0 {
		t.Fatalf("hot zone stats: %+v", st)
	}
	// Coalescing may skip intermediate rounds but never reorders: the
	// published estimate's report watermark only moves forward.
	last := e.Reports
	for i := 0; i < 50; i++ {
		b := append([]Report(nil), batches[i%len(batches)]...)
		for svc.Report("z", b) == ErrQueueFull {
			time.Sleep(100 * time.Microsecond)
		}
		if cur, ok := svc.Position("z"); ok {
			if cur.Reports < last {
				t.Fatalf("estimate went backwards: %d after %d", cur.Reports, last)
			}
			last = cur.Reports
		}
	}
	cancel()
	svc.Wait()
}
