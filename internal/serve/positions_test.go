package serve

import (
	"fmt"
	"testing"
)

// TestPositionsShards covers the sharded position map directly: lookups
// miss then hit, delete removes exactly one zone, and all() merges the
// shards into one complete reader copy.
func TestPositionsShards(t *testing.T) {
	p := newPositions()
	if _, ok := p.get("nope"); ok {
		t.Fatal("hit on an empty map")
	}
	const n = 300 // enough zones that every shard holds several
	for i := 0; i < n; i++ {
		p.set(Estimate{Zone: fmt.Sprintf("zone-%03d", i), Cell: i})
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("zone-%03d", i)
		e, ok := p.get(id)
		if !ok || e.Cell != i {
			t.Fatalf("zone %s: got %+v, %v", id, e, ok)
		}
	}
	all := p.all()
	if len(all) != n {
		t.Fatalf("all() = %d zones, want %d", len(all), n)
	}
	p.delete("zone-007")
	if _, ok := p.get("zone-007"); ok {
		t.Fatal("deleted zone still resolves")
	}
	if got := len(p.all()); got != n-1 {
		t.Fatalf("all() after delete = %d, want %d", got, n-1)
	}
	// The earlier reader copy must not see the delete (copy-on-write).
	if _, ok := all["zone-007"]; !ok {
		t.Fatal("reader copy mutated by a later delete")
	}
}

// BenchmarkPublishFanout pins the point of sharding the copy-on-write
// position map: publish cost must scale with the shard size (zones/64),
// not the zone count. Before sharding, every publish copied the whole
// map — O(zones) per estimate — which capped the service at roughly 10k
// hot zones before publishing consumed the workers; compare the
// per-op cost of the two sub-benchmarks to see the residual growth.
func BenchmarkPublishFanout(b *testing.B) {
	for _, zones := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("zones=%d", zones), func(b *testing.B) {
			svc := New(Config{})
			ids := make([]string, zones)
			for i := range ids {
				ids[i] = fmt.Sprintf("zone-%05d", i)
				svc.publish(nil, Estimate{Zone: ids[i], Cell: i})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.publish(nil, Estimate{Zone: ids[i%zones], Cell: i})
			}
		})
	}
}
