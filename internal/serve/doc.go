// Package serve implements the concurrent multi-zone localization
// service: the layer that turns the single-deployment TafLoc pipeline
// into a serving system for many monitored areas at once.
//
// A Service owns one independent core.System per monitored zone (a room,
// a corridor, a floor section — each with its own link deployment and
// fingerprint database). RSS reports enter through a bounded per-zone
// work queue, but zones own no goroutines: each is a small run-state
// machine scheduled onto a shared locate-executor pool of
// Config.LocateWorkers goroutines (default GOMAXPROCS). A fold round
// drains the queue in batches and folds the samples into per-link live
// windows; the match query runs once per round rather than once per
// report, dispatched as a separate locate task, so a burst of traffic
// costs one localization instead of dozens, ten thousand mostly-idle
// zones cost zero goroutines, and a hot zone folds its next batch while
// its previous match query is still running (successive rounds coalesce
// into one pending estimate — freshest wins — when matching is the
// bottleneck). A fold round in which some link has never reported
// publishes nothing and increments the zone's Starved counter, so
// operators can tell a silent link from an empty room.
//
// Every report transport converges on one ingestion surface, the
// Ingestor interface (implemented by *Service.Ingest): in-process
// callers, the UDP collector forwarding batch datagrams through
// IngestSink, the per-request POST /v2/report handler, and the
// persistent NDJSON stream endpoint all share the same validation,
// bounded-queue load shedding, and per-zone counters — a batch is
// counted and shed identically no matter how it arrived.
//
// Position queries never touch the ingest path: the most recent estimate
// of every zone lives in a read-mostly snapshot behind an atomic pointer.
// Publishing an estimate copies the snapshot (copy-on-write, serialized
// among the locate tasks); reading it is a single atomic load with no
// lock, so the query path scales with reader count and is never blocked
// by ingestion, reconstruction, or other zones. Localization itself is
// lock-free too: every zone's calibrated read state is an immutable
// core.Model behind an atomic pointer, so any number of executor
// workers match against the same zone concurrently while LoLi-IR
// updates swap in fresh Models underneath them (see docs/ARCHITECTURE.md).
//
// The matching and reconstruction work underneath is parallelized in
// internal/mat and internal/core with GOMAXPROCS-aware worker pools, so
// one heavy zone update uses the whole machine while the executor pool
// keeps serving the other zones.
//
// Zones are first-class at runtime: AddZone registers a zone into a
// running service, RemoveZone quiesces and removes one (rejecting new
// reports, dropping the snapshot entry, and terminating watch streams
// with a Final estimate), and UpdateZone swaps the backing core.System
// atomically while counters and watch subscriptions survive. Watch
// subscribes a buffered channel to a zone's estimate stream, fed from
// the same copy-on-write publish path the snapshot uses.
//
// The HTTP surface (Handler) serves two versions side by side. The
// frozen /v1 routes (byte-identical responses, pinned by fixture
// tests):
//
//	POST /v1/report              ingest a batch of reports for one zone
//	GET  /v1/zones               sorted zone IDs
//	GET  /v1/zones/{id}/position the zone's latest estimate
//	GET  /v1/healthz             service liveness and per-zone counters
//
// And the /v2 routes, which add taflocerr error codes on every failure,
// runtime zone lifecycle, streaming ingest, trajectory queries, a
// server-sent-events watch stream, and deployment snapshots:
//
//	POST   /v2/report              as /v1, but a bad link index is 422 + code
//	POST   /v2/zones/{id}/reports:stream  persistent NDJSON ingest: one batch per
//	                               line, per-line acks, summary trailer (docs/API.md)
//	GET    /v2/zones               sorted zone IDs
//	POST   /v2/zones/{id}          create a zone via the configured ZoneFactory
//	DELETE /v2/zones/{id}          remove a zone at runtime
//	GET    /v2/zones/{id}/position the zone's latest estimate
//	GET    /v2/zones/{id}/track    smoothed trajectory + velocity (?n=K samples)
//	GET    /v2/zones/{id}/history  raw published-estimate ring (?n=K samples)
//	GET    /v2/zones/{id}/watch    SSE estimate stream (see docs/API.md)
//	GET    /v2/zones/{id}/snapshot export the calibrated deployment (binary)
//	PUT    /v2/zones/{id}/snapshot warm-start a zone from an uploaded snapshot
//	GET    /v2/healthz             liveness and per-zone counters
//
// Trajectories are first-class: each zone's publish path appends every
// estimate to a bounded history ring and folds present fixes through a
// constant-velocity Kalman filter (internal/track), so /track serves a
// smoothed path with velocity — what the paper's motivating
// applications (elderly care, intruder tracking) actually consume — and
// the filter state travels inside zone snapshots, so a warm-restarted
// zone resumes its track.
//
// Zones persist across restarts: SnapshotZone/RestoreZone round-trip a
// zone's calibrated deployment (and its per-zone serve config) through
// the versioned, CRC-checked binary codec in internal/snap, Checkpoint
// and RestoreDir do it for whole state directories with atomic file
// replacement, and StartCheckpointer runs the background loop
// cmd/tafloc-serve exposes as -state-dir — interval checkpoints plus a
// final one on shutdown. A restored zone publishes estimates identical
// to the never-restarted one; see docs/PERSISTENCE.md.
//
// Package client is the typed SDK for the /v2 surface; the wire types
// live in internal/api and the error taxonomy in tafloc/taflocerr.
//
// cmd/tafloc-serve wires the service to simulated deployments end to end.
package serve
