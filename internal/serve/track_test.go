package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/track"
	"tafloc/taflocerr"
)

// TestRing pins the ring buffer's FIFO-with-eviction semantics.
func TestRing(t *testing.T) {
	r := newRing[int](3)
	if got := r.last(0); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.push(i)
	}
	if got := r.last(0); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("after 5 pushes: %v, want [3 4 5]", got)
	}
	if got := r.last(2); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("last(2): %v, want [4 5]", got)
	}
	if got := r.last(10); len(got) != 3 {
		t.Errorf("last(10): %v", got)
	}
	small := newRing[int](2)
	small.copyFrom(r)
	if got := small.last(0); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("copyFrom into smaller ring: %v, want [4 5]", got)
	}
}

// feedZone drives reports into a zone until it has published at least
// minEstimates estimates.
func feedZone(t *testing.T, svc *Service, id string, batches [][]Report, minEstimates int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for {
		if st := svc.Stats()[id]; st.Estimates >= uint64(minEstimates) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("zone %s: only %d estimates before deadline", id, svc.Stats()[id].Estimates)
		}
		batch := append([]Report(nil), batches[i%len(batches)]...)
		_ = svc.Ingest(id, batch)
		i++
		time.Sleep(time.Millisecond)
	}
}

// TestTrackMatchesFilterExactly is the acceptance pin for the
// trajectory API: the smoothed track served by Service.Track must be
// bit-identical to feeding the zone's raw published history through a
// track.Filter directly, applying the documented dt rule (first fix
// initializes with any dt; later fixes use wall-clock deltas floored at
// track.MinDT).
func TestTrackMatchesFilterExactly(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Pre-sample a short walk (the channel sampler is not
	// concurrency-safe) and feed it until enough estimates published.
	var batches [][]Report
	for i := 0; i < 40; i++ {
		p := geom.Point{X: 0.6 + 0.05*float64(i), Y: 0.9 + 0.03*float64(i)}
		batches = append(batches, targetBatch(dep, p))
	}
	feedZone(t, svc, "z", batches, 12)
	cancel()
	svc.Wait()

	hist, err := svc.History("z", 0)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := svc.Track("z", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 || len(pts) == 0 {
		t.Fatalf("history %d, track %d — nothing recorded", len(hist), len(pts))
	}

	// Replay the raw history through a fresh filter with the same rule.
	f, err := track.NewFilter(track.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var last time.Time
	first := true
	i := 0
	for _, e := range hist {
		if !e.Present || e.Cell < 0 {
			continue
		}
		var st track.State
		var accepted bool
		if first {
			st, accepted, err = f.Observe(e.Point, 1)
			first = false
		} else {
			dt := e.Time.Sub(last).Seconds()
			if dt < track.MinDT {
				dt = track.MinDT
			}
			st, accepted, err = f.Observe(e.Point, dt)
		}
		if err != nil {
			t.Fatal(err)
		}
		last = e.Time
		if i >= len(pts) {
			t.Fatalf("history has more present fixes than track points (%d)", len(pts))
		}
		tp := pts[i]
		if tp.Seq != e.Seq || tp.Raw != e.Point || !tp.Time.Equal(e.Time) {
			t.Fatalf("track point %d misaligned: %+v vs estimate %+v", i, tp, e)
		}
		// Bit-identical: direct float equality, no tolerance.
		if tp.Point != st.Position || tp.Velocity != st.Velocity || tp.PosStd != st.PosStd || tp.Accepted != accepted {
			t.Fatalf("track point %d diverges from direct filter:\n served %+v\n direct pos=%v vel=%v std=%v acc=%v",
				i, tp, st.Position, st.Velocity, st.PosStd, accepted)
		}
		i++
	}
	if i != len(pts) {
		t.Errorf("replay produced %d points, served %d", i, len(pts))
	}
}

// TestTrackHistoryDisabled: a service built with negative history
// serves neither route and says so with the taxonomy.
func TestTrackHistoryDisabled(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{History: -1})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Track("z", 0); !errors.Is(err, taflocerr.ErrUnsupported) {
		t.Errorf("Track on disabled history: %v", err)
	}
	if _, err := svc.History("z", 0); !errors.Is(err, taflocerr.ErrUnsupported) {
		t.Errorf("History on disabled history: %v", err)
	}
	if _, err := svc.Track("nope", 0); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("Track on unknown zone: %v", err)
	}
}

// TestTrackSurvivesUpdateZone: swapping a zone's System keeps its
// trajectory state, like the counters.
func TestTrackSurvivesUpdateZone(t *testing.T) {
	dep := testDeployment(t)
	svc := New(Config{Window: 2, DetectThresholdDB: 0.25})
	if err := svc.AddZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var batches [][]Report
	for i := 0; i < 10; i++ {
		batches = append(batches, targetBatch(dep, geom.Point{X: 1.5, Y: 1.2}))
	}
	feedZone(t, svc, "z", batches, 4)
	before, err := svc.Track("z", 0)
	if err != nil || len(before) == 0 {
		t.Fatalf("track before swap: %d points, %v", len(before), err)
	}

	if err := svc.UpdateZone("z", testSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	after, err := svc.Track("z", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) < len(before) {
		t.Errorf("track shrank across UpdateZone: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Errorf("track point %d changed across swap", i)
			break
		}
	}
}
