package serve

import (
	"hash/maphash"
	"sync/atomic"
)

// posShards is the shard count of the published-position map. Publish
// replaces only the shard its zone hashes into, so the copy-on-write
// cost per publish is len(shard) ≈ zones/posShards instead of the whole
// zone population — the difference between publish staying flat and
// publish going quadratic-aggregate somewhere around 10k hot zones. A
// power of two keeps the index a mask. 64 shards hold the per-publish
// copy under ~160 entries even at a million registered zones with 10k
// publishing.
const posShards = 64

// posSeed keys the shard hash; any fixed seed works (the map is not
// attacker-balanced, only load-balanced), but it must be identical for
// every lookup of the same zone.
var posSeed = maphash.MakeSeed()

// positions is the sharded read-mostly estimate snapshot: one
// copy-on-write map per shard behind an atomic pointer. Readers load
// one pointer and index a plain map — no locks, same as the previous
// single-map design. Writers (the locate stages, zone removal) are
// already serialized under the service mutex; they copy and swap only
// the affected shard.
type positions struct {
	shards [posShards]atomic.Pointer[map[string]Estimate]
}

func newPositions() *positions {
	p := &positions{}
	for i := range p.shards {
		empty := make(map[string]Estimate)
		p.shards[i].Store(&empty)
	}
	return p
}

func (p *positions) shard(zone string) *atomic.Pointer[map[string]Estimate] {
	return &p.shards[maphash.String(posSeed, zone)&(posShards-1)]
}

// get is the lock-free read path.
func (p *positions) get(zone string) (Estimate, bool) {
	e, ok := (*p.shard(zone).Load())[zone]
	return e, ok
}

// set publishes e into its zone's shard. Caller holds s.mu.
func (p *positions) set(e Estimate) {
	sh := p.shard(e.Zone)
	old := *sh.Load()
	next := make(map[string]Estimate, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[e.Zone] = e
	sh.Store(&next)
}

// delete removes a zone's entry, if present. Caller holds s.mu.
func (p *positions) delete(zone string) {
	sh := p.shard(zone)
	old := *sh.Load()
	if _, ok := old[zone]; !ok {
		return
	}
	next := make(map[string]Estimate, len(old))
	for k, v := range old {
		if k != zone {
			next[k] = v
		}
	}
	sh.Store(&next)
}

// all merges every shard into one fresh map (the reader's own copy).
// Shards are loaded one by one, so the merge is consistent per shard
// but not across shards — the same freshness contract the single-map
// design gave a reader iterating while publishes continued.
func (p *positions) all() map[string]Estimate {
	out := make(map[string]Estimate)
	for i := range p.shards {
		for k, v := range *p.shards[i].Load() {
			out[k] = v
		}
	}
	return out
}
