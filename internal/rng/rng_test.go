package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide %d/64 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("noise")
	c2 := parent.Split("drift")
	// Children with different names must differ.
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
	// Splitting again with the same name reproduces the same stream,
	// regardless of how much the parent has been consumed since.
	parent.Uint64()
	parent.Uint64()
	c1b := parent.Split("noise")
	ref := parent.Split("noise")
	for i := 0; i < 10; i++ {
		if c1b.Uint64() != ref.Uint64() {
			t.Fatal("same-name splits must be reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	f := func(_ int64) bool {
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 2)
		if v < -3 || v >= 2 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %g, want ~1", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(7)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(5, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.05 {
		t.Fatalf("Gaussian mean = %g, want ~5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	for trial := 0; trial < 50; trial++ {
		n := s.Intn(20) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(9)
	got := s.Sample(10, 4)
	if len(got) != 4 {
		t.Fatalf("Sample length %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample %v invalid", got)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	s.Sample(2, 3)
}

func TestBoolProbability(t *testing.T) {
	s := New(10)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", p)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(2)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %g, want ~0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	s.Exponential(0)
}
