// Package rng provides the deterministic, splittable random-number
// generation used by the RF simulator and the experiment harnesses.
//
// Experiments must be exactly reproducible across runs and across
// machines, so every stochastic component draws from an explicitly seeded
// Source. Sources are splittable: a parent source derives independent
// child streams by name, so adding a new consumer never perturbs the draws
// seen by existing ones (a classic reproducibility bug in simulators that
// share one global stream).
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random source (xoshiro256**) with
// convenience samplers. It is not safe for concurrent use; split one
// child per goroutine instead.
type Source struct {
	s [4]uint64
	// cached second Box-Muller variate
	hasGauss bool
	gauss    float64
}

// New returns a Source seeded from seed via splitmix64, which guarantees a
// well-mixed nonzero internal state for any seed, including 0.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range src.s {
		src.s[i] = next()
	}
	return &src
}

// Split derives an independent child stream identified by name. The child
// is a pure function of the parent's seed material and the name, not of
// how many values the parent has already produced.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	var b [8]byte
	for i, w := range s.s {
		putUint64(b[:], w)
		h.Write(b[:])
		_ = i
	}
	h.Write([]byte(name))
	return New(h.Sum64())
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate (Box-Muller, cached pair).
func (s *Source) Norm() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	var u1 float64
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	s.gauss = r * math.Sin(2*math.Pi*u2)
	s.hasGauss = true
	return r * math.Cos(2*math.Pi*u2)
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// Perm returns a random permutation of [0,n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct indices drawn uniformly from [0,n). It panics
// if k > n.
func (s *Source) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample k > n")
	}
	return s.Perm(n)[:k]
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Exponential returns an exponential variate with the given rate.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}
