// Package wire defines the measurement-collection protocol between link
// agents (the simulated NIC drivers) and the collector: a compact binary
// data-plane frame carrying one RSS report, and length-prefixed JSON
// control-plane messages for survey orchestration.
//
// Decoding follows the layered style of gopacket's DecodingLayer: a
// frame is parsed in place into a preallocated struct, with explicit
// validation of magic, version, length, and checksum. Encoding appends to
// a caller-supplied buffer so hot paths stay allocation-free.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Protocol constants.
const (
	// Magic identifies a TafLoc data-plane frame ("TF").
	Magic = 0x5446
	// Version is the current protocol version.
	Version = 1
	// FrameSize is the fixed wire size of an RSSReport frame.
	FrameSize = 2 + 1 + 1 + 2 + 4 + 8 + 4 + 4 // = 26 bytes
)

// Frame flags.
const (
	// FlagVacant marks a sample taken with no target present.
	FlagVacant uint8 = 1 << 0
	// FlagSurvey marks a sample taken during a fingerprint survey; the
	// surveyed cell travels in the Cell field of the survey session, not
	// in the frame.
	FlagSurvey uint8 = 1 << 1
)

// Decode errors.
var (
	ErrShortFrame  = errors.New("wire: frame too short")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
)

// RSSReport is one RSS measurement from one link, the data-plane unit.
//
// Wire layout (big endian):
//
//	magic    u16
//	version  u8
//	flags    u8
//	linkID   u16
//	seq      u32
//	ts       i64  (unix nanoseconds)
//	rssMilli i32  (RSS in milli-dBm: -47.25 dBm = -47250)
//	crc32    u32  (IEEE, over all preceding bytes)
type RSSReport struct {
	Flags    uint8
	LinkID   uint16
	Seq      uint32
	Time     time.Time
	RSSMilli int32
}

// RSS returns the report's RSS in dBm.
func (r *RSSReport) RSS() float64 { return float64(r.RSSMilli) / 1000 }

// SetRSS stores an RSS value in dBm, saturating at the int32 milli-dBm
// range.
func (r *RSSReport) SetRSS(dbm float64) {
	v := dbm * 1000
	switch {
	case v > math.MaxInt32:
		r.RSSMilli = math.MaxInt32
	case v < math.MinInt32:
		r.RSSMilli = math.MinInt32
	default:
		r.RSSMilli = int32(math.Round(v))
	}
}

// Vacant reports whether the sample was taken with no target present.
func (r *RSSReport) Vacant() bool { return r.Flags&FlagVacant != 0 }

// AppendTo appends the encoded frame to buf and returns the extended
// slice.
func (r *RSSReport) AppendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf,
		byte(Magic>>8), byte(Magic&0xFF),
		Version,
		r.Flags,
		byte(r.LinkID>>8), byte(r.LinkID),
	)
	buf = binary.BigEndian.AppendUint32(buf, r.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Time.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.RSSMilli))
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, crc)
}

// Encode returns the frame as a fresh byte slice.
func (r *RSSReport) Encode() []byte {
	return r.AppendTo(make([]byte, 0, FrameSize))
}

// DecodeFromBytes parses a frame in place, validating structure and
// checksum. The input slice is not retained.
func (r *RSSReport) DecodeFromBytes(data []byte) error {
	if len(data) < FrameSize {
		return fmt.Errorf("%w: %d bytes", ErrShortFrame, len(data))
	}
	if binary.BigEndian.Uint16(data[0:2]) != Magic {
		return ErrBadMagic
	}
	if data[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, data[2])
	}
	want := binary.BigEndian.Uint32(data[FrameSize-4 : FrameSize])
	if crc32.ChecksumIEEE(data[:FrameSize-4]) != want {
		return ErrBadChecksum
	}
	r.Flags = data[3]
	r.LinkID = binary.BigEndian.Uint16(data[4:6])
	r.Seq = binary.BigEndian.Uint32(data[6:10])
	r.Time = time.Unix(0, int64(binary.BigEndian.Uint64(data[10:18])))
	r.RSSMilli = int32(binary.BigEndian.Uint32(data[18:22]))
	return nil
}

// String renders the report for logs.
func (r *RSSReport) String() string {
	kind := "live"
	if r.Vacant() {
		kind = "vacant"
	}
	return fmt.Sprintf("RSSReport{link=%d seq=%d %s %.2f dBm}", r.LinkID, r.Seq, kind, r.RSS())
}
