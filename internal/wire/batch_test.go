package wire

import (
	"errors"
	"testing"
	"time"
)

func TestBatchRoundTrip(t *testing.T) {
	reports := make([]RSSReport, 5)
	for i := range reports {
		reports[i] = RSSReport{
			LinkID: uint16(i),
			Seq:    uint32(100 + i),
			Time:   time.Unix(0, int64(1e9*(i+1))),
		}
		reports[i].SetRSS(-40.5 - float64(i))
		if i%2 == 0 {
			reports[i].Flags |= FlagVacant
		}
	}
	data := EncodeBatch(reports)
	if len(data) != len(reports)*FrameSize {
		t.Fatalf("batch size %d, want %d", len(data), len(reports)*FrameSize)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reports) {
		t.Fatalf("decoded %d reports, want %d", len(got), len(reports))
	}
	for i := range got {
		if got[i] != reports[i] {
			t.Errorf("report %d: %+v != %+v", i, got[i], reports[i])
		}
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	var r RSSReport
	r.SetRSS(-40)
	data := EncodeBatch([]RSSReport{r, r})

	if _, err := DecodeBatch(data[:len(data)-3]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("partial trailing frame: got %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[FrameSize+4] ^= 0xFF // corrupt second frame's payload
	if _, err := DecodeBatch(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt frame: got %v", err)
	}
	if got, err := DecodeBatch(nil); err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %d reports", err, len(got))
	}
}
