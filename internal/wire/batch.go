package wire

import "fmt"

// Frames are fixed-size, so a batch datagram is simply concatenated
// frames: the serving layer's ingest batching applied at the protocol
// layer. One UDP datagram can carry a whole deployment's sampling round
// (e.g. all links of a zone at one tick) and be validated frame by frame
// on receipt.

// AppendBatchTo appends the encoded frames of reports to buf and returns
// the extended slice.
func AppendBatchTo(buf []byte, reports []RSSReport) []byte {
	for i := range reports {
		buf = reports[i].AppendTo(buf)
	}
	return buf
}

// EncodeBatch returns the reports as one concatenated-frame datagram.
func EncodeBatch(reports []RSSReport) []byte {
	return AppendBatchTo(make([]byte, 0, len(reports)*FrameSize), reports)
}

// DecodeBatch parses a datagram of concatenated frames, validating each.
// It fails on a trailing partial frame or any invalid frame, identifying
// the offending index.
func DecodeBatch(data []byte) ([]RSSReport, error) {
	if len(data)%FrameSize != 0 {
		return nil, fmt.Errorf("%w: %d bytes is not a whole number of %d-byte frames",
			ErrShortFrame, len(data), FrameSize)
	}
	reports := make([]RSSReport, len(data)/FrameSize)
	for i := range reports {
		if err := reports[i].DecodeFromBytes(data[i*FrameSize:]); err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
	}
	return reports, nil
}
