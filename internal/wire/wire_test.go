package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func sampleReport() RSSReport {
	return RSSReport{
		Flags:  FlagVacant,
		LinkID: 7,
		Seq:    1234,
		Time:   time.Unix(0, 1718000000123456789),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	r := sampleReport()
	r.SetRSS(-47.25)
	buf := r.Encode()
	if len(buf) != FrameSize {
		t.Fatalf("frame size %d, want %d", len(buf), FrameSize)
	}
	var got RSSReport
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got.Flags != r.Flags || got.LinkID != r.LinkID || got.Seq != r.Seq {
		t.Fatalf("header mismatch: %+v vs %+v", got, r)
	}
	if !got.Time.Equal(r.Time) {
		t.Fatalf("time mismatch: %v vs %v", got.Time, r.Time)
	}
	if math.Abs(got.RSS()-(-47.25)) > 1e-9 {
		t.Fatalf("RSS = %g, want -47.25", got.RSS())
	}
	if !got.Vacant() {
		t.Fatal("vacant flag lost")
	}
}

// Property: encode/decode is the identity for arbitrary field values.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(flags uint8, link uint16, seq uint32, tsNano int64, rssMilli int32) bool {
		r := RSSReport{
			Flags:    flags,
			LinkID:   link,
			Seq:      seq,
			Time:     time.Unix(0, tsNano),
			RSSMilli: rssMilli,
		}
		var got RSSReport
		if err := got.DecodeFromBytes(r.Encode()); err != nil {
			return false
		}
		return got.Flags == flags && got.LinkID == link && got.Seq == seq &&
			got.Time.UnixNano() == tsNano && got.RSSMilli == rssMilli
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSetRSSSaturates(t *testing.T) {
	var r RSSReport
	r.SetRSS(1e12)
	if r.RSSMilli != math.MaxInt32 {
		t.Fatalf("positive saturation failed: %d", r.RSSMilli)
	}
	r.SetRSS(-1e12)
	if r.RSSMilli != math.MinInt32 {
		t.Fatalf("negative saturation failed: %d", r.RSSMilli)
	}
	r.SetRSS(-55.5)
	if r.RSSMilli != -55500 {
		t.Fatalf("SetRSS(-55.5) = %d", r.RSSMilli)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	var r RSSReport
	if err := r.DecodeFromBytes(make([]byte, FrameSize-1)); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame, got %v", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	r0 := sampleReport()
	buf := r0.Encode()
	buf[0] = 0xFF
	var r RSSReport
	if err := r.DecodeFromBytes(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	r0 := sampleReport()
	buf := r0.Encode()
	buf[2] = 99
	var r RSSReport
	if err := r.DecodeFromBytes(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestDecodeCorruptionDetected(t *testing.T) {
	// Flipping any single payload byte must fail the checksum (or the
	// magic/version checks for the first three bytes).
	orig := sampleReport()
	orig.SetRSS(-60)
	encoded := orig.Encode()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		buf := append([]byte(nil), encoded...)
		pos := rng.Intn(FrameSize)
		bit := byte(1) << rng.Intn(8)
		buf[pos] ^= bit
		var r RSSReport
		if err := r.DecodeFromBytes(buf); err == nil {
			t.Fatalf("corruption at byte %d bit %d undetected", pos, bit)
		}
	}
}

func TestAppendToReusesBuffer(t *testing.T) {
	r := sampleReport()
	buf := make([]byte, 0, 3*FrameSize)
	buf = r.AppendTo(buf)
	buf = r.AppendTo(buf)
	if len(buf) != 2*FrameSize {
		t.Fatalf("appended length %d", len(buf))
	}
	// Both frames decode independently.
	var a, b RSSReport
	if err := a.DecodeFromBytes(buf[:FrameSize]); err != nil {
		t.Fatal(err)
	}
	if err := b.DecodeFromBytes(buf[FrameSize:]); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	r := sampleReport()
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestControlRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []ControlMessage{
		{Type: MsgStartSurvey, Cell: 42, Samples: 100},
		{Type: MsgStopSurvey},
		{Type: MsgVacantCapture, Samples: 20},
		{Type: MsgSnapshot},
		{Type: MsgError, Detail: "boom"},
	}
	for _, m := range msgs {
		if err := WriteControl(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadControl(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestControlConnPipe(t *testing.T) {
	var buf bytes.Buffer
	c := NewControlConn(&buf)
	if err := c.Send(ControlMessage{Type: MsgAck}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgAck {
		t.Fatalf("got %+v", got)
	}
}

func TestReadControlOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length prefix
	if _, err := ReadControl(&buf); err == nil {
		t.Fatal("oversize length accepted")
	}
}

func TestReadControlTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteControl(&buf, ControlMessage{Type: MsgAck}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadControl(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadControlBadJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	hdr[3] = byte(len(body))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadControl(&buf); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
