package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Control-plane message types.
const (
	// MsgStartSurvey asks agents to tag subsequent reports as survey
	// samples for the given cell.
	MsgStartSurvey = "start_survey"
	// MsgStopSurvey ends the current survey pass.
	MsgStopSurvey = "stop_survey"
	// MsgVacantCapture asks agents to report vacant-tagged samples.
	MsgVacantCapture = "vacant_capture"
	// MsgSnapshot asks the collector to emit its aggregated state.
	MsgSnapshot = "snapshot"
	// MsgAck is the generic success reply.
	MsgAck = "ack"
	// MsgError is the generic failure reply.
	MsgError = "error"
)

// MaxControlMessage bounds a control frame to keep a corrupted length
// prefix from allocating unbounded memory.
const MaxControlMessage = 1 << 20

// ControlMessage is one control-plane message: length-prefixed JSON over
// a reliable stream.
type ControlMessage struct {
	// Type is one of the Msg* constants.
	Type string `json:"type"`
	// Cell is the surveyed grid cell for MsgStartSurvey.
	Cell int `json:"cell,omitempty"`
	// Samples is the requested sample count for survey/vacant captures.
	Samples int `json:"samples,omitempty"`
	// Detail carries human-readable context for MsgError.
	Detail string `json:"detail,omitempty"`
}

// WriteControl writes msg to w as a 4-byte big-endian length followed by
// the JSON body.
func WriteControl(w io.Writer, msg ControlMessage) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("wire: marshal control: %w", err)
	}
	if len(body) > MaxControlMessage {
		return fmt.Errorf("wire: control message %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadControl reads one length-prefixed control message from r.
func ReadControl(r io.Reader) (ControlMessage, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return ControlMessage{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxControlMessage {
		return ControlMessage{}, fmt.Errorf("wire: control message %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return ControlMessage{}, err
	}
	var msg ControlMessage
	if err := json.Unmarshal(body, &msg); err != nil {
		return ControlMessage{}, fmt.Errorf("wire: unmarshal control: %w", err)
	}
	return msg, nil
}

// ControlConn wraps a stream with buffered control-message framing.
type ControlConn struct {
	r *bufio.Reader
	w io.Writer
}

// NewControlConn wraps rw.
func NewControlConn(rw io.ReadWriter) *ControlConn {
	return &ControlConn{r: bufio.NewReader(rw), w: rw}
}

// Send writes one message.
func (c *ControlConn) Send(msg ControlMessage) error { return WriteControl(c.w, msg) }

// Recv reads one message.
func (c *ControlConn) Recv() (ControlMessage, error) { return ReadControl(c.r) }
