// Package analysis assembles the taflocvet analyzer suite: the
// project-specific go/analysis checkers that machine-check the repo's
// RCU, pooling, error-taxonomy, 0-alloc, and context contracts —
// plus, since v2, the flow-sensitive concurrency and taint checkers
// (lock order, atomic/plain field mixing, goroutine quiescence, wire
// taint) that reason across calls and packages over go/cfg CFGs.
//
// The suite is consumed two ways: cmd/taflocvet wraps it in a
// unitchecker so `go vet -vettool` drives it across the module, and the
// per-analyzer tests run each checker against testdata fixtures through
// internal/analysis/vettest. docs/INVARIANTS.md is the human-facing
// catalogue of what each analyzer pins and how to annotate exceptions.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"tafloc/internal/analysis/atomicmix"
	"tafloc/internal/analysis/atomiconce"
	"tafloc/internal/analysis/ctxflow"
	"tafloc/internal/analysis/errcode"
	"tafloc/internal/analysis/goroleak"
	"tafloc/internal/analysis/lockorder"
	"tafloc/internal/analysis/noalloc"
	"tafloc/internal/analysis/poolpair"
	"tafloc/internal/analysis/wiretaint"
)

// Analyzers returns the full taflocvet suite in stable order: the
// syntactic v1 checkers first, then the flow-sensitive v2 checkers.
func Analyzers() []*analysis.Analyzer {
	return append(Syntactic(), Flow()...)
}

// Syntactic returns the v1 single-function AST checkers.
func Syntactic() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomiconce.Analyzer,
		ctxflow.Analyzer,
		errcode.Analyzer,
		noalloc.Analyzer,
		poolpair.Analyzer,
	}
}

// Flow returns the v2 flow-sensitive, fact-propagating checkers (CI
// runs these as their own timed step).
func Flow() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		goroleak.Analyzer,
		lockorder.Analyzer,
		wiretaint.Analyzer,
	}
}
