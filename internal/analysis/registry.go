// Package analysis assembles the taflocvet analyzer suite: the
// project-specific go/analysis checkers that machine-check the repo's
// RCU, pooling, error-taxonomy, 0-alloc, and context contracts.
//
// The suite is consumed two ways: cmd/taflocvet wraps it in a
// unitchecker so `go vet -vettool` drives it across the module, and the
// per-analyzer tests run each checker against testdata fixtures through
// internal/analysis/vettest. docs/INVARIANTS.md is the human-facing
// catalogue of what each analyzer pins and how to annotate exceptions.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"tafloc/internal/analysis/atomiconce"
	"tafloc/internal/analysis/ctxflow"
	"tafloc/internal/analysis/errcode"
	"tafloc/internal/analysis/noalloc"
	"tafloc/internal/analysis/poolpair"
)

// Analyzers returns the full taflocvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomiconce.Analyzer,
		ctxflow.Analyzer,
		errcode.Analyzer,
		noalloc.Analyzer,
		poolpair.Analyzer,
	}
}
