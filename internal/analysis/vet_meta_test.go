package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoVetsClean builds taflocvet and runs it over the whole module
// through the standard vet driver — the same invocation CI gates on —
// asserting the tree carries no invariant violations. Skipped in -short
// mode: it compiles the tool and re-typechecks every package.
func TestRepoVetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vet tool and typechecks the module; skipped in -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}

	tool := filepath.Join(t.TempDir(), "taflocvet")
	build := exec.Command(goTool, "build", "-o", tool, "./cmd/taflocvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building taflocvet: %v\n%s", err, out)
	}

	var out bytes.Buffer
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Errorf("go vet -vettool=taflocvet ./... failed: %v\n%s", err, out.String())
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
