package noalloc

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestNoalloc(t *testing.T) {
	vettest.Run(t, "testdata", Analyzer, "a")
}
