// Package noalloc rejects allocating constructs inside functions whose
// doc comment carries //tafloc:noalloc — the machine-checked half of
// the 0-alloc hot-path pin. The AllocsPerRun tests prove the property
// holds for the inputs they run; this analyzer keeps the property
// reviewable at vet time by rejecting the constructs that would break
// it before any benchmark runs:
//
//   - make, new, append
//   - slice/map/pointer composite literals
//   - function literals that capture variables of the enclosing
//     function (a static, capture-free literal compiles to a singleton
//     and stays; this is why sortCands' comparator is legal)
//   - go statements
//   - calls into package fmt
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//
// An amortized grow path (allocate only when the reused buffer is too
// small) is allowed one construct at a time with //tafloc:alloc-ok and
// a justification. The analyzer checks syntax only — allocations made
// by callees and escapes decided by the optimizer are audited by
// scripts/escapecheck against -gcflags=-m output.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "noalloc",
	Doc:      "functions marked //tafloc:noalloc must not contain allocating constructs",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	suppressed := make(map[*ast.File]map[int]bool)
	for _, f := range pass.Files {
		suppressed[f] = tags.SuppressedLines(pass.Fset, f, tags.AllocOK)
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !tags.FuncMarked(fd, tags.NoAlloc) || tags.TestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkFunc(pass, fd, suppressed[fileOf(fd.Pos())])
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, suppressed map[int]bool) {
	report := func(pos token.Pos, construct, fix string) {
		if suppressed[pass.Fset.Position(pos).Line] {
			return
		}
		pass.Reportf(pos, "%s in //tafloc:noalloc function %s: %s (or annotate the line //tafloc:alloc-ok with a justification)",
			construct, fd.Name.Name, fix)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := captured(pass.TypesInfo, n); capt != "" {
				report(n.Pos(), "closure capturing "+capt,
					"a capturing func literal heap-allocates its environment; hoist the captured state into parameters or a method value on reused scratch")
			}
			// Do not descend: the literal runs in its own frame; if it
			// must itself be 0-alloc it gets its own enclosing marker.
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement",
				"spawning a goroutine allocates its frame; hand the work to the shared executor pool instead")
			return true
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n.Pos(), "slice/map composite literal",
					"build into a reused scratch buffer instead")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal",
						"the value escapes to the heap; reuse a scratch struct")
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				if tv, ok := pass.TypesInfo.Types[n]; !ok || tv.Value == nil {
					report(n.Pos(), "non-constant string concatenation",
						"concatenation allocates the result; format into a reused []byte")
				}
			}
			return true
		case *ast.CallExpr:
			checkCall(pass, n, report)
			return true
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					report(call.Pos(), "make", "allocate once at construction time and reuse")
				case "new":
					report(call.Pos(), "new", "allocate once at construction time and reuse")
				case "append":
					report(call.Pos(), "append", "append reallocates when capacity runs out; write through a pre-sized scratch slice")
				}
				return
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "call into package fmt",
				"fmt boxes every operand into interface{}; hot paths must not format")
			return
		}
	}
	// Conversion between string and []byte/[]rune copies the contents
	// into a fresh allocation.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypesInfo.TypeOf(call.Args[0])
		if src != nil && (isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src)) {
			if tv, ok := pass.TypesInfo.Types[call]; !ok || tv.Value == nil {
				report(call.Pos(), "string<->slice conversion",
					"the conversion copies into a fresh allocation; keep one representation on the hot path")
			}
		}
	}
}

// captured names one variable of an enclosing function that the literal
// closes over, or "" when the literal is capture-free. Package-level
// variables don't count: referencing them compiles to a static closure.
func captured(info *types.Info, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
