// Package a is the noalloc fixture: every allocating construct the
// analyzer rejects inside a //tafloc:noalloc function, plus the shapes
// that are deliberately allowed.
//
// Regression notes:
//   - staticClosure mirrors core.sortCands, whose capture-free SortFunc
//     comparator is legal on the hot path.
//   - amortizedGrow mirrors core.Scratch.candidates/interp, whose grow
//     paths carry line-level //tafloc:alloc-ok markers.
//   - capture mirrors the fanned-out ParallelFor closures in
//     core.columnDistsInto, allowed there by the same marker.
package a

import "fmt"

//tafloc:noalloc
func makes(n int) int {
	s := make([]int, n) // want `make in //tafloc:noalloc function makes`
	return len(s)
}

//tafloc:noalloc
func news() *int {
	return new(int) // want `new in //tafloc:noalloc function news`
}

//tafloc:noalloc
func appends(s []int) []int {
	return append(s, 1) // want `append in //tafloc:noalloc function appends`
}

//tafloc:noalloc
func lits() []int {
	return []int{1, 2} // want `slice/map composite literal`
}

//tafloc:noalloc
func addrLit() *struct{ x int } {
	return &struct{ x int }{x: 1} // want `&composite literal`
}

//tafloc:noalloc
func capture(xs []float64) func() float64 {
	return func() float64 { return xs[0] } // want `closure capturing xs`
}

//tafloc:noalloc
func staticClosure() func(int) int {
	return func(x int) int { return x * 2 } // capture-free: a static singleton
}

//tafloc:noalloc
func spawns() {
	go staticWork() // want `go statement`
}

//tafloc:noalloc
func formats(x int) {
	fmt.Println(x) // want `call into package fmt`
}

//tafloc:noalloc
func concat(a, b string) string {
	return a + b // want `non-constant string concatenation`
}

//tafloc:noalloc
func constConcat() string {
	return "a" + "b" // constant-folded: fine
}

//tafloc:noalloc
func convert(b []byte) string {
	return string(b) // want `string<->slice conversion`
}

//tafloc:noalloc
func amortizedGrow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //tafloc:alloc-ok fixture: amortized grow
	}
	return buf[:n]
}

// unmarked allocates freely: the analyzer only checks marked functions.
func unmarked(n int) []int {
	return make([]int, n)
}

func staticWork() {}
