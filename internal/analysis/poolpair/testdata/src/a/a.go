// Package a is the poolpair fixture: a local Get/Put pool pair (the
// test points the pairs flag at it) exercising the pairing, ordering,
// and ownership-transfer rules.
//
// Regression notes:
//   - transfer mirrors serve.prepareEstimate, which hands its pooled
//     vector to the locate task chain and is annotated
//     //tafloc:pool-ownership in production.
//   - retained mirrors core.Scratch.floats, which keeps grown buffers
//     across calls; same annotation.
package a

func Get() []float64       { return nil }
func Put(p []float64)      { _ = p }
func GetOther() []float64  { return nil }
func PutOther(p []float64) { _ = p }
func sink(p []float64)     { _ = p }
func consume(p []float64)  { _ = p }

func good() {
	b := Get()
	defer Put(b)
	sink(b)
}

func leak() {
	b := Get() // want `borrow from Get without a deferred Put on b`
	sink(b)
}

func bare() {
	sink(Get()) // want `pooled borrow is not assigned to a variable`
}

func moveToCaller() []float64 {
	return Get() // ownership moves to the caller: fine
}

func wrongPool() {
	b := Get()        // want `borrow from Get without a deferred Put on b`
	defer PutOther(b) // want `deferred PutOther does not match the pool b was borrowed from`
	sink(b)
}

func staleDefer() {
	var b []float64
	defer Put(b) // want `defer Put\(b\) runs before b is borrowed`
	b = Get()
	sink(b)
}

// transfer hands the pooled buffer to consume, which owns returning it.
//
//tafloc:pool-ownership fixture: ownership moves to consume
func transfer() {
	b := Get()
	consume(b)
}
