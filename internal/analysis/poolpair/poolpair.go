// Package poolpair enforces the pooled-buffer discipline behind the
// 0-alloc hot path: every borrow from a recycling pool
// (core.GetScratch, mat.GetFloats) must have its matching Put deferred
// in the same function, so the buffer returns to the pool on every
// path — including panics and early returns the author forgot about.
//
// Functions that intentionally transfer or retain ownership (the serve
// fold→locate task chain hands pooled vectors between executor tasks;
// core.Scratch retains grown buffers across calls) document it with
// //tafloc:pool-ownership in their doc comment, which exempts the whole
// function and points reviewers at the contract.
//
// The analyzer also catches the defer-ordering footgun: a deferred Put
// evaluates its argument at defer time, so `defer Put(x)` placed before
// `x = Get(...)` returns the stale previous value, not the borrow.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "poolpair",
	Doc:      "pool borrows (GetScratch/GetFloats) must defer the matching Put or document ownership transfer",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// pairs maps Get function full names to the required Put full name.
var pairs = "tafloc/internal/core.GetScratch=tafloc/internal/core.PutScratch," +
	"tafloc/internal/mat.GetFloats=tafloc/internal/mat.PutFloats"

func init() {
	Analyzer.Flags.StringVar(&pairs, "pairs", pairs,
		"comma-separated Get=Put function full-name pairs to enforce")
}

func run(pass *analysis.Pass) (any, error) {
	getToPut := make(map[string]string)
	for _, p := range strings.Split(pairs, ",") {
		if get, put, ok := strings.Cut(strings.TrimSpace(p), "="); ok {
			getToPut[get] = put
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || tags.TestFile(pass.Fset, fd.Pos()) {
			return
		}
		if tags.FuncMarked(fd, tags.PoolOwnership) {
			return
		}
		checkFunc(pass, fd, getToPut)
	})
	return nil, nil
}

// borrow is one Get call site and the variable its result landed in.
type borrow struct {
	call *ast.CallExpr
	put  string       // required Put full name
	dest types.Object // nil when the result is not a plain variable
	ret  bool         // result returned directly: ownership moves to the caller
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, getToPut map[string]string) {
	var borrows []borrow

	// deferredPuts[obj] holds the Put names deferred with that variable
	// as argument, with the defer statement position for order checks.
	type deferredPut struct {
		name string
		pos  token.Pos
	}
	deferredPuts := make(map[types.Object][]deferredPut)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			name, ok := fullName(pass.TypesInfo, n.Call)
			if !ok || !isPut(name, getToPut) {
				return true
			}
			if len(n.Call.Args) == 1 {
				if obj := identObj(pass.TypesInfo, n.Call.Args[0]); obj != nil {
					deferredPuts[obj] = append(deferredPuts[obj], deferredPut{name, n.Pos()})
				}
			}
			return true
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, ok := fullName(pass.TypesInfo, call)
				if !ok {
					continue
				}
				put, isGet := getToPut[name]
				if !isGet {
					continue
				}
				var dest types.Object
				if len(n.Lhs) == len(n.Rhs) {
					dest = identObj(pass.TypesInfo, n.Lhs[i])
				}
				borrows = append(borrows, borrow{call: call, put: put, dest: dest})
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := res.(*ast.CallExpr); ok {
					if name, ok := fullName(pass.TypesInfo, call); ok {
						if put, isGet := getToPut[name]; isGet {
							borrows = append(borrows, borrow{call: call, put: put, ret: true})
						}
					}
				}
			}
			return true
		case *ast.CallExpr:
			// A bare Get whose result is dropped or passed straight into
			// another call: never pairable in this function.
			name, ok := fullName(pass.TypesInfo, n)
			if !ok {
				return true
			}
			if put, isGet := getToPut[name]; isGet && !recorded(borrows, n) {
				borrows = append(borrows, borrow{call: n, put: put})
			}
			return true
		}
		return true
	})

	for _, b := range borrows {
		if b.ret {
			continue // ownership explicitly moves to the caller
		}
		short := shortName(b.put)
		if b.dest == nil {
			pass.Reportf(b.call.Pos(),
				"pooled borrow is not assigned to a variable, so no %s can pair with it; assign and defer %s, or annotate the function //tafloc:pool-ownership",
				short, short)
			continue
		}
		puts := deferredPuts[b.dest]
		paired := false
		for _, p := range puts {
			if p.name != b.put {
				pass.Reportf(p.pos, "deferred %s does not match the pool %s was borrowed from; the matching return is %s",
					shortName(p.name), b.dest.Name(), short)
				continue
			}
			if p.pos < b.call.Pos() {
				pass.Reportf(p.pos,
					"defer %s(%s) runs before %s is borrowed: a deferred call evaluates its argument at defer time, so this returns the stale previous value; move the defer after the borrow",
					short, b.dest.Name(), b.dest.Name())
			}
			paired = true
		}
		if !paired {
			pass.Reportf(b.call.Pos(),
				"borrow from %s without a deferred %s on %s: the buffer leaks from the pool on every return path; defer %s(%s) right after the borrow, or annotate the function //tafloc:pool-ownership with the transfer contract",
				shortName(nameOf(pass.TypesInfo, b.call)), short, b.dest.Name(), short, b.dest.Name())
		}
	}
}

func recorded(borrows []borrow, call *ast.CallExpr) bool {
	for _, b := range borrows {
		if b.call == call {
			return true
		}
	}
	return false
}

func isPut(name string, getToPut map[string]string) bool {
	for _, put := range getToPut {
		if put == name {
			return true
		}
	}
	return false
}

// fullName resolves a call to its callee's FullName (package path
// qualified); ok is false for builtins, method values, and indirect
// calls.
func fullName(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	return fn.FullName(), true
}

func nameOf(info *types.Info, call *ast.CallExpr) string {
	name, _ := fullName(info, call)
	return name
}

func shortName(full string) string {
	if i := strings.LastIndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
