package poolpair

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestPoolpair(t *testing.T) {
	old := pairs
	pairs = "a.Get=a.Put,a.GetOther=a.PutOther"
	t.Cleanup(func() { pairs = old })
	vettest.Run(t, "testdata", Analyzer, "a")
}
