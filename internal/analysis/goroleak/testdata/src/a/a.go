// Package a exercises the goroleak rules: literal and method
// launches, the dominating-Add must-analysis, the parameter
// exemption, and the //tafloc:detached opt-out.
package a

import "sync"

type Svc struct {
	wg sync.WaitGroup
}

// Worker defers Done on the service WaitGroup; launch sites must Add
// the same class first.
func (s *Svc) Worker() {
	defer s.wg.Done()
}

// Run defers Done on its caller's WaitGroup; launch sites must Add
// the argument they pass.
func Run(wg *sync.WaitGroup) {
	defer wg.Done()
}

func okLit(s *Svc) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

func okMethod(s *Svc) {
	s.wg.Add(1)
	go s.Worker()
}

func untied(s *Svc) {
	go func() {}() // want `goroutine is not tied to a quiesce path`
}

func detached(s *Svc) {
	go func() {}() //tafloc:detached process-lifetime stats flusher, reaped at exit
}

func missingAdd(s *Svc, cond bool) {
	if cond {
		s.wg.Add(1)
	}
	go func() { // want `no a\.Svc\.wg\.Add dominates this go statement`
		defer s.wg.Done()
	}()
}

func addOnAllPaths(s *Svc, cond bool) {
	if cond {
		s.wg.Add(1)
	} else {
		s.wg.Add(1)
	}
	go func() {
		defer s.wg.Done()
	}()
}

func methodMissingAdd(s *Svc) {
	go s.Worker() // want `no a\.Svc\.wg\.Add dominates this go statement`
}

func paramDone(wg *sync.WaitGroup) {
	go func() { // the caller Adds; Done on a parameter is its promise
		defer wg.Done()
	}()
}

func launchRun(s *Svc) {
	s.wg.Add(1)
	go Run(&s.wg)
}

func launchRunMissingAdd(s *Svc) {
	go Run(&s.wg) // want `no a\.Svc\.wg\.Add dominates this go statement`
}
