// Package b exercises cross-package quiesce facts: launching a's
// functions checks the summaries a exported.
package b

import (
	"sync"

	"a"
)

type Pool struct {
	WG sync.WaitGroup
}

func okCross(p *Pool) {
	p.WG.Add(1)
	go a.Run(&p.WG)
}

func crossMissingAdd(p *Pool) {
	go a.Run(&p.WG) // want `no b\.Pool\.WG\.Add dominates this go statement`
}
