package goroleak

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestGoroleak(t *testing.T) {
	old := packages
	packages = "a,b"
	t.Cleanup(func() { packages = old })
	vettest.Run(t, "testdata", Analyzer, "a", "b")
}
