// Package goroleak enforces the serve layer's quiesce contract: every
// goroutine launched with a go statement in the configured packages
// must be reapable. Zone Remove/Update and service Close wait on
// tracked WaitGroups (and the executor pool drains its own workers);
// a stray `go` that nothing waits for is exactly the regression that
// makes quiescence flaky under churn.
//
// A go statement passes the check when:
//
//   - its function literal body defers Done() on a sync.WaitGroup,
//     and an Add on that same WaitGroup class dominates the go
//     statement (a flow-sensitive must-analysis over the CFG: Add on
//     every path into the launch); or
//   - it launches a declared function or method that defers Done() on
//     a WaitGroup — a receiver field or package var (checked against
//     the same dominating-Add rule at the launch site), or one of the
//     callee's own WaitGroup-pointer parameters (the matching launch
//     argument is what must be Add-dominated). Summaries travel as
//     object facts, so cross-package launches check too; or
//   - the line carries "//tafloc:detached <why>", the explicit
//     opt-out naming who reaps the goroutine.
//
// When the Done target resolves to a WaitGroup parameter of the
// enclosing function, the Add is the caller's responsibility and the
// dominating-Add check is skipped.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"tafloc/internal/analysis/ssaflow"
	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "every go statement in the serve layer must be tied to a quiesce path (tracked WaitGroup or //tafloc:detached)",
	Requires:  []*analysis.Analyzer{ssaflow.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{(*quiesceFact)(nil)},
}

// packages scopes the check; go statements elsewhere are unchecked
// (but their callees still export quiesce facts).
var packages = "tafloc/internal/serve"

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", packages,
		"comma-separated package paths whose go statements must quiesce")
}

// quiesceFact summarizes how a declared function quiesces: it defers
// Done() on the WaitGroup class WG (receiver field or package var),
// or on its Param'th parameter (Param >= 0, WG empty).
type quiesceFact struct {
	WG    string
	Param int
}

func (*quiesceFact) AFact() {}
func (f *quiesceFact) String() string {
	if f.Param >= 0 {
		return "quiesces(param)"
	}
	return "quiesces(" + f.WG + ")"
}

// added is the must-analysis state: WaitGroup classes with an Add on
// every path from function entry.
type added map[string]bool

func run(pass *analysis.Pass) (interface{}, error) {
	fns := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Funcs)

	// Export quiesce facts for every declared function regardless of
	// package scope: serve checks launches of functions anywhere.
	local := make(map[*types.Func]quiesceFact)
	for _, fn := range fns.All {
		if fn.Obj == nil || fn.Body() == nil {
			continue
		}
		obj, class := deferredDone(pass, fn.Body())
		if class == "" {
			continue
		}
		q := quiesceFact{WG: class, Param: -1}
		if i := paramIndex(pass, fn, obj); i >= 0 {
			q = quiesceFact{Param: i}
		}
		local[fn.Obj] = q
		qq := q
		pass.ExportObjectFact(fn.Obj, &qq)
	}

	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	suppressed := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		if lines := tags.SuppressedLines(pass.Fset, f, tags.Detached); lines != nil {
			suppressed[pass.Fset.Position(f.Pos()).Filename] = lines
		}
	}

	for _, fn := range fns.All {
		if fn.CFG == nil {
			continue
		}
		checkFn(pass, fn, local, suppressed)
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, p := range strings.Split(packages, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}

func checkFn(pass *analysis.Pass, fn *ssaflow.Fn, local map[*types.Func]quiesceFact, suppressed map[string]map[int]bool) {
	params := paramObjects(pass, fn)
	df := ssaflow.Dataflow[added]{
		Clone: func(s added) added {
			c := make(added, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
		MergeInto: func(dst, src added) bool {
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s added) added {
			recordAdds(pass, n, s)
			return s
		},
	}
	states, seen := df.Run(fn.CFG, added{})
	df.Walk(fn.CFG, states, seen, func(n ast.Node, before added) {
		gostmt, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		p := pass.Fset.Position(gostmt.Pos())
		if suppressed[p.Filename][p.Line] {
			return
		}
		wgObj, wg, ok := launchDone(pass, gostmt, local)
		if !ok {
			pass.Reportf(gostmt.Pos(), "goroutine is not tied to a quiesce path: defer Done() on a tracked sync.WaitGroup inside it (with Add before the launch) or justify with //tafloc:detached (see docs/INVARIANTS.md)")
			return
		}
		if wgObj != nil && params[wgObj] {
			return // Done on a WaitGroup parameter: the caller Adds
		}
		if wg != "" && !before[wg] {
			pass.Reportf(gostmt.Pos(), "goroutine defers Done() on %s but no %s.Add dominates this go statement (Add must happen on every path before the launch)",
				short(wg), short(wg))
		}
	})
}

// recordAdds adds the class of every X.Add(n) WaitGroup call in the
// node to the state. Calls behind defer or nested literals do not
// count (they don't execute here).
func recordAdds(pass *analysis.Pass, n ast.Node, s added) {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if d, ok := m.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		if callee := ssaflow.StaticCallee(pass.TypesInfo, call); callee == nil || callee.FullName() != "(*sync.WaitGroup).Add" {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, class, ok := ssaflow.ResolveClass(pass.TypesInfo, pass.Fset, sel.X); ok {
			s[class] = true
		}
		return true
	})
}

// launchDone resolves how the launched goroutine quiesces. It returns
// ok=false when no quiesce tie exists; otherwise the WaitGroup class
// to check for a dominating Add ("" when nothing checkable at this
// site) and the object anchoring it (for the parameter exemption).
func launchDone(pass *analysis.Pass, gostmt *ast.GoStmt, local map[*types.Func]quiesceFact) (types.Object, string, bool) {
	if lit, ok := ast.Unparen(gostmt.Call.Fun).(*ast.FuncLit); ok {
		obj, class := deferredDone(pass, lit.Body)
		return obj, class, class != ""
	}
	callee := ssaflow.StaticCallee(pass.TypesInfo, gostmt.Call)
	if callee == nil {
		return nil, "", false
	}
	q, ok := local[callee]
	if !ok {
		var f quiesceFact
		if !pass.ImportObjectFact(callee, &f) {
			return nil, "", false
		}
		q = f
	}
	if q.Param < 0 {
		return nil, q.WG, true
	}
	// The callee Dones its q.Param'th parameter: the matching launch
	// argument is what must be Add-dominated here.
	if q.Param >= len(gostmt.Call.Args) {
		return nil, "", true
	}
	obj, class, ok := ssaflow.ResolveClass(pass.TypesInfo, pass.Fset, gostmt.Call.Args[q.Param])
	if !ok {
		return nil, "", true
	}
	return obj, class, true
}

// deferredDone returns the object and class of the WaitGroup a body
// defers Done() on ("" if none), ignoring nested literals.
func deferredDone(pass *analysis.Pass, body *ast.BlockStmt) (types.Object, string) {
	var class string
	var obj types.Object
	ast.Inspect(body, func(m ast.Node) bool {
		if class != "" {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		d, ok := m.(*ast.DeferStmt)
		if !ok {
			return true
		}
		callee := ssaflow.StaticCallee(pass.TypesInfo, d.Call)
		if callee == nil || callee.FullName() != "(*sync.WaitGroup).Done" {
			return true
		}
		sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if o, c, ok := ssaflow.ResolveClass(pass.TypesInfo, pass.Fset, sel.X); ok {
			obj, class = o, c
		}
		return true
	})
	return obj, class
}

// paramIndex returns the flattened parameter index of obj in fn's
// signature, or -1.
func paramIndex(pass *analysis.Pass, fn *ssaflow.Fn, obj types.Object) int {
	if fn.Decl == nil || obj == nil {
		return -1
	}
	i := 0
	for _, field := range fn.Decl.Type.Params.List {
		for _, name := range field.Names {
			if pass.TypesInfo.Defs[name] == obj {
				return i
			}
			i++
		}
	}
	return -1
}

// paramObjects collects the parameter (and receiver) objects of the
// function, so Done-on-a-parameter launches skip the local Add check.
func paramObjects(pass *analysis.Pass, fn *ssaflow.Fn) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if o := pass.TypesInfo.Defs[name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	if fn.Decl != nil {
		collect(fn.Decl.Recv)
		collect(fn.Decl.Type.Params)
	} else if fn.Lit != nil {
		collect(fn.Lit.Type.Params)
	}
	return out
}

func short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
