// Package a is the errcode fixture: error originations that must carry
// a taxonomy code, and HTTP writes that must derive statuses from it.
// The test points the packages flag at this package.
//
// Regression notes:
//   - returned/assigned mirror client.ReportStream.Sync and Close,
//     which originated bare fmt.Errorf errors until taflocvet flagged
//     them; both now return taflocerr.CodeInternal.
//   - legacy mirrors the frozen /v1 handlers in internal/serve/http.go,
//     exempted with //tafloc:legacy-http because their wire format is
//     pinned.
package a

import (
	"errors"
	"fmt"
	"net/http"
)

func returned() error {
	return errors.New("boom") // want `returned errors\.New escapes returned without a taflocerr code`
}

func formatted(n int) error {
	return fmt.Errorf("bad count %d", n) // want `returned fmt\.Errorf escapes formatted without a taflocerr code`
}

func wrapped(err error) error {
	return fmt.Errorf("while syncing: %w", err) // propagation: the code travels in the chain
}

func assigned() error {
	err := errors.New("boom") // want `errors\.New assigned to returned variable err`
	return err
}

func sentinel() error {
	return errors.New("internal sentinel") //tafloc:uncoded fixture: never crosses the API
}

func notReturned() {
	err := errors.New("only logged") // never escapes: fine
	_ = err
}

func rawError(w http.ResponseWriter) {
	http.Error(w, "nope", 400) // want `http\.Error bypasses the taflocerr taxonomy`
}

func header(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNotFound) // want `literal error status 404 passed to WriteHeader`
}

func helper(w http.ResponseWriter) {
	httpError(w, http.StatusInternalServerError, "boom") // want `literal error status 500 passed to httpError`
}

func okStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent) // success status: fine
}

// legacy is a frozen v1-style handler.
//
//tafloc:legacy-http fixture: pinned wire format
func legacy(w http.ResponseWriter) {
	httpError(w, http.StatusNotFound, "gone")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	_, _ = w.Write([]byte(msg))
}
