// Package errcode enforces the taflocerr taxonomy at the service
// boundary: code in the packages that face callers (internal/serve,
// client, and the root package) must not originate errors without a
// taxonomy code, and HTTP handlers must derive response statuses from
// the taxonomy mapping instead of writing literal error codes.
//
// Two rules:
//
//  1. Origination: a returned errors.New(...), or a returned fmt.Errorf
//     with no %w operand at all, creates an error no caller can branch
//     on with errors.Is against the taflocerr sentinels. Use
//     taflocerr.New/Errorf (or wrap a coded sentinel with %w).
//     Wrapping an existing error with %w is propagation and is always
//     allowed — the code travels in the cause chain.
//  2. HTTP statuses: http.Error, and the package's JSON error writers
//     (httpError, writeJSON) or ResponseWriter.WriteHeader with a
//     constant status >= 400, bypass taflocerr.HTTPStatus and will
//     drift from the taxonomy. The frozen /v1 handlers (responses
//     pinned byte-identical) are exempted with //tafloc:legacy-http.
//
// One-off internal sentinels that never cross the API are suppressed
// line-by-line with //tafloc:uncoded plus a justification.
package errcode

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "errcode",
	Doc:      "boundary packages must return taflocerr-coded errors and map HTTP statuses through the taxonomy",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	// packages scopes the analyzer to the boundary packages.
	packages = "tafloc,tafloc/internal/serve,tafloc/client"
	// writers names the in-package status-writing helpers whose literal
	// >= 400 status arguments are flagged.
	writers = "httpError,writeJSON"
)

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", packages,
		"comma-separated package paths the taxonomy contract applies to")
	Analyzer.Flags.StringVar(&writers, "writers", writers,
		"comma-separated names of status-writing helpers checked for literal error codes")
}

func run(pass *analysis.Pass) (any, error) {
	scoped := false
	for _, p := range strings.Split(packages, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Path() {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	writerSet := make(map[string]bool)
	for _, w := range strings.Split(writers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			writerSet[w] = true
		}
	}

	suppressed := make(map[*ast.File]map[int]bool)
	for _, f := range pass.Files {
		suppressed[f] = tags.SuppressedLines(pass.Fset, f, tags.Uncoded)
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || tags.TestFile(pass.Fset, fd.Pos()) {
			return
		}
		var sup map[int]bool
		for f, lines := range suppressed {
			if f.FileStart <= fd.Pos() && fd.Pos() < f.FileEnd {
				sup = lines
				break
			}
		}
		checkOrigination(pass, fd, sup)
		if !tags.FuncMarked(fd, tags.LegacyHTTP) {
			checkHTTPStatus(pass, fd, writerSet, sup)
		}
	})
	return nil, nil
}

// checkOrigination flags uncoded error originations that reach a
// return statement: either directly returned, or assigned to a
// variable that some return statement hands back.
func checkOrigination(pass *analysis.Pass, fd *ast.FuncDecl, suppressed map[int]bool) {
	// Pass 1: variables that appear in return statements.
	returned := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})

	report := func(call *ast.CallExpr, how string) {
		if suppressed[pass.Fset.Position(call.Pos()).Line] {
			return
		}
		pass.Reportf(call.Pos(),
			"%s escapes %s without a taflocerr code: callers cannot branch with errors.Is against the taxonomy; use taflocerr.New/Errorf or wrap a coded sentinel with %%w (or annotate //tafloc:uncoded with a justification)",
			how, fd.Name.Name)
	}

	// Pass 2: flag uncoded originations in returns and in assignments
	// to returned variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && uncodedOrigin(pass.TypesInfo, call) {
					report(call, "returned "+callName(pass.TypesInfo, call))
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !uncodedOrigin(pass.TypesInfo, call) || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					obj = pass.TypesInfo.Defs[id]
				}
				if obj != nil && returned[obj] {
					report(call, callName(pass.TypesInfo, call)+" assigned to returned variable "+id.Name)
				}
			}
		}
		return true
	})
}

// uncodedOrigin reports whether call originates an error with no
// taxonomy code: errors.New(...), or fmt.Errorf whose format string
// contains no %w verb.
func uncodedOrigin(info *types.Info, call *ast.CallExpr) bool {
	switch callName(info, call) {
	case "errors.New":
		return true
	case "fmt.Errorf":
		return !formatWraps(info, call)
	}
	return false
}

// formatWraps reports whether the fmt.Errorf call's constant format
// string contains at least one %w verb. A non-constant format cannot
// be checked and is given the benefit of the doubt.
func formatWraps(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	format := constant.StringVal(tv.Value)
	for i := 0; i+1 < len(format); i++ {
		if format[i] == '%' {
			if format[i+1] == '%' {
				i++
				continue
			}
			// Scan past flags/width to the verb.
			j := i + 1
			for j < len(format) && strings.ContainsRune("+-# 0123456789.*[]", rune(format[j])) {
				j++
			}
			if j < len(format) && format[j] == 'w' {
				return true
			}
		}
	}
	return false
}

// callName renders the callee as pkgname.Func for the packages the
// origination rule cares about; empty otherwise.
func callName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "errors", "fmt":
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

// checkHTTPStatus flags taxonomy bypasses on the HTTP surface.
func checkHTTPStatus(pass *analysis.Pass, fd *ast.FuncDecl, writerSet map[string]bool, suppressed map[int]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if suppressed[pass.Fset.Position(call.Pos()).Line] {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				if fn.FullName() == "net/http.Error" {
					pass.Reportf(call.Pos(),
						"http.Error bypasses the taflocerr taxonomy: write the typed error body via the taxonomy writer (errorV2) so the status comes from taflocerr.HTTPStatus")
					return true
				}
			}
			if fun.Sel.Name == "WriteHeader" {
				flagLiteralStatus(pass, fd, call, "WriteHeader", suppressed)
			}
		case *ast.Ident:
			if writerSet[fun.Name] {
				flagLiteralStatus(pass, fd, call, fun.Name, suppressed)
			}
		}
		return true
	})
}

// flagLiteralStatus reports constant status arguments >= 400: an error
// status hard-coded at the call site instead of derived from the error
// through taflocerr.HTTPStatus.
func flagLiteralStatus(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, what string, suppressed map[int]bool) {
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		code, ok := constant.Int64Val(tv.Value)
		if !ok || code < 400 || code > 599 {
			continue
		}
		if basic, isBasic := tv.Type.(*types.Basic); !isBasic || basic.Kind() != types.Int && basic.Kind() != types.UntypedInt {
			continue
		}
		pass.Reportf(arg.Pos(),
			"literal error status %s passed to %s in %s: derive the status from the error via the taxonomy (errorV2 / taflocerr.HTTPStatus) so codes cannot drift from the wire contract; frozen /v1 handlers are exempted with //tafloc:legacy-http",
			strconv.FormatInt(code, 10), what, fd.Name.Name)
	}
}
