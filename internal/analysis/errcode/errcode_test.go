package errcode

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestErrcode(t *testing.T) {
	old := packages
	packages = "a"
	t.Cleanup(func() { packages = old })
	vettest.Run(t, "testdata", Analyzer, "a")
}
