// Package selftest is the harness's own fixture: its // want comments
// are deliberately wrong, and vettest's test asserts the failure output
// (one error per site plus the diff-style summary) rather than the
// analyzer's behavior.
package selftest

func Matched() {} // want `function declared: Matched`

func WrongWant() {} // want `this expectation matches nothing`

func NoWant() {}
