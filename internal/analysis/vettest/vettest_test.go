package vettest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// recorder substitutes *testing.T so the harness's failure output can
// itself be asserted.
type recorder struct {
	errors []string
	fatal  string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(r) // Fatalf must not return; the test recovers
}

// declNoter deterministically reports every function declaration, so
// the selftest fixture's wrong expectations produce a known mismatch.
var declNoter = &analysis.Analyzer{
	Name: "declnoter",
	Doc:  "reports every function declaration (harness self-test only)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function declared: %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// TestWrongWantsFailWithDiff pins the harness's contract: a fixture
// whose // want comments disagree with the diagnostics must fail, and
// the failure must include the diff-style summary ("-" for unmatched
// expectations, "+" for unexpected diagnostics) alongside the per-site
// errors.
func TestWrongWantsFailWithDiff(t *testing.T) {
	r := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil && p != any(r) {
				panic(p)
			}
		}()
		Run(r, "testdata", declNoter, "selftest")
	}()

	if r.fatal != "" {
		t.Fatalf("harness aborted instead of reporting mismatches: %s", r.fatal)
	}
	if len(r.errors) == 0 {
		t.Fatal("wrong // want expectations did not fail the run")
	}
	joined := strings.Join(r.errors, "\n")

	// The matched site must not be in the diff.
	if strings.Contains(joined, "Matched") {
		t.Errorf("correctly-matched expectation reported as a mismatch:\n%s", joined)
	}
	// The stale expectation surfaces as a "-" line; the two uncovered
	// diagnostics (WrongWant's real message and NoWant's) as "+" lines.
	for _, want := range []string{
		"diagnostics differ from // want expectations (-missing +unexpected)",
		"- ",
		"this expectation matches nothing",
		"+ ",
		"function declared: WrongWant",
		"function declared: NoWant",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("failure output missing %q:\n%s", want, joined)
		}
	}
}

// TestSelfTestFixtureTypechecks guards the fixture itself: a broken
// fixture would make the self-test vacuous by failing before checkWants.
func TestSelfTestFixtureTypechecks(t *testing.T) {
	if _, err := newLoader("testdata/src").load("selftest"); err != nil {
		t.Fatalf("selftest fixture does not load: %v", err)
	}
}
