// Package vettest runs a single analyzer over GOPATH-style source
// fixtures and checks its diagnostics against // want comments — a
// self-contained stand-in for golang.org/x/tools/go/analysis/analysistest,
// which needs go/packages and module resolution this repo's vendored
// x/tools subset deliberately leaves out.
//
// Fixture layout mirrors analysistest: <testdata>/src/<importpath>/*.go,
// typechecked against other fixture packages first and the standard
// library (via the source importer) second. Expectations are trailing
// comments of the form
//
//	x := twice() // want "regexp" "another regexp"
//
// where each string is a regular expression that must match one
// diagnostic reported on that line; diagnostics with no matching want,
// and wants with no matching diagnostic, fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics with the // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgpaths {
		pi, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := run(a, l.fset, pi, make(map[*analysis.Analyzer]any))
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, pi, diags)
	}
}

// run executes the analyzer and (recursively) its Requires on one
// loaded package, memoizing dependency results. Fact plumbing is not
// implemented: the taflocvet suite declares no FactTypes.
func run(a *analysis.Analyzer, fset *token.FileSet, pi *pkgInfo, results map[*analysis.Analyzer]any) ([]analysis.Diagnostic, error) {
	resultOf := make(map[*analysis.Analyzer]any)
	for _, dep := range a.Requires {
		if _, ok := results[dep]; !ok {
			if _, err := run(dep, fset, pi, results); err != nil {
				return nil, fmt.Errorf("dependency %s: %w", dep.Name, err)
			}
		}
		resultOf[dep] = results[dep]
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// loader resolves import paths to fixture directories first and the
// standard library second, typechecking fixtures from source.
type loader struct {
	fset   *token.FileSet
	srcdir string
	pkgs   map[string]*pkgInfo
	std    types.Importer
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcdir: srcdir,
		pkgs:   make(map[string]*pkgInfo),
		std:    importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer for the typechecker's use while
// loading a fixture.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcdir, path); isDir(dir) {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// checkWants cross-checks diagnostics against the fixture's // want
// comments, failing the test on both unexpected diagnostics and
// unsatisfied expectations.
func checkWants(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					text := q[1 : len(q)-1]
					if q[0] == '"' {
						var err error
						if text, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []key
	for k, rxs := range wants {
		if len(rxs) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}
