// Package vettest runs a single analyzer over GOPATH-style source
// fixtures and checks its diagnostics against // want comments — a
// self-contained stand-in for golang.org/x/tools/go/analysis/analysistest,
// which needs go/packages and module resolution this repo's vendored
// x/tools subset deliberately leaves out.
//
// Fixture layout mirrors analysistest: <testdata>/src/<importpath>/*.go,
// typechecked against other fixture packages first and the standard
// library (via the source importer) second. Expectations are trailing
// comments of the form
//
//	x := twice() // want "regexp" "another regexp"
//
// where each string is a regular expression that must match one
// diagnostic reported on that line; diagnostics with no matching want,
// and wants with no matching diagnostic, fail the test with a
// diff-style summary (missing expectations prefixed "-", unexpected
// diagnostics prefixed "+").
//
// Facts are supported modularly, the way the unitchecker driver does
// it: before an analyzer runs on a fixture package, it first runs on
// that package's fixture imports (recursively), and every exported
// fact crosses the package boundary through a gob encode/decode round
// trip — a fact that is not gob-serializable fails the test exactly as
// it would fail `go vet`. Diagnostics reported on dependency packages
// are checked only when that package is itself named in the Run call.
package vettest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// T is the testing surface the harness reports through — the subset of
// *testing.T it needs. The harness's own tests substitute a recorder to
// pin the failure output.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics with the // want comments. Fixture
// packages imported by a named package are analyzed first so the
// analyzer's facts are available, mirroring modular `go vet` runs.
func Run(t T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	d := &driver{
		l:       newLoader(filepath.Join(testdata, "src")),
		results: make(map[runKey]any),
		diags:   make(map[runKey][]analysis.Diagnostic),
		done:    make(map[runKey]bool),
		objjar:  make(map[factKey][]byte),
		pkgjar:  make(map[factKey][]byte),
	}
	for _, path := range pkgpaths {
		pi, err := d.l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		if err := d.analyze(a, pi); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, d.l.fset, pi, d.diags[runKey{a, pi.pkg}])
	}
}

// runKey memoizes one (analyzer, package) execution.
type runKey struct {
	a   *analysis.Analyzer
	pkg *types.Package
}

// factKey addresses one fact: the analyzer that owns it, the object (or
// package) it decorates, and the concrete fact type.
type factKey struct {
	a   *analysis.Analyzer
	key any // types.Object or *types.Package
	t   reflect.Type
}

// driver runs analyzers over fixture packages in dependency order,
// carrying facts across package boundaries through a gob jar.
type driver struct {
	l       *loader
	results map[runKey]any
	diags   map[runKey][]analysis.Diagnostic
	done    map[runKey]bool
	objjar  map[factKey][]byte // gob-encoded object facts
	pkgjar  map[factKey][]byte // gob-encoded package facts
}

// analyze runs a (and, recursively, its Requires and its runs on
// imported fixture packages) on one loaded package, memoized.
func (d *driver) analyze(a *analysis.Analyzer, pi *pkgInfo) error {
	k := runKey{a, pi.pkg}
	if d.done[k] {
		return nil
	}
	d.done[k] = true
	// Horizontal dependencies: the same analyzer over every fixture
	// import, so ImportObjectFact sees the facts a modular driver would
	// have read from the dependency's .a file.
	if len(a.FactTypes) > 0 {
		for _, dep := range pi.fixtureImports {
			dpi, err := d.l.load(dep)
			if err != nil {
				return fmt.Errorf("loading dependency %s: %w", dep, err)
			}
			if err := d.analyze(a, dpi); err != nil {
				return err
			}
		}
	}
	// Vertical dependencies: the analyzers a Requires, on this package.
	resultOf := make(map[*analysis.Analyzer]any)
	for _, req := range a.Requires {
		if err := d.analyze(req, pi); err != nil {
			return fmt.Errorf("dependency %s: %w", req.Name, err)
		}
		resultOf[req] = d.results[runKey{req, pi.pkg}]
	}

	factTypes := make(map[reflect.Type]bool)
	for _, f := range a.FactTypes {
		factTypes[reflect.TypeOf(f)] = true
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       d.l.fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report:     func(diag analysis.Diagnostic) { diags = append(diags, diag) },

		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			d.export(a, factTypes, d.objjar, obj, fact)
		},
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return d.lookup(a, d.objjar, obj, fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			d.export(a, factTypes, d.pkgjar, pi.pkg, fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return d.lookup(a, d.pkgjar, pkg, fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for k, enc := range d.objjar {
				if k.a != a {
					continue
				}
				fact := reflect.New(k.t.Elem()).Interface().(analysis.Fact)
				decode(enc, fact)
				out = append(out, analysis.ObjectFact{Object: k.key.(types.Object), Fact: fact})
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for k, enc := range d.pkgjar {
				if k.a != a {
					continue
				}
				fact := reflect.New(k.t.Elem()).Interface().(analysis.Fact)
				decode(enc, fact)
				out = append(out, analysis.PackageFact{Package: k.key.(*types.Package), Fact: fact})
			}
			return out
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		return err
	}
	if a.ResultType != nil && res != nil && reflect.TypeOf(res) != a.ResultType {
		return fmt.Errorf("analyzer %s returned %T, declared %v", a.Name, res, a.ResultType)
	}
	d.results[k] = res
	d.diags[k] = diags
	return nil
}

// export serializes a fact into the jar. The gob round trip is the
// point: it enforces exactly the serializability contract modular
// drivers (unitchecker, go vet) enforce, so a fixture run fails on an
// unencodable fact before CI does.
func (d *driver) export(a *analysis.Analyzer, declared map[reflect.Type]bool, jar map[factKey][]byte, key any, fact analysis.Fact) {
	t := reflect.TypeOf(fact)
	if !declared[t] {
		panic(fmt.Sprintf("analyzer %s exported undeclared fact type %T", a.Name, fact))
	}
	var buf bytes.Buffer
	gob.Register(fact)
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analyzer %s: fact %T is not gob-serializable: %v", a.Name, fact, err))
	}
	jar[factKey{a, key, t}] = buf.Bytes()
}

func (d *driver) lookup(a *analysis.Analyzer, jar map[factKey][]byte, key any, fact analysis.Fact) bool {
	enc, ok := jar[factKey{a, key, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	decode(enc, fact)
	return true
}

func decode(enc []byte, fact analysis.Fact) {
	gob.Register(fact)
	if err := gob.NewDecoder(bytes.NewReader(enc)).Decode(fact); err != nil {
		panic(fmt.Sprintf("decoding fact %T: %v", fact, err))
	}
}

// loader resolves import paths to fixture directories first and the
// standard library second, typechecking fixtures from source.
type loader struct {
	fset   *token.FileSet
	srcdir string
	pkgs   map[string]*pkgInfo
	std    types.Importer
}

type pkgInfo struct {
	pkg            *types.Package
	files          []*ast.File
	info           *types.Info
	fixtureImports []string // import paths resolved inside testdata/src
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcdir: srcdir,
		pkgs:   make(map[string]*pkgInfo),
		std:    importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer for the typechecker's use while
// loading a fixture.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcdir, path); isDir(dir) {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	var fixtureImports []string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if isDir(filepath.Join(l.srcdir, p)) && !contains(fixtureImports, p) {
				fixtureImports = append(fixtureImports, p)
			}
		}
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info, fixtureImports: fixtureImports}
	l.pkgs[path] = pi
	return pi, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// checkWants cross-checks diagnostics against the fixture's // want
// comments. Mismatches fail the test twice over: one error per site
// (so the failing line is one click away), plus a diff-style summary —
// "-" lines are expectations nothing matched, "+" lines are
// diagnostics nothing expected — so a drifted fixture reads as a patch.
func checkWants(t T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					text := q[1 : len(q)-1]
					if q[0] == '"' {
						var err error
						if text, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	var diff []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			diff = append(diff, fmt.Sprintf("+ %s: %s", pos, d.Message))
		}
	}
	var keys []key
	for k, rxs := range wants {
		if len(rxs) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
			diff = append(diff, fmt.Sprintf("- %s:%d: %s", k.file, k.line, rx))
		}
	}
	if len(diff) > 0 {
		sort.Strings(diff)
		t.Errorf("%s: diagnostics differ from // want expectations (-missing +unexpected):\n%s",
			pi.pkg.Path(), strings.Join(diff, "\n"))
	}
}
