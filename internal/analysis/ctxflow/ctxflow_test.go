package ctxflow

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestCtxflow(t *testing.T) {
	vettest.Run(t, "testdata", Analyzer, "a")
}
