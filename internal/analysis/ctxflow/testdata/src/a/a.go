// Package a is the ctxflow fixture: context parameter position and
// context-dropping calls.
//
// Regression note: detach mirrors the shutdown paths in serve, where a
// background lifetime is deliberate and carries //tafloc:ctx-detach.
package a

import (
	"context"
	"net/http"
)

func First(ctx context.Context, name string) { _ = ctx }

func Second(name string, ctx context.Context) { // want `Second takes context\.Context as parameter 2`
	_ = ctx
}

func Drops(ctx context.Context) {
	use(context.Background()) // want `context\.Background called in Drops`
}

func Todos(ctx context.Context) {
	use(context.TODO()) // want `context\.TODO called in Todos`
}

func Request(ctx context.Context) {
	_, _ = http.NewRequest("GET", "http://example.invalid/", nil) // want `http\.NewRequest in Request ignores the context`
}

func RequestCtx(ctx context.Context) {
	_, _ = http.NewRequestWithContext(ctx, "GET", "http://example.invalid/", nil) // fine
}

func detach(ctx context.Context) {
	use(context.Background()) //tafloc:ctx-detach fixture: shutdown work outlives the caller
}

// NoCtx has no context in scope, so Background is the right call.
func NoCtx() {
	use(context.Background())
}

func goroutine(ctx context.Context) {
	go func() {
		use(context.Background()) // own lifetime: rule 2 stops at the FuncLit
	}()
}

func use(ctx context.Context) { _ = ctx }
