// Package ctxflow keeps cancellation plumbed end to end. The engine's
// blocking APIs (locate dispatch, snapshot loads, client streams) are
// cancellable by contract; a context accepted in the wrong position or
// silently replaced with context.Background() breaks that contract one
// call frame at a time.
//
// Two rules:
//
//  1. A function that takes a context.Context must take it as the first
//     parameter (after the receiver), per the standard convention the
//     rest of the repo's call sites assume.
//  2. A function that has a context in scope must not detach from it:
//     calling context.Background()/context.TODO() there drops the
//     caller's deadline and cancellation on the floor, and
//     http.NewRequest builds a request that ignores it (use
//     NewRequestWithContext). A deliberate detach — e.g. a background
//     flush that must outlive the triggering request — is annotated
//     //tafloc:ctx-detach with a justification.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "context.Context must be the first parameter and must not be dropped via Background/TODO or context-less request constructors",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	suppressed := make(map[*ast.File]map[int]bool)
	for _, f := range pass.Files {
		suppressed[f] = tags.SuppressedLines(pass.Fset, f, tags.CtxDetach)
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || tags.TestFile(pass.Fset, fd.Pos()) {
			return
		}
		ctxAt := contextParamIndex(pass.TypesInfo, fd.Type)
		if ctxAt > 0 {
			pass.Reportf(fd.Type.Params.List[0].Pos(),
				"%s takes context.Context as parameter %d: the context goes first, so call sites read uniformly and wrappers can forward it mechanically",
				fd.Name.Name, ctxAt+1)
		}
		if ctxAt >= 0 {
			checkDetach(pass, fd, suppressed[fileOf(fd.Pos())])
		}
	})
	return nil, nil
}

// contextParamIndex returns the flat index of the first context.Context
// parameter, or -1 when the function takes none.
func contextParamIndex(info *types.Info, ft *ast.FuncType) int {
	if ft.Params == nil {
		return -1
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContext(info.TypeOf(field.Type)) {
			return idx
		}
		idx += n
	}
	return -1
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkDetach flags context-discarding calls inside a function that has
// a caller context in scope.
func checkDetach(pass *analysis.Pass, fd *ast.FuncDecl, suppressed map[int]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A goroutine body may legitimately own a different lifetime;
			// rule 2 applies to the frame that received the context.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if suppressed[pass.Fset.Position(call.Pos()).Line] {
			return true
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(),
				"context.%s called in %s, which already has a context parameter: this drops the caller's deadline and cancellation; pass the parameter through, or annotate //tafloc:ctx-detach with why this work must outlive the caller",
				fn.Name(), fd.Name.Name)
		case "net/http.NewRequest":
			pass.Reportf(call.Pos(),
				"http.NewRequest in %s ignores the context in scope: use http.NewRequestWithContext so the request is cancellable",
				fd.Name.Name)
		}
		return true
	})
}
