package wiretaint

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestWiretaint(t *testing.T) {
	// The fixture "module" is the core+a pair, not tafloc/...: widen
	// the call-sink prefix list to match.
	defer func(old string) { sinkpkgs = old }(sinkpkgs)
	sinkpkgs = "core,a"
	vettest.Run(t, "testdata", Analyzer, "core", "a")
}
