// Package wiretaint tracks untrusted wire input from its sources to
// indexing sinks. Sources are HTTP request state (*net/http.Request
// parameters, url.Values reads, request bodies), encoding/json and
// encoding/gob decode outputs, and the internal/wire frame decoders
// (method names configured with -wiretaint.decoders). Sinks are slice
// and matrix indexing and slice-bound expressions — in internal/core
// reached through calls, or anywhere a source-tainted value is used
// as an index directly. A flow must pass through a sanitizer first: a
// relational or equality comparison of the value (the link-bounds
// check idiom), or a call to a function marked //tafloc:validates.
//
// The analysis is a flow-sensitive bitmask taint over each function's
// CFG (via ssaflow): bit i marks "derived from parameter i", the top
// bit marks "derived from a wire source". Per-function summaries
// ("parameter i reaches an indexing sink") iterate to a fixpoint over
// the package call graph and travel cross-package as object facts, so
// serve handing a decoded link ID to core is checked end to end
// without core knowing about HTTP.
//
// Known approximations, documented in docs/INVARIANTS.md: taint is
// field-insensitive (a struct decoded from the wire taints all its
// fields; comparing any part of it sanitizes the whole root object);
// call results inherit the union of argument taints (safe
// over-approximation); captured variables in closures are not tracked
// across the closure boundary. "//tafloc:taint-ok <why>" suppresses
// one sink diagnostic.
package wiretaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"tafloc/internal/analysis/ssaflow"
	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "wiretaint",
	Doc:      "wire-tainted values must pass a //tafloc:validates bounds check before reaching indexing",
	Requires: []*analysis.Analyzer{ssaflow.Analyzer},
	Run:      run,
	FactTypes: []analysis.Fact{
		(*sensitiveFact)(nil),
		(*sanitizerFact)(nil),
	},
}

// decoders lists method names whose call taints the receiver and
// result (the wire-frame decode idiom).
var decoders = "DecodeFromBytes,DecodeBatch"

// sinkpkgs limits which callees' index-sensitivity summaries count as
// call sinks. `go vet` analyzes the whole dependency graph, so facts
// get computed for the standard library too — and fmt.Sprintf or
// encoding/json.Unmarshal indexing their own inputs is their job, not
// a bounds hazard in ours. Direct indexing sinks are always checked.
var sinkpkgs = "tafloc"

func init() {
	Analyzer.Flags.StringVar(&decoders, "decoders", decoders,
		"comma-separated method names that decode wire bytes into their receiver/result")
	Analyzer.Flags.StringVar(&sinkpkgs, "sinkpkgs", sinkpkgs,
		"comma-separated package-path prefixes whose index-sensitive functions count as call sinks (empty = all)")
}

// sensitiveFact marks a function whose listed parameters flow to an
// indexing sink without sanitization (0 = first parameter; the
// receiver is not tracked).
type sensitiveFact struct{ Params []int }

func (*sensitiveFact) AFact() {}
func (f *sensitiveFact) String() string {
	return fmt.Sprintf("indexSensitive(%v)", f.Params)
}

// sanitizerFact marks a //tafloc:validates function: calls to it
// clean their arguments and return clean results.
type sanitizerFact struct{}

func (*sanitizerFact) AFact()         {}
func (*sanitizerFact) String() string { return "validates" }

const srcBit uint64 = 1 << 63

// state maps objects to taint marks: bit i = derived from param i,
// srcBit = derived from a wire source.
type state map[types.Object]uint64

type checker struct {
	pass       *analysis.Pass
	fns        *ssaflow.Funcs
	sensitive  map[*types.Func][]int // package-local summaries (fixpoint)
	sanitizers map[*types.Func]bool  // package-local //tafloc:validates
	decoders   map[string]bool
	sinkPfx    []string
	suppressed map[string]map[int]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:       pass,
		fns:        pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Funcs),
		sensitive:  make(map[*types.Func][]int),
		sanitizers: make(map[*types.Func]bool),
		decoders:   make(map[string]bool),
		suppressed: make(map[string]map[int]bool),
	}
	for _, d := range strings.Split(decoders, ",") {
		if d = strings.TrimSpace(d); d != "" {
			c.decoders[d] = true
		}
	}
	for _, p := range strings.Split(sinkpkgs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			c.sinkPfx = append(c.sinkPfx, p)
		}
	}
	for _, f := range pass.Files {
		if lines := tags.SuppressedLines(pass.Fset, f, tags.TaintOK); lines != nil {
			c.suppressed[pass.Fset.Position(f.Pos()).Filename] = lines
		}
	}

	// Collect local sanitizers and export their facts.
	for _, fn := range c.fns.All {
		if fn.Decl != nil && fn.Obj != nil && tags.FuncMarked(fn.Decl, tags.Validates) {
			c.sanitizers[fn.Obj] = true
			pass.ExportObjectFact(fn.Obj, &sanitizerFact{})
		}
	}

	// Phase A: iterate parameter-sensitivity summaries to a fixpoint
	// over the package call graph (imported facts are stable inputs).
	for changed := true; changed; {
		changed = false
		for _, fn := range c.fns.All {
			if fn.Obj == nil || fn.CFG == nil || c.sanitizers[fn.Obj] {
				continue
			}
			params := c.summarize(fn)
			if !equalInts(params, c.sensitive[fn.Obj]) {
				c.sensitive[fn.Obj] = params
				changed = true
			}
		}
	}
	for obj, params := range c.sensitive {
		if len(params) > 0 {
			pass.ExportObjectFact(obj, &sensitiveFact{Params: params})
		}
	}

	// Phase B: report source-tainted sinks.
	for _, fn := range c.fns.All {
		if fn.CFG == nil {
			continue
		}
		c.report(fn)
	}
	return nil, nil
}

// seed builds the entry state: parameters carry their param bit, and
// *net/http.Request parameters are wire sources outright.
func (c *checker) seed(fn *ssaflow.Fn, withSources bool) state {
	s := make(state)
	if fn.Decl == nil {
		return s
	}
	i := 0
	for _, field := range fn.Decl.Type.Params.List {
		for _, name := range field.Names {
			obj := c.pass.TypesInfo.Defs[name]
			if obj == nil {
				i++
				continue
			}
			var m uint64
			if i < 62 {
				m = 1 << uint(i)
			}
			if withSources && isHTTPRequest(obj.Type()) {
				m |= srcBit
			}
			if m != 0 {
				s[obj] = m
			}
			i++
		}
	}
	return s
}

func isHTTPRequest(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}

// summarize runs the taint analysis with parameter seeds only and
// returns the parameter indices that reach a sink.
func (c *checker) summarize(fn *ssaflow.Fn) []int {
	var hit uint64
	c.analyze(fn, false, func(pos token.Pos, m uint64, what string) {
		hit |= m
	})
	var params []int
	for i := 0; i < 62; i++ {
		if hit&(1<<uint(i)) != 0 {
			params = append(params, i)
		}
	}
	return params
}

// report runs the taint analysis with source seeds and reports every
// sink a source-derived mark reaches.
func (c *checker) report(fn *ssaflow.Fn) {
	c.analyze(fn, true, func(pos token.Pos, m uint64, what string) {
		if m&srcBit == 0 {
			return
		}
		p := c.pass.Fset.Position(pos)
		if c.suppressed[p.Filename][p.Line] {
			return
		}
		c.pass.Reportf(pos, "wire-tainted value reaches %s without passing a //tafloc:validates bounds check (see docs/INVARIANTS.md)", what)
	})
}

// analyze runs the dataflow over fn's CFG, calling sink for every
// sink an interesting mark reaches.
func (c *checker) analyze(fn *ssaflow.Fn, withSources bool, sink func(pos token.Pos, m uint64, what string)) {
	df := ssaflow.Dataflow[state]{
		Clone: func(s state) state {
			n := make(state, len(s))
			for k, v := range s {
				n[k] = v
			}
			return n
		},
		MergeInto: func(dst, src state) bool {
			changed := false
			for k, v := range src {
				if dst[k]|v != dst[k] {
					dst[k] |= v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s state) state {
			c.step(n, s, nil)
			return s
		},
	}
	states, seen := df.Run(fn.CFG, c.seed(fn, withSources))
	df.Walk(fn.CFG, states, seen, func(n ast.Node, before state) {
		held := df.Clone(before)
		c.step(n, held, sink)
	})
}

// step interprets one CFG node: sinks first (against the pre-state),
// then decode-into effects, assignments and range bindings, then
// comparison sanitization.
func (c *checker) step(n ast.Node, s state, sink func(pos token.Pos, m uint64, what string)) {
	if sink != nil {
		c.findSinks(n, s, sink)
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.applyCallEffects(m, s)
		case *ast.AssignStmt:
			c.applyAssign(m, s)
		case *ast.RangeStmt:
			marks := c.eval(m.X, s)
			for _, e := range []ast.Expr{m.Key, m.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := c.objOf(id); obj != nil {
						if marks == 0 {
							delete(s, obj)
						} else {
							s[obj] = marks
						}
					}
				}
			}
		case *ast.ValueSpec:
			marks := uint64(0)
			for _, v := range m.Values {
				marks |= c.eval(v, s)
			}
			for _, name := range m.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil && marks != 0 {
					s[obj] = marks
				}
			}
		}
		return true
	})

	// Comparisons sanitize: a value whose root object was compared
	// with a relational or equality operator is considered
	// bounds-checked from here on (field-insensitive, like the taint).
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		b, ok := m.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{b.X, b.Y} {
				for _, obj := range c.roots(side) {
					delete(s, obj)
				}
			}
		}
		return true
	})
}

// findSinks reports indexing and sensitive-call sinks in the node
// against the current state.
func (c *checker) findSinks(n ast.Node, s state, sink func(pos token.Pos, m uint64, what string)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IndexExpr:
			if mk := c.eval(m.Index, s); mk != 0 && indexable(c.pass.TypesInfo.TypeOf(m.X)) {
				sink(m.Index.Pos(), mk, "slice indexing")
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{m.Low, m.High, m.Max} {
				if b == nil {
					continue
				}
				if mk := c.eval(b, s); mk != 0 {
					sink(b.Pos(), mk, "slice bounds")
				}
			}
		case *ast.CallExpr:
			callee := ssaflow.StaticCallee(c.pass.TypesInfo, m)
			if callee == nil {
				return true
			}
			for _, i := range c.sensitiveParams(callee) {
				if i >= len(m.Args) {
					continue
				}
				if mk := c.eval(m.Args[i], s); mk != 0 {
					sink(m.Args[i].Pos(), mk, fmt.Sprintf("call to %s (parameter %d is index-sensitive)", callee.Name(), i))
				}
			}
		}
		return true
	})
}

// applyCallEffects taints decode targets: json/gob decode-into
// arguments and configured decoder-method receivers.
func (c *checker) applyCallEffects(call *ast.CallExpr, s state) {
	callee := ssaflow.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	taintTarget := func(e ast.Expr) {
		for _, obj := range c.roots(e) {
			s[obj] |= srcBit | c.argMarks(call, s)
		}
	}
	switch callee.FullName() {
	case "encoding/json.Unmarshal":
		if len(call.Args) == 2 {
			taintTarget(call.Args[1])
		}
	case "(*encoding/json.Decoder).Decode", "(*encoding/gob.Decoder).Decode":
		if len(call.Args) == 1 {
			taintTarget(call.Args[0])
		}
	default:
		if c.decoders[callee.Name()] && callee.Type().(*types.Signature).Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				taintTarget(sel.X)
			}
		}
	}
}

func (c *checker) argMarks(call *ast.CallExpr, s state) uint64 {
	var m uint64
	for _, a := range call.Args {
		m |= c.eval(a, s)
	}
	return m
}

// applyAssign propagates marks through assignments with strong
// updates: a clean right-hand side clears the target.
func (c *checker) applyAssign(a *ast.AssignStmt, s state) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		marks := c.eval(a.Rhs[0], s)
		for _, l := range a.Lhs {
			c.assignTo(l, marks, a.Tok == token.ASSIGN || a.Tok == token.DEFINE, s)
		}
		return
	}
	for i, l := range a.Lhs {
		if i < len(a.Rhs) {
			marks := c.eval(a.Rhs[i], s)
			if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
				marks |= c.eval(l, s) // compound ops accumulate
			}
			c.assignTo(l, marks, a.Tok == token.ASSIGN || a.Tok == token.DEFINE, s)
		}
	}
}

func (c *checker) assignTo(l ast.Expr, marks uint64, strong bool, s state) {
	roots := c.roots(l)
	if len(roots) != 1 {
		return
	}
	obj := roots[0]
	if _, isIdent := ast.Unparen(l).(*ast.Ident); !isIdent {
		// Writing through a field or element: weak update only (the
		// rest of the root keeps its marks).
		s[obj] |= marks
		return
	}
	if marks == 0 && strong {
		delete(s, obj)
	} else if strong {
		s[obj] = marks
	} else {
		s[obj] |= marks
	}
}

// eval computes the taint marks of an expression.
func (c *checker) eval(e ast.Expr, s state) uint64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := c.objOf(e); obj != nil {
			return s[obj]
		}
		return 0
	case *ast.ParenExpr:
		return c.eval(e.X, s)
	case *ast.SelectorExpr:
		return c.eval(e.X, s)
	case *ast.IndexExpr:
		return c.eval(e.X, s)
	case *ast.SliceExpr:
		return c.eval(e.X, s)
	case *ast.StarExpr:
		return c.eval(e.X, s)
	case *ast.UnaryExpr:
		return c.eval(e.X, s)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return 0 // booleans are not index material
		}
		return c.eval(e.X, s) | c.eval(e.Y, s)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= c.eval(kv.Value, s)
			} else {
				m |= c.eval(el, s)
			}
		}
		return m
	case *ast.TypeAssertExpr:
		return c.eval(e.X, s)
	case *ast.CallExpr:
		return c.evalCall(e, s)
	}
	return 0
}

func (c *checker) evalCall(call *ast.CallExpr, s state) uint64 {
	// Conversions: T(x) keeps x's marks.
	if fun := ast.Unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			return c.eval(call.Args[0], s)
		}
	}
	callee := ssaflow.StaticCallee(c.pass.TypesInfo, call)
	if callee != nil && c.isSanitizer(callee) {
		return 0
	}
	var m uint64
	for _, a := range call.Args {
		m |= c.eval(a, s)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		m |= c.eval(sel.X, s) // method receiver
	}
	if callee != nil && c.decoders[callee.Name()] {
		m |= srcBit
	}
	return m
}

// isSanitizer reports whether the callee is //tafloc:validates marked
// (locally or via fact). Calls to it return clean values.
func (c *checker) isSanitizer(fn *types.Func) bool {
	if c.sanitizers[fn] {
		return true
	}
	var f sanitizerFact
	return c.pass.ImportObjectFact(fn, &f)
}

// sinkCallee reports whether fn's package is inside the -sinkpkgs
// prefix list, i.e. whether its sensitivity summary counts as a sink.
func (c *checker) sinkCallee(fn *types.Func) bool {
	if len(c.sinkPfx) == 0 {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range c.sinkPfx {
		if pkg.Path() == p || strings.HasPrefix(pkg.Path(), p+"/") {
			return true
		}
	}
	return false
}

// sensitiveParams returns the callee's index-sensitive parameters
// (local fixpoint summary or imported fact); sanitizers have none.
func (c *checker) sensitiveParams(fn *types.Func) []int {
	if !c.sinkCallee(fn) || c.isSanitizer(fn) {
		return nil
	}
	if params, ok := c.sensitive[fn]; ok {
		return params
	}
	var f sensitiveFact
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Params
	}
	return nil
}

// roots returns the identifier objects anchoring an lvalue-ish
// expression: x, x.f, x[i], *x, &x all root at x.
func (c *checker) roots(e ast.Expr) []types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.objOf(e); obj != nil {
			return []types.Object{obj}
		}
	case *ast.SelectorExpr:
		return c.roots(e.X)
	case *ast.IndexExpr:
		return c.roots(e.X)
	case *ast.SliceExpr:
		return c.roots(e.X)
	case *ast.StarExpr:
		return c.roots(e.X)
	case *ast.UnaryExpr:
		return c.roots(e.X)
	case *ast.CallExpr:
		// len(y) != n sanitizes y.
		if len(e.Args) == 1 {
			return c.roots(e.Args[0])
		}
	}
	return nil
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}

// indexable limits index sinks to slices, arrays, and strings — map
// lookups with tainted keys are not a bounds hazard.
func indexable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Basic:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
