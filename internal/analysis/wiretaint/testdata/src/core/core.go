// Package core mimics the model layer: indexing sinks reached through
// calls, a self-validating callee, and a //tafloc:validates sanitizer.
package core

type Model struct {
	win []float64
}

// At indexes without validating: callers own the bounds check, so the
// first parameter is index-sensitive.
func (m *Model) At(i int) float64 {
	return m.win[i]
}

// Get is a free function with an index-sensitive second parameter.
func Get(xs []float64, i int) float64 {
	return xs[i]
}

// Checked validates before indexing: the comparison sanitizes i, so
// no parameter is index-sensitive.
func Checked(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

// Restore is the fail-closed decoder idiom: everything it is handed
// is clamped before any indexing.
//
//tafloc:validates clamps every index before use
func Restore(xs []float64, i int) float64 {
	return xs[clamp(i, len(xs))]
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
