// Package a mimics the serve layer: HTTP and JSON sources flowing
// toward core sinks, with and without sanitization.
package a

import (
	"encoding/json"
	"net/http"
	"strconv"

	"core"
)

type reportReq struct {
	Link int
	Vals []float64
}

func handlerDirect(w http.ResponseWriter, r *http.Request, m *core.Model) {
	q := r.URL.Query().Get("n")
	n, _ := strconv.Atoi(q)
	_ = m.At(n) // want `wire-tainted value reaches call to At \(parameter 0 is index-sensitive\)`
}

func handlerFree(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = core.Get(xs, n) // want `wire-tainted value reaches call to Get \(parameter 1 is index-sensitive\)`
}

func handlerChecked(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n < 0 || n >= len(xs) {
		return
	}
	_ = xs[n] // sanitized by the comparison above
}

func handlerJSON(w http.ResponseWriter, r *http.Request, xs []float64) {
	var req reportReq
	_ = json.NewDecoder(r.Body).Decode(&req)
	_ = xs[req.Link] // want `wire-tainted value reaches slice indexing`
}

func handlerSanitizer(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = core.Restore(xs, n) // //tafloc:validates callee: fine
}

func handlerCheckedCallee(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = core.Checked(xs, n) // callee validates internally: not sensitive
}

func handlerSlice(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = xs[:n] // want `wire-tainted value reaches slice bounds`
}

func suppressed(w http.ResponseWriter, r *http.Request, xs []float64) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	_ = xs[n&7] //tafloc:taint-ok masked to the ring size, which is a power of two
}

type frame struct {
	Link uint16
}

// DecodeFromBytes mimics the wire decoder idiom: it fills the
// receiver from raw bytes (name matched by -wiretaint.decoders).
func (f *frame) DecodeFromBytes(b []byte) error {
	if len(b) < 2 {
		return nil
	}
	f.Link = uint16(b[0])<<8 | uint16(b[1])
	return nil
}

func ingestWire(b []byte, xs []float64) {
	var f frame
	_ = f.DecodeFromBytes(b)
	_ = xs[int(f.Link)] // want `wire-tainted value reaches slice indexing`
}

func ingestWireChecked(b []byte, xs []float64) {
	var f frame
	_ = f.DecodeFromBytes(b)
	n := int(f.Link)
	if n >= len(xs) {
		return
	}
	_ = xs[n] // sanitized
}
