package lockorder

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestLockorder(t *testing.T) {
	vettest.Run(t, "testdata", Analyzer, "a", "b", "inv", "cyc")
}
