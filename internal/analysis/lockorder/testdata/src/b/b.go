// Package b exercises the cross-package rules: ranks and transitive
// acquisition summaries imported as facts from package a.
package b

import (
	"sync"

	"a"
)

type S struct {
	// Mu orders before every lock in package a.
	//tafloc:lock-order 5 service lock
	Mu sync.Mutex
	Z  *a.Z
}

func ok(s *S) {
	s.Mu.Lock()
	s.Z.Mu.Lock()
	s.Z.Mu.Unlock()
	s.Mu.Unlock()
}

func inverted(s *S) {
	s.Z.ResMu.Lock()
	defer s.Z.ResMu.Unlock()
	s.Mu.Lock() // want `acquires b\.S\.Mu \(rank 5\) while holding a\.Z\.ResMu \(rank 20\)`
	s.Mu.Unlock()
}

func viaImportedFact(s *S) {
	s.Z.TrackMu.Lock()
	defer s.Z.TrackMu.Unlock()
	a.LockRes(s.Z) // want `call to LockRes acquires a\.Z\.ResMu \(rank 20\) while holding a\.Z\.TrackMu \(rank 40\)`
}
