// Package inv pins the ISSUE 9 acceptance case: a fixture that
// inverts the Service.mu -> zone.resMu order documented in
// docs/INVARIANTS.md must be rejected.
package inv

import "sync"

type Service struct {
	// mu guards the zone registry.
	//tafloc:lock-order 10 service registry lock
	mu sync.RWMutex
	z  *zone
}

type zone struct {
	// resMu guards residency transitions.
	//tafloc:lock-order 20 zone residency lock
	resMu sync.Mutex
}

func okOrder(s *Service) {
	s.mu.RLock()
	s.z.resMu.Lock()
	s.z.resMu.Unlock()
	s.mu.RUnlock()
}

func invertedOrder(s *Service) {
	s.z.resMu.Lock()
	defer s.z.resMu.Unlock()
	s.mu.Lock() // want `acquires inv\.Service\.mu \(rank 10\) while holding inv\.zone\.resMu \(rank 20\)`
	s.mu.Unlock()
}
