// Package cyc exercises whole-program cycle detection over unranked
// mutexes: A->B in one function and B->A in another is a deadlockable
// cycle even though neither edge violates a declared rank.
package cyc

import "sync"

type P struct {
	A sync.Mutex
	B sync.Mutex
}

func ab(p *P) {
	p.A.Lock()
	p.B.Lock() // want `lock-order cycle among \{cyc\.P\.A, cyc\.P\.B\}`
	p.B.Unlock()
	p.A.Unlock()
}

func ba(p *P) {
	p.B.Lock()
	p.A.Lock()
	p.A.Unlock()
	p.B.Unlock()
}
