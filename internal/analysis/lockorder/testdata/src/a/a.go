// Package a exercises the intra-package lockorder rules: rank
// inversions, same-class nesting, release tracking, interprocedural
// summaries, goroutine isolation, suppression, and malformed ranks.
package a

import "sync"

type Z struct {
	// Mu is the coarse state lock.
	//tafloc:lock-order 10 coarse state lock
	Mu sync.Mutex
	// ResMu guards residency transitions.
	//tafloc:lock-order 20 residency lock
	ResMu sync.Mutex
	// TrackMu guards counters.
	//tafloc:lock-order 40 tracking lock
	TrackMu sync.Mutex
}

func ok(z *Z) {
	z.Mu.Lock()
	z.ResMu.Lock()
	z.TrackMu.Lock()
	z.TrackMu.Unlock()
	z.ResMu.Unlock()
	z.Mu.Unlock()
}

func inverted(z *Z) {
	z.ResMu.Lock()
	defer z.ResMu.Unlock()
	z.Mu.Lock() // want `acquires a\.Z\.Mu \(rank 10\) while holding a\.Z\.ResMu \(rank 20\)`
	z.Mu.Unlock()
}

func sequentialIsFine(z *Z) {
	z.ResMu.Lock()
	z.ResMu.Unlock()
	z.Mu.Lock() // released first, so no inversion
	z.Mu.Unlock()
}

func sameClass(z1, z2 *Z) {
	z1.Mu.Lock()
	defer z1.Mu.Unlock()
	z2.Mu.Lock() // want `acquires a\.Z\.Mu while a a\.Z\.Mu is already held`
	z2.Mu.Unlock()
}

func sameClassSuppressed(z1, z2 *Z) {
	z1.Mu.Lock()
	defer z1.Mu.Unlock()
	z2.Mu.Lock() //tafloc:lock-ok migration handoff: epoch fixes the instance order
	z2.Mu.Unlock()
}

// LockRes is called cross-package by fixture b to exercise fact
// import of transitive acquisitions.
func LockRes(z *Z) {
	z.ResMu.Lock()
	z.ResMu.Unlock()
}

func viaCall(z *Z) {
	z.TrackMu.Lock()
	defer z.TrackMu.Unlock()
	LockRes(z) // want `call to LockRes acquires a\.Z\.ResMu \(rank 20\) while holding a\.Z\.TrackMu \(rank 40\)`
}

func spawns(z *Z) {
	z.ResMu.Lock()
	defer z.ResMu.Unlock()
	go func() {
		z.Mu.Lock() // fresh goroutine: empty entry lockset, no inversion
		z.Mu.Unlock()
	}()
}

type Bad struct {
	//tafloc:lock-order soon
	M sync.Mutex // want `malformed //tafloc:lock-order on a\.Bad\.M: "soon" is not an integer rank`
}
