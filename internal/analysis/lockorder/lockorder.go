// Package lockorder builds the interprocedural lock-acquisition graph
// over every mutex the repo declares and enforces the canonical order
// documented in docs/INVARIANTS.md.
//
// Mutex fields (and package-level mutex vars) declare their rank with
// "//tafloc:lock-order <rank> <name>"; lower ranks are acquired first.
// The analyzer runs a flow-sensitive may-held lockset over each
// function's CFG (via ssaflow), propagates "locks this function
// acquires transitively" summaries across packages as object facts,
// and reports:
//
//   - acquiring a ranked lock of rank <= the highest ranked lock
//     already held (order inversion);
//   - acquiring a lock of a class already held (same-class nesting —
//     an undeclared instance order, and a self-deadlock for plain
//     sync.Mutex);
//   - calling a function whose transitive acquisitions violate either
//     rule against the caller's held set;
//   - cycles among lock classes in the whole-program acquisition
//     graph (catches unranked mutexes too).
//
// Known under-approximations, accepted and documented in
// docs/INVARIANTS.md: calls through interfaces and function values
// are not resolved (the executor's task closures are invisible, which
// is also correct — they run on a worker goroutine with an empty
// lockset); function literals are analyzed as separate roots with
// empty entry locksets, so a closure invoked synchronously does not
// contribute to its creator's summary; deferred and go-launched calls
// do not contribute call edges.
//
// A "//tafloc:lock-ok <why>" line marker suppresses one acquisition
// diagnostic.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"tafloc/internal/analysis/ssaflow"
	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "enforce the canonical mutex acquisition order declared with //tafloc:lock-order ranks",
	Requires: []*analysis.Analyzer{ssaflow.Analyzer},
	Run:      run,
	FactTypes: []analysis.Fact{
		(*acquiresFact)(nil),
		(*ranksFact)(nil),
		(*edgesFact)(nil),
	},
}

// acquiresFact records, on a *types.Func, the lock classes the
// function acquires transitively through static calls.
type acquiresFact struct{ Classes []string }

func (*acquiresFact) AFact() {}
func (f *acquiresFact) String() string {
	return "acquires(" + strings.Join(f.Classes, ",") + ")"
}

// ranksFact records the package's declared lock ranks.
type ranksFact struct{ Ranks map[string]int }

func (*ranksFact) AFact()           {}
func (f *ranksFact) String() string { return fmt.Sprintf("ranks(%d)", len(f.Ranks)) }

// edgesFact records the held->acquired edges observed in the package,
// for whole-program cycle detection downstream.
type edgesFact struct{ Edges []factEdge }

type factEdge struct {
	From, To string
	Pos      string // "file:line" of the acquisition, for messages
}

func (*edgesFact) AFact()           {}
func (f *edgesFact) String() string { return fmt.Sprintf("edges(%d)", len(f.Edges)) }

// lockset maps held lock-class keys to the position that acquired
// them (for diagnostics).
type lockset map[string]token.Pos

// event is one program point the walk emits: a direct acquisition or
// a static call, with the lockset held immediately before it.
type event struct {
	acquire string      // lock class acquired ("" for calls)
	callee  *types.Func // static callee (nil for acquisitions)
	held    lockset
	pos     token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	fns := pass.ResultOf[ssaflow.Analyzer].(*ssaflow.Funcs)

	ranks := collectRanks(pass)
	pass.ExportPackageFact(&ranksFact{Ranks: ranks})
	for _, imp := range allImports(pass.Pkg) {
		var rf ranksFact
		if pass.ImportPackageFact(imp, &rf) {
			for k, v := range rf.Ranks {
				if _, ok := ranks[k]; !ok {
					ranks[k] = v
				}
			}
		}
	}

	// Pass 1: per-function lockset dataflow; buffer events.
	events := make(map[*ssaflow.Fn][]event)
	for _, fn := range fns.All {
		if fn.CFG == nil {
			continue
		}
		events[fn] = analyzeFn(pass, fn)
	}

	// Pass 2: transitive acquisition summaries over the package call
	// graph, seeded with imported facts.
	trans := summaries(pass, fns, events)
	for _, fn := range fns.All {
		if fn.Obj == nil {
			continue
		}
		if classes := sortedKeys(trans[fn.Obj]); len(classes) > 0 {
			pass.ExportObjectFact(fn.Obj, &acquiresFact{Classes: classes})
		}
	}

	// Pass 3: turn events into edges; check each locally-observed edge.
	suppressed := suppressedLines(pass)
	var local []factEdge
	localPos := map[[2]string]token.Pos{}
	seen := map[[2]string]bool{}
	addEdge := func(from, to string, pos token.Pos) {
		k := [2]string{from, to}
		if !seen[k] {
			seen[k] = true
			local = append(local, factEdge{From: from, To: to, Pos: pass.Fset.Position(pos).String()})
			localPos[k] = pos
		}
	}
	for _, fn := range fns.All {
		for _, ev := range events[fn] {
			if ev.acquire != "" {
				// A violating acquisition is reported (or deliberately
				// lock-ok'd) right here; its inverted edge must not
				// also close a cycle in the graph.
				if !checkAcquire(pass, ranks, suppressed, ev.acquire, ev.held, ev.pos, "") {
					for _, from := range heldKeys(ev.held) {
						addEdge(from, ev.acquire, ev.pos)
					}
				}
				continue
			}
			if len(ev.held) == 0 || ev.callee == nil {
				continue
			}
			for _, to := range calleeAcquires(pass, trans, ev.callee) {
				if !checkAcquire(pass, ranks, suppressed, to, ev.held, ev.pos, ev.callee.Name()) {
					for _, from := range heldKeys(ev.held) {
						addEdge(from, to, ev.pos)
					}
				}
			}
		}
	}
	if len(local) > 0 {
		pass.ExportPackageFact(&edgesFact{Edges: local})
	}

	reportCycles(pass, local, localPos)
	return nil, nil
}

func heldKeys(s lockset) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// collectRanks scans struct fields and package-level vars for
// //tafloc:lock-order annotations.
func collectRanks(pass *analysis.Pass) map[string]int {
	ranks := make(map[string]int)
	record := func(doc, line *ast.CommentGroup, key string, at token.Pos) {
		cg := doc
		if !tags.Marked(cg, tags.LockOrder) {
			cg = line
		}
		if !tags.Marked(cg, tags.LockOrder) {
			return
		}
		arg := tags.MarkerArg(cg, tags.LockOrder)
		r, err := strconv.Atoi(arg)
		if err != nil {
			pass.Reportf(at, "malformed //tafloc:lock-order on %s: %q is not an integer rank", key, arg)
			return
		}
		ranks[key] = r
	}
	for _, file := range pass.Files {
		if tags.SkipFile(file) || tags.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							key := ssaflow.FieldKey(pass.Pkg.Path(), spec.Name.Name, name.Name)
							record(field.Doc, field.Comment, key, field.Pos())
						}
					}
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					doc := spec.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					for _, name := range spec.Names {
						key := pass.Pkg.Path() + "." + name.Name
						record(doc, spec.Comment, key, spec.Pos())
					}
				}
			}
		}
	}
	return ranks
}

// analyzeFn runs the may-held lockset fixpoint over one function and
// returns its acquisition and call events with before-states.
func analyzeFn(pass *analysis.Pass, fn *ssaflow.Fn) []event {
	df := ssaflow.Dataflow[lockset]{
		Clone: func(s lockset) lockset {
			c := make(lockset, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		MergeInto: func(dst, src lockset) bool {
			changed := false
			for k, v := range src {
				if _, ok := dst[k]; !ok {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s lockset) lockset {
			step(pass, n, s, nil)
			return s
		},
	}
	states, seen := df.Run(fn.CFG, lockset{})
	var events []event
	df.Walk(fn.CFG, states, seen, func(n ast.Node, before lockset) {
		held := df.Clone(before)
		step(pass, n, held, func(ev event) { events = append(events, ev) })
	})
	return events
}

// step interprets one CFG node against the lockset, emitting events if
// emit is non-nil. It must be deterministic and monotone: Lock adds,
// Unlock removes, deferred Unlock is ignored (the lock stays held to
// function exit for ordering purposes).
func step(pass *analysis.Pass, n ast.Node, held lockset, emit func(event)) {
	// Calls behind defer/go do not execute here: no call events, and a
	// deferred Unlock must not release the lock mid-function.
	skip := make(map[*ast.CallExpr]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			skip[m.Call] = true
		case *ast.GoStmt:
			skip[m.Call] = true
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // literal bodies are separate roots
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ssaflow.StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if kind := lockMethod(callee); kind != opNone {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			_, class, ok := ssaflow.ResolveClass(pass.TypesInfo, pass.Fset, sel.X)
			if !ok {
				return true
			}
			switch kind {
			case opAcquire:
				if !skip[call] {
					if emit != nil {
						emit(event{acquire: class, held: cloneSet(held), pos: call.Pos()})
					}
					if _, ok := held[class]; !ok {
						held[class] = call.Pos()
					}
				}
			case opRelease:
				if !skip[call] {
					delete(held, class)
				}
			}
			return true
		}
		if !skip[call] && emit != nil {
			emit(event{callee: callee, held: cloneSet(held), pos: call.Pos()})
		}
		return true
	})
}

func cloneSet(s lockset) lockset {
	c := make(lockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

func lockMethod(fn *types.Func) lockOp {
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).TryLock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).TryRLock":
		return opAcquire
	case "(*sync.Mutex).Unlock",
		"(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return opRelease
	}
	return opNone
}

// summaries computes, for every declared function, the set of lock
// classes it acquires transitively through static calls (a fixpoint
// over the package-local call graph, seeded with imported facts for
// out-of-package callees).
func summaries(pass *analysis.Pass, fns *ssaflow.Funcs, events map[*ssaflow.Fn][]event) map[*types.Func]map[string]bool {
	direct := make(map[*types.Func]map[string]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, fn := range fns.All {
		if fn.Obj == nil {
			continue
		}
		acq := make(map[string]bool)
		for _, ev := range events[fn] {
			if ev.acquire != "" {
				acq[ev.acquire] = true
			} else if ev.callee != nil {
				callees[fn.Obj] = append(callees[fn.Obj], ev.callee)
			}
		}
		direct[fn.Obj] = acq
	}
	for changed := true; changed; {
		changed = false
		for obj, acq := range direct {
			for _, c := range callees[obj] {
				var from []string
				if sub, ok := direct[c]; ok {
					from = sortedKeys(sub)
				} else {
					var f acquiresFact
					if pass.ImportObjectFact(c, &f) {
						from = f.Classes
					}
				}
				for _, k := range from {
					if !acq[k] {
						acq[k] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

func calleeAcquires(pass *analysis.Pass, trans map[*types.Func]map[string]bool, callee *types.Func) []string {
	if sub, ok := trans[callee]; ok {
		return sortedKeys(sub)
	}
	var f acquiresFact
	if pass.ImportObjectFact(callee, &f) {
		return f.Classes
	}
	return nil
}

// checkAcquire reports order violations for one acquisition (direct,
// or transitive through the named callee) against the held set. It
// returns true when the acquisition violates the order, whether
// reported or suppressed with //tafloc:lock-ok — either way the edge
// must not feed the cycle graph.
func checkAcquire(pass *analysis.Pass, ranks map[string]int, suppressed map[string]map[int]bool, class string, held lockset, pos token.Pos, via string) bool {
	if len(held) == 0 {
		return false
	}
	p := pass.Fset.Position(pos)
	ok2report := !suppressed[p.Filename][p.Line]
	viaMsg := ""
	if via != "" {
		viaMsg = fmt.Sprintf("call to %s ", via)
	}
	if _, already := held[class]; already {
		if ok2report {
			pass.Reportf(pos, "%sacquires %s while a %s is already held: same-class nesting has no declared instance order (see docs/INVARIANTS.md)",
				viaMsg, short(class), short(class))
		}
		return true
	}
	nr, ok := ranks[class]
	if !ok {
		return false
	}
	for _, h := range heldKeys(held) {
		hr, ok := ranks[h]
		if !ok {
			continue
		}
		if nr <= hr {
			if ok2report {
				pass.Reportf(pos, "%sacquires %s (rank %d) while holding %s (rank %d): the canonical order in docs/INVARIANTS.md requires %s before %s",
					viaMsg, short(class), nr, short(h), hr, short(class), short(h))
			}
			return true
		}
	}
	return false
}

// reportCycles finds strongly connected components in the
// whole-program acquisition graph (local edges plus every transitive
// import's exported edges) and reports each cycle that a local edge
// participates in — the package that closes a cycle reports it once.
func reportCycles(pass *analysis.Pass, local []factEdge, localPos map[[2]string]token.Pos) {
	type edge struct{ from, to string }
	adj := make(map[string][]string)
	add := func(e factEdge) {
		if e.From != e.To { // self-loops are reported as same-class nesting
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	for _, e := range local {
		add(e)
	}
	for _, imp := range allImports(pass.Pkg) {
		var ef edgesFact
		if pass.ImportPackageFact(imp, &ef) {
			for _, e := range ef.Edges {
				add(e)
			}
		}
	}
	sccs := tarjan(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		for _, e := range local {
			if in[e.From] && in[e.To] && e.From != e.To {
				names := make([]string, len(scc))
				for i, n := range scc {
					names[i] = short(n)
				}
				sort.Strings(names)
				pass.Reportf(localPos[[2]string{e.From, e.To}],
					"lock-order cycle among {%s}: this %s -> %s edge closes it (see docs/INVARIANTS.md)",
					strings.Join(names, ", "), short(e.From), short(e.To))
				break
			}
		}
	}
}

// tarjan returns the strongly connected components of the graph.
func tarjan(adj map[string][]string) [][]string {
	var (
		index   = make(map[string]int)
		low     = make(map[string]int)
		onStack = make(map[string]bool)
		stack   []string
		counter int
		sccs    [][]string
	)
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// short trims the module path prefix from a class key for messages:
// "tafloc/internal/serve.zone.resMu" -> "serve.zone.resMu".
func short(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

func suppressedLines(pass *analysis.Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		if lines := tags.SuppressedLines(pass.Fset, f, tags.LockOK); lines != nil {
			out[pass.Fset.Position(f.Pos()).Filename] = lines
		}
	}
	return out
}

func allImports(pkg *types.Package) []*types.Package {
	var out []*types.Package
	seen := map[*types.Package]bool{pkg: true}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				visit(imp)
			}
		}
	}
	visit(pkg)
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
