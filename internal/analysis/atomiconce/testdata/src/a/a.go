// Package a is the atomiconce fixture: RCU pointers that must be
// loaded once per function, an accessor method counted like a Load, and
// a field pinned to its atomic method set.
//
// Regression notes:
//   - doubleAccessor mirrors serve.evictZone's deliberate double
//     sys.Model(), which is annotated //tafloc:reload in production
//     (suppressedReload here proves the annotation works).
//   - closureLoad mirrors the retry closures in serve: a Load inside a
//     func literal is its own execution context and must not combine
//     with the enclosing function's single Load.
package a

import "sync/atomic"

type Model struct{ Gen int }

type Sys struct {
	p atomic.Pointer[Model]
	q atomic.Pointer[Model]

	//tafloc:atomic
	n int64
}

func (s *Sys) Model() *Model { return s.p.Load() }

func singleLoad(s *Sys) int {
	m := s.p.Load()
	return m.Gen + m.Gen
}

func doubleLoad(s *Sys) (int, int) {
	a := s.p.Load().Gen
	b := s.p.Load().Gen // want `second Load of s\.p in doubleLoad`
	return a, b
}

func distinctFields(s *Sys) (int, int) {
	return s.p.Load().Gen, s.q.Load().Gen // two different pointers: fine
}

func distinctReceivers(s1, s2 *Sys) (int, int) {
	return s1.p.Load().Gen, s2.p.Load().Gen // same field, different objects: fine
}

func suppressedReload(s *Sys) bool {
	m := s.p.Load()
	sideEffect()
	return m == s.p.Load() //tafloc:reload fixture: staleness re-check after the side effect
}

func doubleAccessor(s *Sys) (int, int) {
	a := s.Model().Gen
	b := s.Model().Gen // want `second call of Model on s in doubleAccessor`
	return a, b
}

func closureLoad(s *Sys) func() int {
	g := s.p.Load().Gen
	_ = g
	return func() int { return s.p.Load().Gen } // own context: fine
}

func methodUse(s *Sys) int64 {
	return atomic.AddInt64(&s.n, 1) // address into sync/atomic: fine
}

func directRead(s *Sys) int64 {
	return s.n // want `direct access to s\.n`
}

func directWrite(s *Sys) {
	s.n++ // want `direct access to s\.n`
}

func sideEffect() {}
