package atomiconce

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestAtomiconce(t *testing.T) {
	old := accessors
	accessors = "(*a.Sys).Model"
	t.Cleanup(func() { accessors = old })
	vettest.Run(t, "testdata", Analyzer, "a")
}
