// Package atomiconce flags torn-mix reads of RCU-published state: a
// function that calls .Load() more than once on the same atomic.Pointer
// field can observe two different generations of the pointed-to value
// and silently mix them — the bug class the core.Model hammer test only
// catches probabilistically, pinned here at vet time.
//
// Three rules:
//
//  1. At most one .Load() call site per atomic.Pointer field chain per
//     function. A deliberate re-check (staleness detection after a side
//     effect) is annotated //tafloc:reload with a justification.
//  2. The same rule for accessor methods that are documented to be one
//     atomic load (configurable; (*tafloc/internal/core.System).Model
//     by default): calling sys.Model() twice mixes generations exactly
//     like a double Load.
//  3. A struct field annotated //tafloc:atomic may only be used as the
//     receiver of a method call (Load/Store/...) or have its address
//     taken as an argument to a sync/atomic function — any direct read,
//     write, or copy is flagged.
package atomiconce

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:     "atomiconce",
	Doc:      "flags multiple Loads of the same atomic.Pointer per function, and direct access to fields marked //tafloc:atomic",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// accessors lists method full names (as types.Func.FullName renders
// them) that are one atomic pointer load in disguise.
var accessors = "(*tafloc/internal/core.System).Model"

func init() {
	Analyzer.Flags.StringVar(&accessors, "accessors", accessors,
		"comma-separated method full names counted like atomic.Pointer Loads")
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	accessorSet := make(map[string]bool)
	for _, a := range strings.Split(accessors, ",") {
		if a = strings.TrimSpace(a); a != "" {
			accessorSet[a] = true
		}
	}
	marked := markedFields(pass, ins)

	suppressed := make(map[*ast.File]map[int]bool)
	for _, f := range pass.Files {
		suppressed[f] = tags.SuppressedLines(pass.Fset, f, tags.Reload)
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || tags.TestFile(pass.Fset, fd.Pos()) {
			return
		}
		sup := suppressed[fileOf(fd.Pos())]
		checkLoads(pass, fd, accessorSet, sup)
	})

	if len(marked) > 0 {
		checkMarkedFieldUses(pass, ins, marked)
	}
	return nil, nil
}

// checkLoads enforces rules 1 and 2 inside one function.
func checkLoads(pass *analysis.Pass, fd *ast.FuncDecl, accessorSet map[string]bool, suppressed map[int]bool) {
	type site struct {
		pos  token.Pos
		what string // "Load of z.sys" / "call of (...).Model"
	}
	seen := make(map[string][]site)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure is its own execution context (often a retry or
			// goroutine body); its Loads do not mix with the enclosing
			// function's single read.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Load" && len(call.Args) == 0 && isAtomicPointer(pass.TypesInfo.TypeOf(sel.X)) {
			if key, ok := chainKey(pass.TypesInfo, sel.X); ok {
				seen[key] = append(seen[key], site{call.Pos(),
					fmt.Sprintf("Load of %s", types.ExprString(sel.X))})
			}
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && accessorSet[fn.FullName()] {
			if key, ok := chainKey(pass.TypesInfo, sel.X); ok {
				seen[key+"."+fn.FullName()] = append(seen[key+"."+fn.FullName()], site{call.Pos(),
					fmt.Sprintf("call of %s on %s", sel.Sel.Name, types.ExprString(sel.X))})
			}
		}
		return true
	})

	for _, sites := range seen {
		if len(sites) < 2 {
			continue
		}
		for _, s := range sites[1:] {
			if suppressed[pass.Fset.Position(s.pos).Line] {
				continue
			}
			pass.Reportf(s.pos,
				"second %s in %s: repeated loads of an RCU pointer can mix two generations; load once and reuse, or annotate //tafloc:reload with a justification (first load at %s)",
				s.what, fd.Name.Name, pass.Fset.Position(sites[0].pos))
		}
	}
}

// chainKey renders an ident/selector chain as a stable key rooted at a
// types.Object (so two mentions of z.sys key identically while zones
// from different range statements do not collide with struct-typed
// globals of the same spelling). Expressions that are not pure
// ident/selector chains are not keyable.
func chainKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%p", obj), true
	case *ast.SelectorExpr:
		base, ok := chainKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return chainKey(info, e.X)
	}
	return "", false
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] (or a
// pointer to one, the usual shape behind a selector).
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// markedFields collects the *types.Var objects of struct fields whose
// doc comment carries //tafloc:atomic.
func markedFields(pass *analysis.Pass, ins *inspector.Inspector) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			if !tags.Marked(field.Doc, tags.AtomicField) && !tags.Marked(field.Comment, tags.AtomicField) {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					marked[obj] = true
				}
			}
		}
	})
	return marked
}

// checkMarkedFieldUses enforces rule 3: every use of a marked field
// must be the receiver of a method call, or an address-of argument to a
// sync/atomic function.
func checkMarkedFieldUses(pass *analysis.Pass, ins *inspector.Inspector, marked map[types.Object]bool) {
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || !marked[obj] || tags.TestFile(pass.Fset, sel.Pos()) {
			return true
		}
		// Walk outward: x.f is fine as the X of x.f.Load(...), and as
		// &x.f when the address goes straight into a sync/atomic call.
		parent := stack[len(stack)-2]
		if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == sel {
			if len(stack) >= 3 {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == outer {
					return true // x.f.Method(...)
				}
			}
		}
		if addr, ok := parent.(*ast.UnaryExpr); ok && addr.Op == token.AND && len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && callsSyncAtomic(pass.TypesInfo, call) {
				return true // atomic.AddInt64(&x.f, ...)
			}
		}
		pass.Reportf(sel.Pos(),
			"direct access to %s, which is marked //tafloc:atomic: use its atomic method set (Load/Store/Add/Swap/CompareAndSwap)",
			types.ExprString(sel))
		return true
	})
}

func callsSyncAtomic(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
