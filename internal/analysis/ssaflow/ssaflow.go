// Package ssaflow is the flow-sensitive backbone of the taflocvet v2
// analyzers. The Go toolchain's vendored x/tools subset (the only
// source available to this hermetic build) does not ship go/ssa, so
// instead of SSA form the suite runs sparse dataflow directly over the
// per-function control-flow graphs that go/cfg (via the ctrlflow pass)
// builds: an analyzer instantiates Dataflow with its lattice (lockset,
// must-Added WaitGroups, taint marks), runs the worklist fixpoint to
// get block-entry states, and then replays each block's transfer
// function to visit every program point with its exact abstract state.
//
// The package also centralizes the two lookups every interprocedural
// analyzer needs: static callee resolution (StaticCallee) and stable
// cross-package "storage class" keys for the lvalues the suite reasons
// about — struct fields like Service.mu, package-level vars, and
// function locals (ResolveClass).
package ssaflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"tafloc/internal/analysis/tags"
)

// Fn is one function body in the package: a declared function or
// method (Decl/Obj set) or a function literal (Lit set). CFG is nil
// for bodyless declarations.
type Fn struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Obj  *types.Func // nil for literals
	CFG  *cfg.CFG
	File *ast.File
}

// Body returns the function body, nil for bodyless declarations.
func (f *Fn) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Pos returns the function's position.
func (f *Fn) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Name returns a human-readable name for diagnostics: the declared
// name, or "func literal" for literals.
func (f *Fn) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	return "func literal"
}

// Funcs is the Analyzer's result: every function body in the package
// with its CFG, in source order, skipping files the suite ignores
// (generated, build-excluded) and _test.go files.
type Funcs struct {
	All []*Fn
}

// Analyzer enumerates the package's function bodies and pairs each
// with its control-flow graph. It exists so the four flow-sensitive
// analyzers share one traversal instead of each re-walking the
// ctrlflow result.
var Analyzer = &analysis.Analyzer{
	Name:       "ssaflow",
	Doc:        "pair every function body with its go/cfg control-flow graph (internal helper pass)",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*Funcs)(nil)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	fns := &Funcs{}
	for _, file := range pass.Files {
		if tags.SkipFile(file) || tags.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn := &Fn{Decl: n, File: file}
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
					fn.Obj = obj
				}
				if n.Body != nil {
					fn.CFG = cfgs.FuncDecl(n)
				}
				fns.All = append(fns.All, fn)
			case *ast.FuncLit:
				fns.All = append(fns.All, &Fn{Lit: n, CFG: cfgs.FuncLit(n), File: file})
			}
			return true
		})
	}
	return fns, nil
}

// Dataflow is a forward iterative dataflow problem over a go/cfg CFG.
// S is the abstract state (typically a map); the callbacks define the
// lattice:
//
//   - Clone deep-copies a state (the engine never aliases states
//     across blocks).
//   - MergeInto joins src into dst in place (union for may-analyses,
//     intersection for must-analyses) and reports whether dst changed;
//     it must not mutate src.
//   - Transfer applies one CFG node (a statement or control-flow
//     condition expression) to the state; it may mutate and return s.
//
// Transfer functions must be monotone; the lattices the suite uses
// (finite sets of storage classes / objects) guarantee termination.
type Dataflow[S any] struct {
	Clone     func(S) S
	MergeInto func(dst, src S) bool
	Transfer  func(n ast.Node, s S) S
}

// Run computes the fixpoint from the given entry state and returns the
// state at the entry of each block (indexed by Block.Index) plus a
// reachability mask; unreachable blocks have a zero S and false mask.
func (d *Dataflow[S]) Run(g *cfg.CFG, entry S) ([]S, []bool) {
	n := len(g.Blocks)
	states := make([]S, n)
	seen := make([]bool, n)
	if n == 0 {
		return states, seen
	}
	states[0] = d.Clone(entry)
	seen[0] = true
	work := []*cfg.Block{g.Blocks[0]}
	inQueue := make([]bool, n)
	inQueue[0] = true
	// Hard cap: |blocks| * |lattice height| is bounded for our finite
	// set lattices, but a bug in a Transfer must not hang go vet.
	budget := 1000 * (n + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		inQueue[b.Index] = false
		out := d.Clone(states[b.Index])
		for _, node := range b.Nodes {
			out = d.Transfer(node, out)
		}
		for _, succ := range b.Succs {
			i := succ.Index
			if !seen[i] {
				states[i] = d.Clone(out)
				seen[i] = true
			} else if !d.MergeInto(states[i], out) {
				continue
			}
			if !inQueue[i] {
				inQueue[i] = true
				work = append(work, succ)
			}
		}
	}
	return states, seen
}

// Walk replays the converged analysis: for every reachable block in
// index order it re-applies Transfer node by node, calling visit with
// each node and the abstract state immediately before it. Analyzers
// emit diagnostics from visit (never from Transfer, which runs many
// times during the fixpoint).
func (d *Dataflow[S]) Walk(g *cfg.CFG, states []S, seen []bool, visit func(n ast.Node, before S)) {
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			continue
		}
		s := d.Clone(states[b.Index])
		for _, node := range b.Nodes {
			visit(node, s)
			s = d.Transfer(node, s)
		}
	}
}

// StaticCallee resolves a call expression to the declared function or
// method it statically invokes, or nil for calls through interfaces,
// function values, and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(info, call)
}

// ResolveClass maps an lvalue expression (s.mu, z.resMu, pkgVar,
// localVar) to the object that anchors its storage class and a stable
// key for that class. Field keys are owner-qualified
// ("tafloc/internal/serve.zone.resMu") so they agree between a method
// that touches its own receiver and a caller touching the same field
// through any instance; package-var keys are "pkgpath.name"; local
// keys include the declaration site so same-named locals in different
// functions stay distinct.
func ResolveClass(info *types.Info, fset *token.FileSet, e ast.Expr) (types.Object, string, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ResolveClass(info, fset, e.X)
		}
	case *ast.StarExpr:
		return ResolveClass(info, fset, e.X)
	case *ast.SelectorExpr:
		obj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			break
		}
		owner := namedOf(info.TypeOf(e.X))
		if owner == "" {
			break
		}
		return obj, owner + "." + obj.Name(), true
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok {
			break
		}
		if obj.IsField() {
			break // bare field ident (composite lit key); no owner context
		}
		pkgpath := "_"
		if obj.Pkg() != nil {
			pkgpath = obj.Pkg().Path()
		}
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj, pkgpath + "." + obj.Name(), true
		}
		p := fset.Position(obj.Pos())
		return obj, fmt.Sprintf("%s.%s@%s:%d", pkgpath, obj.Name(), filepath.Base(p.Filename), p.Line), true
	}
	return nil, "", false
}

// FieldKey builds the same owner-qualified key ResolveClass produces
// for a field access, from the declaration side: the struct type's
// package path and name plus the field name. Used when scanning type
// declarations for rank annotations.
func FieldKey(pkgpath, typeName, fieldName string) string {
	return pkgpath + "." + typeName + "." + fieldName
}

func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		pkgpath := "_"
		if n.Obj().Pkg() != nil {
			pkgpath = n.Obj().Pkg().Path()
		}
		return pkgpath + "." + n.Obj().Name()
	}
	return ""
}
