// Package atomicmix enforces a single access discipline per struct
// field: a field accessed through sync/atomic in one place (a typed
// atomic's method set, or &x.f passed to a sync/atomic function) and
// by a plain load or store anywhere else — any other package included
// — is a torn-read bug waiting for the race detector to miss it.
//
// This generalizes atomiconce from call sites to field sets:
// atomiconce checks that marked RCU pointers are loaded once per
// request path; atomicmix checks that every field in the program is
// either always-atomic or never-atomic. Two rules:
//
//   - a field of a sync/atomic type (atomic.Pointer[T], atomic.Bool,
//     atomic.Int64, ...) may only be used through its method set:
//     any other mention is an error, no second sighting needed;
//   - a plain-typed field gains the atomic discipline the first time
//     &x.f is passed to a sync/atomic function, anywhere; every plain
//     access (before or after, any package) is then an error.
//
// Cross-package sightings travel as package facts keyed by the
// owner-qualified field key ("pkg.Type.field"). A sighting pair is
// reported by the first package that can see both sides; a pair whose
// two sides live in sibling packages that never import each other is
// out of reach (documented limitation). The escape hatch is a
// //tafloc:mixed-access marker on the field declaration naming the
// external synchronization that makes the mixing safe.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"tafloc/internal/analysis/ssaflow"
	"tafloc/internal/analysis/tags"
)

var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "a struct field touched through sync/atomic in one place must never see a plain load/store elsewhere",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	Run:       run,
	FactTypes: []analysis.Fact{(*accessesFact)(nil)},
}

// accessesFact records the package's locally-observed field accesses:
// first atomic sighting, first plain sighting, and exempted keys.
type accessesFact struct {
	Atomic map[string]string // field key -> "file:line" of first atomic use
	Plain  map[string]string // field key -> "file:line" of first plain use
	Exempt []string          // keys marked //tafloc:mixed-access
}

func (*accessesFact) AFact() {}
func (f *accessesFact) String() string {
	return fmt.Sprintf("accesses(atomic=%d, plain=%d)", len(f.Atomic), len(f.Plain))
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	skipFile := make(map[*ast.File]bool)
	exempt := make(map[string]bool)
	for _, f := range pass.Files {
		if tags.SkipFile(f) || tags.TestFile(pass.Fset, f.Pos()) {
			skipFile[f] = true
		}
		collectExempt(pass, f, exempt)
	}

	// Sightings from every package this one can see, merged first so
	// exemptions declared by a field's owner apply here too.
	impAtomic := make(map[string]string)
	impPlain := make(map[string]string)
	for _, imp := range allImports(pass.Pkg) {
		var f accessesFact
		if !pass.ImportPackageFact(imp, &f) {
			continue
		}
		for k, v := range f.Atomic {
			if _, ok := impAtomic[k]; !ok {
				impAtomic[k] = v
			}
		}
		for k, v := range f.Plain {
			if _, ok := impPlain[k]; !ok {
				impPlain[k] = v
			}
		}
		for _, k := range f.Exempt {
			exempt[k] = true
		}
	}

	localAtomic := make(map[string]string)
	localPlain := make(map[string]string)
	type site struct {
		key string
		pos token.Pos
	}
	var plainSites, atomicSites []site

	nodeTypes := []ast.Node{(*ast.File)(nil), (*ast.SelectorExpr)(nil)}
	var curFile *ast.File
	ins.WithStack(nodeTypes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if f, ok := n.(*ast.File); ok {
			curFile = f
			return true
		}
		if !push || skipFile[curFile] {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return true
		}
		key := fieldKey(pass.TypesInfo, sel)
		if key == "" {
			return true
		}
		pos := pass.Fset.Position(sel.Pos()).String()
		switch {
		case isAtomicUse(pass.TypesInfo, sel, stack):
			if _, ok := localAtomic[key]; !ok {
				localAtomic[key] = pos
				atomicSites = append(atomicSites, site{key: key, pos: sel.Pos()})
			}
		case atomicType(obj.Type()) != "":
			// An atomic-typed field outside its method set is wrong on
			// the first sighting; no pairing needed.
			if !exempt[key] {
				pass.Reportf(sel.Pos(), "field %s has type %s and must only be used through its atomic method set (see docs/INVARIANTS.md)",
					short(key), atomicType(obj.Type()))
			}
		default:
			if _, ok := localPlain[key]; !ok {
				localPlain[key] = pos
			}
			plainSites = append(plainSites, site{key: key, pos: sel.Pos()})
		}
		return true
	})

	// Report each conflicting pair once, at a local site: the plain
	// site when we have one, else the local atomic site (its plain
	// counterpart lives in a dependency that could not see us).
	reported := make(map[string]bool)
	for _, s := range plainSites {
		if exempt[s.key] || reported[s.key] {
			continue
		}
		apos, ok := localAtomic[s.key]
		if !ok {
			apos, ok = impAtomic[s.key]
		}
		if ok {
			reported[s.key] = true
			pass.Reportf(s.pos, "field %s is accessed through sync/atomic at %s but with a plain load/store here: one discipline only, or mark the field //tafloc:mixed-access (see docs/INVARIANTS.md)",
				short(s.key), apos)
		}
	}
	for _, s := range atomicSites {
		if exempt[s.key] || reported[s.key] {
			continue
		}
		if ppos, ok := impPlain[s.key]; ok {
			reported[s.key] = true
			pass.Reportf(s.pos, "field %s is accessed with a plain load/store at %s but through sync/atomic here: one discipline only, or mark the field //tafloc:mixed-access (see docs/INVARIANTS.md)",
				short(s.key), ppos)
		}
	}

	if len(localAtomic)+len(localPlain)+len(exempt) > 0 {
		f := &accessesFact{Atomic: localAtomic, Plain: localPlain, Exempt: sortedKeys(exempt)}
		pass.ExportPackageFact(f)
	}
	return nil, nil
}

// fieldKey is the owner-qualified key for the selected field, "" if
// the owner type cannot be named.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	obj := info.Uses[sel.Sel].(*types.Var)
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil {
		return ""
	}
	pkgpath := "_"
	if n.Obj().Pkg() != nil {
		pkgpath = n.Obj().Pkg().Path()
	}
	return ssaflow.FieldKey(pkgpath, n.Obj().Name(), obj.Name())
}

// atomicType returns the sync/atomic type name ("atomic.Pointer",
// "atomic.Int64", ...) if the type is a typed atomic, else "".
func atomicType(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		if a, ok := t.(*types.Alias); ok {
			return atomicType(types.Unalias(a))
		}
		return ""
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return "atomic." + obj.Name()
}

// isAtomicUse reports whether the field selection is used through the
// atomic discipline: selecting a sync/atomic method on it, or taking
// its address as an argument to a sync/atomic function.
func isAtomicUse(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	// stack[len-1] == sel; parent is stack[len-2].
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		// x.f.Load — parent selects a method of a sync/atomic type.
		if parent.X != sel {
			return false
		}
		if m, ok := info.Uses[parent.Sel].(*types.Func); ok {
			return m.Pkg() != nil && m.Pkg().Path() == "sync/atomic"
		}
	case *ast.UnaryExpr:
		// atomic.AddInt64(&x.f, 1) — address passed to a sync/atomic
		// function (possibly through a conversion).
		if parent.Op != token.AND {
			return false
		}
		for i := len(stack) - 3; i >= 0; i-- {
			call, ok := stack[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn := typeutil.StaticCallee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return true
			}
			return false
		}
	}
	return false
}

func collectExempt(pass *analysis.Pass, file *ast.File, exempt map[string]bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if !tags.Marked(field.Doc, tags.MixedAccess) && !tags.Marked(field.Comment, tags.MixedAccess) {
					continue
				}
				for _, name := range field.Names {
					exempt[ssaflow.FieldKey(pass.Pkg.Path(), ts.Name.Name, name.Name)] = true
				}
			}
		}
	}
}

func short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func cloneMap(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func allImports(pkg *types.Package) []*types.Package {
	var out []*types.Package
	seen := map[*types.Package]bool{pkg: true}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				visit(imp)
			}
		}
	}
	visit(pkg)
	return out
}
