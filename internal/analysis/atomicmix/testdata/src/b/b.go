// Package b exercises the cross-package atomicmix rules: sightings
// and exemptions imported as package facts from a.
package b

import (
	"sync/atomic"

	"a"
)

func plainHereAtomicThere(s *a.S) int64 {
	return s.Count // want `field a\.S\.Count is accessed through sync/atomic at .* but with a plain load/store here`
}

func atomicHerePlainThere(s *a.S) {
	atomic.AddInt64(&s.PlainOnly, 1) // want `field a\.S\.PlainOnly is accessed with a plain load/store at .* but through sync/atomic here`
}

func exemptTravels(s *a.S) {
	s.Mixed = 2 // the //tafloc:mixed-access exemption is a fact from a
}
