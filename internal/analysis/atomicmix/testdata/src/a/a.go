// Package a exercises the intra-package atomicmix rules: typed
// atomics outside their method set, plain/atomic mixing on plain
// fields, and the //tafloc:mixed-access exemption.
package a

import "sync/atomic"

type S struct {
	// Good is always used through its method set.
	Good atomic.Int64
	// Bad is copied plainly below.
	Bad atomic.Int64
	// Count is touched with atomic.AddInt64 here and read plainly.
	Count int64
	// Mixed is deliberately mixed.
	//tafloc:mixed-access single-writer before publish; readers use Add
	Mixed int64
	// PlainOnly never sees atomics in this package; fixture b adds
	// the atomic side cross-package.
	PlainOnly int64
}

func ok(s *S) int64 {
	return s.Good.Load()
}

func badCopy(s *S) int64 {
	v := s.Bad // want `field a\.S\.Bad has type atomic\.Int64 and must only be used through its atomic method set`
	return v.Load()
}

func mixesCount(s *S) {
	atomic.AddInt64(&s.Count, 1)
}

func readsCountPlainly(s *S) int64 {
	return s.Count // want `field a\.S\.Count is accessed through sync/atomic at .* but with a plain load/store here`
}

func mixedExempt(s *S) {
	atomic.AddInt64(&s.Mixed, 1)
	s.Mixed = 0 // exempted by the field marker
}

func plainOnly(s *S) {
	s.PlainOnly = 1
}
