package atomicmix

import (
	"testing"

	"tafloc/internal/analysis/vettest"
)

func TestAtomicmix(t *testing.T) {
	vettest.Run(t, "testdata", Analyzer, "a", "b")
}
