// Package tags defines the //tafloc:... source annotations the
// taflocvet analyzer suite understands, and shared helpers for reading
// them. Annotations are machine-checked contracts: a function-level
// marker asserts a property of the whole function (and the matching
// analyzer enforces or exempts it), a line-level marker suppresses one
// diagnostic on the construct it precedes or trails and must carry a
// justification after the marker word.
//
// See docs/INVARIANTS.md for the catalogue of markers and when each is
// acceptable.
package tags

import (
	"go/ast"
	"go/build/constraint"
	"go/token"
	"runtime"
	"strings"
)

// Function-level markers (written in the function's doc comment).
const (
	// NoAlloc asserts the function body introduces no allocating
	// constructs; enforced by the noalloc analyzer and audited by
	// scripts/escapecheck.
	NoAlloc = "tafloc:noalloc"
	// PoolOwnership documents that the function intentionally
	// transfers or retains pooled objects instead of defer-returning
	// them; exempts the function from the poolpair pairing rule.
	PoolOwnership = "tafloc:pool-ownership"
	// LegacyHTTP marks a frozen /v1 handler whose literal status codes
	// predate the taxonomy and are pinned byte-identical by fixture
	// tests; exempts the function from the errcode HTTP rule.
	LegacyHTTP = "tafloc:legacy-http"
	// Validates marks a function as a sanitizer for wire-tainted
	// values: it bounds-checks (or otherwise fail-closed validates)
	// everything it is handed before any indexing can happen, so taint
	// does not propagate through its parameters or results. Enforced
	// users: the wiretaint analyzer.
	Validates = "tafloc:validates"
)

// Line-level markers (suppress one diagnostic on the same or next line;
// everything after the marker word is the required justification).
const (
	// Reload permits a deliberate second Load of an RCU pointer (for
	// example a staleness re-check after a side effect).
	Reload = "tafloc:reload"
	// AllocOK permits one allocating construct inside a noalloc
	// function (for example an amortized grow path).
	AllocOK = "tafloc:alloc-ok"
	// Uncoded permits one error origination without a taxonomy code
	// (for example an internal sentinel that never crosses the API).
	Uncoded = "tafloc:uncoded"
	// CtxDetach permits a deliberate context.Background()/TODO() while
	// a caller context is in scope (for example a shutdown context that
	// must outlive the request that triggered it).
	CtxDetach = "tafloc:ctx-detach"
	// Detached permits a go statement that is deliberately not tied to
	// any quiesce path (no tracked WaitGroup, no executor submit); the
	// justification must say who reaps the goroutine.
	Detached = "tafloc:detached"
	// LockOK permits one lock acquisition that the lockorder analyzer
	// would otherwise reject (for example a same-class handoff where an
	// external invariant orders the two instances).
	LockOK = "tafloc:lock-ok"
	// TaintOK permits one indexing of a wire-tainted value (for example
	// an index already clamped by construction in a way the analyzer
	// cannot see).
	TaintOK = "tafloc:taint-ok"
)

// Field-level marker (written in the struct field's doc comment).
const (
	// AtomicField marks a field that must only be accessed through its
	// atomic method set (Load/Store/Add/Swap/CompareAndSwap) or by
	// passing its address to sync/atomic functions; enforced by the
	// atomiconce analyzer.
	AtomicField = "tafloc:atomic"
	// LockOrder declares a mutex field's (or package-level mutex var's)
	// rank in the canonical lock order: "//tafloc:lock-order <rank>
	// <why>". Lower ranks are acquired first; the lockorder analyzer
	// rejects any acquisition of an equal or lower rank while a ranked
	// lock is held. The table of ranks lives in docs/INVARIANTS.md.
	LockOrder = "tafloc:lock-order"
	// MixedAccess exempts a field from the atomicmix single-discipline
	// rule (atomic in one place, plain elsewhere); the justification
	// must name the external synchronization that makes the plain
	// accesses safe.
	MixedAccess = "tafloc:mixed-access"
)

// Marked reports whether the comment group contains the marker: a
// comment line whose text (after "//") starts with the marker word,
// optionally followed by whitespace and a justification.
func Marked(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if hasMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

// FuncMarked reports whether the function's doc comment carries the
// marker.
func FuncMarked(fd *ast.FuncDecl, marker string) bool {
	return Marked(fd.Doc, marker)
}

func hasMarker(comment, marker string) bool {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, marker) {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}

// SuppressedLines returns the set of lines a line-level marker covers
// in the file: the marker's own line (trailing comment form) and the
// line after it (own-line comment form).
func SuppressedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	if Generated(f) {
		return nil // generated files carry no hand-written justifications
	}
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !hasMarker(c.Text, marker) {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// MarkerArg returns the first whitespace-delimited word after the
// marker in the comment group ("" if the marker is absent or bare).
// Used by markers that carry a machine-read argument, such as the rank
// in "//tafloc:lock-order 20 zone residency lock".
func MarkerArg(doc *ast.CommentGroup, marker string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if !hasMarker(c.Text, marker) {
			continue
		}
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		text = strings.TrimSpace(text)
		rest := strings.TrimLeft(strings.TrimPrefix(text, marker), " \t:")
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		return strings.TrimSuffix(rest, "*/")
	}
	return ""
}

// Generated reports whether the file carries the standard
// "// Code generated ... DO NOT EDIT." header. Generated files carry
// no hand-written justifications, so the suite neither honors markers
// in them nor reports diagnostics against them.
func Generated(f *ast.File) bool {
	return ast.IsGenerated(f)
}

// BuildExcluded reports whether the file's //go:build (or legacy
// // +build) constraints exclude it from a build for the current
// GOOS/GOARCH. Directory-walking tools (scripts/escapecheck) parse
// files the compiler would skip; their markers and spans must not
// leak into the current build's results.
func BuildExcluded(f *ast.File) bool {
	tags := map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(func(tag string) bool { return tags[tag] }) {
				return true
			}
		}
	}
	return false
}

// SkipFile reports whether the suite should ignore the file entirely:
// generated or excluded from the current build by constraints.
func SkipFile(f *ast.File) bool {
	return Generated(f) || BuildExcluded(f)
}

// TestFile reports whether the position lies in a _test.go file; the
// suite's analyzers check production code only (test code deliberately
// violates the contracts it pins — alloc counters, torn-read hammers).
func TestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
