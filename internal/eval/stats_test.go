package eval

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(_ int64) bool {
		n := rng.Intn(50) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(vals)
		// X sorted, Y monotone nondecreasing in (0,1].
		if !sort.Float64sAreSorted(c.X) {
			return false
		}
		for i := range c.Y {
			if c.Y[i] <= 0 || c.Y[i] > 1 {
				return false
			}
			if i > 0 && c.Y[i] < c.Y[i-1] {
				return false
			}
		}
		// At() is monotone over a sweep.
		prev := -1.0
		for _, x := range Linspace(-40, 40, 17) {
			v := c.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.At(math.Inf(1)) == 1 && c.At(math.Inf(-1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAtExactValues(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(2); got != 0.75 {
		t.Fatalf("At(2) = %g, want 0.75", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g, want 0", got)
	}
	if got := c.At(3); got != 1 {
		t.Fatalf("At(3) = %g, want 1", got)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := NewCDF(vals)
	if med := c.Quantile(0.5); math.Abs(med-5.5) > 1e-12 {
		t.Fatalf("median = %g", med)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 || xs[5] != 5 {
		t.Fatalf("Linspace = %v", xs)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:  "test figure",
		XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.1, 0.9}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{0.3, 0.7}},
		},
		Notes: []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"test figure", "hello", "a", "b", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	f := &Figure{Title: "empty"}
	if out := f.Render(); !strings.Contains(out, "empty") {
		t.Fatal("empty figure render broken")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "tbl",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1"}, {"beta", "2"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Render()
	for _, want := range []string{"tbl", "a note", "alpha", "beta", "value"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
