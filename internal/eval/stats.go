// Package eval provides the evaluation harnesses that regenerate every
// figure and table of the paper: error metrics and CDFs, the per-figure
// experiment drivers, and plain-text rendering of the resulting series.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the order statistics of an error sample.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes summary statistics of vals (not modified).
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count:  len(s),
		Mean:   sum / float64(len(s)),
		Median: Percentile(s, 0.5),
		P90:    Percentile(s, 0.9),
		Max:    s[len(s)-1],
	}
}

// Percentile returns the p-quantile (0..1) of sorted vals by linear
// interpolation. vals must be sorted ascending and non-empty.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution: P(value <= X[i]) = Y[i].
type CDF struct {
	X []float64
	Y []float64
}

// NewCDF builds the empirical CDF of vals (not modified).
func NewCDF(vals []float64) CDF {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	y := make([]float64, len(s))
	for i := range s {
		y[i] = float64(i+1) / float64(len(s))
	}
	return CDF{X: s, Y: y}
}

// At returns the CDF evaluated at x.
func (c CDF) At(x float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.X, x)
	// SearchFloat64s returns the first index with X[i] >= x; count values
	// <= x instead.
	for idx < len(c.X) && c.X[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.X))
}

// Quantile returns the value at cumulative probability p.
func (c CDF) Quantile(p float64) float64 { return Percentile(c.X, p) }

// SampleAt evaluates the CDF at the given grid of x values — the series a
// plot would draw.
func (c CDF) SampleAt(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.At(x)
	}
	return out
}

// Linspace returns n evenly spaced values across [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproducible figure: a set of series plus axis labels.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// Render writes the figure as aligned plain-text columns: X followed by
// one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	rows := len(f.Series[0].X)
	for r := 0; r < rows; r++ {
		fmt.Fprintf(&b, "%-12.3f", f.Series[0].X[r])
		for _, s := range f.Series {
			if r < len(s.Y) {
				fmt.Fprintf(&b, " %16.4f", s.Y[r])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a simple named-rows table (used for the in-text results).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
