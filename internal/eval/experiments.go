package eval

import (
	"fmt"
	"math"

	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rass"
	"tafloc/internal/rng"
	"tafloc/internal/rti"
	"tafloc/internal/testbed"
)

// ExperimentConfig parameterizes the figure harnesses.
type ExperimentConfig struct {
	// Testbed is the deployment; defaults to the paper deployment.
	Testbed testbed.Config
	// Seed drives test-target placement and any harness-level draws.
	Seed uint64
	// LiveWindow is how many live samples a localization averages.
	LiveWindow int
	// TestTargets is the number of evaluation positions for Fig 5.
	TestTargets int
	// Matcher selects the TafLoc localization matcher by registry name;
	// empty keeps the mask-aware "wknn" default.
	Matcher string
}

// DefaultExperimentConfig returns the configuration used by the
// benchmark harness.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Testbed:     testbed.PaperConfig(),
		Seed:        7,
		LiveWindow:  10,
		TestTargets: 60,
	}
}

// buildSystem surveys the deployment at day 0 and constructs the TafLoc
// system plus its layout, selecting the matcher by registry name.
func buildSystem(dep *testbed.Deployment, matcher string) (*core.System, *core.Layout, error) {
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, dep.Config.RF.MaskExcessM())
	if err != nil {
		return nil, nil, err
	}
	survey, _ := dep.Survey(0)
	vacant := dep.VacantCapture(0, 100)
	opts := core.DefaultSystemOptions()
	opts.MatcherName = matcher
	sys, err := core.NewSystem(layout, survey, vacant, opts)
	if err != nil {
		return nil, nil, err
	}
	return sys, layout, nil
}

// reconstructionErrors runs a TafLoc update at the given age and returns
// the absolute reconstruction errors (dB) over the largely-distorted
// entries — the set Fig 3's CDF is computed over (the undistorted
// entries are measured, not reconstructed).
func reconstructionErrors(dep *testbed.Deployment, sys *core.System, layout *core.Layout, days float64) ([]float64, error) {
	refs := sys.References()
	refCols, _ := dep.SurveyCells(refs, days)
	vacant := dep.VacantCapture(days, 100)
	rec, err := sys.Update(refCols, vacant)
	if err != nil {
		return nil, err
	}
	truth := dep.Channel.TrueFingerprint(days)
	isRef := make(map[int]bool, len(refs))
	for _, j := range refs {
		isRef[j] = true
	}
	mask := sys.Mask()
	var errs []float64
	for i := 0; i < layout.M(); i++ {
		for j := 0; j < layout.N(); j++ {
			if mask.At(i, j) == 1 || isRef[j] {
				continue // measured, not reconstructed
			}
			errs = append(errs, math.Abs(rec.X.At(i, j)-truth.At(i, j)))
		}
	}
	return errs, nil
}

// Fig3 reproduces "Fingerprint reconstruction errors after different
// time periods": CDFs of the reconstruction error at 3 d, 15 d, 45 d and
// 3 months. The paper reports mean errors of 2.7, 3.3, 3.6 and 4.1 dBm.
func Fig3(cfg ExperimentConfig) (*Figure, error) {
	dep, err := testbed.New(cfg.Testbed)
	if err != nil {
		return nil, err
	}
	sys, layout, err := buildSystem(dep, cfg.Matcher)
	if err != nil {
		return nil, err
	}
	epochs := []struct {
		name string
		days float64
	}{
		{"3 days", 3}, {"15 days", 15}, {"45 days", 45}, {"3 months", 90},
	}
	xs := Linspace(0, 15, 61)
	fig := &Figure{
		Title:  "Fig 3: Fingerprint reconstruction error CDF",
		XLabel: "err_dBm",
		YLabel: "CDF",
	}
	for _, e := range epochs {
		errs, err := reconstructionErrors(dep, sys, layout, e.days)
		if err != nil {
			return nil, fmt.Errorf("eval: fig3 epoch %s: %w", e.name, err)
		}
		cdf := NewCDF(errs)
		fig.Series = append(fig.Series, Series{Name: e.name, X: xs, Y: cdf.SampleAt(xs)})
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: mean %.2f dBm (paper: %s)", e.name, Summarize(errs).Mean, paperFig3Mean(e.days)))
	}
	return fig, nil
}

func paperFig3Mean(days float64) string {
	switch days {
	case 3:
		return "2.7 dBm"
	case 15:
		return "3.3 dBm"
	case 45:
		return "3.6 dBm"
	case 90:
		return "4.1 dBm"
	}
	return "n/a"
}

// Fig4 reproduces "Fingerprint update time costs with different sizes of
// area": full-survey hours vs TafLoc reference-survey hours for square
// areas with edges 6..36 m. The paper reports 2.78 h vs 0.28 h at 6 m and
// ~100 h vs ~1.6 h at 36 m.
func Fig4() (*Figure, error) {
	edges := []float64{6, 12, 18, 24, 30, 36}
	fig := &Figure{
		Title:  "Fig 4: Fingerprint update time cost vs area size",
		XLabel: "edge_m",
		YLabel: "hours",
	}
	var full, taf []float64
	for _, edge := range edges {
		cfg := testbed.SquareConfig(edge)
		dep, err := testbed.New(cfg)
		if err != nil {
			return nil, err
		}
		layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, cfg.RF.MaskExcessM())
		if err != nil {
			return nil, err
		}
		nRef := core.ReferenceCountForLayout(layout, 10)
		full = append(full, dep.FullSurveyCost().Hours())
		taf = append(taf, dep.ReferenceSurveyCost(nRef).Hours())
	}
	fig.Series = append(fig.Series,
		Series{Name: "TafLoc", X: edges, Y: taf},
		Series{Name: "Existing systems", X: edges, Y: full},
	)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("6 m: existing %.2f h vs TafLoc %.2f h (paper: 2.78 vs 0.28)", full[0], taf[0]),
		fmt.Sprintf("36 m: existing %.1f h vs TafLoc %.2f h (paper: ~100 vs ~1.6)", full[len(full)-1], taf[len(taf)-1]),
	)
	return fig, nil
}

// Fig5Systems names the four systems compared in Fig 5.
var Fig5Systems = []string{"TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec."}

// Fig5 reproduces "Localization performance comparing with
// state-of-the-art systems at 3 months later": error CDFs for TafLoc,
// RTI, RASS with the reconstruction scheme, and RASS without it.
func Fig5(cfg ExperimentConfig) (*Figure, error) {
	const days = 90
	dep, err := testbed.New(cfg.Testbed)
	if err != nil {
		return nil, err
	}
	sys, layout, err := buildSystem(dep, cfg.Matcher)
	if err != nil {
		return nil, err
	}
	day0X := sys.Fingerprints()
	day0Vac := sys.Vacant()

	// TafLoc update at 3 months.
	refs := sys.References()
	refCols, _ := dep.SurveyCells(refs, days)
	vacant := dep.VacantCapture(days, 100)
	rec, err := sys.Update(refCols, vacant)
	if err != nil {
		return nil, err
	}

	// RTI needs only geometry and a fresh vacant capture.
	imager, err := rti.NewImager(dep.Channel.Links(), dep.Grid, rti.DefaultOptions())
	if err != nil {
		return nil, err
	}

	// RASS without reconstruction: stale day-0 database.
	rassStale, err := rass.NewTracker(day0X, day0Vac, dep.Grid, rass.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// RASS with reconstruction: database refreshed by LoLi-IR.
	rassFresh, err := rass.NewTracker(rec.X, vacant, dep.Grid, rass.DefaultOptions())
	if err != nil {
		return nil, err
	}

	// Evaluation targets: uniform random positions inside the grid,
	// shared across systems so the comparison is paired.
	r := rng.New(cfg.Seed)
	n := cfg.TestTargets
	if n <= 0 {
		n = 60
	}
	win := cfg.LiveWindow
	if win <= 0 {
		win = 10
	}
	errTaf := make([]float64, 0, n)
	errRTI := make([]float64, 0, n)
	errRassW := make([]float64, 0, n)
	errRassWo := make([]float64, 0, n)
	for k := 0; k < n; k++ {
		p := geom.Point{
			X: r.Uniform(0.3, dep.Grid.Width-0.3),
			Y: r.Uniform(0.3, dep.Grid.Height-0.3),
		}
		y := averagedLive(dep, p, days, win)

		loc, err := sys.Locate(y)
		if err != nil {
			return nil, err
		}
		errTaf = append(errTaf, p.Dist(loc.Point))

		pt, err := imager.Locate(vacant, y)
		if err != nil {
			return nil, err
		}
		errRTI = append(errRTI, p.Dist(pt))

		pt, err = rassFresh.Locate(y, vacant)
		if err != nil {
			return nil, err
		}
		errRassW = append(errRassW, p.Dist(pt))

		pt, err = rassStale.Locate(y, day0Vac)
		if err != nil {
			return nil, err
		}
		errRassWo = append(errRassWo, p.Dist(pt))
	}

	xs := Linspace(0, 6, 61)
	fig := &Figure{
		Title:  "Fig 5: Localization error CDF at 3 months",
		XLabel: "err_m",
		YLabel: "CDF",
	}
	for _, s := range []struct {
		name string
		errs []float64
	}{
		{"TafLoc", errTaf},
		{"RTI", errRTI},
		{"RASS w/ rec.", errRassW},
		{"RASS w/o rec.", errRassWo},
	} {
		cdf := NewCDF(s.errs)
		fig.Series = append(fig.Series, Series{Name: s.name, X: xs, Y: cdf.SampleAt(xs)})
		sum := Summarize(s.errs)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: median %.2f m, mean %.2f m, p90 %.2f m", s.name, sum.Median, sum.Mean, sum.P90))
	}
	_ = layout
	return fig, nil
}

// averagedLive averages win live samples at point p.
func averagedLive(dep *testbed.Deployment, p geom.Point, days float64, win int) []float64 {
	y := make([]float64, dep.Channel.M())
	for s := 0; s < win; s++ {
		one := dep.Channel.MeasureLive(p, days)
		for i := range y {
			y[i] += one[i]
		}
	}
	for i := range y {
		y[i] /= float64(win)
	}
	return y
}

// DriftTable reproduces the in-text measurement "the RSS values change
// 2.5 dBm and 6 dBm respectively after 5 and 45 days": mean absolute
// vacant-RSS drift of the simulated channel across many seeds.
func DriftTable(cfg ExperimentConfig) (*Table, error) {
	tbl := &Table{
		Title:   "In-text: RSS drift over time",
		Columns: []string{"days", "mean |drift| dBm", "paper"},
	}
	days := []float64{3, 5, 15, 45, 90}
	paper := map[float64]string{5: "2.5", 45: "6.0"}
	for _, d := range days {
		var sum float64
		var count int
		for seed := uint64(0); seed < 40; seed++ {
			c := cfg.Testbed
			c.RF.Seed = seed
			dep, err := testbed.New(c)
			if err != nil {
				return nil, err
			}
			v0 := dep.Channel.TrueVacant(0)
			vt := dep.Channel.TrueVacant(d)
			for i := range v0 {
				sum += math.Abs(vt[i] - v0[i])
				count++
			}
		}
		ref := paper[d]
		if ref == "" {
			ref = "-"
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", d),
			fmt.Sprintf("%.2f", sum/float64(count)),
			ref,
		})
	}
	return tbl, nil
}

// CostTable reproduces the in-text 6 m x 6 m cost arithmetic: 2.78 h for
// a full survey vs 0.28 h for TafLoc's 10 reference locations.
func CostTable() (*Table, error) {
	cfg := testbed.SquareConfig(6)
	dep, err := testbed.New(cfg)
	if err != nil {
		return nil, err
	}
	full := dep.FullSurveyCost()
	ref := dep.ReferenceSurveyCost(10)
	return &Table{
		Title:   "In-text: update cost at 6 m x 6 m",
		Columns: []string{"system", "cells", "hours", "paper"},
		Rows: [][]string{
			{"existing (full survey)", fmt.Sprint(full.CellsVisited), fmt.Sprintf("%.2f", full.Hours()), "2.78"},
			{"TafLoc (10 references)", fmt.Sprint(ref.CellsVisited), fmt.Sprintf("%.2f", ref.Hours()), "0.28"},
		},
	}, nil
}

// Fig1 characterizes the fingerprint matrix of Fig 1: singular-value
// spectrum (approximate low rank) and the distorted/undistorted split.
func Fig1(cfg ExperimentConfig) (*Figure, error) {
	dep, err := testbed.New(cfg.Testbed)
	if err != nil {
		return nil, err
	}
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, cfg.Testbed.RF.MaskExcessM())
	if err != nil {
		return nil, err
	}
	truth := dep.Channel.TrueFingerprint(0)
	// Spectrum of the attenuation structure (baseline removed, as the
	// reconstruction operates).
	vac := dep.Channel.TrueVacant(0)
	atten := mat.New(layout.M(), layout.N())
	for i := 0; i < layout.M(); i++ {
		for j := 0; j < layout.N(); j++ {
			atten.Set(i, j, vac[i]-truth.At(i, j))
		}
	}
	svd := mat.SVDecompose(atten)
	idx := make([]float64, len(svd.S))
	for i := range idx {
		idx[i] = float64(i + 1)
	}
	fig := &Figure{
		Title:  "Fig 1: fingerprint matrix structure",
		XLabel: "sv_index",
		YLabel: "sigma",
		Series: []Series{{Name: "singular values", X: idx, Y: svd.S}},
	}
	total := layout.M() * layout.N()
	distorted := layout.DistortedCount()
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("matrix %dx%d, %d distorted entries (%.1f%%), energy rank(0.995)=%d",
			layout.M(), layout.N(), distorted,
			100*float64(distorted)/float64(total), svd.EnergyRank(0.995)),
	)
	return fig, nil
}

// AblationResult is one row of the design-choice ablation.
type AblationResult struct {
	Name    string
	MeanErr float64
}

// Ablation measures the 45-day reconstruction error with individual
// LoLi-IR terms disabled and with swept reference counts, quantifying the
// design choices DESIGN.md calls out.
func Ablation(cfg ExperimentConfig) (*Table, error) {
	const days = 45
	dep, err := testbed.New(cfg.Testbed)
	if err != nil {
		return nil, err
	}
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, cfg.Testbed.RF.MaskExcessM())
	if err != nil {
		return nil, err
	}
	survey, _ := dep.Survey(0)
	vacant0 := dep.VacantCapture(0, 100)
	mask, err := core.MaskFromSurvey(survey, vacant0, 1.5)
	if err != nil {
		return nil, err
	}

	run := func(opts core.LoLiOptions, refOpts core.ReferenceOptions) (float64, error) {
		refs, err := core.SelectReferences(survey, refOpts)
		if err != nil {
			return 0, err
		}
		rc, err := core.NewReconstructorWithMask(layout, mask, opts)
		if err != nil {
			return 0, err
		}
		refCols, _ := dep.SurveyCells(refs, days)
		rec, err := rc.Reconstruct(core.UpdateInput{
			RefIdx:  refs,
			RefCols: refCols,
			Vacant:  dep.VacantCapture(days, 100),
		})
		if err != nil {
			return 0, err
		}
		truth := dep.Channel.TrueFingerprint(days)
		isRef := make(map[int]bool)
		for _, j := range refs {
			isRef[j] = true
		}
		var sum float64
		var count int
		for i := 0; i < layout.M(); i++ {
			for j := 0; j < layout.N(); j++ {
				if mask.At(i, j) == 0 && !isRef[j] {
					sum += math.Abs(rec.X.At(i, j) - truth.At(i, j))
					count++
				}
			}
		}
		return sum / float64(count), nil
	}

	tbl := &Table{
		Title:   "Ablation: 45-day reconstruction error by design choice",
		Columns: []string{"variant", "mean err dBm"},
	}
	add := func(name string, opts core.LoLiOptions, refOpts core.ReferenceOptions) error {
		v, err := run(opts, refOpts)
		if err != nil {
			return fmt.Errorf("eval: ablation %s: %w", name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{name, fmt.Sprintf("%.2f", v)})
		return nil
	}
	defRef := core.DefaultReferenceOptions()
	full := core.DefaultLoLiOptions()
	if err := add("full LoLi-IR", full, defRef); err != nil {
		return nil, err
	}
	noZ := full
	noZ.Alpha = 0
	if err := add("no linear-representation term (alpha=0)", noZ, defRef); err != nil {
		return nil, err
	}
	noG := full
	noG.Beta = 0
	if err := add("no continuity term (beta=0)", noG, defRef); err != nil {
		return nil, err
	}
	noH := full
	noH.Gamma = 0
	if err := add("no similarity term (gamma=0)", noH, defRef); err != nil {
		return nil, err
	}
	noSmooth := full
	noSmooth.Beta, noSmooth.Gamma = 0, 0
	if err := add("no smoothness terms", noSmooth, defRef); err != nil {
		return nil, err
	}
	for _, n := range []int{4, 8, 16, 24} {
		if err := add(fmt.Sprintf("references n=%d", n), full, core.ReferenceOptions{Count: n}); err != nil {
			return nil, err
		}
	}
	for _, r := range []int{2, 4, 8} {
		opts := full
		opts.Rank = r
		if err := add(fmt.Sprintf("rank r=%d", r), opts, defRef); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
