package eval

import (
	"strconv"
	"strings"
	"testing"

	"tafloc/internal/testbed"
)

// fastConfig shrinks the harness for unit-test speed while keeping the
// paper geometry.
func fastConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.TestTargets = 20
	cfg.LiveWindow = 6
	return cfg
}

func noteValue(t *testing.T, notes []string, prefix, unit string) float64 {
	t.Helper()
	for _, n := range notes {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		rest := n[len(prefix):]
		if i := strings.Index(rest, unit); i >= 0 {
			fields := strings.Fields(rest[:i])
			if len(fields) == 0 {
				break
			}
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", n, err)
			}
			return v
		}
	}
	t.Fatalf("note with prefix %q not found in %v", prefix, notes)
	return 0
}

func TestFig3ReproducesPaperShape(t *testing.T) {
	fig, err := Fig3(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig3 has %d series, want 4", len(fig.Series))
	}
	// Means must grow with age and stay within the paper's band +- 1 dB.
	want := []struct {
		prefix string
		paper  float64
	}{
		{"3 days:", 2.7}, {"15 days:", 3.3}, {"45 days:", 3.6}, {"3 months:", 4.1},
	}
	var prev float64
	for _, w := range want {
		got := noteValue(t, fig.Notes, w.prefix, " dBm")
		if got < prev {
			t.Fatalf("reconstruction error shrank over time at %q: %.2f < %.2f", w.prefix, got, prev)
		}
		if got < w.paper-1.0 || got > w.paper+1.0 {
			t.Fatalf("%s mean %.2f dBm outside paper band %.1f +- 1.0", w.prefix, got, w.paper)
		}
		prev = got
	}
	// Every CDF series must be monotone and end near 1.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("series %s CDF not monotone", s.Name)
			}
		}
		if s.Y[len(s.Y)-1] < 0.95 {
			t.Fatalf("series %s CDF does not approach 1 within 15 dBm", s.Name)
		}
	}
}

func TestFig4ReproducesPaperNumbers(t *testing.T) {
	fig, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig4 has %d series", len(fig.Series))
	}
	var taf, full Series
	for _, s := range fig.Series {
		switch s.Name {
		case "TafLoc":
			taf = s
		case "Existing systems":
			full = s
		}
	}
	// Anchor points from the paper.
	if full.Y[0] < 2.7 || full.Y[0] > 2.9 {
		t.Fatalf("existing @6m = %.2f h, paper 2.78", full.Y[0])
	}
	if taf.Y[0] < 0.2 || taf.Y[0] > 0.4 {
		t.Fatalf("TafLoc @6m = %.2f h, paper 0.28", taf.Y[0])
	}
	last := len(full.Y) - 1
	if full.Y[last] < 90 || full.Y[last] > 110 {
		t.Fatalf("existing @36m = %.1f h, paper ~100", full.Y[last])
	}
	if taf.Y[last] < 0.8 || taf.Y[last] > 2.5 {
		t.Fatalf("TafLoc @36m = %.2f h, paper ~1.6", taf.Y[last])
	}
	// Quadratic vs ~linear growth: the savings ratio must explode.
	if full.Y[last]/taf.Y[last] < 20 {
		t.Fatalf("savings at 36 m only %.1fx", full.Y[last]/taf.Y[last])
	}
	// Existing-system cost grows monotonically.
	for i := 1; i < len(full.Y); i++ {
		if full.Y[i] <= full.Y[i-1] {
			t.Fatal("existing cost must grow with area")
		}
	}
}

func TestFig5ReproducesOrdering(t *testing.T) {
	fig, err := Fig5(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig5 has %d series", len(fig.Series))
	}
	med := map[string]float64{}
	mean := map[string]float64{}
	for _, name := range Fig5Systems {
		med[name] = noteValue(t, fig.Notes, name+":", " m,")
		// mean follows "median X m, mean Y m" in the note.
		mean[name] = noteValue(t, fig.Notes, name+": median "+
			trimFloat(med[name])+" m, mean", " m,")
	}
	// The paper's headline claims: TafLoc performs best overall, and the
	// reconstruction scheme significantly improves RASS. Our simulator
	// grants RTI its exact link geometry and a fresh vacant capture, so
	// RTI is competitive at the lowest quantiles; TafLoc must win the
	// mean outright and stay within a whisker on the median.
	for _, other := range []string{"RTI", "RASS w/ rec.", "RASS w/o rec."} {
		if mean["TafLoc"] > mean[other] {
			t.Fatalf("TafLoc mean %.2f m worse than %s %.2f m", mean["TafLoc"], other, mean[other])
		}
		if med["TafLoc"] > med[other]*1.35 {
			t.Fatalf("TafLoc median %.2f m far above %s %.2f m", med["TafLoc"], other, med[other])
		}
	}
	if med["RASS w/ rec."] >= med["RASS w/o rec."]*0.85 {
		t.Fatalf("reconstruction did not significantly improve RASS: %.2f vs %.2f",
			med["RASS w/ rec."], med["RASS w/o rec."])
	}
	// Sanity: TafLoc median is fine-grained (~cell scale on this testbed).
	if med["TafLoc"] > 1.2 {
		t.Fatalf("TafLoc median %.2f m is not fine-grained", med["TafLoc"])
	}
}

// trimFloat renders a float the same way the note formatting does.
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func TestDriftTableMatchesAnchors(t *testing.T) {
	tbl, err := DriftTable(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	byDay := map[string]string{}
	for _, row := range tbl.Rows {
		byDay[row[0]] = row[1]
	}
	check := func(day string, want float64) {
		v, err := strconv.ParseFloat(byDay[day], 64)
		if err != nil {
			t.Fatalf("row %s: %v", day, err)
		}
		if v < want-0.4 || v > want+0.4 {
			t.Fatalf("drift @%s d = %.2f, want ~%.1f", day, v, want)
		}
	}
	check("5", 2.5)
	check("45", 6.0)
}

func TestCostTableMatchesPaper(t *testing.T) {
	tbl, err := CostTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("cost table rows = %d", len(tbl.Rows))
	}
	full, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	ref, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if full < 2.7 || full > 2.9 || ref < 0.25 || ref > 0.31 {
		t.Fatalf("cost table %g / %g, want 2.78 / 0.28", full, ref)
	}
}

func TestFig1MatrixProperties(t *testing.T) {
	fig, err := Fig1(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 {
		t.Fatalf("fig1 series = %d", len(fig.Series))
	}
	s := fig.Series[0].Y
	// Singular values sorted descending with meaningful decay.
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-9 {
			t.Fatal("singular values not sorted")
		}
	}
	if s[0] <= 0 {
		t.Fatal("degenerate spectrum")
	}
	if s[len(s)-1] > 0.5*s[0] {
		t.Fatal("spectrum shows no approximate low-rank decay")
	}
}

func TestAblationQuantifiesDesignChoices(t *testing.T) {
	tbl, err := Ablation(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if v <= 0 || v > 20 {
			t.Fatalf("implausible ablation value %v", row)
		}
		vals[row[0]] = v
	}
	full := vals["full LoLi-IR"]
	// Dropping both smoothness terms must hurt measurably: the priors are
	// what identify distorted entries off the reference columns.
	if vals["no smoothness terms"] <= full {
		t.Fatalf("smoothness ablation did not hurt: full %.2f vs %.2f",
			full, vals["no smoothness terms"])
	}
	// More references should not make things worse than the fewest.
	if vals["references n=24"] > vals["references n=4"] {
		t.Fatalf("more references degraded reconstruction: n=24 %.2f vs n=4 %.2f",
			vals["references n=24"], vals["references n=4"])
	}
}

func TestExperimentsWithSmallerDeployment(t *testing.T) {
	// The harnesses must work on non-paper deployments too.
	cfg := fastConfig()
	cfg.Testbed = testbed.SquareConfig(6)
	cfg.TestTargets = 10
	if _, err := Fig3(cfg); err != nil {
		t.Fatalf("fig3 on 6 m square: %v", err)
	}
	if _, err := Fig5(cfg); err != nil {
		t.Fatalf("fig5 on 6 m square: %v", err)
	}
	if _, err := Fig1(cfg); err != nil {
		t.Fatalf("fig1 on 6 m square: %v", err)
	}
}
