package testbed

import (
	"math"
	"testing"
	"time"
)

func TestPaperConfigValid(t *testing.T) {
	cfg := PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Grid.Cells() != 96 {
		t.Fatalf("paper grid has %d cells, want 96", d.Grid.Cells())
	}
	if d.Channel.M() != 10 {
		t.Fatalf("paper deployment has %d links, want 10", d.Channel.M())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RoomW = 0 },
		func(c *Config) { c.CellSize = -1 },
		func(c *Config) { c.Links = 0 },
		func(c *Config) { c.SamplesPerCell = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.RF.PathLossExp = 0 },
	}
	for i, mutate := range bad {
		cfg := PaperConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: New accepted invalid config", i)
		}
	}
}

func TestSquareConfigScalesLinks(t *testing.T) {
	small := SquareConfig(6)
	big := SquareConfig(36)
	if small.Links >= big.Links {
		t.Fatalf("links must scale with area: %d vs %d", small.Links, big.Links)
	}
	// 6 m edge: perimeter 24 m -> ~8 links; must be at least the minimum 4.
	if small.Links < 4 {
		t.Fatalf("too few links: %d", small.Links)
	}
	if _, err := New(big); err != nil {
		t.Fatal(err)
	}
}

func TestFullSurveyCostMatchesPaperArithmetic(t *testing.T) {
	// The paper: 6 m x 6 m area, 0.6 m cells -> 100 cells x 100 s
	// = 10000 s ~ 2.78 h.
	cfg := SquareConfig(6)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost := d.FullSurveyCost()
	if cost.CellsVisited != 100 {
		t.Fatalf("cells = %d, want 100", cost.CellsVisited)
	}
	if got := cost.Hours(); math.Abs(got-2.7777) > 0.01 {
		t.Fatalf("full survey = %.3f h, want ~2.78", got)
	}
	// TafLoc with 10 reference cells: 1000 s ~ 0.28 h.
	ref := d.ReferenceSurveyCost(10)
	if got := ref.Hours(); math.Abs(got-0.2777) > 0.01 {
		t.Fatalf("reference survey = %.3f h, want ~0.28", got)
	}
}

func TestSurveyMatchesGroundTruth(t *testing.T) {
	cfg := PaperConfig()
	cfg.SamplesPerCell = 100
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, cost := d.Survey(0)
	truth := d.Channel.TrueFingerprint(0)
	if x.Rows() != truth.Rows() || x.Cols() != truth.Cols() {
		t.Fatalf("survey shape %dx%d", x.Rows(), x.Cols())
	}
	var worst float64
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			if e := math.Abs(x.At(i, j) - truth.At(i, j)); e > worst {
				worst = e
			}
		}
	}
	if worst > 1.2 {
		t.Fatalf("surveyed fingerprint deviates %.2f dB from truth", worst)
	}
	if cost.CellsVisited != 96 || cost.Samples != 9600 {
		t.Fatalf("cost = %+v", cost)
	}
	if cost.Duration != 9600*time.Second {
		t.Fatalf("duration = %v", cost.Duration)
	}
}

func TestSurveyCellsSubset(t *testing.T) {
	d, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells := []int{0, 10, 50}
	x, cost := d.SurveyCells(cells, 0)
	if x.Cols() != 3 || x.Rows() != d.Channel.M() {
		t.Fatalf("subset survey shape %dx%d", x.Rows(), x.Cols())
	}
	if cost.CellsVisited != 3 {
		t.Fatalf("cost cells = %d", cost.CellsVisited)
	}
	// Column k must match a direct measurement of the same cell (within
	// noise).
	truth := d.Channel.TrueFingerprint(0)
	for k, j := range cells {
		for i := 0; i < x.Rows(); i++ {
			if math.Abs(x.At(i, k)-truth.At(i, j)) > 1.2 {
				t.Fatalf("subset column %d link %d deviates", k, i)
			}
		}
	}
}

func TestVacantCapture(t *testing.T) {
	d, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := d.VacantCapture(0, 50)
	truth := d.Channel.TrueVacant(0)
	for i := range v {
		if math.Abs(v[i]-truth[i]) > 1.0 {
			t.Fatalf("vacant capture link %d off by %.2f", i, math.Abs(v[i]-truth[i]))
		}
	}
}

func TestSurveyCostAdd(t *testing.T) {
	a := SurveyCost{CellsVisited: 2, Samples: 200, Duration: 200 * time.Second}
	b := SurveyCost{CellsVisited: 3, Samples: 300, Duration: 300 * time.Second}
	a.Add(b)
	if a.CellsVisited != 5 || a.Samples != 500 || a.Duration != 500*time.Second {
		t.Fatalf("Add = %+v", a)
	}
}
