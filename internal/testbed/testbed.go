// Package testbed models the physical experiment deployment from the
// paper's Fig 2 — a room with WiFi transceivers along its sides and a
// gridded monitoring area — plus the human survey process whose cost
// TafLoc reduces: a surveyor stands in each grid cell while 100 RSS
// samples are collected at 1 Hz.
package testbed

import (
	"fmt"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rf"
)

// Config describes a deployment: room extent, monitored grid, and link
// layout.
type Config struct {
	// RoomW, RoomH are the room extent in metres (paper: 12 x 9).
	RoomW, RoomH float64
	// CellSize is the grid cell side in metres (paper: 0.6).
	CellSize float64
	// Links is the number of deployed links (paper: 10).
	Links int
	// SamplesPerCell is the number of RSS samples collected per surveyed
	// cell (paper: 100, one per second).
	SamplesPerCell int
	// SampleInterval is the time between samples (paper: 1 s).
	SampleInterval time.Duration
	// RF configures the channel model.
	RF rf.Params
}

// PaperConfig returns the deployment of the paper's evaluation: a
// 12 m x 9 m room whose monitored sub-area holds 96 cells of 0.6 m
// (12 x 8 cells = 7.2 m x 4.8 m), covered by 10 links.
func PaperConfig() Config {
	return Config{
		RoomW: 7.2, RoomH: 4.8,
		CellSize:       0.6,
		Links:          10,
		SamplesPerCell: 100,
		SampleInterval: time.Second,
		RF:             rf.DefaultParams(),
	}
}

// SquareConfig returns a deployment over an edge x edge area, used by the
// Fig 4 area sweep. The link count scales with the perimeter (one link
// endpoint pair per ~2.9 m of perimeter, matching 10 links for the paper
// room) so larger areas keep comparable coverage density.
func SquareConfig(edge float64) Config {
	c := PaperConfig()
	c.RoomW, c.RoomH = edge, edge
	perimeter := 4 * edge
	links := int(perimeter/2.9 + 0.5)
	if links < 4 {
		links = 4
	}
	c.Links = links
	return c
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	switch {
	case c.RoomW <= 0 || c.RoomH <= 0:
		return fmt.Errorf("testbed: invalid room %gx%g", c.RoomW, c.RoomH)
	case c.CellSize <= 0:
		return fmt.Errorf("testbed: invalid cell size %g", c.CellSize)
	case c.Links < 1:
		return fmt.Errorf("testbed: need at least one link, got %d", c.Links)
	case c.SamplesPerCell < 1:
		return fmt.Errorf("testbed: SamplesPerCell must be positive, got %d", c.SamplesPerCell)
	case c.SampleInterval <= 0:
		return fmt.Errorf("testbed: SampleInterval must be positive, got %v", c.SampleInterval)
	}
	return c.RF.Validate()
}

// Deployment is an instantiated testbed: grid, links, and simulated
// channel.
type Deployment struct {
	Config  Config
	Grid    *geom.Grid
	Channel *rf.Channel
}

// New builds a deployment from cfg.
func New(cfg Config) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	grid, err := geom.NewGrid(cfg.RoomW, cfg.RoomH, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	links := geom.CrossedDeployment(cfg.RoomW, cfg.RoomH, cfg.Links)
	ch, err := rf.NewChannel(cfg.RF, links, grid)
	if err != nil {
		return nil, err
	}
	return &Deployment{Config: cfg, Grid: grid, Channel: ch}, nil
}

// SurveyCost is the human time cost of a fingerprint collection campaign.
type SurveyCost struct {
	CellsVisited int
	Samples      int
	Duration     time.Duration
}

// Hours returns the cost in hours, the unit of the paper's Fig 4.
func (s SurveyCost) Hours() float64 { return s.Duration.Hours() }

// Add accumulates another cost into s.
func (s *SurveyCost) Add(o SurveyCost) {
	s.CellsVisited += o.CellsVisited
	s.Samples += o.Samples
	s.Duration += o.Duration
}

// Survey simulates a full-site fingerprint survey at the given age: the
// surveyor visits every grid cell and the collector averages
// SamplesPerCell noisy samples per link. It returns the measured
// fingerprint matrix and the labor cost.
func (d *Deployment) Survey(days float64) (*mat.Matrix, SurveyCost) {
	x, cost := d.SurveyCells(allCells(d.Grid.Cells()), days)
	return x, cost
}

// SurveyCells measures fingerprint columns for the listed cells only,
// returning an M x len(cells) matrix whose k-th column corresponds to
// cells[k]. This is TafLoc's reference-location measurement pass.
func (d *Deployment) SurveyCells(cells []int, days float64) (*mat.Matrix, SurveyCost) {
	m := d.Channel.M()
	x := mat.New(m, len(cells))
	for k, j := range cells {
		col := d.Channel.MeasureColumn(j, days, d.Config.SamplesPerCell)
		x.SetCol(k, col)
	}
	cost := SurveyCost{
		CellsVisited: len(cells),
		Samples:      len(cells) * d.Config.SamplesPerCell,
		Duration: time.Duration(len(cells)*d.Config.SamplesPerCell) *
			d.Config.SampleInterval,
	}
	return x, cost
}

// VacantCapture measures the empty-room RSS of every link, averaging the
// given number of samples. Its cost is negligible (no surveyor walking)
// and excluded from SurveyCost, matching the paper's accounting.
func (d *Deployment) VacantCapture(days float64, samples int) []float64 {
	return d.Channel.MeasureVacant(days, samples)
}

// FullSurveyCost returns the cost of surveying every cell without
// performing the measurements — the "existing systems" line of Fig 4.
func (d *Deployment) FullSurveyCost() SurveyCost {
	n := d.Grid.Cells()
	return SurveyCost{
		CellsVisited: n,
		Samples:      n * d.Config.SamplesPerCell,
		Duration:     time.Duration(n*d.Config.SamplesPerCell) * d.Config.SampleInterval,
	}
}

// ReferenceSurveyCost returns the cost of surveying n reference cells —
// the TafLoc line of Fig 4.
func (d *Deployment) ReferenceSurveyCost(n int) SurveyCost {
	return SurveyCost{
		CellsVisited: n,
		Samples:      n * d.Config.SamplesPerCell,
		Duration:     time.Duration(n*d.Config.SamplesPerCell) * d.Config.SampleInterval,
	}
}

func allCells(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
