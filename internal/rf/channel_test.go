package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tafloc/internal/geom"
)

func testChannel(t *testing.T, seed uint64) *Channel {
	t.Helper()
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = seed
	links := geom.CrossedDeployment(7.2, 4.8, 10)
	c, err := NewChannel(p, links, grid)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.PathLossExp = 0 },
		func(p *Params) { p.MaxAttenDB = -1 },
		func(p *Params) { p.EllipseExcessM = 0 },
		func(p *Params) { p.AttenDecayM = -1 },
		func(p *Params) { p.DriftExp = 2 },
		func(p *Params) { p.DriftLowRankShare = 1.5 },
		func(p *Params) { p.ShadowDriftShare = -0.1 },
		func(p *Params) { p.DriftRank = 0 },
		func(p *Params) { p.NoiseStdDB = -1 },
		func(p *Params) { p.QuantizeDB = -1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestDriftCalibrationAnchors(t *testing.T) {
	// The power law must pass through the paper's anchors:
	// mean |drift| = 2.5 dBm at 5 days and 6 dBm at 45 days.
	p := DefaultParams()
	const sqrt2OverPi = 0.7978845608028654
	mean5 := p.DriftStd(5) * sqrt2OverPi
	mean45 := p.DriftStd(45) * sqrt2OverPi
	if math.Abs(mean5-2.5) > 0.06 {
		t.Fatalf("mean drift @5d = %.3f dBm, want 2.5", mean5)
	}
	if math.Abs(mean45-6.0) > 0.12 {
		t.Fatalf("mean drift @45d = %.3f dBm, want 6.0", mean45)
	}
	if p.DriftStd(0) != 0 {
		t.Fatal("drift at day 0 must be zero")
	}
}

func TestNewChannelValidation(t *testing.T) {
	grid, _ := geom.NewGrid(6, 6, 0.6)
	if _, err := NewChannel(DefaultParams(), nil, grid); err == nil {
		t.Fatal("no links accepted")
	}
	if _, err := NewChannel(DefaultParams(), geom.OppositeSidePairs(6, 6, 3), nil); err == nil {
		t.Fatal("nil grid accepted")
	}
	bad := DefaultParams()
	bad.PathLossExp = -1
	if _, err := NewChannel(bad, geom.OppositeSidePairs(6, 6, 3), grid); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestChannelDeterminism(t *testing.T) {
	a := testChannel(t, 5)
	b := testChannel(t, 5)
	if !a.TrueFingerprint(30).Equal(b.TrueFingerprint(30), 0) {
		t.Fatal("same seed must give identical ground truth")
	}
	c := testChannel(t, 6)
	if a.TrueFingerprint(0).Equal(c.TrueFingerprint(0), 1e-9) {
		t.Fatal("different seeds should differ")
	}
}

func TestVacantRSSPlausible(t *testing.T) {
	c := testChannel(t, 1)
	for i := 0; i < c.M(); i++ {
		v := c.VacantRSS(i, 0)
		if v > -10 || v < -90 {
			t.Fatalf("link %d vacant RSS %.1f dBm implausible", i, v)
		}
	}
}

func TestAttenuationStrongNearLoSWeakFar(t *testing.T) {
	c := testChannel(t, 2)
	strong := 0
	for i := 0; i < c.M(); i++ {
		mid := c.Links()[i].Midpoint()
		// The sensitive band is displaced from the geometric LoS and its
		// gain signed, so check magnitudes: near-LoS response is strong
		// for most links, far response is weak for all.
		on := math.Abs(c.Attenuation(i, mid, 0))
		if on >= 1 {
			strong++
		}
		far := geom.Point{X: mid.X + 3.5, Y: mid.Y + 3.5}
		if off := math.Abs(c.Attenuation(i, far, 0)); off > 1.0 {
			t.Fatalf("link %d far attenuation %.2f dB too large", i, off)
		}
	}
	if strong < c.M()*2/3 {
		t.Fatalf("only %d/%d links respond strongly near their LoS", strong, c.M())
	}
}

func TestAttenuationBounded(t *testing.T) {
	// Attenuation is signed (constructive multipath can raise RSS) but
	// must stay physically bounded at every position and age — for
	// positions in the monitored area. A target standing essentially on
	// a transceiver is near-field, outside the model's physical domain,
	// and can legitimately exceed the far-field bound, so node
	// neighbourhoods are excluded from the property. The generator is
	// seeded: quick's default time seed made this test order- and
	// wall-clock-dependent, which -shuffle=on flushed out.
	c := testChannel(t, 3)
	nearNode := func(p geom.Point) bool {
		for _, seg := range c.Links() {
			if p.Dist(seg.A) < 0.5 || p.Dist(seg.B) < 0.5 {
				return true
			}
		}
		return false
	}
	f := func(x, y, days float64) bool {
		p := geom.Point{X: math.Mod(math.Abs(x), 7.2), Y: math.Mod(math.Abs(y), 4.8)}
		d := math.Mod(math.Abs(days), 100)
		if nearNode(p) {
			return true
		}
		for i := 0; i < c.M(); i++ {
			a := c.Attenuation(i, p, d)
			if math.IsNaN(a) || a > 40 || a < -25 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTargetRSSMostlyBelowVacant(t *testing.T) {
	// Blockage dominates: averaged over the sensitive band, a target
	// reduces RSS for the clear majority of links, though individual
	// cells may show a constructive-multipath rise.
	c := testChannel(t, 4)
	below := 0
	for i := 0; i < c.M(); i++ {
		seg := c.Links()[i]
		var mean float64
		const steps = 20
		for k := 0; k < steps; k++ {
			frac := (float64(k) + 0.5) / steps
			p := geom.Point{
				X: seg.A.X + frac*(seg.B.X-seg.A.X),
				Y: seg.A.Y + frac*(seg.B.Y-seg.A.Y),
			}
			mean += c.TargetRSS(i, p, 0) - c.VacantRSS(i, 0)
		}
		if mean/steps < 0 {
			below++
		}
	}
	if below < c.M()*2/3 {
		t.Fatalf("only %d/%d links show net RSS decrease along their path", below, c.M())
	}
}

func TestRSSContinuityAlongLink(t *testing.T) {
	// Paper property (iii): along a link's path, RSS changes continuously
	// with target position. Check that adjacent sample points differ by a
	// bounded amount.
	c := testChannel(t, 7)
	link := 0
	s := c.Links()[link]
	prev := c.TargetRSS(link, s.A, 0)
	steps := 200
	for k := 1; k <= steps; k++ {
		frac := float64(k) / float64(steps)
		p := geom.Point{
			X: s.A.X + frac*(s.B.X-s.A.X),
			Y: s.A.Y + frac*(s.B.Y-s.A.Y),
		}
		cur := c.TargetRSS(link, p, 0)
		if math.Abs(cur-prev) > 2.5 {
			t.Fatalf("RSS jump %.2f dB along link at step %d", math.Abs(cur-prev), k)
		}
		prev = cur
	}
}

func TestTrueFingerprintShape(t *testing.T) {
	c := testChannel(t, 8)
	x := c.TrueFingerprint(0)
	if x.Rows() != c.M() || x.Cols() != c.N() {
		t.Fatalf("fingerprint %dx%d, want %dx%d", x.Rows(), x.Cols(), c.M(), c.N())
	}
	if !x.IsFinite() {
		t.Fatal("fingerprint contains non-finite entries")
	}
}

func TestFingerprintDriftGrowsOverTime(t *testing.T) {
	c := testChannel(t, 9)
	x0 := c.TrueFingerprint(0)
	var prev float64
	for _, days := range []float64{3, 15, 45, 90} {
		xt := c.TrueFingerprint(days)
		var sum float64
		for i := 0; i < x0.Rows(); i++ {
			for j := 0; j < x0.Cols(); j++ {
				sum += math.Abs(xt.At(i, j) - x0.At(i, j))
			}
		}
		mean := sum / float64(x0.Rows()*x0.Cols())
		if mean <= prev {
			t.Fatalf("drift at %v days (%.2f dBm) did not grow past %.2f", days, mean, prev)
		}
		prev = mean
	}
}

func TestVacantDriftMatchesCalibration(t *testing.T) {
	// Average over many seeds: the realized mean |vacant drift| must match
	// the calibrated power law.
	grid, _ := geom.NewGrid(7.2, 4.8, 0.6)
	links := geom.CrossedDeployment(7.2, 4.8, 10)
	for _, anchor := range []struct{ days, want float64 }{{5, 2.5}, {45, 6.0}} {
		var sum float64
		var count int
		for seed := uint64(0); seed < 60; seed++ {
			p := DefaultParams()
			p.Seed = seed
			c, err := NewChannel(p, links, grid)
			if err != nil {
				t.Fatal(err)
			}
			v0 := c.TrueVacant(0)
			vt := c.TrueVacant(anchor.days)
			for i := range v0 {
				sum += math.Abs(vt[i] - v0[i])
				count++
			}
		}
		mean := sum / float64(count)
		if math.Abs(mean-anchor.want) > 0.45 {
			t.Fatalf("realized mean drift @%gd = %.2f dBm, want ~%.1f", anchor.days, mean, anchor.want)
		}
	}
}

func TestUndistortedEntriesPinnedToVacant(t *testing.T) {
	// Entries far outside every link ellipse must track the vacant RSS
	// (within the small residual scattering term) even after drift.
	c := testChannel(t, 10)
	x := c.TrueFingerprint(60)
	vac := c.TrueVacant(60)
	for i := 0; i < c.M(); i++ {
		for j := 0; j < c.N(); j++ {
			if c.Links()[i].ExcessPathLength(c.Grid().Center(j)) > 2 {
				if diff := math.Abs(x.At(i, j) - vac[i]); diff > 0.5 {
					t.Fatalf("far entry (%d,%d) deviates %.2f dB from vacant", i, j, diff)
				}
			}
		}
	}
}

func TestSampleNoiseAndQuantization(t *testing.T) {
	c := testChannel(t, 11)
	// Samples are integer-quantized with the default params.
	for k := 0; k < 50; k++ {
		v := c.SampleVacant(0, 0)
		if v != math.Round(v) {
			t.Fatalf("sample %.3f not quantized to 1 dBm", v)
		}
	}
	// Sample mean approaches the true value.
	var sum float64
	n := 4000
	for k := 0; k < n; k++ {
		sum += c.SampleVacant(0, 0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-c.VacantRSS(0, 0)) > 0.2 {
		t.Fatalf("sample mean %.2f vs true %.2f", mean, c.VacantRSS(0, 0))
	}
}

func TestMeasureColumnAveragingReducesNoise(t *testing.T) {
	c := testChannel(t, 12)
	j := c.N() / 2
	truth := make([]float64, c.M())
	p := c.Grid().Center(j)
	for i := range truth {
		truth[i] = c.TargetRSS(i, p, 0)
	}
	col := c.MeasureColumn(j, 0, 100)
	for i := range col {
		if math.Abs(col[i]-truth[i]) > 1.0 {
			t.Fatalf("averaged column entry %d off by %.2f dB", i, math.Abs(col[i]-truth[i]))
		}
	}
}

func TestMeasureVacantLength(t *testing.T) {
	c := testChannel(t, 13)
	if got := len(c.MeasureVacant(0, 10)); got != c.M() {
		t.Fatalf("MeasureVacant length %d", got)
	}
	if got := len(c.MeasureLive(geom.Point{X: 1, Y: 1}, 0)); got != c.M() {
		t.Fatalf("MeasureLive length %d", got)
	}
}

func TestMeasureSamplesClamped(t *testing.T) {
	c := testChannel(t, 14)
	// samples < 1 must be treated as 1, not panic or divide by zero.
	v := c.MeasureVacant(0, 0)
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite measurement with samples=0")
		}
	}
}

func TestQuantizeDisabled(t *testing.T) {
	grid, _ := geom.NewGrid(6, 6, 0.6)
	p := DefaultParams()
	p.QuantizeDB = 0
	c, err := NewChannel(p, geom.OppositeSidePairs(6, 6, 5), grid)
	if err != nil {
		t.Fatal(err)
	}
	integer := true
	for k := 0; k < 20; k++ {
		v := c.SampleVacant(0, 0)
		if v != math.Round(v) {
			integer = false
		}
	}
	if integer {
		t.Fatal("quantization appears active despite QuantizeDB=0")
	}
}
