// Package rf simulates the radio substrate the TafLoc paper measures with
// Atheros AR9331 WiFi NICs: per-link received signal strength (RSS) as a
// function of deployment geometry, the presence of a device-free target,
// slow environmental drift, and measurement noise.
//
// The forward model is the standard device-free localization model (the
// same one RTI assumes): a link's RSS equals a static vacant baseline
// minus an excess attenuation that is largest when the target stands on
// the link's line of sight and decays with the target's excess path
// length (Fresnel-zone geometry). On top of it sits a slow temporal drift
// process calibrated to the paper's measurements (2.5 dBm mean change
// after 5 days, 6 dBm after 45 days) and additive Gaussian noise within
// the paper's 1-4 dBm band.
package rf

import (
	"fmt"
	"math"
)

// Params configures the channel model. The zero value is not usable; start
// from DefaultParams.
type Params struct {
	// TxPowerDBm is the transmit power of every link transmitter.
	TxPowerDBm float64
	// PathLossExp is the log-distance path-loss exponent (indoor: 2.5-4).
	PathLossExp float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// LinkOffsetStdDB is the standard deviation of the static per-link
	// multipath offset (fixed furniture, walls).
	LinkOffsetStdDB float64

	// MaxAttenDB is the mean line-of-sight shadowing attenuation when the
	// target stands exactly on a link's direct path.
	MaxAttenDB float64
	// AttenVarStdDB is the per-link variation of the maximum attenuation.
	AttenVarStdDB float64
	// EllipseExcessM is the excess-path-length threshold (metres) of the
	// sensitivity ellipse: targets with larger excess leave the link
	// essentially undistorted. 0.3 m ~ a couple of Fresnel zones at 2.4 GHz
	// widened by body size.
	EllipseExcessM float64
	// AttenDecayM is the exponential decay constant (metres of excess path
	// length) of the shadowing attenuation inside the ellipse.
	AttenDecayM float64
	// ResidualAttenDB is the small scattering perturbation a target causes
	// on links whose ellipse it is outside of.
	ResidualAttenDB float64
	// MultipathGainStd is the standard deviation of the static,
	// spatially-smooth per-(link,cell) multipath gain that modulates the
	// target's attenuation: indoor links respond heterogeneously to the
	// same blockage depending on the local multipath structure. The gain
	// is part of the environment, so fingerprints capture it while
	// model-based imaging (RTI) does not.
	MultipathGainStd float64
	// MultipathSmoothPasses is the number of neighbour-averaging passes
	// applied to the gain field so it varies smoothly along link paths
	// (preserving the paper's continuity property).
	MultipathSmoothPasses int
	// SenseOffsetStdM is the per-axis standard deviation (metres) of each
	// link's static sensitivity-region displacement: on real testbeds the
	// most target-sensitive band is shifted off the geometric LoS by the
	// local multipath structure. Fingerprints capture the shifted band;
	// geometric models (RTI's weights) assume the unshifted one.
	SenseOffsetStdM float64

	// DriftCoeffDB and DriftExp define the mean absolute vacant-RSS drift
	// after t days: E|drift(t)| = DriftCoeffDB * t^DriftExp. The defaults
	// are the unique power law through the paper's two anchors
	// (2.5 dBm @ 5 d, 6 dBm @ 45 d): coeff 1.318, exponent 0.4.
	DriftCoeffDB float64
	DriftExp     float64
	// ShadowDriftShare scales how strongly the target-induced attenuation
	// pattern drifts relative to the vacant baseline drift.
	ShadowDriftShare float64
	// DriftLowRankShare is the fraction of shadowing-drift variance that
	// lives in a low-rank (link x location separable) component — the part
	// reference-location measurements can recover. The remainder is
	// entrywise idiosyncratic and bounds reconstruction accuracy.
	DriftLowRankShare float64
	// DriftRank is the rank of the recoverable drift component.
	DriftRank int

	// NoiseStdDB is the per-sample measurement noise standard deviation.
	NoiseStdDB float64
	// QuantizeDB is the RSS reporting granularity (AR9331 reports integer
	// dBm). Zero disables quantization.
	QuantizeDB float64

	// Seed selects the random universe (static offsets, drift directions).
	Seed uint64
}

// DefaultParams returns the parameter set used throughout the paper
// reproduction.
func DefaultParams() Params {
	return Params{
		TxPowerDBm:            15,
		PathLossExp:           3.0,
		RefLossDB:             40,
		LinkOffsetStdDB:       3,
		MaxAttenDB:            8,
		AttenVarStdDB:         1.5,
		EllipseExcessM:        0.80,
		AttenDecayM:           0.12,
		ResidualAttenDB:       0.3,
		MultipathGainStd:      0.60,
		MultipathSmoothPasses: 2,
		SenseOffsetStdM:       0.40,
		DriftCoeffDB:          1.318,
		DriftExp:              0.4,
		ShadowDriftShare:      0.70,
		DriftLowRankShare:     0.72,
		DriftRank:             2,
		NoiseStdDB:            2.0,
		QuantizeDB:            1.0,
		Seed:                  1,
	}
}

// Validate reports the first invalid field, or nil.
func (p Params) Validate() error {
	switch {
	case p.PathLossExp <= 0:
		return fmt.Errorf("rf: PathLossExp must be positive, got %g", p.PathLossExp)
	case p.MaxAttenDB < 0:
		return fmt.Errorf("rf: MaxAttenDB must be non-negative, got %g", p.MaxAttenDB)
	case p.EllipseExcessM <= 0:
		return fmt.Errorf("rf: EllipseExcessM must be positive, got %g", p.EllipseExcessM)
	case p.AttenDecayM <= 0:
		return fmt.Errorf("rf: AttenDecayM must be positive, got %g", p.AttenDecayM)
	case p.DriftExp < 0 || p.DriftExp > 1:
		return fmt.Errorf("rf: DriftExp must be in [0,1], got %g", p.DriftExp)
	case p.DriftLowRankShare < 0 || p.DriftLowRankShare > 1:
		return fmt.Errorf("rf: DriftLowRankShare must be in [0,1], got %g", p.DriftLowRankShare)
	case p.ShadowDriftShare < 0:
		return fmt.Errorf("rf: ShadowDriftShare must be non-negative, got %g", p.ShadowDriftShare)
	case p.DriftRank < 1:
		return fmt.Errorf("rf: DriftRank must be at least 1, got %d", p.DriftRank)
	case p.MultipathGainStd < 0:
		return fmt.Errorf("rf: MultipathGainStd must be non-negative, got %g", p.MultipathGainStd)
	case p.MultipathSmoothPasses < 0:
		return fmt.Errorf("rf: MultipathSmoothPasses must be non-negative, got %d", p.MultipathSmoothPasses)
	case p.SenseOffsetStdM < 0:
		return fmt.Errorf("rf: SenseOffsetStdM must be non-negative, got %g", p.SenseOffsetStdM)
	case p.NoiseStdDB < 0:
		return fmt.Errorf("rf: NoiseStdDB must be non-negative, got %g", p.NoiseStdDB)
	case p.QuantizeDB < 0:
		return fmt.Errorf("rf: QuantizeDB must be non-negative, got %g", p.QuantizeDB)
	}
	return nil
}

// MaskExcessM returns the excess-path-length threshold a deployed system
// should use to classify entries as undistorted: the physical sensitivity
// ellipse widened by a safety margin covering the multipath displacement
// of the sensitive band. Classifying a truly-distorted entry as
// undistorted pins it to a wrong "exact" value, which is far more harmful
// than conservatively reconstructing a few extra entries.
func (p Params) MaskExcessM() float64 {
	return p.EllipseExcessM + 1.5*p.SenseOffsetStdM
}

// DriftStd returns the standard deviation of the vacant-RSS drift after
// t days, derived from the calibrated mean absolute drift
// (E|N(0,s^2)| = s*sqrt(2/pi)).
func (p Params) DriftStd(days float64) float64 {
	if days <= 0 {
		return 0
	}
	mean := p.DriftCoeffDB * math.Pow(days, p.DriftExp)
	return mean / 0.7978845608028654
}
