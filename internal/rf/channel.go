package rf

import (
	"fmt"
	"math"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rng"
)

// Channel is the simulated radio environment for one deployment: a set of
// links over a gridded area, with a frozen random universe of static
// multipath offsets and drift directions. A Channel is deterministic given
// its Params.Seed, so experiments are exactly reproducible.
//
// Methods that take a time argument express it in days since the initial
// site survey.
type Channel struct {
	params Params
	links  []geom.Segment
	grid   *geom.Grid

	linkOffset  []float64    // static per-link multipath offset (dB)
	maxAtten    []float64    // per-link peak shadowing attenuation (dB)
	vacantDir   []float64    // per-link drift direction, unit variance
	senseOffset []geom.Point // static displacement of each link's sensitive band

	// Shadowing-drift fields over (link, cell): a rank-DriftRank
	// recoverable component U*Vᵀ plus an idiosyncratic component E,
	// combined with variance shares DriftLowRankShare / 1-share.
	driftU *mat.Matrix // M x r
	driftV *mat.Matrix // N x r
	driftE *mat.Matrix // M x N

	// gain is the static multipath gain field (M x N), spatially
	// smoothed per link and sampled bilinearly at target positions.
	gain *mat.Matrix

	noise *rng.Source
}

// NewChannel builds a channel for the given links and grid. The grid
// defines the fingerprint discretization; links may be any segments in or
// around the gridded area.
func NewChannel(params Params, links []geom.Segment, grid *geom.Grid) (*Channel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("rf: need at least one link")
	}
	if grid == nil {
		return nil, fmt.Errorf("rf: nil grid")
	}
	root := rng.New(params.Seed)
	static := root.Split("static")
	drift := root.Split("drift")

	m := len(links)
	n := grid.Cells()
	c := &Channel{
		params:     params,
		links:      append([]geom.Segment(nil), links...),
		grid:       grid,
		linkOffset: make([]float64, m),
		maxAtten:   make([]float64, m),
		vacantDir:  make([]float64, m),
		driftU:     mat.New(m, params.DriftRank),
		driftV:     mat.New(n, params.DriftRank),
		driftE:     mat.New(m, n),
		noise:      root.Split("noise"),
	}
	c.senseOffset = make([]geom.Point, m)
	for i := 0; i < m; i++ {
		c.linkOffset[i] = static.Gaussian(0, params.LinkOffsetStdDB)
		c.maxAtten[i] = math.Max(1, params.MaxAttenDB+static.Gaussian(0, params.AttenVarStdDB))
		c.vacantDir[i] = drift.Norm()
		clip := func(v float64) float64 {
			lim := 1.5 * params.SenseOffsetStdM
			return math.Max(-lim, math.Min(lim, v))
		}
		c.senseOffset[i] = geom.Point{
			X: clip(static.Gaussian(0, params.SenseOffsetStdM)),
			Y: clip(static.Gaussian(0, params.SenseOffsetStdM)),
		}
	}
	// Unit-variance low-rank field: entries of U,V are N(0,1); U*Vᵀ entry
	// variance is r, so scale by 1/sqrt(r).
	inv := 1 / math.Sqrt(float64(params.DriftRank))
	for i := 0; i < m; i++ {
		for k := 0; k < params.DriftRank; k++ {
			c.driftU.Set(i, k, drift.Norm()*inv)
		}
	}
	for j := 0; j < n; j++ {
		for k := 0; k < params.DriftRank; k++ {
			c.driftV.Set(j, k, drift.Norm())
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.driftE.Set(i, j, drift.Norm())
		}
	}
	c.gain = buildGainField(params, grid, m, root.Split("multipath"))
	return c, nil
}

// buildGainField draws a white Gaussian field per (link, cell), smooths
// it with neighbour averaging so it varies continuously along link paths,
// renormalizes to unit variance, and maps it to 1 + std*field clipped to
// a physical range.
func buildGainField(params Params, grid *geom.Grid, m int, src *rng.Source) *mat.Matrix {
	n := grid.Cells()
	field := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			field.Set(i, j, src.Norm())
		}
	}
	for pass := 0; pass < params.MultipathSmoothPasses; pass++ {
		next := mat.New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				sum := field.At(i, j)
				count := 1.0
				for _, nb := range grid.Neighbors4(j) {
					sum += field.At(i, nb)
					count++
				}
				next.Set(i, j, sum/count)
			}
		}
		field = next
	}
	// Renormalize each link's field to unit variance (smoothing shrank it).
	for i := 0; i < m; i++ {
		row := field.RawRow(i)
		var mean, ss float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		for _, v := range row {
			d := v - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(n))
		if std == 0 {
			std = 1
		}
		for j := range row {
			row[j] = (row[j] - mean) / std
		}
	}
	gain := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			// Signed gain: negative values model the constructive-multipath
			// cells where a body *raises* a link's RSS — routinely observed
			// on real testbeds and fundamentally outside RTI's nonnegative
			// attenuation model, while fingerprints capture it natively.
			g := 1 + params.MultipathGainStd*field.At(i, j)
			gain.Set(i, j, math.Min(2.5, math.Max(-0.6, g)))
		}
	}
	return gain
}

// gainAt samples link i's multipath gain at point p by bilinear
// interpolation over the cell-centre lattice, clamping outside the grid.
func (c *Channel) gainAt(i int, p geom.Point) float64 {
	g := c.grid
	nx, ny := g.NX(), g.NY()
	u := p.X/g.CellSize - 0.5
	v := p.Y/g.CellSize - 0.5
	clampF := func(x float64, hi int) (int, int, float64) {
		x0 := math.Floor(x)
		frac := x - x0
		i0 := int(x0)
		i1 := i0 + 1
		if i0 < 0 {
			return 0, 0, 0
		}
		if i1 >= hi {
			return hi - 1, hi - 1, 0
		}
		return i0, i1, frac
	}
	ix0, ix1, fx := clampF(u, nx)
	iy0, iy1, fy := clampF(v, ny)
	g00 := c.gain.At(i, iy0*nx+ix0)
	g10 := c.gain.At(i, iy0*nx+ix1)
	g01 := c.gain.At(i, iy1*nx+ix0)
	g11 := c.gain.At(i, iy1*nx+ix1)
	return (1-fy)*((1-fx)*g00+fx*g10) + fy*((1-fx)*g01+fx*g11)
}

// Params returns the channel's configuration.
func (c *Channel) Params() Params { return c.params }

// Links returns the link segments (shared slice; do not modify).
func (c *Channel) Links() []geom.Segment { return c.links }

// Grid returns the location grid.
func (c *Channel) Grid() *geom.Grid { return c.grid }

// M returns the number of links.
func (c *Channel) M() int { return len(c.links) }

// N returns the number of grid cells.
func (c *Channel) N() int { return c.grid.Cells() }

// VacantRSS returns the true (noise-free) RSS of link i with no target
// present, at the given age in days.
func (c *Channel) VacantRSS(link int, days float64) float64 {
	c.checkLink(link)
	s := c.links[link]
	d := math.Max(s.Length(), 1)
	base := c.params.TxPowerDBm - c.params.RefLossDB -
		10*c.params.PathLossExp*math.Log10(d) + c.linkOffset[link]
	return base + c.params.DriftStd(days)*c.vacantDir[link]
}

// Attenuation returns the true excess attenuation (dB) a target at point
// p causes on link i at the given age. It is usually positive (blockage)
// but can be negative where constructive multipath makes a body raise the
// link's RSS. Drift modulates the shadowing pattern proportionally to its
// strength, so undistorted entries stay pinned to the vacant baseline.
func (c *Channel) Attenuation(link int, p geom.Point, days float64) float64 {
	c.checkLink(link)
	s := c.links[link]
	// The sensitive band is displaced from the geometric LoS by the
	// link's static multipath offset: evaluate the profile at the
	// pulled-back position.
	excess := s.ExcessPathLength(p.Sub(c.senseOffset[link]))
	var atten float64
	if excess <= c.params.EllipseExcessM {
		atten = c.maxAtten[link] * math.Exp(-excess/c.params.AttenDecayM)
	} else {
		// Weak scattering outside the sensitivity ellipse.
		atten = c.params.ResidualAttenDB * math.Exp(-(excess - c.params.EllipseExcessM))
	}
	if c.params.MultipathGainStd > 0 {
		atten *= c.gainAt(link, p)
	}
	if days > 0 && atten != 0 {
		j := c.grid.CellAt(p)
		if j >= 0 {
			atten *= c.shadowDriftMult(link, j, days)
		}
	}
	return atten
}

// shadowDriftMult returns the multiplicative drift factor for the
// shadowing strength of entry (i,j) at the given age.
func (c *Channel) shadowDriftMult(i, j int, days float64) float64 {
	sh := c.params.ShadowDriftShare * c.params.DriftStd(days) / math.Max(1, c.params.MaxAttenDB)
	low := 0.0
	for k := 0; k < c.params.DriftRank; k++ {
		low += c.driftU.At(i, k) * c.driftV.At(j, k)
	}
	rho := c.params.DriftLowRankShare
	field := math.Sqrt(rho)*low + math.Sqrt(1-rho)*c.driftE.At(i, j)
	return math.Max(0.1, 1+sh*field)
}

// TargetRSS returns the true RSS of link i when a target stands at p, at
// the given age.
func (c *Channel) TargetRSS(link int, p geom.Point, days float64) float64 {
	return c.VacantRSS(link, days) - c.Attenuation(link, p, days)
}

// TrueFingerprint returns the noise-free ground-truth fingerprint matrix
// X(t): entry (i,j) is link i's RSS with the target at the centre of cell
// j, at age days.
func (c *Channel) TrueFingerprint(days float64) *mat.Matrix {
	x := mat.New(c.M(), c.N())
	for i := 0; i < c.M(); i++ {
		vac := c.VacantRSS(i, days)
		for j := 0; j < c.N(); j++ {
			x.Set(i, j, vac-c.Attenuation(i, c.grid.Center(j), days))
		}
	}
	return x
}

// TrueVacant returns the noise-free vacant RSS vector (length M) at age
// days.
func (c *Channel) TrueVacant(days float64) []float64 {
	v := make([]float64, c.M())
	for i := range v {
		v[i] = c.VacantRSS(i, days)
	}
	return v
}

// SampleVacant returns one noisy, quantized vacant RSS sample for link i.
func (c *Channel) SampleVacant(link int, days float64) float64 {
	return c.quantize(c.VacantRSS(link, days) + c.noise.Gaussian(0, c.params.NoiseStdDB))
}

// SampleTarget returns one noisy, quantized RSS sample for link i with a
// target at p.
func (c *Channel) SampleTarget(link int, p geom.Point, days float64) float64 {
	return c.quantize(c.TargetRSS(link, p, days) + c.noise.Gaussian(0, c.params.NoiseStdDB))
}

// MeasureVacant returns the average of samples noisy vacant readings for
// every link (the cheap empty-room capture TafLoc uses to fill
// undistorted entries).
func (c *Channel) MeasureVacant(days float64, samples int) []float64 {
	if samples < 1 {
		samples = 1
	}
	out := make([]float64, c.M())
	for i := range out {
		var s float64
		for k := 0; k < samples; k++ {
			s += c.SampleVacant(i, days)
		}
		out[i] = s / float64(samples)
	}
	return out
}

// MeasureColumn returns the averaged fingerprint column for a target
// standing at the centre of cell j: one surveyor measurement visit.
func (c *Channel) MeasureColumn(j int, days float64, samples int) []float64 {
	if samples < 1 {
		samples = 1
	}
	p := c.grid.Center(j)
	out := make([]float64, c.M())
	for i := range out {
		var s float64
		for k := 0; k < samples; k++ {
			s += c.SampleTarget(i, p, days)
		}
		out[i] = s / float64(samples)
	}
	return out
}

// MeasureLive returns one noisy real-time measurement vector Y for a
// target at point p (not necessarily a cell centre).
func (c *Channel) MeasureLive(p geom.Point, days float64) []float64 {
	out := make([]float64, c.M())
	for i := range out {
		out[i] = c.SampleTarget(i, p, days)
	}
	return out
}

func (c *Channel) quantize(v float64) float64 {
	q := c.params.QuantizeDB
	if q <= 0 {
		return v
	}
	return math.Round(v/q) * q
}

func (c *Channel) checkLink(i int) {
	if i < 0 || i >= len(c.links) {
		panic(fmt.Sprintf("rf: link %d out of range %d", i, len(c.links)))
	}
}
