package rti

import (
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/rf"
)

func testSetup(t *testing.T, seed uint64) (*Imager, *rf.Channel) {
	t.Helper()
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	links := geom.CrossedDeployment(7.2, 4.8, 10)
	p := rf.DefaultParams()
	p.Seed = seed
	ch, err := rf.NewChannel(p, links, grid)
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewImager(links, grid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return im, ch
}

func TestNewImagerValidation(t *testing.T) {
	grid, _ := geom.NewGrid(6, 6, 0.6)
	links := geom.OppositeSidePairs(6, 6, 4)
	if _, err := NewImager(nil, grid, DefaultOptions()); err == nil {
		t.Fatal("accepted no links")
	}
	if _, err := NewImager(links, nil, DefaultOptions()); err == nil {
		t.Fatal("accepted nil grid")
	}
	bad := DefaultOptions()
	bad.SigmaPixel = 0
	if _, err := NewImager(links, grid, bad); err == nil {
		t.Fatal("accepted zero SigmaPixel")
	}
}

func TestImageShapeAndValidation(t *testing.T) {
	im, _ := testSetup(t, 1)
	img, err := im.Image(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != im.Grid().Cells() {
		t.Fatalf("image length %d", len(img))
	}
	if _, err := im.Image(make([]float64, 3)); err == nil {
		t.Fatal("accepted wrong-length deltaY")
	}
}

func TestZeroDeltaGivesFlatImage(t *testing.T) {
	im, _ := testSetup(t, 2)
	img, err := im.Image(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range img {
		if v != 0 {
			t.Fatalf("zero input produced nonzero image at %d: %g", j, v)
		}
	}
}

func TestImagePeaksNearTarget(t *testing.T) {
	im, ch := testSetup(t, 3)
	target := geom.Point{X: 3.3, Y: 2.1}
	vac := ch.TrueVacant(0)
	live := make([]float64, ch.M())
	for i := range live {
		live[i] = ch.TargetRSS(i, target, 0)
	}
	got, err := im.Locate(vac, live)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(target); d > 1.5 {
		t.Fatalf("RTI noise-free error %.2f m too large", d)
	}
}

func TestLocateRobustToNoise(t *testing.T) {
	im, ch := testSetup(t, 4)
	targets := []geom.Point{
		{X: 1.5, Y: 1.5}, {X: 3.9, Y: 2.7}, {X: 5.7, Y: 3.9},
	}
	var total float64
	for _, target := range targets {
		vac := ch.MeasureVacant(0, 20)
		live := make([]float64, ch.M())
		const k = 10
		for s := 0; s < k; s++ {
			y := ch.MeasureLive(target, 0)
			for i := range live {
				live[i] += y[i] / k
			}
		}
		got, err := im.Locate(vac, live)
		if err != nil {
			t.Fatal(err)
		}
		total += got.Dist(target)
	}
	if mean := total / float64(len(targets)); mean > 2.0 {
		t.Fatalf("RTI noisy mean error %.2f m too large", mean)
	}
}

func TestLocateNoFingerprintDependence(t *testing.T) {
	// RTI must keep working after months of drift because it only needs a
	// fresh vacant capture, not fingerprints.
	im, ch := testSetup(t, 5)
	target := geom.Point{X: 4.5, Y: 2.1}
	const days = 90
	vac := ch.TrueVacant(days)
	live := make([]float64, ch.M())
	for i := range live {
		live[i] = ch.TargetRSS(i, target, days)
	}
	got, err := im.Locate(vac, live)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(target); d > 1.8 {
		t.Fatalf("RTI 90-day error %.2f m too large", d)
	}
}

func TestLocateValidatesLengths(t *testing.T) {
	im, _ := testSetup(t, 6)
	if _, err := im.Locate(make([]float64, 10), make([]float64, 4)); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}
