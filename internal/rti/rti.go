// Package rti implements the Radio Tomographic Imaging baseline
// (Wilson & Patwari, IEEE TMC 2010) the paper compares against.
//
// RTI is fingerprint-free: it images the spatial attenuation field from
// per-link RSS changes relative to a vacant baseline. The monitored area
// is divided into voxels (we reuse the fingerprint grid cells); each
// link's attenuation change is modelled as a weighted sum of the voxel
// attenuations inside the link's Fresnel ellipse, and the image is the
// Tikhonov-regularized least-squares inversion of that linear model. The
// target estimate is the attenuation image's peak, refined by a local
// weighted centroid.
package rti

import (
	"fmt"
	"math"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// Options configures the imaging model.
type Options struct {
	// EllipseExcess (metres) bounds each link's sensitive ellipse.
	EllipseExcess float64
	// SigmaPixel is the prior standard deviation of voxel attenuation.
	SigmaPixel float64
	// CorrDist is the exponential spatial-correlation distance (metres)
	// of the image prior.
	CorrDist float64
	// SigmaNoise is the measurement noise standard deviation (dB).
	SigmaNoise float64
	// CentroidRadius (metres) bounds the peak-refinement neighbourhood.
	CentroidRadius float64
}

// DefaultOptions returns the options used in the reproduction's
// comparisons, matching the published RTI parameterization adapted to
// our grid.
func DefaultOptions() Options {
	return Options{
		EllipseExcess:  0.5,
		SigmaPixel:     0.5,
		CorrDist:       1.2,
		SigmaNoise:     1.0,
		CentroidRadius: 1.0,
	}
}

// Imager precomputes the linear model and regularized inverse for one
// deployment, then images measurement vectors in a single matrix-vector
// product. It is safe for concurrent use after construction.
type Imager struct {
	grid    *geom.Grid
	links   []geom.Segment
	opts    Options
	inverse *mat.Matrix // N x M: maps Δy to the image
}

// NewImager builds the imaging operator: weights W (M x N) with
// w_ij = 1/sqrt(d_i) inside link i's ellipse, prior covariance
// C_ij = sigma² exp(-d(i,j)/delta), and the closed-form MAP inverse
// (WᵀW + sigmaN²·C⁻¹)⁻¹Wᵀ computed via Cholesky.
func NewImager(links []geom.Segment, grid *geom.Grid, opts Options) (*Imager, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("rti: need at least one link")
	}
	if grid == nil {
		return nil, fmt.Errorf("rti: nil grid")
	}
	if opts.EllipseExcess <= 0 || opts.SigmaPixel <= 0 || opts.CorrDist <= 0 || opts.SigmaNoise <= 0 {
		return nil, fmt.Errorf("rti: options must be positive: %+v", opts)
	}
	m := len(links)
	n := grid.Cells()

	w := mat.New(m, n)
	for i, seg := range links {
		inv := 1 / math.Sqrt(math.Max(seg.Length(), 1e-9))
		for j := 0; j < n; j++ {
			if seg.InEllipse(grid.Center(j), opts.EllipseExcess) {
				w.Set(i, j, inv)
			}
		}
	}

	// Prior covariance and its inverse (N x N). For tractability we build
	// C explicitly; N is a few hundred to a few thousand cells.
	c := mat.New(n, n)
	s2 := opts.SigmaPixel * opts.SigmaPixel
	for a := 0; a < n; a++ {
		pa := grid.Center(a)
		for b := a; b < n; b++ {
			v := s2 * math.Exp(-pa.Dist(grid.Center(b))/opts.CorrDist)
			c.Set(a, b, v)
			c.Set(b, a, v)
		}
	}
	lc, err := mat.Cholesky(c)
	if err != nil {
		return nil, fmt.Errorf("rti: prior covariance not PD: %w", err)
	}
	cinv := mat.CholeskySolve(lc, mat.Identity(n))

	// A = WᵀW + sigmaN² C⁻¹; inverse operator = A⁻¹ Wᵀ.
	a := mat.TMul(w, w)
	sn2 := opts.SigmaNoise * opts.SigmaNoise
	mat.AXPY(a, sn2, cinv)
	// Symmetrize against numerical asymmetry in cinv before Cholesky.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	la, err := mat.Cholesky(a)
	if err != nil {
		return nil, fmt.Errorf("rti: normal matrix not PD: %w", err)
	}
	inverse := mat.CholeskySolve(la, w.T())
	return &Imager{grid: grid, links: links, opts: opts, inverse: inverse}, nil
}

// Image reconstructs the attenuation image (length N, one value per
// cell) from the per-link RSS change deltaY = vacant - live (positive
// when the target attenuates the link).
func (im *Imager) Image(deltaY []float64) ([]float64, error) {
	if len(deltaY) != len(im.links) {
		return nil, fmt.Errorf("rti: deltaY length %d != links %d", len(deltaY), len(im.links))
	}
	return mat.MulVec(im.inverse, deltaY), nil
}

// Locate images the measurement and returns the location of the image
// peak, refined by a weighted centroid of the cells within
// CentroidRadius of the peak.
func (im *Imager) Locate(vacant, live []float64) (geom.Point, error) {
	if len(vacant) != len(live) {
		return geom.Point{}, fmt.Errorf("rti: vacant/live length mismatch %d vs %d", len(vacant), len(live))
	}
	delta := make([]float64, len(live))
	for i := range delta {
		delta[i] = vacant[i] - live[i]
	}
	img, err := im.Image(delta)
	if err != nil {
		return geom.Point{}, err
	}
	peak := 0
	for j := 1; j < len(img); j++ {
		if img[j] > img[peak] {
			peak = j
		}
	}
	// Weighted centroid around the peak; only positive weights count.
	pc := im.grid.Center(peak)
	var wx, wy, wsum float64
	r := im.opts.CentroidRadius
	if r <= 0 {
		r = 1
	}
	for j := 0; j < len(img); j++ {
		if img[j] <= 0 {
			continue
		}
		p := im.grid.Center(j)
		if p.Dist(pc) > r {
			continue
		}
		wx += img[j] * p.X
		wy += img[j] * p.Y
		wsum += img[j]
	}
	if wsum == 0 {
		return pc, nil
	}
	return geom.Point{X: wx / wsum, Y: wy / wsum}, nil
}

// Grid returns the imaging grid.
func (im *Imager) Grid() *geom.Grid { return im.grid }
