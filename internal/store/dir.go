package store

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Dir is the local-directory backend: one "<escaped-id>.snap" file per
// zone, written atomically via a temporary file and rename, exactly the
// layout serve.Checkpoint has always produced — a directory written by
// an older build restores through Dir unchanged. Zone IDs arrive over
// HTTP and may contain path separators; URL path-escaping keeps every
// zone inside the directory and the name mapping reversible.
type Dir struct {
	dir string
}

// NewDir opens a directory-backed store rooted at dir. The directory is
// created on first Put, not here, so pointing at a not-yet-existing
// state directory is not an error (a boot with no prior state restores
// nothing).
func NewDir(dir string) *Dir { return &Dir{dir: dir} }

// snapSuffix is the snapshot file extension. Files without it — and
// files whose stem does not unescape to a zone ID — are not this
// store's and are never listed or deleted.
const snapSuffix = ".snap"

// fileName maps a zone ID to its snapshot file name.
func fileName(zone string) string {
	return url.PathEscape(zone) + snapSuffix
}

// Put writes the snapshot atomically: temporary file in the same
// directory, sync, rename over the final path. A crash mid-write leaves
// the previous snapshot intact.
func (d *Dir) Put(zone string, data []byte) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(d.dir, fileName(zone))
	tmp, err := os.CreateTemp(d.dir, fileName(zone)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Get reads the snapshot for zone; a missing file reports ErrNotFound.
func (d *Dir) Get(zone string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, fileName(zone)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: zone %q", ErrNotFound, zone)
	}
	return data, err
}

// Delete removes the snapshot for zone; a missing file is not an error.
func (d *Dir) Delete(zone string) error {
	err := os.Remove(filepath.Join(d.dir, fileName(zone)))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List returns the stored zone IDs, sorted. Files that are not this
// store's — wrong suffix, subdirectories, stems that fail to unescape,
// leftover temporaries — are skipped, so foreign files in a shared
// state directory are invisible rather than fatal. A missing directory
// lists nothing.
func (d *Dir) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var zones []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		zone, err := url.PathUnescape(strings.TrimSuffix(name, snapSuffix))
		if err != nil {
			continue
		}
		zones = append(zones, zone)
	}
	sort.Strings(zones)
	return zones, nil
}
