package store

import (
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory backend: a mutex-guarded map. It backs tests,
// and cap-only production configurations where eviction exists to bound
// resident Models rather than to survive restarts (an evicted zone's
// snapshot must outlive its Model, not the process). Snapshots are
// copied on both Put and Get, so callers can never alias the store's
// internal buffers.
type Mem struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Put stores a private copy of data under zone.
func (s *Mem) Put(zone string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[zone] = cp
	s.mu.Unlock()
	return nil
}

// Get returns a copy of the stored snapshot, or ErrNotFound.
func (s *Mem) Get(zone string) ([]byte, error) {
	s.mu.Lock()
	data, ok := s.m[zone]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: zone %q", ErrNotFound, zone)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes the snapshot for zone; missing zones are not an error.
func (s *Mem) Delete(zone string) error {
	s.mu.Lock()
	delete(s.m, zone)
	s.mu.Unlock()
	return nil
}

// List returns the stored zone IDs, sorted.
func (s *Mem) List() ([]string, error) {
	s.mu.Lock()
	zones := make([]string, 0, len(s.m))
	for z := range s.m {
		zones = append(zones, z)
	}
	s.mu.Unlock()
	sort.Strings(zones)
	return zones, nil
}
