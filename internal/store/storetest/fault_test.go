package storetest_test

import (
	"errors"
	"testing"
	"time"

	"tafloc/internal/store"
	"tafloc/internal/store/storetest"
)

func TestFailOpCountsDown(t *testing.T) {
	boom := errors.New("disk on fire")
	fs := storetest.New(store.NewMem())
	fs.FailOp(storetest.OpPut, "z", boom, 2)
	for i := 0; i < 2; i++ {
		if err := fs.Put("z", []byte("x")); !errors.Is(err, boom) {
			t.Fatalf("Put %d: %v, want injected error", i, err)
		}
	}
	// A failed Put must not have reached the inner store.
	if _, err := fs.Get("z"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get after failed Puts: %v, want ErrNotFound", err)
	}
	if err := fs.Put("z", []byte("x")); err != nil {
		t.Fatalf("Put after rule exhausted: %v", err)
	}
	if got, err := fs.Get("z"); err != nil || string(got) != "x" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if n := fs.Calls(storetest.OpPut, "z"); n != 3 {
		t.Fatalf("Put calls = %d, want 3", n)
	}
}

func TestWildcardAndExactRules(t *testing.T) {
	boom := errors.New("boom")
	worse := errors.New("worse")
	fs := storetest.New(store.NewMem())
	fs.FailOp(storetest.OpGet, "", boom, storetest.Forever)
	fs.FailOp(storetest.OpGet, "b", worse, storetest.Forever)
	if _, err := fs.Get("a"); !errors.Is(err, boom) {
		t.Fatalf("wildcard rule: %v", err)
	}
	if _, err := fs.Get("b"); !errors.Is(err, worse) {
		t.Fatalf("exact rule must win: %v", err)
	}
	fs.Clear()
	if _, err := fs.Get("a"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("after Clear: %v, want inner store's ErrNotFound", err)
	}
	// Accounting survives Clear.
	if n := fs.Calls(storetest.OpGet, ""); n != 3 {
		t.Fatalf("total Get calls = %d, want 3", n)
	}
}

func TestTearGetTruncates(t *testing.T) {
	fs := storetest.New(store.NewMem())
	if err := fs.Put("z", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fs.TearGet("z", 4, 1)
	got, err := fs.Get("z")
	if err != nil || string(got) != "0123" {
		t.Fatalf("torn Get = %q, %v", got, err)
	}
	got, err = fs.Get("z")
	if err != nil || string(got) != "0123456789" {
		t.Fatalf("healed Get = %q, %v", got, err)
	}
}

func TestDelayOpSleeps(t *testing.T) {
	fs := storetest.New(store.NewMem())
	_ = fs.Put("z", []byte("x"))
	fs.DelayOp(storetest.OpGet, "z", 30*time.Millisecond, 1)
	start := time.Now()
	if _, err := fs.Get("z"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed Get returned after %v", d)
	}
}

func TestListFaults(t *testing.T) {
	boom := errors.New("boom")
	fs := storetest.New(store.NewMem())
	_ = fs.Put("z", []byte("x"))
	fs.FailOp(storetest.OpList, "", boom, 1)
	if _, err := fs.List(); !errors.Is(err, boom) {
		t.Fatalf("List: %v, want injected error", err)
	}
	zones, err := fs.List()
	if err != nil || len(zones) != 1 || zones[0] != "z" {
		t.Fatalf("List = %v, %v", zones, err)
	}
}
