// Package storetest provides a deterministic fault-injecting wrapper
// around any store.Store, for pinning the serving layer's degradation
// contract: rehydrate failures must surface as typed errors with the
// zone still registered, eviction write failures must leave the zone
// hot and serving, and torn payloads must fail closed through the
// snapshot codec's integrity checks. Faults are scripted per operation
// — no randomness — so every failure a test provokes is reproducible.
package storetest

import (
	"sync"
	"time"

	"tafloc/internal/store"
)

// Op names one Store operation for fault scripting and call accounting.
type Op string

// The four Store operations.
const (
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpDelete Op = "delete"
	OpList   Op = "list"
)

// Forever makes a fault rule apply to every matching call until the
// rule is cleared, rather than a fixed number of times.
const Forever = -1

// rule is one armed fault. zone == "" matches every zone.
type rule struct {
	err     error
	latency time.Duration
	tear    int // truncate Get results to this many bytes when >= 0
	remain  int // calls left; Forever = unlimited
}

// FaultStore wraps an inner Store and injects scripted faults. The
// zero value is not usable; build one with New. All methods are safe
// for concurrent use — the serving layer under test hits the store
// from many goroutines at once.
type FaultStore struct {
	inner store.Store

	mu    sync.Mutex
	rules map[Op]map[string]*rule
	calls map[Op]map[string]int
}

// New wraps inner with no faults armed.
func New(inner store.Store) *FaultStore {
	return &FaultStore{
		inner: inner,
		rules: make(map[Op]map[string]*rule),
		calls: make(map[Op]map[string]int),
	}
}

// FailOp arms op against zone to return err for the next n calls
// (Forever for all). zone == "" matches every zone. The inner store is
// not touched by a failed call, so a failed Put stores nothing.
func (f *FaultStore) FailOp(op Op, zone string, err error, n int) {
	f.arm(op, zone, &rule{err: err, tear: -1, remain: n})
}

// DelayOp arms op against zone to sleep d before running for the next
// n calls (Forever for all). The call still reaches the inner store.
func (f *FaultStore) DelayOp(op Op, zone string, d time.Duration, n int) {
	f.arm(op, zone, &rule{latency: d, tear: -1, remain: n})
}

// TearGet arms Get against zone to return only the first keep bytes of
// the stored snapshot for the next n calls (Forever for all) — a torn
// read the snapshot codec must reject, never misdecode.
func (f *FaultStore) TearGet(zone string, keep int, n int) {
	if keep < 0 {
		keep = 0
	}
	f.arm(OpGet, zone, &rule{tear: keep, remain: n})
}

// Clear disarms every fault rule. Call accounting is kept.
func (f *FaultStore) Clear() {
	f.mu.Lock()
	f.rules = make(map[Op]map[string]*rule)
	f.mu.Unlock()
}

// Calls reports how many times op ran against zone (including faulted
// calls). zone == "" sums over all zones.
func (f *FaultStore) Calls(op Op, zone string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if zone != "" {
		return f.calls[op][zone]
	}
	total := 0
	for _, n := range f.calls[op] {
		total += n
	}
	return total
}

func (f *FaultStore) arm(op Op, zone string, r *rule) {
	f.mu.Lock()
	if f.rules[op] == nil {
		f.rules[op] = make(map[string]*rule)
	}
	f.rules[op][zone] = r
	f.mu.Unlock()
}

// before accounts one call and consumes a matching rule, returning the
// fault to apply. An exact-zone rule wins over the wildcard.
func (f *FaultStore) before(op Op, zone string) rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls[op] == nil {
		f.calls[op] = make(map[string]int)
	}
	f.calls[op][zone]++
	r := f.rules[op][zone]
	if r == nil {
		r = f.rules[op][""]
	}
	if r == nil || r.remain == 0 {
		return rule{tear: -1}
	}
	out := *r
	if r.remain != Forever {
		r.remain--
	}
	return out
}

// Put implements store.Store.
func (f *FaultStore) Put(zone string, data []byte) error {
	r := f.before(OpPut, zone)
	if r.latency > 0 {
		time.Sleep(r.latency)
	}
	if r.err != nil {
		return r.err
	}
	return f.inner.Put(zone, data)
}

// Get implements store.Store.
func (f *FaultStore) Get(zone string) ([]byte, error) {
	r := f.before(OpGet, zone)
	if r.latency > 0 {
		time.Sleep(r.latency)
	}
	if r.err != nil {
		return nil, r.err
	}
	data, err := f.inner.Get(zone)
	if err == nil && r.tear >= 0 && r.tear < len(data) {
		data = data[:r.tear]
	}
	return data, err
}

// Delete implements store.Store.
func (f *FaultStore) Delete(zone string) error {
	r := f.before(OpDelete, zone)
	if r.latency > 0 {
		time.Sleep(r.latency)
	}
	if r.err != nil {
		return r.err
	}
	return f.inner.Delete(zone)
}

// List implements store.Store. List faults are armed under zone "".
func (f *FaultStore) List() ([]string, error) {
	r := f.before(OpList, "")
	if r.latency > 0 {
		time.Sleep(r.latency)
	}
	if r.err != nil {
		return nil, r.err
	}
	return f.inner.List()
}
