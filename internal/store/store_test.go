package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tafloc/internal/store"
)

// backends enumerates the production Store implementations; every
// conformance test below runs against each, so the two backends can
// never drift apart semantically.
func backends(t *testing.T) map[string]store.Store {
	t.Helper()
	return map[string]store.Store{
		"dir": store.NewDir(filepath.Join(t.TempDir(), "state")),
		"mem": store.NewMem(),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Get("z"); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
			}
			want := []byte("snapshot-bytes-v1")
			if err := st.Put("z", want); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := st.Get("z")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
			// Overwrite replaces.
			want2 := []byte("snapshot-bytes-v2")
			if err := st.Put("z", want2); err != nil {
				t.Fatalf("Put overwrite: %v", err)
			}
			if got, _ := st.Get("z"); !reflect.DeepEqual(got, want2) {
				t.Fatalf("Get after overwrite = %q, want %q", got, want2)
			}
		})
	}
}

// TestGetIsCallerCopy pins that mutating a Get result (or the buffer
// passed to Put) cannot corrupt the stored snapshot.
func TestGetIsCallerCopy(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			buf := []byte("pristine")
			if err := st.Put("z", buf); err != nil {
				t.Fatalf("Put: %v", err)
			}
			buf[0] = 'X' // caller reuses its buffer after Put
			got, err := st.Get("z")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			got[0] = 'Y' // caller scribbles on its copy
			again, _ := st.Get("z")
			if string(again) != "pristine" {
				t.Fatalf("stored snapshot corrupted to %q", again)
			}
		})
	}
}

func TestDeleteIdempotent(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Delete("never-stored"); err != nil {
				t.Fatalf("Delete of missing zone: %v", err)
			}
			if err := st.Put("z", []byte("x")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := st.Delete("z"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := st.Get("z"); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
			}
			if err := st.Delete("z"); err != nil {
				t.Fatalf("second Delete: %v", err)
			}
		})
	}
}

func TestListSortedAndHostile(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if zones, err := st.List(); err != nil || len(zones) != 0 {
				t.Fatalf("List on empty store = %v, %v", zones, err)
			}
			// Hostile IDs: path separators, dots, spaces — must round-trip
			// and never escape the store's namespace.
			ids := []string{"zone-b", "zone-a", "../escape", "with/slash", "dots..", "sp ace"}
			for _, id := range ids {
				if err := st.Put(id, []byte(id)); err != nil {
					t.Fatalf("Put(%q): %v", id, err)
				}
			}
			zones, err := st.List()
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			want := []string{"../escape", "dots..", "sp ace", "with/slash", "zone-a", "zone-b"}
			if !reflect.DeepEqual(zones, want) {
				t.Fatalf("List = %v, want %v", zones, want)
			}
			for _, id := range ids {
				got, err := st.Get(id)
				if err != nil || string(got) != id {
					t.Fatalf("Get(%q) = %q, %v", id, got, err)
				}
			}
		})
	}
}

// TestDirIgnoresForeignFiles pins that Dir only lists (and therefore
// only ever deletes) files it could have written itself.
func TestDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st := store.NewDir(dir)
	if err := st.Put("z", []byte("mine")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, name := range []string{"README.txt", "%zz-bad-escape.snap", "note.snap.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("foreign"), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.snap"), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	zones, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !reflect.DeepEqual(zones, []string{"z"}) {
		t.Fatalf("List = %v, want [z]", zones)
	}
}

// TestDirEscapesOutsideRoot pins that a traversal-shaped zone ID stays
// inside the store directory.
func TestDirEscapesOutsideRoot(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "state")
	st := store.NewDir(dir)
	if err := st.Put("../../victim", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "victim.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("zone ID escaped the store directory: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("store dir entries = %v, %v", entries, err)
	}
}

// TestDirMissingDirectory pins NewDir on a nonexistent path: List and
// Get behave as an empty store, and the directory appears on first Put.
func TestDirMissingDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	st := store.NewDir(dir)
	if zones, err := st.List(); err != nil || len(zones) != 0 {
		t.Fatalf("List = %v, %v", zones, err)
	}
	if _, err := st.Get("z"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if err := st.Delete("z"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := st.Put("z", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if zones, _ := st.List(); !reflect.DeepEqual(zones, []string{"z"}) {
		t.Fatalf("List after Put = %v", zones)
	}
}
