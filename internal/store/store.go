// Package store is the snapshot-store abstraction behind tiered zone
// storage: a small keyed blob interface over which the serving layer
// checkpoints, evicts, and rehydrates zone snapshots without caring
// where the bytes live. Two production backends ship with it — Dir, the
// atomic-rename local directory that Checkpoint/RestoreDir always used,
// and Mem, an in-process map for tests and cap-only deployments — and
// storetest adds a deterministic fault-injecting wrapper for pinning
// the degradation contract.
//
// The interface is deliberately byte-oriented: the snapshot codec
// (internal/snap) owns versioning and integrity, so a Store never
// inspects payloads and any backend that can round-trip opaque bytes
// under a zone ID qualifies. Keys are raw zone IDs; backends that need
// filesystem-safe names escape internally and keep the mapping
// reversible.
package store

import "errors"

// ErrNotFound reports that a store holds no snapshot for the requested
// zone. Backends return it (possibly wrapped) from Get so callers can
// distinguish "never stored" from an I/O failure with errors.Is.
var ErrNotFound = errors.New("store: snapshot not found")

// Store is a keyed snapshot store. Implementations must be safe for
// concurrent use: the serving layer calls into one store from executor
// workers, the checkpointer goroutine, and request handlers at once.
type Store interface {
	// Put durably stores data as the snapshot for zone, replacing any
	// previous one. Implementations must replace atomically — a reader
	// racing a Put sees either the old snapshot or the new one, never a
	// torn mix.
	Put(zone string, data []byte) error
	// Get returns the stored snapshot for zone, or an error matching
	// ErrNotFound when none exists. The returned slice is the caller's
	// own copy.
	Get(zone string) ([]byte, error)
	// Delete removes the snapshot for zone. Deleting a zone that has no
	// snapshot is not an error — Delete is how removal is made durable,
	// and removal must be idempotent.
	Delete(zone string) error
	// List returns the IDs of every stored zone, sorted.
	List() ([]string, error)
}
