package snap

import (
	"tafloc/taflocerr"
)

// Store-facing helpers: the codec side of tiered zone storage. The
// serving layer moves snapshots through an internal/store.Store; these
// helpers bind the codec to that byte interface without snap importing
// the store package (ByteStore is satisfied structurally), keeping the
// dependency arrow codec <- store-user rather than codec <-> store.

// ByteStore is the slice of internal/store.Store the codec needs: a
// keyed byte sink and source. internal/store.Store satisfies it.
type ByteStore interface {
	Put(zone string, data []byte) error
	Get(zone string) ([]byte, error)
}

// WriteStore encodes s and stores it under its own zone ID.
func WriteStore(st ByteStore, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	return st.Put(s.Zone, data)
}

// ReadStore loads and decodes the snapshot stored for zone. A payload
// that decodes to a different zone ID fails closed with
// taflocerr.CodeSnapshotCorrupt: the store handed back someone else's
// snapshot (a mislabelled backend, a torn namespace), and rehydrating a
// zone from another zone's radio map must never succeed silently.
func ReadStore(st ByteStore, zone string) (*Snapshot, error) {
	data, err := st.Get(zone)
	if err != nil {
		return nil, err
	}
	sn, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if sn.Zone != zone {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"snap: store returned snapshot for zone %q, want %q", sn.Zone, zone)
	}
	return sn, nil
}
