// Package snap is the persistence codec for calibrated TafLoc
// deployments: it serializes a zone's complete calibrated state (the
// core.SystemState — geometry, mask, reconstructed radio map, vacant
// baseline, reference cells, matcher name — plus the zone's effective
// serve configuration) into a versioned, CRC-checked binary snapshot,
// and decodes it back with strict validation.
//
// # Format
//
//	[0:8)   magic "TAFSNAP\x00"
//	[8:12)  format version, uint32 little-endian
//	[12:20) payload length, uint64 little-endian
//	[20:+n) payload (see below)
//	[+n:+4) CRC-32C (Castagnoli) of the payload, uint32 little-endian
//
// The payload is a flat little-endian encoding: strings and slices are
// length-prefixed with uint32 counts, floats are IEEE-754 bits, ints are
// int64. Nothing in the format is self-describing — the version number
// owns the layout, and a decoder that does not know the version refuses
// the file (taflocerr.CodeSnapshotVersion) instead of guessing.
//
// Version 2 (current) appends the zone's trajectory-serving state to
// the version-1 payload: the history depth, the trajectory filter
// options, and the live Kalman filter state, so a warm-started zone
// resumes its track. Decoders read both versions — a version-1 file
// yields a Snapshot with no Track state and zero-valued history/track
// config (the restoring service's defaults apply). Encode writes the
// current version; EncodeVersion writes an explicit one, which is how a
// deployment rolls snapshots back to a build that only reads v1.
//
// Decoding fails closed: a wrong magic or version yields
// taflocerr.CodeSnapshotVersion; truncation, trailing garbage, CRC
// mismatch, or any structurally impossible field (out-of-range lengths,
// dimension overflow) yields taflocerr.CodeSnapshotCorrupt. No input,
// however damaged, may panic the decoder — that invariant is pinned by
// the package fuzz test.
//
// WriteFile persists atomically: the snapshot is written to a temporary
// file in the destination directory, synced, and renamed over the final
// path, so a crash mid-checkpoint leaves the previous snapshot intact.
package snap

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/track"
	"tafloc/taflocerr"
)

// Version is the current snapshot format version. Decoders accept
// exactly the versions they implement; there is no forward compatibility.
const Version = 2

// VersionPrev is the oldest version this build still decodes (and can
// emit via EncodeVersion for rollbacks).
const VersionPrev = 1

// magic identifies a TafLoc snapshot file.
var magic = [8]byte{'T', 'A', 'F', 'S', 'N', 'A', 'P', 0}

// headerSize is magic + version + payload length.
const headerSize = 8 + 4 + 8

// maxDim bounds matrix dimensions and slice counts a decoder will
// accept; it exists purely so corrupt length fields fail fast instead of
// attempting absurd allocations.
const maxDim = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ZoneConfig is the per-zone serving configuration captured alongside
// the calibrated state, so a restored zone serves exactly as the
// original did regardless of the restoring service's own defaults.
type ZoneConfig struct {
	// Window is the per-link live-window length.
	Window int
	// DetectThresholdDB is the presence gate threshold; 0 means gating
	// is disabled (every batch localizes).
	DetectThresholdDB float64
	// Detector is the registry name of the presence detector.
	Detector string
	// History is the zone's history/trajectory ring depth: positive for
	// an explicit depth, -1 for explicitly disabled, 0 for "not recorded"
	// (version-1 snapshots), in which case the restoring service's
	// default applies.
	History int
	// Track holds the trajectory filter options; the zero value means
	// "not recorded" (version-1 snapshots) and selects the restoring
	// service's defaults.
	Track track.Options
}

// Snapshot is one calibrated deployment, ready to serialize.
type Snapshot struct {
	// Zone is the zone ID the deployment served under.
	Zone string
	// SavedAt is when the snapshot was captured.
	SavedAt time.Time
	// Config is the zone's effective serving configuration.
	Config ZoneConfig
	// State is the calibrated system state.
	State *core.SystemState
	// Track is the zone's live trajectory-filter state at capture time,
	// nil when the zone had tracking disabled (or the snapshot predates
	// version 2).
	Track *track.TrackerState
}

// Encode serializes s into the current version of the CRC-checked
// binary format.
func Encode(s *Snapshot) ([]byte, error) {
	return EncodeVersion(s, Version)
}

// EncodeVersion serializes s as an explicit format version — the
// current one, or VersionPrev to hand a snapshot to a build that only
// reads the previous layout (version 1 simply omits the trajectory
// state).
func EncodeVersion(s *Snapshot, version uint32) ([]byte, error) {
	if s == nil || s.State == nil {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest, "snap: nil snapshot")
	}
	if version < VersionPrev || version > Version {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest,
			"snap: cannot encode version %d (this build writes %d..%d)", version, VersionPrev, Version)
	}
	var e encoder
	e.str(s.Zone)
	e.i64(s.SavedAt.UnixNano())
	e.i64(int64(s.Config.Window))
	e.f64(s.Config.DetectThresholdDB)
	e.str(s.Config.Detector)

	st := s.State
	e.u32(uint32(len(st.Links)))
	for _, l := range st.Links {
		e.f64(l.A.X)
		e.f64(l.A.Y)
		e.f64(l.B.X)
		e.f64(l.B.Y)
	}
	e.f64(st.GridWidth)
	e.f64(st.GridHeight)
	e.f64(st.GridCellSize)
	e.f64(st.EllipseExcess)

	e.i64(int64(st.LoLi.Rank))
	e.f64(st.LoLi.Lambda)
	e.f64(st.LoLi.Alpha)
	e.f64(st.LoLi.Beta)
	e.f64(st.LoLi.Gamma)
	e.f64(st.LoLi.Mu)
	e.i64(int64(st.LoLi.MaxIter))
	e.f64(st.LoLi.Tol)
	e.f64(st.LoLi.CGTol)
	e.i64(int64(st.LoLi.CGMaxIter))

	e.f64(st.Refs.EnergyFrac)
	e.i64(int64(st.Refs.Min))
	e.i64(int64(st.Refs.Max))
	e.i64(int64(st.Refs.Count))

	e.str(st.MatcherName)
	e.f64(st.RecSigmaDB)
	e.f64(st.MaskThresholdDB)

	e.matrix(st.Mask)
	e.matrix(st.X)
	e.matrix(st.Observed)
	e.f64s(st.Vacant)
	e.ints(st.RefCells)

	if version >= 2 {
		e.i64(int64(s.Config.History))
		e.trackOptions(s.Config.Track)
		if s.Track == nil {
			e.buf = append(e.buf, 0)
		} else {
			e.buf = append(e.buf, 1)
			e.trackerState(s.Track)
		}
	}

	payload := e.buf
	out := make([]byte, 0, headerSize+len(payload)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out, nil
}

// Decode parses and validates a snapshot. Every failure carries a
// taflocerr code: CodeSnapshotVersion for wrong magic or unknown format
// version, CodeSnapshotCorrupt for truncation, trailing bytes, CRC
// mismatch, or structurally invalid content.
//
//tafloc:validates every length, offset, and dimension is bounds-checked before use; failures are CodeSnapshotCorrupt
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerSize+4 {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"snap: truncated snapshot: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotVersion, "snap: not a TafLoc snapshot")
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version < VersionPrev || version > Version {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotVersion,
			"snap: unsupported snapshot version %d (this build reads %d..%d)", version, VersionPrev, Version)
	}
	n := binary.LittleEndian.Uint64(data[12:headerSize])
	if n != uint64(len(data)-headerSize-4) {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"snap: payload length %d does not match file size", n)
	}
	payload := data[headerSize : headerSize+int(n)]
	want := binary.LittleEndian.Uint32(data[headerSize+int(n):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"snap: CRC mismatch: %08x != %08x", got, want)
	}

	d := decoder{buf: payload}
	s := &Snapshot{State: &core.SystemState{}}
	s.Zone = d.str()
	s.SavedAt = time.Unix(0, d.i64()).UTC()
	s.Config.Window = d.intv()
	s.Config.DetectThresholdDB = d.f64()
	s.Config.Detector = d.str()

	st := s.State
	nl := d.count()
	// Pre-check the byte bound (4 coordinates per link) before the
	// allocation, like every other slice decoder here — a tiny crafted
	// file must not provoke a huge make.
	if d.err == nil && nl*32 > len(d.buf)-d.pos {
		d.fail("truncated link list of %d", nl)
	}
	if d.err == nil {
		st.Links = make([]geom.Segment, nl)
		for i := range st.Links {
			st.Links[i].A.X = d.f64()
			st.Links[i].A.Y = d.f64()
			st.Links[i].B.X = d.f64()
			st.Links[i].B.Y = d.f64()
		}
	}
	st.GridWidth = d.f64()
	st.GridHeight = d.f64()
	st.GridCellSize = d.f64()
	st.EllipseExcess = d.f64()

	st.LoLi.Rank = d.intv()
	st.LoLi.Lambda = d.f64()
	st.LoLi.Alpha = d.f64()
	st.LoLi.Beta = d.f64()
	st.LoLi.Gamma = d.f64()
	st.LoLi.Mu = d.f64()
	st.LoLi.MaxIter = d.intv()
	st.LoLi.Tol = d.f64()
	st.LoLi.CGTol = d.f64()
	st.LoLi.CGMaxIter = d.intv()

	st.Refs.EnergyFrac = d.f64()
	st.Refs.Min = d.intv()
	st.Refs.Max = d.intv()
	st.Refs.Count = d.intv()

	st.MatcherName = d.str()
	st.RecSigmaDB = d.f64()
	st.MaskThresholdDB = d.f64()

	st.Mask = d.matrix()
	st.X = d.matrix()
	st.Observed = d.matrix()
	st.Vacant = d.f64s()
	st.RefCells = d.ints()

	if version >= 2 {
		s.Config.History = d.intv()
		s.Config.Track = d.trackOptions()
		if b := d.take(1); len(b) == 1 {
			switch b[0] {
			case 0:
			case 1:
				ts := d.trackerState()
				s.Track = &ts
			default:
				d.fail("invalid tracker presence flag %d", b[0])
			}
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.buf) {
		return nil, taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt,
			"snap: %d trailing payload bytes", len(d.buf)-d.pos)
	}
	return s, nil
}

// WriteFile atomically persists a snapshot: encode, write to a temporary
// file in path's directory, sync, rename over path. A crash at any point
// leaves either the previous file or the complete new one.
func WriteFile(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and validates a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// encoder appends little-endian primitives to a growing buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *encoder) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

// trackOptions writes the trajectory filter options flat.
func (e *encoder) trackOptions(o track.Options) {
	e.f64(o.ProcessStd)
	e.f64(o.MeasurementStd)
	e.f64(o.GateSigma)
	e.i64(int64(o.MaxCoast))
}

// trackerState writes the live trajectory-filter state flat (the
// presence flag is the caller's).
func (e *encoder) trackerState(ts *track.TrackerState) {
	e.trackOptions(ts.Filter.Opts)
	e.bool(ts.Filter.Initialized)
	e.i64(int64(ts.Filter.Coasts))
	e.f64(ts.Filter.X[0])
	e.f64(ts.Filter.X[1])
	e.f64(ts.Filter.Y[0])
	e.f64(ts.Filter.Y[1])
	for _, row := range [][2]float64{ts.Filter.PX[0], ts.Filter.PX[1], ts.Filter.PY[0], ts.Filter.PY[1]} {
		e.f64(row[0])
		e.f64(row[1])
	}
	e.bool(ts.HasFix)
	e.i64(ts.LastFix.UnixNano())
}

func (e *encoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// matrix writes a presence flag, dimensions, and the row-major data; a
// nil matrix writes just the zero flag.
func (e *encoder) matrix(m *mat.Matrix) {
	if m == nil {
		e.buf = append(e.buf, 0)
		return
	}
	e.buf = append(e.buf, 1)
	e.u32(uint32(m.Rows()))
	e.u32(uint32(m.Cols()))
	for _, x := range m.Raw() {
		e.f64(x)
	}
}

// decoder reads the payload back with strict bounds checking. The first
// failure latches into err; subsequent reads return zero values, so call
// sites stay linear and the caller checks err once.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = taflocerr.Errorf(taflocerr.CodeSnapshotCorrupt, "snap: "+format, args...)
	}
}

// take reserves n payload bytes, or fails on truncation.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.pos {
		d.fail("truncated payload at offset %d (need %d of %d bytes)", d.pos, n, len(d.buf)-d.pos)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// intv decodes an int64 that must fit the host int.
func (d *decoder) intv() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail("integer %d overflows host int", v)
		return 0
	}
	return int(v)
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// count decodes a slice length and sanity-bounds it before any
// allocation happens.
func (d *decoder) count() int {
	n := d.u32()
	if n > maxDim {
		d.fail("implausible element count %d", n)
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.count()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) f64s() []float64 {
	n := d.count()
	if d.err != nil {
		return nil
	}
	if n*8 > len(d.buf)-d.pos {
		d.fail("truncated float slice of %d", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) ints() []int {
	n := d.count()
	if d.err != nil {
		return nil
	}
	if n*8 > len(d.buf)-d.pos {
		d.fail("truncated int slice of %d", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.intv()
	}
	return out
}

func (d *decoder) bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte %d", b[0])
		return false
	}
}

func (d *decoder) trackOptions() track.Options {
	return track.Options{
		ProcessStd:     d.f64(),
		MeasurementStd: d.f64(),
		GateSigma:      d.f64(),
		MaxCoast:       d.intv(),
	}
}

func (d *decoder) trackerState() track.TrackerState {
	var ts track.TrackerState
	ts.Filter.Opts = d.trackOptions()
	ts.Filter.Initialized = d.bool()
	ts.Filter.Coasts = d.intv()
	ts.Filter.X = [2]float64{d.f64(), d.f64()}
	ts.Filter.Y = [2]float64{d.f64(), d.f64()}
	ts.Filter.PX = [2][2]float64{{d.f64(), d.f64()}, {d.f64(), d.f64()}}
	ts.Filter.PY = [2][2]float64{{d.f64(), d.f64()}, {d.f64(), d.f64()}}
	ts.HasFix = d.bool()
	ts.LastFix = time.Unix(0, d.i64()).UTC()
	return ts
}

func (d *decoder) matrix() *mat.Matrix {
	b := d.take(1)
	if b == nil {
		return nil
	}
	if b[0] == 0 {
		return nil
	}
	if b[0] != 1 {
		d.fail("invalid matrix presence flag %d", b[0])
		return nil
	}
	r, c := d.count(), d.count()
	if d.err != nil {
		return nil
	}
	if r*c > maxDim || r*c*8 > len(d.buf)-d.pos {
		d.fail("truncated %dx%d matrix", r, c)
		return nil
	}
	data := make([]float64, r*c)
	for i := range data {
		data[i] = d.f64()
	}
	if d.err != nil {
		return nil
	}
	return mat.NewFromSlice(r, c, data)
}
