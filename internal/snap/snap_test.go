package snap

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/track"
	"tafloc/taflocerr"
)

// testSnapshot builds a representative snapshot with every field
// populated (including the optional Observed matrix).
func testSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	grid, err := geom.NewGrid(3.0, 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	links := geom.CrossedDeployment(3.0, 2.0, 5)
	layout, err := core.NewLayout(links, grid, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	m, n := layout.M(), layout.N()
	survey := mat.New(m, n)
	vacant := make([]float64, m)
	for i := 0; i < m; i++ {
		vacant[i] = -40 - float64(i)
		for j := 0; j < n; j++ {
			survey.Set(i, j, -40-float64(i)-0.8*float64(j%7))
		}
	}
	sys, err := core.NewSystem(layout, survey, vacant, core.DefaultSystemOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := sys.ExportState()
	st.Observed = mat.New(m, n) // exercise the optional-matrix path
	trk, err := track.NewTracker(track.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trk.Observe(geom.Point{X: 1.2, Y: 0.8}, time.Unix(1_700_000_000, 0))
	trk.Observe(geom.Point{X: 1.4, Y: 0.9}, time.Unix(1_700_000_001, 0))
	ts := trk.Export()
	return &Snapshot{
		Zone:    "lobby/east wing",
		SavedAt: time.Unix(1_700_000_000, 123456789).UTC(),
		Config: ZoneConfig{
			Window:            6,
			DetectThresholdDB: 0.25,
			Detector:          "rms",
			History:           128,
			Track:             track.DefaultOptions(),
		},
		State: st,
		Track: &ts,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testSnapshot(t)
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Zone != want.Zone || !got.SavedAt.Equal(want.SavedAt) || got.Config != want.Config {
		t.Errorf("header round trip: %+v != %+v", got, want)
	}
	if !reflect.DeepEqual(got.State, want.State) {
		t.Error("system state did not round-trip exactly")
	}
	if got.Track == nil {
		t.Fatal("tracker state lost in round trip")
	}
	if got.Track.Filter != want.Track.Filter || got.Track.HasFix != want.Track.HasFix ||
		!got.Track.LastFix.Equal(want.Track.LastFix) {
		t.Errorf("tracker state round trip: %+v != %+v", got.Track, want.Track)
	}

	// A nil Observed must round-trip to nil, not an empty matrix.
	want.State.Observed = nil
	data, err = Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Observed != nil {
		t.Error("nil Observed decoded non-nil")
	}
}

// TestDecodeTruncationFailsClosed chops the encoding at every length and
// requires a typed error — never a panic, never success.
func TestDecodeTruncationFailsClosed(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		sn, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully: %+v", n, sn)
		}
		if !errors.Is(err, taflocerr.ErrSnapshotCorrupt) && !errors.Is(err, taflocerr.ErrSnapshotVersion) {
			t.Fatalf("truncation to %d: error %v is not a snapshot error", n, err)
		}
	}
}

// TestDecodeBitFlipsFailClosed flips one bit at a sample of offsets; the
// CRC (or header validation) must catch every one.
func TestDecodeBitFlipsFailClosed(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 1 << (off % 8)
		if sn, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully: %+v", off, sn)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0xAA)); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
}

func TestDecodeVersionAndMagic(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	wrongMagic := append([]byte(nil), data...)
	wrongMagic[0] = 'X'
	if _, err := Decode(wrongMagic); !errors.Is(err, taflocerr.ErrSnapshotVersion) {
		t.Errorf("wrong magic: %v", err)
	}
	future := append([]byte(nil), data...)
	future[8] = Version + 1
	if _, err := Decode(future); !errors.Is(err, taflocerr.ErrSnapshotVersion) {
		t.Errorf("future version: %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("empty input: %v", err)
	}
}

// TestDecodeVersionPrev pins backward compatibility: a snapshot
// written in the previous format version still decodes — calibrated
// state intact, trajectory fields at their "not recorded" zero values —
// and EncodeVersion refuses versions outside the supported range.
func TestDecodeVersionPrev(t *testing.T) {
	want := testSnapshot(t)
	data, err := EncodeVersion(want, VersionPrev)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(v2) {
		t.Errorf("v1 encoding (%d bytes) not smaller than v2 (%d)", len(data), len(v2))
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode v%d: %v", VersionPrev, err)
	}
	if got.Zone != want.Zone || !got.SavedAt.Equal(want.SavedAt) {
		t.Errorf("v1 header: %+v", got)
	}
	if got.Config.Window != want.Config.Window || got.Config.Detector != want.Config.Detector {
		t.Errorf("v1 config: %+v", got.Config)
	}
	if !reflect.DeepEqual(got.State, want.State) {
		t.Error("v1 system state did not round-trip exactly")
	}
	if got.Config.History != 0 || got.Config.Track != (track.Options{}) || got.Track != nil {
		t.Errorf("v1 decode invented trajectory state: %+v track=%+v", got.Config, got.Track)
	}

	if _, err := EncodeVersion(want, 0); err == nil {
		t.Error("EncodeVersion(0) succeeded")
	}
	if _, err := EncodeVersion(want, Version+1); err == nil {
		t.Error("EncodeVersion(future) succeeded")
	}
}

func TestWriteReadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lobby.snap")
	want := testSnapshot(t)
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.State, want.State) {
		t.Error("file round trip lost state")
	}
	// Overwrite must go through the same atomic path and leave no temp
	// files behind.
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after overwrite, want only the snapshot", len(entries))
	}
}

// FuzzDecode pins the decoder's no-panic invariant on arbitrary input,
// and on mutations of a valid snapshot (the corpus seed).
func FuzzDecode(f *testing.F) {
	data, err := Encode(testSnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		sn, err := Decode(b)
		if err == nil {
			// Whatever decodes must re-encode; the codec may not accept
			// states it cannot represent.
			if _, err := Encode(sn); err != nil {
				t.Fatalf("decoded snapshot does not re-encode: %v", err)
			}
		}
	})
}
