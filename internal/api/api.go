// Package api holds the wire data types shared by the service's HTTP
// surface (internal/serve) and the typed client SDK (package client).
// Keeping one definition of every request and response body guarantees
// the two sides cannot drift: the server marshals and the client
// unmarshals the same structs.
//
// JSON field order and tags on Report, Estimate, and ZoneStats are part
// of the frozen /v1 contract — new fields may only be appended with
// omitempty so that /v1 responses stay byte-identical.
package api

import (
	"time"

	"tafloc/internal/geom"
	"tafloc/taflocerr"
)

// Report is one RSS sample addressed to one link of a zone.
type Report struct {
	// Link is the link index within the zone's deployment.
	Link int `json:"link"`
	// RSS is the sample in dBm.
	RSS float64 `json:"rss"`
	// Vacant marks a sample known to be taken with no target present.
	// Vacant samples additionally refresh the zone's vacant baseline, so
	// presence detection tracks environmental drift between fingerprint
	// updates.
	Vacant bool `json:"vacant,omitempty"`
}

// Estimate is a zone's most recent position estimate, as published to
// the read-mostly snapshot and streamed to watchers.
type Estimate struct {
	// Zone is the zone ID the estimate belongs to.
	Zone string `json:"zone"`
	// Seq increases by one per published estimate across the service, so
	// readers can order estimates and detect staleness.
	Seq uint64 `json:"seq"`
	// Present reports whether the detection gate saw a target; when it is
	// false the location fields are zero and Cell is -1.
	Present bool `json:"present"`
	// DeviationDB is the live vector's mean absolute deviation from the
	// zone's vacant baseline (the detection signal).
	DeviationDB float64 `json:"deviation_db"`
	// Cell is the best-matching grid cell (-1 when absent).
	Cell int `json:"cell"`
	// Point is the fine-grained position estimate in metres.
	Point geom.Point `json:"point"`
	// Distance is the fingerprint-space distance of the winning match.
	Distance float64 `json:"distance"`
	// Confidence is the matcher's posterior mass when it computes one.
	Confidence float64 `json:"confidence,omitempty"`
	// Reports is the total number of reports the zone had consumed when
	// the estimate was computed.
	Reports uint64 `json:"reports"`
	// Time is when the estimate was published.
	Time time.Time `json:"time"`
	// Final marks the terminal event a watch stream receives when its
	// zone is removed; no further estimates follow. Never set on
	// snapshot reads, so /v1 bodies are unchanged.
	Final bool `json:"final,omitempty"`
}

// ZoneStats snapshots one zone's counters.
type ZoneStats struct {
	// Received counts reports accepted into the queue.
	Received uint64 `json:"received"`
	// Dropped counts reports shed because the queue was full or the link
	// index was out of range.
	Dropped uint64 `json:"dropped"`
	// Batches counts processing rounds (batched match queries answered).
	Batches uint64 `json:"batches"`
	// Estimates counts published estimates.
	Estimates uint64 `json:"estimates"`
	// MatchErrors counts batches whose match query failed; a zone whose
	// MatchErrors advances while Estimates stalls is misconfigured, not
	// warming up.
	MatchErrors uint64 `json:"match_errors,omitempty"`
	// Starved counts fold rounds that produced no estimate because some
	// link had never reported: the distinction between "no estimate
	// because nothing is happening" and "no estimate because part of the
	// deployment is silent". It normally ticks a few times during
	// warm-up (per-link transports deliver the first full coverage over
	// several rounds) and then stops; a zone whose Starved KEEPS
	// advancing while Estimates stays zero has a dead or misaddressed
	// link, not an empty room.
	Starved uint64 `json:"starved,omitempty"`
	// QueueLen is the instantaneous number of pending batches.
	QueueLen int `json:"queue_len"`
	// Cold reports that the zone's Model is currently evicted to the
	// snapshot store (tiered storage); the zone still serves — its next
	// report, locate, track, or snapshot request rehydrates it. Hot
	// zones omit the field, so services without a hot-zone cap keep
	// their exact pre-tiering stats bodies.
	Cold bool `json:"cold,omitempty"`
	// Evictions counts hot→cold transitions (Model checkpointed to the
	// store and dropped).
	Evictions uint64 `json:"evictions,omitempty"`
	// Rehydrates counts cold→hot transitions (Model restored from the
	// store on demand).
	Rehydrates uint64 `json:"rehydrates,omitempty"`
	// RehydrateErrors counts failed rehydrate attempts: the store read
	// failed or the stored snapshot no longer validates. The zone stays
	// registered and retries on its next touch; a zone whose
	// RehydrateErrors keeps advancing has a broken or corrupted store
	// behind it.
	RehydrateErrors uint64 `json:"rehydrate_errors,omitempty"`
	// EvictErrors counts evictions aborted because the checkpoint write
	// failed; the zone stayed hot and kept serving (graceful
	// degradation costs memory headroom, never estimates).
	EvictErrors uint64 `json:"evict_errors,omitempty"`
}

// ReportRequest is the body of POST /v1/report and POST /v2/report.
type ReportRequest struct {
	Zone    string   `json:"zone"`
	Reports []Report `json:"reports"`
}

// ReportResponse is the success body of the report endpoints.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// ZoneList is the body of GET /v1/zones and GET /v2/zones.
type ZoneList struct {
	Zones []string `json:"zones"`
}

// ZoneSpec parameterizes server-side zone creation for POST
// /v2/zones/{id}. What a server does with it depends on its configured
// zone factory; cmd/tafloc-serve builds a simulated deployment of the
// requested geometry. Zero values select the factory's defaults.
type ZoneSpec struct {
	// Width and Height are the monitored area in metres.
	Width  float64 `json:"width,omitempty"`
	Height float64 `json:"height,omitempty"`
	// Links is the number of radio links to deploy.
	Links int `json:"links,omitempty"`
	// CellSize is the grid cell edge in metres.
	CellSize float64 `json:"cell_size,omitempty"`
	// Days is the simulated environment age at the day-0 survey.
	Days float64 `json:"days,omitempty"`
}

// ZoneInfo is the success body of POST/DELETE /v2/zones/{id}.
type ZoneInfo struct {
	Zone string `json:"zone"`
	// Links and Cells describe the created zone's deployment (creation
	// responses only).
	Links int `json:"links,omitempty"`
	Cells int `json:"cells,omitempty"`
	// Removed is true on deletion responses.
	Removed bool `json:"removed,omitempty"`
}

// Health is the body of GET /v2/healthz. (/v1/healthz keeps its frozen
// ad-hoc shape for compatibility.)
type Health struct {
	Status  string               `json:"status"`
	Zones   int                  `json:"zones"`
	UptimeS float64              `json:"uptime_s"`
	Stats   map[string]ZoneStats `json:"stats"`
	// Streams is the number of NDJSON report streams currently open
	// against the service.
	Streams int `json:"streams,omitempty"`
	// HotZones is the number of zones currently holding a resident
	// Model — equal to Zones on a service without a hot-zone cap,
	// smaller once the residency tier is evicting. Omitted when zero.
	HotZones int `json:"hot_zones,omitempty"`
}

// StreamAck is one response line of the NDJSON report stream
// (POST /v2/zones/{id}/reports:stream). Regular lines acknowledge one
// request line: Seq is the 1-based request line number, and either
// Accepted carries the number of reports taken into the zone's queue or
// Code/Error classify why the line's batch was not (queue_full for a
// shed batch, bad_link / bad_request for a rejected one — the stream
// itself continues either way). The final line of every stream carries
// Trailer instead: the summary the server writes before ending the
// response, whether the stream ended by client EOF, zone removal, or a
// malformed-beyond-recovery request.
type StreamAck struct {
	Seq      uint64         `json:"seq,omitempty"`
	Accepted int            `json:"accepted,omitempty"`
	Code     taflocerr.Code `json:"code,omitempty"`
	Error    string         `json:"error,omitempty"`
	Trailer  *StreamSummary `json:"trailer,omitempty"`
}

// StreamSummary is the trailer of an NDJSON report stream: cumulative
// accounting over the whole stream. Reports = Accepted + Shed +
// Rejected always holds (a line that fails to parse contributes to
// Lines only).
type StreamSummary struct {
	// Lines is the number of request lines read.
	Lines uint64 `json:"lines"`
	// Reports is the number of reports parsed from them.
	Reports uint64 `json:"reports"`
	// Accepted counts reports accepted into the zone's queue.
	Accepted uint64 `json:"accepted"`
	// Shed counts reports shed because the zone's bounded queue was full
	// (the stream's backpressure signal — slow down or retry later).
	Shed uint64 `json:"shed"`
	// Rejected counts reports in batches rejected by validation (an
	// out-of-range link index, or the zone disappearing mid-stream).
	Rejected uint64 `json:"rejected"`
}

// TrackPoint is one sample of a zone's smoothed trajectory: the raw
// published estimate plus the trajectory filter's state after folding
// it. Point/Velocity/PosStd come from the constant-velocity Kalman
// filter (internal/track); Accepted is false when the fix failed the
// innovation gate and the filter coasted on its motion model instead.
type TrackPoint struct {
	// Seq is the published estimate's sequence number, so track points
	// join against the raw history stream.
	Seq uint64 `json:"seq"`
	// Time is when the underlying estimate was published.
	Time time.Time `json:"time"`
	// Cell is the raw best-matching grid cell.
	Cell int `json:"cell"`
	// Raw is the unsmoothed position estimate in metres.
	Raw geom.Point `json:"raw"`
	// Point is the smoothed position in metres.
	Point geom.Point `json:"point"`
	// Velocity is the estimated velocity in metres per second.
	Velocity geom.Point `json:"velocity"`
	// PosStd is the 1-sigma position uncertainty in metres.
	PosStd float64 `json:"pos_std"`
	// Accepted reports whether the fix passed the innovation gate.
	Accepted bool `json:"accepted"`
}

// TrackResponse is the body of GET /v2/zones/{id}/track.
type TrackResponse struct {
	Zone string `json:"zone"`
	// Points is the smoothed trajectory, oldest first.
	Points []TrackPoint `json:"points"`
}

// HistoryResponse is the body of GET /v2/zones/{id}/history.
type HistoryResponse struct {
	Zone string `json:"zone"`
	// Estimates is the raw published-estimate history, oldest first.
	Estimates []Estimate `json:"estimates"`
}

// ErrorBody is the error response shape of the /v2 endpoints: the /v1
// {"error": msg} body plus the taxonomy code.
type ErrorBody struct {
	Error string         `json:"error"`
	Code  taflocerr.Code `json:"code,omitempty"`
}
