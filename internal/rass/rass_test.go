package rass

import (
	"testing"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rf"
)

func testSetup(t *testing.T, seed uint64) (*Tracker, *rf.Channel, *geom.Grid) {
	t.Helper()
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	links := geom.CrossedDeployment(7.2, 4.8, 10)
	p := rf.DefaultParams()
	p.Seed = seed
	ch, err := rf.NewChannel(p, links, grid)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.TrueFingerprint(0)
	vac := ch.TrueVacant(0)
	tr, err := NewTracker(x, vac, grid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr, ch, grid
}

func TestNewTrackerValidation(t *testing.T) {
	grid, _ := geom.NewGrid(6, 6, 0.6)
	x := mat.New(4, 100)
	vac := make([]float64, 4)
	if _, err := NewTracker(nil, vac, grid, DefaultOptions()); err == nil {
		t.Fatal("accepted nil database")
	}
	if _, err := NewTracker(x, vac, nil, DefaultOptions()); err == nil {
		t.Fatal("accepted nil grid")
	}
	if _, err := NewTracker(x, vac[:2], grid, DefaultOptions()); err == nil {
		t.Fatal("accepted short vacant")
	}
	if _, err := NewTracker(mat.New(4, 7), vac, grid, DefaultOptions()); err == nil {
		t.Fatal("accepted grid/database mismatch")
	}
}

func TestLocateFreshDatabase(t *testing.T) {
	tr, ch, _ := testSetup(t, 1)
	targets := []geom.Point{
		{X: 1.5, Y: 1.5}, {X: 3.3, Y: 2.7}, {X: 5.1, Y: 3.3}, {X: 6.3, Y: 0.9},
	}
	vac := ch.TrueVacant(0)
	var total float64
	for _, target := range targets {
		live := make([]float64, ch.M())
		for i := range live {
			live[i] = ch.TargetRSS(i, target, 0)
		}
		got, err := tr.Locate(live, vac)
		if err != nil {
			t.Fatal(err)
		}
		total += got.Dist(target)
	}
	if mean := total / float64(len(targets)); mean > 1.2 {
		t.Fatalf("RASS fresh-database mean error %.2f m too large", mean)
	}
}

func TestLocateDegradesWithStaleDatabase(t *testing.T) {
	// The premise of Fig 5: RASS on day-0 fingerprints degrades after 90
	// days of drift, and refreshing the database restores accuracy.
	tr, ch, grid := testSetup(t, 2)
	const days = 90
	targets := []geom.Point{
		{X: 1.5, Y: 2.1}, {X: 3.9, Y: 1.5}, {X: 5.7, Y: 3.3}, {X: 2.7, Y: 3.9},
	}
	evalT := func(tracker *Tracker, liveVacant []float64) float64 {
		var total float64
		for _, target := range targets {
			live := make([]float64, ch.M())
			for i := range live {
				live[i] = ch.TargetRSS(i, target, days)
			}
			got, err := tracker.Locate(live, liveVacant)
			if err != nil {
				t.Fatal(err)
			}
			total += got.Dist(target)
		}
		return total / float64(len(targets))
	}
	staleErr := evalT(tr, ch.TrueVacant(days))

	fresh, err := NewTracker(ch.TrueFingerprint(days), ch.TrueVacant(days), grid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	freshErr := evalT(fresh, ch.TrueVacant(days))
	if freshErr >= staleErr {
		t.Fatalf("fresh database (%.2f m) not better than stale (%.2f m)", freshErr, staleErr)
	}
	t.Logf("RASS 90-day: stale %.2f m vs fresh %.2f m", staleErr, freshErr)
}

func TestSetDatabaseSwaps(t *testing.T) {
	tr, ch, _ := testSetup(t, 3)
	if err := tr.SetDatabase(ch.TrueFingerprint(30), ch.TrueVacant(30)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDatabase(mat.New(0, 0), nil); err == nil {
		t.Fatal("accepted empty database")
	}
}

func TestSetDatabaseClones(t *testing.T) {
	tr, ch, _ := testSetup(t, 4)
	x := ch.TrueFingerprint(0)
	vac := ch.TrueVacant(0)
	if err := tr.SetDatabase(x, vac); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copies must not affect the tracker.
	x.Set(0, 0, 999)
	vac[0] = 999
	target := geom.Point{X: 3.3, Y: 2.1}
	live := make([]float64, ch.M())
	for i := range live {
		live[i] = ch.TargetRSS(i, target, 0)
	}
	got, err := tr.Locate(live, ch.TrueVacant(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(target) > 1.5 {
		t.Fatal("tracker state was corrupted by caller mutation")
	}
}

func TestLocateValidation(t *testing.T) {
	tr, _, _ := testSetup(t, 5)
	if _, err := tr.Locate(make([]float64, 3), make([]float64, 10)); err == nil {
		t.Fatal("accepted short live vector")
	}
	if _, err := tr.Locate(make([]float64, 10), make([]float64, 3)); err == nil {
		t.Fatal("accepted short vacant vector")
	}
}

func TestLocateNoAffectedLinksFallsBack(t *testing.T) {
	tr, ch, _ := testSetup(t, 6)
	// Live equals vacant: no dynamics anywhere; must not error.
	vac := ch.TrueVacant(0)
	if _, err := tr.Locate(vac, vac); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
}

func TestOptionsEdgeCases(t *testing.T) {
	grid, _ := geom.NewGrid(7.2, 4.8, 0.6)
	links := geom.CrossedDeployment(7.2, 4.8, 10)
	p := rf.DefaultParams()
	ch, err := rf.NewChannel(p, links, grid)
	if err != nil {
		t.Fatal(err)
	}
	// TopLinks and K of zero fall back to defaults; huge values clamp.
	for _, opts := range []Options{
		{TopLinks: 0, K: 0},
		{TopLinks: 1000, K: 1000, MinDynamic: 0.5},
	} {
		tr, err := NewTracker(ch.TrueFingerprint(0), ch.TrueVacant(0), grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		target := geom.Point{X: 3.3, Y: 2.1}
		live := make([]float64, ch.M())
		for i := range live {
			live[i] = ch.TargetRSS(i, target, 0)
		}
		if _, err := tr.Locate(live, ch.TrueVacant(0)); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}
