// Package rass implements the RASS baseline (Zhang et al., IEEE TPDS
// 2013: "RASS: A Real-time, Accurate, and Scalable System for Tracking
// Transceiver-free Objects") in the form the TafLoc paper compares
// against: a fingerprint-matching tracker over RSS-dynamics signatures.
//
// RASS works on the *change* each link experiences relative to the vacant
// baseline (its "RSS dynamics") rather than on absolute RSS, selects the
// most-affected links for each estimate, and interpolates between the
// best-matching fingerprint cells weighted by signature similarity. Its
// database ages exactly like any fingerprint system's — which is what the
// paper's Fig 5 exploits: "RASS w/o rec." runs on the stale day-0
// database, while "RASS w/ rec." runs on a database refreshed by TafLoc's
// LoLi-IR reconstruction, demonstrating that the reconstruction scheme
// transfers to other fingerprint systems.
package rass

import (
	"fmt"
	"math"
	"sort"

	"tafloc/internal/geom"
	"tafloc/internal/mat"
)

// Options configures the tracker.
type Options struct {
	// TopLinks is the number of most-affected links used in matching;
	// zero uses all links.
	TopLinks int
	// K is the number of candidate cells interpolated (default 3).
	K int
	// MinDynamic (dB) is the link-change magnitude below which a link is
	// considered unaffected and excluded from TopLinks selection.
	MinDynamic float64
}

// DefaultOptions returns the configuration used in the comparisons.
func DefaultOptions() Options {
	return Options{TopLinks: 6, K: 3, MinDynamic: 0.5}
}

// Tracker is a RASS instance bound to one fingerprint database. Create a
// new Tracker (or call SetDatabase) when the database is refreshed.
type Tracker struct {
	grid *geom.Grid
	opts Options

	x      *mat.Matrix // fingerprint database (M x N), absolute RSS
	vacant []float64   // vacant baseline the database is relative to
	dyn    *mat.Matrix // precomputed dynamics: vacant_i - x_ij
}

// NewTracker builds a tracker over a fingerprint database and the vacant
// baseline captured with it.
func NewTracker(x *mat.Matrix, vacant []float64, grid *geom.Grid, opts Options) (*Tracker, error) {
	t := &Tracker{grid: grid, opts: opts}
	if err := t.SetDatabase(x, vacant); err != nil {
		return nil, err
	}
	return t, nil
}

// SetDatabase swaps in a new fingerprint database (e.g. a TafLoc
// reconstruction) and its vacant baseline.
func (t *Tracker) SetDatabase(x *mat.Matrix, vacant []float64) error {
	if x == nil || x.Rows() == 0 || x.Cols() == 0 {
		return fmt.Errorf("rass: empty database")
	}
	if t.grid == nil || t.grid.Cells() != x.Cols() {
		return fmt.Errorf("rass: grid/database mismatch")
	}
	if len(vacant) != x.Rows() {
		return fmt.Errorf("rass: vacant length %d != links %d", len(vacant), x.Rows())
	}
	dyn := mat.New(x.Rows(), x.Cols())
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			dyn.Set(i, j, vacant[i]-x.At(i, j))
		}
	}
	t.x = x.Clone()
	t.vacant = append([]float64(nil), vacant...)
	t.dyn = dyn
	return nil
}

// Locate estimates the target position from a live measurement vector.
// liveVacant is the *current* vacant baseline used to form the live
// dynamics (pass the stored one if no fresh capture exists).
func (t *Tracker) Locate(live, liveVacant []float64) (geom.Point, error) {
	m := t.x.Rows()
	if len(live) != m || len(liveVacant) != m {
		return geom.Point{}, fmt.Errorf("rass: measurement length mismatch")
	}
	// Live dynamics.
	d := make([]float64, m)
	for i := range d {
		d[i] = liveVacant[i] - live[i]
	}
	// Select the most-affected links.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(d[idx[a]]) > math.Abs(d[idx[b]])
	})
	top := t.opts.TopLinks
	if top <= 0 || top > m {
		top = m
	}
	sel := idx[:0:0]
	for _, i := range idx[:top] {
		if math.Abs(d[i]) >= t.opts.MinDynamic {
			sel = append(sel, i)
		}
	}
	if len(sel) == 0 {
		// No link sees the target; fall back to all links so we still
		// return the best guess instead of failing.
		sel = idx
	}
	// Match dynamics signatures over the selected links.
	n := t.x.Cols()
	type cand struct {
		j    int
		dist float64
	}
	cands := make([]cand, n)
	for j := 0; j < n; j++ {
		var s float64
		for _, i := range sel {
			diff := t.dyn.At(i, j) - d[i]
			s += diff * diff
		}
		cands[j] = cand{j, math.Sqrt(s)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	k := t.opts.K
	if k <= 0 {
		k = 3
	}
	if k > n {
		k = n
	}
	var wx, wy, wsum float64
	const eps = 1e-6
	for _, c := range cands[:k] {
		w := 1 / (c.dist + eps)
		p := t.grid.Center(c.j)
		wx += w * p.X
		wy += w * p.Y
		wsum += w
	}
	return geom.Point{X: wx / wsum, Y: wy / wsum}, nil
}

// Grid returns the tracker's grid.
func (t *Tracker) Grid() *geom.Grid { return t.grid }
