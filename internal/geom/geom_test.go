package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("Dot = %g", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %g", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Fatalf("Dist self = %g", got)
	}
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{6, 8}}
	if got := s.Length(); got != 10 {
		t.Fatalf("Length = %g", got)
	}
	if got := s.Midpoint(); got != (Point{3, 4}) {
		t.Fatalf("Midpoint = %v", got)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},   // perpendicular foot inside segment
		{Point{-3, 4}, 5},  // beyond A: distance to A
		{Point{13, -4}, 5}, // beyond B: distance to B
		{Point{7, 0}, 0},   // on the segment
		{Point{0, 0}, 0},   // endpoint
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestDistToPointDegenerateSegment(t *testing.T) {
	s := Segment{Point{2, 2}, Point{2, 2}}
	if got := s.DistToPoint(Point{5, 6}); got != 5 {
		t.Fatalf("degenerate DistToPoint = %g, want 5", got)
	}
}

func TestExcessPathLength(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	// On the LoS the excess is zero.
	if got := s.ExcessPathLength(Point{4, 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("on-path excess = %g", got)
	}
	// At (5,1): sqrt(26)+sqrt(26)-10.
	want := 2*math.Sqrt(26) - 10
	if got := s.ExcessPathLength(Point{5, 1}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("excess = %g, want %g", got, want)
	}
}

// Property: excess path length is non-negative (triangle inequality) and
// monotone with perpendicular distance at the midpoint.
func TestExcessPathLengthProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(_ int64) bool {
		s := Segment{
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		p := Point{rng.Float64() * 10, rng.Float64() * 10}
		return s.ExcessPathLength(p) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInEllipse(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if !s.InEllipse(Point{5, 0.1}, 0.5) {
		t.Fatal("point near LoS should be inside the ellipse")
	}
	if s.InEllipse(Point{5, 5}, 0.5) {
		t.Fatal("distant point should be outside the ellipse")
	}
	// Boundary consistency: a point whose excess equals the threshold is in.
	p := Point{5, 1}
	if !s.InEllipse(p, s.ExcessPathLength(p)) {
		t.Fatal("boundary point must be inside")
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5, 1); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewGrid(5, 5, -1); err == nil {
		t.Fatal("negative cell accepted")
	}
	if _, err := NewGrid(1, 5, 2); err == nil {
		t.Fatal("cell larger than area accepted")
	}
}

func TestGridPaperDimensions(t *testing.T) {
	// The paper covers 96 cells of 0.6 m: e.g. a 7.2 m x 4.8 m sub-area
	// gives 12 x 8 = 96 cells.
	g, err := NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 96 {
		t.Fatalf("Cells = %d, want 96", g.Cells())
	}
	if g.NX() != 12 || g.NY() != 8 {
		t.Fatalf("grid %dx%d, want 12x8", g.NX(), g.NY())
	}
}

func TestGridCenterCellAtRoundTrip(t *testing.T) {
	g, err := NewGrid(6, 6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.Cells(); j++ {
		c := g.Center(j)
		if got := g.CellAt(c); got != j {
			t.Fatalf("CellAt(Center(%d)) = %d", j, got)
		}
	}
}

func TestGridCellAtOutside(t *testing.T) {
	g, _ := NewGrid(6, 6, 0.6)
	for _, p := range []Point{{-1, 3}, {3, -1}, {7, 3}, {3, 7}} {
		if got := g.CellAt(p); got != -1 {
			t.Fatalf("CellAt(%v) = %d, want -1", p, got)
		}
	}
}

func TestGridNeighbors4(t *testing.T) {
	g, _ := NewGrid(3, 3, 1) // 3x3 grid, indices 0..8
	cases := map[int]int{
		0: 2, // corner
		1: 3, // edge
		4: 4, // interior
	}
	for j, want := range cases {
		if got := len(g.Neighbors4(j)); got != want {
			t.Fatalf("Neighbors4(%d) count = %d, want %d", j, got, want)
		}
	}
	// Neighbour distance is exactly one cell size.
	for _, nb := range g.Neighbors4(4) {
		if d := g.CellDist(4, nb); math.Abs(d-1) > 1e-12 {
			t.Fatalf("neighbour distance = %g", d)
		}
	}
}

func TestGridNeighborsSymmetric(t *testing.T) {
	g, _ := NewGrid(6, 4.2, 0.6)
	for j := 0; j < g.Cells(); j++ {
		for _, nb := range g.Neighbors4(j) {
			found := false
			for _, back := range g.Neighbors4(nb) {
				if back == j {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", j, nb)
			}
		}
	}
}

func TestPerimeterPositionsOnBoundary(t *testing.T) {
	w, h := 12.0, 9.0
	pts := PerimeterPositions(w, h, 20)
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		onX := math.Abs(p.X) < 1e-9 || math.Abs(p.X-w) < 1e-9
		onY := math.Abs(p.Y) < 1e-9 || math.Abs(p.Y-h) < 1e-9
		if !onX && !onY {
			t.Fatalf("point %v not on boundary", p)
		}
		if p.X < -1e-9 || p.X > w+1e-9 || p.Y < -1e-9 || p.Y > h+1e-9 {
			t.Fatalf("point %v outside rectangle", p)
		}
	}
}

func TestPerimeterPositionsEmpty(t *testing.T) {
	if got := PerimeterPositions(5, 5, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestOppositeSidePairs(t *testing.T) {
	segs := OppositeSidePairs(12, 9, 10)
	if len(segs) != 10 {
		t.Fatalf("got %d links", len(segs))
	}
	for _, s := range segs {
		if s.A.Y != 0 || s.B.Y != 9 {
			t.Fatalf("link %v does not span the two sides", s)
		}
		if math.Abs(s.Length()-9) > 1e-12 {
			t.Fatalf("link length %g", s.Length())
		}
	}
}

func TestCrossedDeploymentCoversBothOrientations(t *testing.T) {
	segs := CrossedDeployment(12, 9, 10)
	if len(segs) != 10 {
		t.Fatalf("got %d links", len(segs))
	}
	var vert, horiz int
	for _, s := range segs {
		if s.A.X == s.B.X {
			vert++
		} else if s.A.Y == s.B.Y {
			horiz++
		} else {
			t.Fatalf("unexpected diagonal link %v", s)
		}
	}
	if vert == 0 || horiz == 0 {
		t.Fatalf("deployment must mix orientations: %d vertical, %d horizontal", vert, horiz)
	}
}
