// Package geom provides the planar geometry primitives the RF simulator
// and localization algorithms share: points, line segments, grids of
// cells, point-to-segment distance, and Fresnel-ellipse membership tests.
//
// All coordinates are metres in a room-local frame with the origin at the
// south-west corner.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D position in metres.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s*p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the inner product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String renders the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Segment is the directed line segment from A to B — the line-of-sight
// path of one radio link.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// DistToPoint returns the shortest distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := s.A.Add(d.Scale(t))
	return p.Dist(proj)
}

// ExcessPathLength returns |p-A| + |p-B| - |A-B|: how much longer the
// reflected path through p is than the direct path. The k-th Fresnel zone
// boundary is the locus where this equals k*lambda/2, so thresholding the
// excess path length implements an exact Fresnel-ellipse membership test.
func (s Segment) ExcessPathLength(p Point) float64 {
	return p.Dist(s.A) + p.Dist(s.B) - s.Length()
}

// InEllipse reports whether p lies inside the ellipse with foci A, B and
// excess-path-length parameter excess (i.e. within the Fresnel zone whose
// boundary has that excess). excess must be positive.
func (s Segment) InEllipse(p Point, excess float64) bool {
	return s.ExcessPathLength(p) <= excess
}

// Grid divides a rectangular monitoring area into square cells of side
// CellSize, indexed 0..Cells()-1 in row-major order (x fastest). This is
// the location discretization of the fingerprint matrix: one matrix
// column per cell.
type Grid struct {
	Width, Height float64 // area extent in metres
	CellSize      float64 // cell side in metres
	nx, ny        int
}

// NewGrid returns a grid covering width x height metres with square cells
// of side cellSize. Partial cells at the far edges are dropped, matching
// the paper's 96 cells of 0.6 m in a subset of the 12 m x 9 m room.
func NewGrid(width, height, cellSize float64) (*Grid, error) {
	if width <= 0 || height <= 0 || cellSize <= 0 {
		return nil, fmt.Errorf("geom: invalid grid %gx%g cell %g", width, height, cellSize)
	}
	if cellSize > width || cellSize > height {
		return nil, fmt.Errorf("geom: cell size %g exceeds area %gx%g", cellSize, width, height)
	}
	return &Grid{
		Width: width, Height: height, CellSize: cellSize,
		nx: int(width / cellSize), ny: int(height / cellSize),
	}, nil
}

// NX returns the number of cells along x.
func (g *Grid) NX() int { return g.nx }

// NY returns the number of cells along y.
func (g *Grid) NY() int { return g.ny }

// Cells returns the total number of cells N.
func (g *Grid) Cells() int { return g.nx * g.ny }

// Center returns the centre point of cell j.
func (g *Grid) Center(j int) Point {
	g.checkCell(j)
	ix := j % g.nx
	iy := j / g.nx
	return Point{
		X: (float64(ix) + 0.5) * g.CellSize,
		Y: (float64(iy) + 0.5) * g.CellSize,
	}
}

// CellAt returns the index of the cell containing p, or -1 when p lies
// outside the gridded area.
func (g *Grid) CellAt(p Point) int {
	ix := int(math.Floor(p.X / g.CellSize))
	iy := int(math.Floor(p.Y / g.CellSize))
	if ix < 0 || ix >= g.nx || iy < 0 || iy >= g.ny {
		return -1
	}
	return iy*g.nx + ix
}

// Neighbors4 returns the indices of the 4-connected neighbours of cell j
// (used to build the continuity operator G along link paths).
func (g *Grid) Neighbors4(j int) []int {
	g.checkCell(j)
	ix := j % g.nx
	iy := j / g.nx
	out := make([]int, 0, 4)
	if ix > 0 {
		out = append(out, j-1)
	}
	if ix < g.nx-1 {
		out = append(out, j+1)
	}
	if iy > 0 {
		out = append(out, j-g.nx)
	}
	if iy < g.ny-1 {
		out = append(out, j+g.nx)
	}
	return out
}

// CellDist returns the Euclidean distance between the centres of cells
// j1 and j2.
func (g *Grid) CellDist(j1, j2 int) float64 {
	return g.Center(j1).Dist(g.Center(j2))
}

func (g *Grid) checkCell(j int) {
	if j < 0 || j >= g.Cells() {
		panic(fmt.Sprintf("geom: cell %d out of range %d", j, g.Cells()))
	}
}

// PerimeterPositions returns n points evenly spaced along the rectangle
// boundary of a w x h area, starting at the origin corner and proceeding
// counter-clockwise. It is the canonical transceiver placement: the paper
// deploys link endpoints "on the two sides of the monitoring area".
func PerimeterPositions(w, h float64, n int) []Point {
	if n <= 0 {
		return nil
	}
	per := 2 * (w + h)
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		d := per * float64(i) / float64(n)
		pts[i] = perimeterPoint(w, h, d)
	}
	return pts
}

func perimeterPoint(w, h, d float64) Point {
	switch {
	case d < w:
		return Point{d, 0}
	case d < w+h:
		return Point{w, d - w}
	case d < 2*w+h:
		return Point{w - (d - w - h), h}
	default:
		return Point{0, h - (d - 2*w - h)}
	}
}

// OppositeSidePairs places m links whose endpoints sit on the two long
// sides of the area (y=0 and y=h), evenly spaced along x — the deployment
// in the paper's Fig 2. Endpoint k on each side is at
// x = (k+0.5)*w/m.
func OppositeSidePairs(w, h float64, m int) []Segment {
	segs := make([]Segment, m)
	for k := 0; k < m; k++ {
		x := (float64(k) + 0.5) * w / float64(m)
		segs[k] = Segment{A: Point{x, 0}, B: Point{x, h}}
	}
	return segs
}

// CrossedDeployment places m links alternating between vertical
// (side-to-side) and horizontal (end-to-end) orientations so the link
// ellipses tile the whole area; richer geometry than OppositeSidePairs
// and the default used by the testbed.
func CrossedDeployment(w, h float64, m int) []Segment {
	segs := make([]Segment, m)
	nv := (m + 1) / 2
	nh := m - nv
	for k := 0; k < nv; k++ {
		x := (float64(k) + 0.5) * w / float64(nv)
		segs[k] = Segment{A: Point{x, 0}, B: Point{x, h}}
	}
	for k := 0; k < nh; k++ {
		y := (float64(k) + 0.5) * h / float64(nh)
		segs[nv+k] = Segment{A: Point{0, y}, B: Point{w, y}}
	}
	return segs
}
