package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched dims did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulTAndTMulAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, n, k := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, n, k)
		if !MulT(a, b).Equal(Mul(a, b.T()), 1e-12) {
			t.Fatal("MulT disagrees with explicit transpose")
		}
		c := randomMatrix(rng, k, m)
		d := randomMatrix(rng, k, n)
		if !TMul(c, d).Equal(Mul(c.T(), d), 1e-12) {
			t.Fatal("TMul disagrees with explicit transpose")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{4, 3}, {2, 1}})
	if got := AddM(a, b); !got.Equal(NewFromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("AddM = %v", got)
	}
	if got := Sub(a, b); !got.Equal(NewFromRows([][]float64{{-3, -1}, {1, 3}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(2, a); !got.Equal(NewFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestHadamardMaskSemantics(t *testing.T) {
	x := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{1, 0}, {0, 1}})
	got := Hadamard(b, x)
	want := NewFromRows([][]float64{{1, 0}, {0, 4}})
	if !got.Equal(want, 0) {
		t.Fatalf("Hadamard = %v, want %v", got, want)
	}
}

func TestAXPY(t *testing.T) {
	a := NewFromRows([][]float64{{1, 1}})
	b := NewFromRows([][]float64{{2, 3}})
	AXPY(a, 2, b)
	if !a.Equal(NewFromRows([][]float64{{5, 7}}), 0) {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestMulVecTMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 0, -1}
	got := MulVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	y := []float64{1, 1}
	got2 := TMulVec(a, y)
	if got2[0] != 5 || got2[1] != 7 || got2[2] != 9 {
		t.Fatalf("TMulVec = %v", got2)
	}
}

func TestNorms(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, 4}})
	if got := FrobNorm(a); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %g, want 5", got)
	}
	if got := FrobNorm2(a); math.Abs(got-25) > 1e-12 {
		t.Fatalf("FrobNorm2 = %g, want 25", got)
	}
	if got := MaxAbs(Scale(-1, a)); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
}

func TestSpectralNormDiagonal(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, -7}})
	if got := SpectralNorm(a); math.Abs(got-7) > 1e-6 {
		t.Fatalf("SpectralNorm = %g, want 7", got)
	}
}

func TestSpectralNormMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 6, 9)
		s := SVDecompose(a)
		if got := SpectralNorm(a); math.Abs(got-s.S[0]) > 1e-6*math.Max(1, s.S[0]) {
			t.Fatalf("SpectralNorm = %g, SVD sigma1 = %g", got, s.S[0])
		}
	}
}

func TestDotNorm2(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
}

// Property: matrix multiplication is associative and distributes over
// addition (within floating-point tolerance).
func TestMulPropertyBased(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(_ int64) bool {
		m, n, k, p := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, k)
		c := randomMatrix(rng, k, p)
		assoc := Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)), 1e-9)
		d := randomMatrix(rng, n, k)
		dist := Mul(a, AddM(b, d)).Equal(AddM(Mul(a, b), Mul(a, d)), 1e-9)
		return assoc && dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(_ int64) bool {
		m, n, k := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, k)
		return Mul(a, b).T().Equal(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is unitarily invariant under transpose and
// satisfies the triangle inequality.
func TestFrobNormProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(_ int64) bool {
		m, n := rng.Intn(6)+1, rng.Intn(6)+1
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, m, n)
		if math.Abs(FrobNorm(a)-FrobNorm(a.T())) > 1e-12 {
			return false
		}
		return FrobNorm(AddM(a, b)) <= FrobNorm(a)+FrobNorm(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
