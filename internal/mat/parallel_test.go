package mat

import "testing"

// fill populates m with a deterministic pseudo-random pattern.
func fill(m *Matrix, seed uint64) {
	s := seed
	for i := range m.data {
		s = s*6364136223846793005 + 1442695040888963407
		m.data[i] = float64(int64(s>>20))/float64(1<<43) - 0.5
	}
}

// withWorkers runs f twice, serial then with n workers, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

// TestParallelForCoversRange checks every index is visited exactly once
// regardless of chunking.
func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			withWorkers(t, workers, func() {
				seen := make([]int32, n)
				ParallelFor(n, 10, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						seen[i]++
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
					}
				}
			})
		}
	}
}

// TestParallelKernelsMatchSerial requires the fan-out kernels to be
// bitwise identical to their serial execution: partitioning is by
// independent output range, so per-element arithmetic order never
// changes with the worker count.
func TestParallelKernelsMatchSerial(t *testing.T) {
	a := New(67, 129)
	b := New(129, 83)
	c := New(67, 129) // for MulT: c * aᵀ-shaped partner
	fill(a, 1)
	fill(b, 2)
	fill(c, 3)

	var mulS, mulTS, tmulS *Matrix
	withWorkers(t, 1, func() {
		mulS = Mul(a, b)
		mulTS = MulT(a, c)
		tmulS = TMul(a, a)
	})
	for _, workers := range []int{2, 5, 16} {
		withWorkers(t, workers, func() {
			if !Mul(a, b).Equal(mulS, 0) {
				t.Errorf("workers=%d: Mul differs from serial", workers)
			}
			if !MulT(a, c).Equal(mulTS, 0) {
				t.Errorf("workers=%d: MulT differs from serial", workers)
			}
			if !TMul(a, a).Equal(tmulS, 0) {
				t.Errorf("workers=%d: TMul differs from serial", workers)
			}
		})
	}
}

// TestParallelDecompositionsMatchSerial does the same for the per-column
// QR and SVD work items.
func TestParallelDecompositionsMatchSerial(t *testing.T) {
	a := New(90, 60)
	fill(a, 7)

	var rS, qS *Matrix
	var pivS []int
	var svdS *SVD
	withWorkers(t, 1, func() {
		f := QRDecompose(a)
		rS, qS = f.R(), f.Q()
		pivS = QRPivoted(a).Pivot
		svdS = SVDecompose(a)
	})
	withWorkers(t, 8, func() {
		f := QRDecompose(a)
		if !f.R().Equal(rS, 0) || !f.Q().Equal(qS, 0) {
			t.Error("parallel QR differs from serial")
		}
		piv := QRPivoted(a).Pivot
		for i := range piv {
			if piv[i] != pivS[i] {
				t.Fatalf("parallel pivoted QR pivot %d: %d vs %d", i, piv[i], pivS[i])
			}
		}
		svd := SVDecompose(a)
		for i := range svd.S {
			if svd.S[i] != svdS.S[i] {
				t.Fatalf("parallel SVD singular value %d: %g vs %g", i, svd.S[i], svdS.S[i])
			}
		}
		if !svd.U.Equal(svdS.U, 0) || !svd.V.Equal(svdS.V, 0) {
			t.Error("parallel SVD factors differ from serial")
		}
	})
}

// TestSetWorkers checks the setter contract.
func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if w := Workers(); w != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", w)
	}
	if old := SetWorkers(0); old != 3 {
		t.Errorf("SetWorkers returned %d, want 3", old)
	}
	if w := Workers(); w < 1 {
		t.Errorf("default Workers() = %d, want >= 1", w)
	}
}
