package mat

import "testing"

func TestFloatPoolRoundTrip(t *testing.T) {
	s := GetFloats(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("GetFloats(100): len=%d cap=%d, want 100/128", len(s), cap(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	PutFloats(s)
	// Same class request may get the recycled slice; contents are
	// unspecified but the shape must hold.
	r := GetFloats(70)
	if len(r) != 70 || cap(r) < 70 {
		t.Fatalf("recycled GetFloats(70): len=%d cap=%d", len(r), cap(r))
	}
	PutFloats(r)

	if GetFloats(0) != nil || GetFloats(-3) != nil {
		t.Fatal("non-positive sizes must return nil")
	}
	PutFloats(nil)                     // must not panic
	PutFloats(make([]float64, 10, 33)) // off-class capacity: dropped, no panic
}

func TestFloatPoolTinyRequestsShareAClass(t *testing.T) {
	s := GetFloats(1)
	if len(s) != 1 || cap(s) != poolMinFloats {
		t.Fatalf("GetFloats(1): len=%d cap=%d, want 1/%d", len(s), cap(s), poolMinFloats)
	}
	PutFloats(s)
}

func TestFloatPoolSteadyStateZeroAlloc(t *testing.T) {
	// Warm the class and box pools, then pin: a recycle cycle costs no
	// heap allocation (the slice headers are boxed through a recycled
	// pointer pool).
	PutFloats(GetFloats(64))
	if allocs := testing.AllocsPerRun(200, func() {
		s := GetFloats(64)
		PutFloats(s)
	}); allocs != 0 {
		t.Errorf("Get/Put cycle allocates %.1f/op, want 0", allocs)
	}
}
