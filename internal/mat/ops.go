package mat

import (
	"fmt"
	"math"
)

// Mul returns the matrix product a*b. Large products fan out over the
// package worker pool, partitioned by output row.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	ParallelFor(a.rows, ChunkFor(2*a.cols*b.cols), func(lo, hi int) {
		mulRange(a, b, out, lo, hi)
	})
	return out
}

// mulRange computes rows [lo, hi) of out = a*b with a cache-blocked ikj
// kernel: k is tiled so the active band of b stays resident while the
// row block streams over it.
func mulRange(a, b, out *Matrix, lo, hi int) {
	const kTile = 128
	for k0 := 0; k0 < a.cols; k0 += kTile {
		k1 := min(k0+kTile, a.cols)
		for i := lo; i < hi; i++ {
			ai := a.data[i*a.cols:]
			oi := out.data[i*out.cols : (i+1)*out.cols]
			for k := k0; k < k1; k++ {
				aik := ai[k]
				if aik == 0 {
					continue
				}
				bk := b.data[k*b.cols : (k+1)*b.cols]
				for j, bv := range bk {
					oi[j] += aik * bv
				}
			}
		}
	}
}

// MulT returns a * bᵀ without materializing the transpose, partitioned by
// output row across the worker pool.
func MulT(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulT dimension mismatch %dx%d * (%dx%d)T", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	ParallelFor(a.rows, ChunkFor(2*a.cols*b.rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*a.cols : (i+1)*a.cols]
			oi := out.data[i*out.cols:]
			for j := 0; j < b.rows; j++ {
				bj := b.data[j*b.cols : (j+1)*b.cols]
				var s float64
				for k, av := range ai {
					s += av * bj[k]
				}
				oi[j] = s
			}
		}
	})
	return out
}

// TMul returns aᵀ * b without materializing the transpose, partitioned by
// output row (a column) across the worker pool; every worker streams the
// shared rows of a and b in the same k order as the serial kernel.
func TMul(a, b *Matrix) *Matrix {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: TMul dimension mismatch (%dx%d)T * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	ParallelFor(a.cols, ChunkFor(2*a.rows*b.cols), func(lo, hi int) {
		for k := 0; k < a.rows; k++ {
			ak := a.data[k*a.cols : (k+1)*a.cols]
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for i := lo; i < hi; i++ {
				av := ak[i]
				if av == 0 {
					continue
				}
				oi := out.data[i*out.cols : (i+1)*out.cols]
				for j, bv := range bk {
					oi[j] += av * bv
				}
			}
		}
	})
	return out
}

// AddM returns a + b.
func AddM(a, b *Matrix) *Matrix {
	sameDims("AddM", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	sameDims("Sub", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// Hadamard returns the element-wise product a∘b (the B∘X mask product in
// the TafLoc objective).
func Hadamard(a, b *Matrix) *Matrix {
	sameDims("Hadamard", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// AXPY computes a += s*b in place.
func AXPY(a *Matrix, s float64, b *Matrix) {
	sameDims("AXPY", a, b)
	for i := range a.data {
		a.data[i] += s * b.data[i]
	}
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range ai {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns aᵀ*x.
func TMulVec(a *Matrix, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: TMulVec dimension mismatch (%dx%d)T * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		ai := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range ai {
			out[j] += xi * v
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm ‖a‖_F.
func FrobNorm(a *Matrix) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobNorm2 returns the squared Frobenius norm ‖a‖²_F.
func FrobNorm2(a *Matrix) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(a *Matrix) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// SpectralNorm estimates the largest singular value of a by power
// iteration on aᵀa, to relative tolerance ~1e-10 or 200 iterations.
func SpectralNorm(a *Matrix) float64 {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	x := make([]float64, a.cols)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(len(x)))
	}
	var prev float64
	for iter := 0; iter < 200; iter++ {
		y := MulVec(a, x)
		x = TMulVec(a, y)
		n := Norm2(x)
		if n == 0 {
			return 0
		}
		for i := range x {
			x[i] /= n
		}
		s := math.Sqrt(n)
		if math.Abs(s-prev) <= 1e-10*math.Max(1, s) {
			return s
		}
		prev = s
	}
	return prev
}

func sameDims(op string, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
