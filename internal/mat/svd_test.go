package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		m := rng.Intn(10) + 1
		n := rng.Intn(10) + 1
		a := randomMatrix(rng, m, n)
		s := SVDecompose(a)
		if !s.Reconstruct(0).Equal(a, 1e-9) {
			t.Fatalf("SVD reconstruction failed for %dx%d", m, n)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	f := func(_ int64) bool {
		m := rng.Intn(8) + 1
		n := rng.Intn(8) + 1
		a := randomMatrix(rng, m, n)
		s := SVDecompose(a)
		// Columns with nonzero singular value must be orthonormal.
		k := s.Rank(1e-12)
		uu := TMul(s.U, s.U).SubMatrix(0, k, 0, k)
		vv := TMul(s.V, s.V).SubMatrix(0, k, 0, k)
		return uu.Equal(Identity(k), 1e-9) && vv.Equal(Identity(k), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDValuesSortedNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := func(_ int64) bool {
		a := randomMatrix(rng, rng.Intn(8)+1, rng.Intn(8)+1)
		s := SVDecompose(a)
		for i, v := range s.S {
			if v < 0 {
				return false
			}
			if i > 0 && v > s.S[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, -2}})
	s := SVDecompose(a)
	if math.Abs(s.S[0]-3) > 1e-12 || math.Abs(s.S[1]-2) > 1e-12 {
		t.Fatalf("singular values %v, want [3 2]", s.S)
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := randomMatrix(rng, 3, 9)
	s := SVDecompose(a)
	if s.U.Rows() != 3 || s.V.Rows() != 9 {
		t.Fatalf("factor shapes U %dx%d V %dx%d", s.U.Rows(), s.U.Cols(), s.V.Rows(), s.V.Cols())
	}
	if !s.Reconstruct(0).Equal(a, 1e-9) {
		t.Fatal("wide reconstruction failed")
	}
}

func TestSVDRankDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	l := randomMatrix(rng, 9, 4)
	r := randomMatrix(rng, 7, 4)
	a := MulT(l, r)
	s := SVDecompose(a)
	if got := s.Rank(1e-9); got != 4 {
		t.Fatalf("Rank = %d, want 4 (S=%v)", got, s.S)
	}
}

func TestSVDEnergyRank(t *testing.T) {
	s := &SVD{S: []float64{10, 1, 0.1, 0.01}}
	// total energy = 100 + 1 + 0.01 + 0.0001; sigma1 alone holds >98%.
	if got := s.EnergyRank(0.98); got != 1 {
		t.Fatalf("EnergyRank(0.98) = %d, want 1", got)
	}
	if got := s.EnergyRank(0.9999); got != 2 {
		t.Fatalf("EnergyRank(0.9999) = %d, want 2", got)
	}
	if got := s.EnergyRank(1.0); got != 4 {
		t.Fatalf("EnergyRank(1.0) = %d, want 4", got)
	}
}

func TestSVDEnergyRankZero(t *testing.T) {
	s := SVDecompose(New(3, 3))
	if got := s.EnergyRank(0.95); got != 0 {
		t.Fatalf("EnergyRank of zero matrix = %d, want 0", got)
	}
}

func TestSVDTruncateBestApproximation(t *testing.T) {
	// Eckart-Young: the rank-r truncation error equals the tail singular
	// values' energy.
	rng := rand.New(rand.NewSource(56))
	a := randomMatrix(rng, 8, 6)
	s := SVDecompose(a)
	for r := 1; r <= 6; r++ {
		l, rm := s.Truncate(r)
		if l.Cols() != r || rm.Cols() != r {
			t.Fatalf("truncated factor widths %d,%d want %d", l.Cols(), rm.Cols(), r)
		}
		got := FrobNorm2(Sub(a, MulT(l, rm)))
		var want float64
		for k := r; k < len(s.S); k++ {
			want += s.S[k] * s.S[k]
		}
		if math.Abs(got-want) > 1e-8*math.Max(1, want) {
			t.Fatalf("rank-%d truncation error %g, want %g", r, got, want)
		}
	}
}

func TestSVDTruncateClamps(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(57)), 4, 3)
	l, r := SVDecompose(a).Truncate(99)
	if l.Cols() != 3 || r.Cols() != 3 {
		t.Fatal("Truncate did not clamp rank")
	}
}

func TestSVDEmpty(t *testing.T) {
	s := SVDecompose(New(0, 5))
	if len(s.S) != 0 {
		t.Fatal("empty SVD should have no singular values")
	}
}

// Property: singular values are invariant under transpose.
func TestSVDTransposeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	f := func(_ int64) bool {
		a := randomMatrix(rng, rng.Intn(6)+1, rng.Intn(6)+1)
		s1 := SVDecompose(a).S
		s2 := SVDecompose(a.T()).S
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-9*math.Max(1, s1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm equals the l2 norm of the singular values.
func TestSVDFrobeniusIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	f := func(_ int64) bool {
		a := randomMatrix(rng, rng.Intn(7)+1, rng.Intn(7)+1)
		s := SVDecompose(a)
		return math.Abs(FrobNorm(a)-Norm2(s.S)) < 1e-9*math.Max(1, FrobNorm(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
