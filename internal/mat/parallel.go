package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel kernels in this package fan work out over a bounded set of
// goroutine workers. Partitioning is always by independent output range
// (rows of the product, columns of a Householder update), so every element
// is computed by exactly one worker with the same per-element arithmetic
// order as the serial kernel: results are bitwise identical regardless of
// worker count.

// parMinFlops is the approximate floating-point work below which a chunk
// is not worth a goroutine: fan-out only happens when each worker gets at
// least this much work.
const parMinFlops = 1 << 16

// parWorkers holds the configured worker count; 0 selects
// runtime.GOMAXPROCS(0) at call time.
var parWorkers atomic.Int32

// SetWorkers sets the worker count used by the parallel kernels and
// returns the previous setting. n <= 0 restores the default,
// GOMAXPROCS-aware sizing. It may be called at any time, including
// concurrently with running kernels (in-flight calls keep the count they
// started with).
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(parWorkers.Swap(int32(n)))
}

// Workers returns the effective worker count for parallel kernels.
func Workers() int {
	if n := int(parWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor splits [0, n) into at most Workers() contiguous chunks of at
// least minChunk items each and runs fn on every chunk, blocking until all
// complete. When only one chunk results (small n or one worker) fn runs
// inline on the calling goroutine with no synchronization overhead.
func ParallelFor(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := parChunks(n, minChunk)
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parChunks is the single source of the partitioning heuristic: how
// many chunks ParallelFor splits [0, n) into under the current worker
// setting (at least 1 for n > 0). FanOut shares it, so the two can
// never disagree.
func parChunks(n, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := n / minChunk
	if chunks < 1 {
		chunks = 1
	}
	if w := Workers(); chunks > w {
		chunks = w
	}
	return chunks
}

// FanOut reports whether ParallelFor would split [0, n) into more than
// one chunk under the current worker setting. Allocation-sensitive
// callers use it to run the single-chunk case as a plain inline loop:
// spawning goroutines heap-allocates the loop closure, and a caller
// that only constructs the closure inside a FanOut-guarded branch pays
// nothing on the serial path.
func FanOut(n, minChunk int) bool {
	return n > 0 && parChunks(n, minChunk) > 1
}

// ChunkFor returns the minimum ParallelFor chunk length such that one
// chunk carries enough floating-point work to amortize its goroutine,
// given the per-item flop count. It is the single fan-out granularity
// heuristic for every parallel kernel, in this package and above it.
func ChunkFor(flopsPerItem int) int {
	if flopsPerItem <= 0 {
		return 1
	}
	c := parMinFlops / flopsPerItem
	if c < 1 {
		c = 1
	}
	return c
}
