package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		m := rng.Intn(10) + 2
		n := rng.Intn(10) + 1
		a := randomMatrix(rng, m, n)
		f := QRDecompose(a)
		qr := Mul(f.Q(), f.R())
		if !qr.Equal(a, 1e-10) {
			t.Fatalf("Q*R != A for %dx%d", m, n)
		}
	}
}

func TestQROrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(_ int64) bool {
		m := rng.Intn(8) + 2
		n := rng.Intn(m) + 1
		a := randomMatrix(rng, m, n)
		q := QRDecompose(a).Q()
		qtq := TMul(q, q)
		return qtq.Equal(Identity(q.Cols()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomMatrix(rng, 8, 5)
	r := QRDecompose(a).R()
	for i := 1; i < r.Rows(); i++ {
		for j := 0; j < i && j < r.Cols(); j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d) = %g", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(6) + 2
		a := randomMatrix(rng, n+3, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		x, err := QRDecompose(a).SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("solution mismatch at %d: %g vs %g", i, x[i], xTrue[i])
			}
		}
	}
}

func TestQRSolveVecLeastSquares(t *testing.T) {
	// Overdetermined inconsistent system: solution must satisfy the normal
	// equations Aᵀ(Ax-b) = 0.
	rng := rand.New(rand.NewSource(35))
	a := randomMatrix(rng, 12, 4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := QRDecompose(a).SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	resid := MulVec(a, x)
	for i := range resid {
		resid[i] -= b[i]
	}
	g := TMulVec(a, resid)
	for i, v := range g {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("normal equations violated at %d: %g", i, v)
		}
	}
}

func TestQRSolveRankDeficientErrors(t *testing.T) {
	a := NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := QRDecompose(a).SolveVec([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for rank-deficient solve")
	}
}

func TestQRSolveWideErrors(t *testing.T) {
	a := New(2, 4)
	if _, err := QRDecompose(a).SolveVec([]float64{1, 2}); err == nil {
		t.Fatal("expected error for wide solve")
	}
}

func TestPivotedQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 15; trial++ {
		m := rng.Intn(8) + 2
		n := rng.Intn(8) + 1
		a := randomMatrix(rng, m, n)
		f := QRPivoted(a)
		// Build A·P from the pivot permutation and compare against Q·R via
		// the plain factorization of the permuted matrix.
		ap := a.SelectCols(f.Pivot)
		plain := QRDecompose(ap)
		qr := Mul(plain.Q(), plain.R())
		if !qr.Equal(ap, 1e-10) {
			t.Fatal("permuted reconstruction failed")
		}
	}
}

func TestPivotedQRDiagonalDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func(_ int64) bool {
		m := rng.Intn(8) + 2
		n := rng.Intn(8) + 1
		a := randomMatrix(rng, m, n)
		d := QRPivoted(a).RDiag()
		for i := 1; i < len(d); i++ {
			// Businger-Golub guarantees non-increasing |r_kk| up to small
			// numerical slack.
			if d[i] > d[i-1]*(1+1e-8)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPivotedQRRankRevealing(t *testing.T) {
	// Build an 8x10 matrix of rank 3.
	rng := rand.New(rand.NewSource(38))
	l := randomMatrix(rng, 8, 3)
	r := randomMatrix(rng, 10, 3)
	a := MulT(l, r)
	f := QRPivoted(a)
	if got := f.Rank(1e-9); got != 3 {
		t.Fatalf("Rank = %d, want 3 (diag %v)", got, f.RDiag())
	}
}

func TestPivotedQRPivotIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	a := randomMatrix(rng, 6, 9)
	piv := QRPivoted(a).Pivot
	seen := make(map[int]bool)
	for _, p := range piv {
		if p < 0 || p >= 9 || seen[p] {
			t.Fatalf("pivot %v is not a permutation", piv)
		}
		seen[p] = true
	}
}

func TestLeadingPivotsPicksIndependentColumns(t *testing.T) {
	// Columns 0 and 1 independent; columns 2..5 are copies of column 0.
	a := New(4, 6)
	base := []float64{1, 2, 3, 4}
	other := []float64{4, -3, 2, -1}
	a.SetCol(0, base)
	a.SetCol(1, other)
	for j := 2; j < 6; j++ {
		a.SetCol(j, base)
	}
	lead := QRPivoted(a).LeadingPivots(2)
	// The two leading pivots must span both directions: one of {0,2,3,4,5}
	// and column 1.
	hasOther := lead[0] == 1 || lead[1] == 1
	if !hasOther {
		t.Fatalf("leading pivots %v do not include the independent column 1", lead)
	}
}

func TestLeadingPivotsClamped(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(40)), 3, 3)
	if got := QRPivoted(a).LeadingPivots(10); len(got) != 3 {
		t.Fatalf("LeadingPivots clamp failed: %d", len(got))
	}
}

func TestPivotedQRZeroMatrix(t *testing.T) {
	f := QRPivoted(New(4, 4))
	if got := f.Rank(0); got != 0 {
		t.Fatalf("rank of zero matrix = %d", got)
	}
}
