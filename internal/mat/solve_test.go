package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD returns a random symmetric positive-definite n x n matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n+2, n)
	g := TMul(a, a)
	for i := 0; i < n; i++ {
		g.Add(i, i, 0.5)
	}
	return g
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(8) + 1
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !MulT(l, l).Equal(a, 1e-9) {
			t.Fatal("L*Lt != A")
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	f := func(_ int64) bool {
		n := rng.Intn(7) + 1
		a := randomSPD(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholeskySolveVec(l, b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7*math.Max(1, math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 5
	a := randomSPD(rng, n)
	xTrue := randomMatrix(rng, n, 3)
	b := Mul(a, xTrue)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, b)
	if !x.Equal(xTrue, 1e-7) {
		t.Fatal("matrix solve mismatch")
	}
}

func TestRidgeSolveMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randomMatrix(rng, 10, 4)
	b := randomMatrix(rng, 10, 6)
	mu := 0.3
	z, err := RidgeSolve(a, b, mu)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual of normal equations: (AtA + mu I) Z = At B.
	lhs := Mul(AddM(TMul(a, a), Scale(mu, Identity(4))), z)
	rhs := TMul(a, b)
	if !lhs.Equal(rhs, 1e-8) {
		t.Fatal("ridge normal equations violated")
	}
}

func TestRidgeSolveRankDeficientWithZeroMu(t *testing.T) {
	// Duplicate columns make AtA singular; the retry bump must rescue it.
	a := New(6, 3)
	col := []float64{1, 2, 3, 4, 5, 6}
	a.SetCol(0, col)
	a.SetCol(1, col)
	a.SetCol(2, []float64{1, 0, 0, 0, 0, 0})
	b := New(6, 1)
	b.SetCol(0, col)
	z, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatalf("RidgeSolve failed on rank-deficient input: %v", err)
	}
	if !z.IsFinite() {
		t.Fatal("non-finite solution")
	}
}

func TestRidgeSolveShrinksWithMu(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	a := randomMatrix(rng, 12, 4)
	b := randomMatrix(rng, 12, 2)
	z1, err := RidgeSolve(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := RidgeSolve(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if FrobNorm(z2) >= FrobNorm(z1) {
		t.Fatalf("larger ridge should shrink solution: %g vs %g", FrobNorm(z2), FrobNorm(z1))
	}
}

func TestRidgeSolveErrors(t *testing.T) {
	if _, err := RidgeSolve(New(3, 2), New(4, 2), 1); err == nil {
		t.Fatal("expected rows-mismatch error")
	}
	if _, err := RidgeSolve(New(3, 2), New(3, 2), -1); err == nil {
		t.Fatal("expected negative-mu error")
	}
}

func TestCGSolvesSPDSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	n := 8
	a := randomSPD(rng, n)
	xTrue := randomMatrix(rng, n, 2)
	b := Mul(a, xTrue)
	op := LinOpFunc(func(x *Matrix) *Matrix { return Mul(a, x) })
	x, res := CG(op, b, nil, 1e-10, 500)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if !x.Equal(xTrue, 1e-6) {
		t.Fatal("CG solution mismatch")
	}
}

func TestCGMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(_ int64) bool {
		n := rng.Intn(6) + 2
		a := randomSPD(rng, n)
		b := randomMatrix(rng, n, 1)
		op := LinOpFunc(func(x *Matrix) *Matrix { return Mul(a, x) })
		xcg, res := CG(op, b, nil, 1e-12, 1000)
		if !res.Converged {
			return false
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		xch := CholeskySolveVec(l, b.Col(0))
		for i := 0; i < n; i++ {
			if math.Abs(xcg.At(i, 0)-xch[i]) > 1e-6*math.Max(1, math.Abs(xch[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCGZeroRHS(t *testing.T) {
	op := LinOpFunc(func(x *Matrix) *Matrix { return x })
	x, res := CG(op, New(4, 2), nil, 1e-8, 10)
	if !res.Converged || FrobNorm(x) != 0 {
		t.Fatal("CG on zero rhs should return zero immediately")
	}
}

func TestCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	n := 6
	a := randomSPD(rng, n)
	xTrue := randomMatrix(rng, n, 1)
	b := Mul(a, xTrue)
	op := LinOpFunc(func(x *Matrix) *Matrix { return Mul(a, x) })
	// Warm start from the exact solution: should converge instantly.
	_, res := CG(op, b, xTrue, 1e-8, 100)
	if res.Iterations > 1 {
		t.Fatalf("warm-started CG took %d iterations", res.Iterations)
	}
}

func TestCGDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := randomSPD(rng, 4)
	b := randomMatrix(rng, 4, 1)
	op := LinOpFunc(func(x *Matrix) *Matrix { return Mul(a, x) })
	// tol<=0 and maxIter<=0 must fall back to defaults and still work.
	_, res := CG(op, b, nil, 0, 0)
	if !res.Converged {
		t.Fatal("CG with default params did not converge")
	}
}
