package mat

import (
	"math/bits"
	"sync"
)

// Float-slice pooling. The serving layer's steady state allocates the
// same handful of slice shapes over and over (live vectors, match
// scratch); recycling them through size-classed pools keeps the hot
// path off the garbage collector. Slices are binned by capacity class
// (powers of two), so a Get never returns less capacity than requested
// and a recycled slice is found by any request of its class.

// poolMinFloats is the smallest capacity class; requests below it are
// rounded up so tiny slices still recycle through one pool.
const poolMinFloats = 1 << 6

// poolMaxClass bounds the pooled capacity at 1<<poolMaxClass floats
// (64 Mi floats = 512 MiB); larger requests fall through to plain make.
const poolMaxClass = 26

var floatPools [poolMaxClass + 1]sync.Pool

// boxPool recycles the *[]float64 headers the class pools store, so a
// steady-state Get/Put cycle allocates nothing — without it every Put
// would heap-allocate a fresh header to box the slice into the pool's
// interface value.
var boxPool = sync.Pool{New: func() any { return new([]float64) }}

// floatClass returns the capacity class for n floats: the smallest
// power-of-two exponent c with 1<<c >= max(n, poolMinFloats), or -1
// when n is too large to pool.
func floatClass(n int) int {
	if n < poolMinFloats {
		n = poolMinFloats
	}
	c := bits.Len(uint(n - 1))
	if c > poolMaxClass {
		return -1
	}
	return c
}

// GetFloats returns a float64 slice of length n from the pool, or a
// fresh one when the pool is empty. The contents are unspecified — the
// caller must overwrite every element it reads. n <= 0 returns nil.
func GetFloats(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := floatClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if v := floatPools[c].Get(); v != nil {
		box := v.(*[]float64)
		s := (*box)[:n]
		*box = nil
		boxPool.Put(box)
		return s
	}
	return make([]float64, n, 1<<c)
}

// PutFloats recycles a slice obtained from GetFloats (or any slice whose
// capacity is an exact class size). Slices that do not fit a class, and
// nil, are dropped. The caller must not use s afterwards.
func PutFloats(s []float64) {
	c := cap(s)
	if c < poolMinFloats || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > poolMaxClass {
		return
	}
	box := boxPool.Get().(*[]float64)
	*box = s[:0]
	floatPools[cls].Put(box)
}
