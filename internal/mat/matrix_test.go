package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDims(t *testing.T) {
	m := New(3, 5)
	if r, c := m.Dims(); r != 3 || c != 5 {
		t.Fatalf("Dims = (%d,%d), want (3,5)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1,2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromSliceAndRows(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !a.Equal(b, 0) {
		t.Fatalf("NewFromSlice and NewFromRows disagree: %v vs %v", a, b)
	}
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %g, want 6", a.At(1, 2))
	}
}

func TestNewFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad slice length did not panic")
		}
	}()
	NewFromSlice(2, 2, []float64{1, 2, 3})
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(4, 4)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	m.Add(2, 3, 0.5)
	if got := m.At(2, 3); got != 8 {
		t.Fatalf("after Add, At = %g, want 8", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(5, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned aliased storage")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned aliased storage")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	m.SetCol(0, []float64{1, 2})
	want := NewFromRows([][]float64{{1, 0, 0}, {2, 8, 9}})
	if !m.Equal(want, 0) {
		t.Fatalf("got %v, want %v", m, want)
	}
}

func TestRawRowAliases(t *testing.T) {
	m := New(2, 2)
	m.RawRow(0)[1] = 5
	if m.At(0, 1) != 5 {
		t.Fatal("RawRow must alias backing storage")
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if r, c := at.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = (%d,%d)", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rng.Intn(6) + 1
		c := rng.Intn(6) + 1
		a := randomMatrix(rng, r, c)
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatrixSelectCols(t *testing.T) {
	a := NewFromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	s := a.SubMatrix(1, 3, 1, 3)
	want := NewFromRows([][]float64{{6, 7}, {10, 11}})
	if !s.Equal(want, 0) {
		t.Fatalf("SubMatrix got %v, want %v", s, want)
	}
	sel := a.SelectCols([]int{3, 0})
	wantSel := NewFromRows([][]float64{{4, 1}, {8, 5}, {12, 9}})
	if !sel.Equal(wantSel, 0) {
		t.Fatalf("SelectCols got %v, want %v", sel, wantSel)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 100)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := randomMatrix(rand.New(rand.NewSource(2)), 3, 3)
	if !Mul(id, a).Equal(a, 1e-15) || !Mul(a, id).Equal(a, 1e-15) {
		t.Fatal("identity is not multiplicative identity")
	}
}

func TestApplyFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	m.Apply(func(i, j int, v float64) float64 { return v + float64(i*10+j) })
	want := NewFromRows([][]float64{{3, 4}, {13, 14}})
	if !m.Equal(want, 0) {
		t.Fatalf("got %v, want %v", m, want)
	}
}

func TestIsFinite(t *testing.T) {
	m := New(2, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix should be finite")
	}
	m.Set(1, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN matrix should not be finite")
	}
	m.Set(1, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf matrix should not be finite")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	big := New(20, 20)
	if s := big.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestEqualDims(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("matrices of different shape must not be Equal")
	}
}
