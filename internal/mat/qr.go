package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R with Q (m×m orthogonal,
// stored implicitly) and R (m×n upper triangular).
type QR struct {
	qr   *Matrix   // packed Householder vectors below diagonal, R on/above
	tau  []float64 // Householder scalar factors
	m, n int
}

// QRDecompose computes the Householder QR factorization of a (m>=n not
// required; wide matrices are handled).
func QRDecompose(a *Matrix) *QR {
	m, n := a.Dims()
	qr := a.Clone()
	k := min(m, n)
	tau := make([]float64, k)
	for j := 0; j < k; j++ {
		houseColumn(qr, j, j, &tau[j])
		applyHouseLeft(qr, j, j+1, tau[j])
	}
	return &QR{qr: qr, tau: tau, m: m, n: n}
}

// houseColumn computes the Householder reflector annihilating column j
// below row r0, storing the vector in place (v[0] implicit 1).
func houseColumn(a *Matrix, r0, j int, tau *float64) {
	m := a.rows
	// norm of the column segment
	var norm float64
	for i := r0; i < m; i++ {
		v := a.At(i, j)
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		*tau = 0
		return
	}
	alpha := a.At(r0, j)
	beta := -math.Copysign(norm, alpha)
	*tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	for i := r0 + 1; i < m; i++ {
		a.Set(i, j, a.At(i, j)*scale)
	}
	a.Set(r0, j, beta)
}

// applyHouseLeft applies the reflector stored in column j (pivot row j) to
// columns [c0, n). Each target column is an independent work item, so the
// update fans out per column across the worker pool on large panels.
func applyHouseLeft(a *Matrix, j, c0 int, tau float64) {
	if tau == 0 {
		return
	}
	m, n := a.rows, a.cols
	ParallelFor(n-c0, ChunkFor(4*(m-j)), func(lo, hi int) {
		for c := c0 + lo; c < c0+hi; c++ {
			// w = vᵀ a[:,c] with v = [1, a[j+1:,j]]
			w := a.At(j, c)
			for i := j + 1; i < m; i++ {
				w += a.At(i, j) * a.At(i, c)
			}
			w *= tau
			a.Add(j, c, -w)
			for i := j + 1; i < m; i++ {
				a.Add(i, c, -w*a.At(i, j))
			}
		}
	})
}

// R returns the upper-triangular factor (min(m,n) x n).
func (f *QR) R() *Matrix {
	k := min(f.m, f.n)
	r := New(k, f.n)
	for i := 0; i < k; i++ {
		for j := i; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin orthogonal factor (m x min(m,n)).
func (f *QR) Q() *Matrix {
	k := min(f.m, f.n)
	q := New(f.m, k)
	for i := 0; i < k; i++ {
		q.Set(i, i, 1)
	}
	// apply reflectors in reverse order
	for j := k - 1; j >= 0; j-- {
		tau := f.tau[j]
		if tau == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			w := q.At(j, c)
			for i := j + 1; i < f.m; i++ {
				w += f.qr.At(i, j) * q.At(i, c)
			}
			w *= tau
			q.Add(j, c, -w)
			for i := j + 1; i < f.m; i++ {
				q.Add(i, c, -w*f.qr.At(i, j))
			}
		}
	}
	return q
}

// QTVec applies Qᵀ to a vector of length m in place and returns it.
func (f *QR) QTVec(b []float64) []float64 {
	if len(b) != f.m {
		panic(fmt.Sprintf("mat: QTVec length %d != rows %d", len(b), f.m))
	}
	k := min(f.m, f.n)
	for j := 0; j < k; j++ {
		tau := f.tau[j]
		if tau == 0 {
			continue
		}
		w := b[j]
		for i := j + 1; i < f.m; i++ {
			w += f.qr.At(i, j) * b[i]
		}
		w *= tau
		b[j] -= w
		for i := j + 1; i < f.m; i++ {
			b[i] -= w * f.qr.At(i, j)
		}
	}
	return b
}

// SolveVec solves the least-squares problem min ‖Ax-b‖₂ for x using the
// factorization (requires m >= n and full column rank).
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	if f.m < f.n {
		return nil, fmt.Errorf("mat: QR solve requires rows >= cols, have %dx%d", f.m, f.n)
	}
	c := make([]float64, len(b))
	copy(c, b)
	f.QTVec(c)
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := c[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if math.Abs(d) < 1e-14 {
			return nil, fmt.Errorf("mat: rank-deficient matrix in QR solve (pivot %d ~ 0)", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// PivotedQR holds a column-pivoted (rank-revealing) QR factorization
// A·P = Q·R computed with the Businger–Golub algorithm. The pivot order is
// the maximal-linear-independence column ordering TafLoc uses to choose
// reference locations.
type PivotedQR struct {
	qr    *Matrix
	tau   []float64
	Pivot []int // Pivot[k] = original column index chosen at step k
	m, n  int
}

// QRPivoted computes the column-pivoted QR factorization of a.
func QRPivoted(a *Matrix) *PivotedQR {
	m, n := a.Dims()
	qr := a.Clone()
	k := min(m, n)
	tau := make([]float64, k)
	piv := make([]int, n)
	for j := range piv {
		piv[j] = j
	}
	// running squared column norms
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := qr.At(i, j)
			norms[j] += v * v
		}
	}
	for j := 0; j < k; j++ {
		// select the column with the largest remaining norm
		best, bestv := j, norms[j]
		for c := j + 1; c < n; c++ {
			if norms[c] > bestv {
				best, bestv = c, norms[c]
			}
		}
		if best != j {
			swapCols(qr, j, best)
			piv[j], piv[best] = piv[best], piv[j]
			norms[j], norms[best] = norms[best], norms[j]
		}
		houseColumn(qr, j, j, &tau[j])
		applyHouseLeft(qr, j, j+1, tau[j])
		// downdate norms; recompute when cancellation bites
		for c := j + 1; c < n; c++ {
			r := qr.At(j, c)
			norms[c] -= r * r
			if norms[c] < 1e-12*math.Max(1, bestv) {
				norms[c] = 0
				for i := j + 1; i < m; i++ {
					v := qr.At(i, c)
					norms[c] += v * v
				}
			}
		}
	}
	return &PivotedQR{qr: qr, tau: tau, Pivot: piv, m: m, n: n}
}

// RDiag returns the absolute values of R's diagonal, which decrease in the
// pivoted factorization and reveal numerical rank.
func (f *PivotedQR) RDiag() []float64 {
	k := min(f.m, f.n)
	d := make([]float64, k)
	for i := 0; i < k; i++ {
		d[i] = math.Abs(f.qr.At(i, i))
	}
	return d
}

// Rank returns the numerical rank at relative tolerance tol (diagonal
// entries below tol*|r11| count as zero). tol <= 0 defaults to 1e-10.
func (f *PivotedQR) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	d := f.RDiag()
	if len(d) == 0 || d[0] == 0 {
		return 0
	}
	r := 0
	for _, v := range d {
		if v > tol*d[0] {
			r++
		}
	}
	return r
}

// LeadingPivots returns the first k pivot column indices — the k most
// linearly independent columns of the original matrix.
func (f *PivotedQR) LeadingPivots(k int) []int {
	if k > len(f.Pivot) {
		k = len(f.Pivot)
	}
	out := make([]int, k)
	copy(out, f.Pivot[:k])
	return out
}

func swapCols(a *Matrix, j1, j2 int) {
	for i := 0; i < a.rows; i++ {
		a.data[i*a.cols+j1], a.data[i*a.cols+j2] = a.data[i*a.cols+j2], a.data[i*a.cols+j1]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
