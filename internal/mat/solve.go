package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite within numerical tolerance.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix a. Only the lower triangle of a is
// read.
func Cholesky(a *Matrix) (*Matrix, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("mat: Cholesky needs a square matrix, have %dx%d", n, c)
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// CholeskySolveVec solves A·x = b given the Cholesky factor L of A.
func CholeskySolveVec(l *Matrix, b []float64) []float64 {
	n := l.Rows()
	if len(b) != n {
		panic(fmt.Sprintf("mat: CholeskySolveVec length %d != %d", len(b), n))
	}
	// forward: L·y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// backward: Lᵀ·x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A·X = B column-by-column given the Cholesky factor
// L of A.
func CholeskySolve(l, b *Matrix) *Matrix {
	n := l.Rows()
	if b.Rows() != n {
		panic(fmt.Sprintf("mat: CholeskySolve rows %d != %d", b.Rows(), n))
	}
	x := New(n, b.Cols())
	for j := 0; j < b.Cols(); j++ {
		x.SetCol(j, CholeskySolveVec(l, b.Col(j)))
	}
	return x
}

// RidgeSolve solves the ridge-regression problem
// min ‖A·X - B‖²_F + mu‖X‖²_F via the normal equations
// (AᵀA + mu·I)·X = AᵀB, factored once with Cholesky.
//
// This is the closed-form update for TafLoc's correlation matrix Z
// (X̂ ≈ X_R·Z with A = X_R, B = X̂).
func RidgeSolve(a, b *Matrix, mu float64) (*Matrix, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("mat: RidgeSolve rows mismatch %d vs %d", a.Rows(), b.Rows())
	}
	if mu < 0 {
		return nil, fmt.Errorf("mat: RidgeSolve negative regularizer %g", mu)
	}
	g := TMul(a, a)
	n := g.Rows()
	for i := 0; i < n; i++ {
		g.Add(i, i, mu)
	}
	l, err := Cholesky(g)
	if err != nil {
		// Gram matrix can lose definiteness numerically when mu == 0 and A
		// is rank deficient; bump the ridge and retry once.
		bump := 1e-8 * math.Max(1, MaxAbs(g))
		for i := 0; i < n; i++ {
			g.Add(i, i, bump)
		}
		l, err = Cholesky(g)
		if err != nil {
			return nil, err
		}
	}
	return CholeskySolve(l, TMul(a, b)), nil
}

// LinOp is a symmetric positive semi-definite linear operator on matrices,
// used by the matrix-free conjugate-gradient solver. Implementations apply
// the Hessian of one LoLi-IR subproblem without ever materializing it.
type LinOp interface {
	// Apply returns the operator applied to x (same shape as x).
	Apply(x *Matrix) *Matrix
}

// LinOpFunc adapts a function to the LinOp interface.
type LinOpFunc func(x *Matrix) *Matrix

// Apply implements LinOp.
func (f LinOpFunc) Apply(x *Matrix) *Matrix { return f(x) }

// CGResult reports how a conjugate-gradient solve terminated.
type CGResult struct {
	Iterations int
	Residual   float64 // final ‖r‖_F relative to ‖b‖_F
	Converged  bool
}

// CG solves op(X) = B for X by conjugate gradients, starting from x0
// (cloned; pass nil for a zero start). op must be symmetric positive
// (semi-)definite. Iteration stops when the relative residual drops below
// tol or maxIter is reached.
func CG(op LinOp, b *Matrix, x0 *Matrix, tol float64, maxIter int) (*Matrix, CGResult) {
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	var x *Matrix
	if x0 != nil {
		x = x0.Clone()
	} else {
		x = New(b.Rows(), b.Cols())
	}
	bn := FrobNorm(b)
	if bn == 0 {
		return New(b.Rows(), b.Cols()), CGResult{Converged: true}
	}
	r := Sub(b, op.Apply(x))
	p := r.Clone()
	rs := FrobNorm2(r)
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k
		rn := math.Sqrt(rs) / bn
		res.Residual = rn
		if rn < tol {
			res.Converged = true
			return x, res
		}
		ap := op.Apply(p)
		den := dotM(p, ap)
		if den <= 0 {
			// Operator lost definiteness numerically; stop with the best
			// iterate so far rather than diverging.
			return x, res
		}
		alpha := rs / den
		AXPY(x, alpha, p)
		AXPY(r, -alpha, ap)
		rsNew := FrobNorm2(r)
		beta := rsNew / rs
		rs = rsNew
		// p = r + beta*p
		for i, rv := range r.data {
			p.data[i] = rv + beta*p.data[i]
		}
	}
	res.Residual = math.Sqrt(rs) / bn
	res.Converged = res.Residual < tol
	return x, res
}

func dotM(a, b *Matrix) float64 {
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}
