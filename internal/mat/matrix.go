// Package mat implements the dense linear-algebra substrate used by the
// TafLoc reconstruction pipeline: basic matrix arithmetic, Frobenius and
// spectral norms, Householder QR (plain and column-pivoted), one-sided
// Jacobi SVD, Cholesky factorization, ridge least squares, and a
// matrix-free conjugate-gradient solver.
//
// The package is self-contained (stdlib only) and deterministic: no
// operation consults a random source. All matrices are dense, row-major
// float64. Dimensions are validated eagerly; mismatches panic, because a
// dimension error is a programming bug, not a runtime condition.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix ready to use. Data is stored in
// one contiguous slice so whole-matrix kernels stay cache-friendly.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized r x c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r x c matrix backed by a copy of data, which must
// have exactly r*c elements in row-major order.
func NewFromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row)))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow overwrites row i with v (len(v) must equal Cols).
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol overwrites column j with v (len(v) must equal Rows).
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// RawRow returns the backing slice for row i without copying. The caller
// must not grow the slice; mutations write through to the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Raw returns the full backing slice (row-major) without copying.
func (m *Matrix) Raw() []float64 { return m.data }

// SubMatrix returns a copy of the block with rows [r0,r1) and cols [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: submatrix [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SelectCols returns a new matrix assembled from the given columns of m,
// in the order listed. Indices may repeat.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := New(m.rows, len(idx))
	for k, j := range idx {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("mat: SelectCols index %d out of range %d", j, m.cols))
		}
		for i := 0; i < m.rows; i++ {
			out.data[i*out.cols+k] = m.data[i*m.cols+j]
		}
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols:]
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = mi[j]
		}
	}
	return t
}

// Equal reports whether m and n have identical dimensions and all elements
// within tol of each other.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols && j < maxShow; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.data[i*m.cols+j])
		}
		if m.cols > maxShow {
			b.WriteString(" ...")
		}
	}
	if m.rows > maxShow {
		b.WriteString("; ...")
	}
	b.WriteByte(']')
	return b.String()
}

// Apply replaces every element with f(i, j, v).
func (m *Matrix) Apply(f func(i, j int, v float64) float64) {
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			m.data[i*m.cols+j] = f(i, j, m.data[i*m.cols+j])
		}
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// IsFinite reports whether all entries are finite (no NaN or Inf).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
