package mat

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U (m×k), S (k, descending), V (n×k), k = min(m,n).
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVDecompose computes the thin SVD of a using the one-sided Jacobi
// algorithm, which is simple, robust, and accurate for the modest
// dimensions fingerprint matrices have (tens of links x hundreds of cells).
//
// For wide matrices (m < n) the decomposition is computed on the transpose
// and the factors swapped back.
func SVDecompose(a *Matrix) *SVD {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &SVD{U: New(m, 0), S: nil, V: New(n, 0)}
	}
	if m < n {
		s := SVDecompose(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	// One-sided Jacobi: orthogonalize columns of W = A·V by plane rotations.
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 60
	eps := 1e-12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					app += wp * wp
					aqq += wq * wq
					apq += wp * wq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					w.data[i*n+p] = c*wp - s*wq
					w.data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Singular values are the column norms of W; U = W normalized. Each
	// column is an independent work item.
	s := make([]float64, n)
	ParallelFor(n, ChunkFor(2*m), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var norm float64
			for i := 0; i < m; i++ {
				norm += w.data[i*n+j] * w.data[i*n+j]
			}
			s[j] = math.Sqrt(norm)
		}
	})
	// Sort descending, permuting U and V columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	u := New(m, n)
	vOut := New(n, n)
	sOut := make([]float64, n)
	ParallelFor(n, ChunkFor(2*(m+n)), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			j := idx[k]
			sOut[k] = s[j]
			if s[j] > 0 {
				inv := 1 / s[j]
				for i := 0; i < m; i++ {
					u.data[i*n+k] = w.data[i*n+j] * inv
				}
			}
			for i := 0; i < n; i++ {
				vOut.data[i*n+k] = v.data[i*n+j]
			}
		}
	})
	return &SVD{U: u, S: sOut, V: vOut}
}

// Rank returns the numerical rank at relative tolerance tol (singular
// values below tol*S[0] count as zero). tol <= 0 defaults to 1e-10.
func (s *SVD) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0
	}
	r := 0
	for _, v := range s.S {
		if v > tol*s.S[0] {
			r++
		}
	}
	return r
}

// EnergyRank returns the smallest k whose leading singular values capture
// at least frac of the total squared spectral energy. This is the rank
// estimator TafLoc uses to size the factorization and the reference set.
func (s *SVD) EnergyRank(frac float64) int {
	var total float64
	for _, v := range s.S {
		total += v * v
	}
	if total == 0 {
		return 0
	}
	var acc float64
	for k, v := range s.S {
		acc += v * v
		if acc >= frac*total {
			return k + 1
		}
	}
	return len(s.S)
}

// Truncate returns rank-r factors L = U_r·Σ_r^½ and R = V_r·Σ_r^½ such
// that L·Rᵀ is the best rank-r approximation of the original matrix.
func (s *SVD) Truncate(r int) (l, rm *Matrix) {
	if r > len(s.S) {
		r = len(s.S)
	}
	m := s.U.Rows()
	n := s.V.Rows()
	l = New(m, r)
	rm = New(n, r)
	for k := 0; k < r; k++ {
		sq := math.Sqrt(s.S[k])
		for i := 0; i < m; i++ {
			l.data[i*r+k] = s.U.At(i, k) * sq
		}
		for i := 0; i < n; i++ {
			rm.data[i*r+k] = s.V.At(i, k) * sq
		}
	}
	return l, rm
}

// Reconstruct returns U·diag(S)·Vᵀ (rank limited to r if 0 < r < len(S)).
func (s *SVD) Reconstruct(r int) *Matrix {
	if r <= 0 || r > len(s.S) {
		r = len(s.S)
	}
	m := s.U.Rows()
	n := s.V.Rows()
	out := New(m, n)
	for k := 0; k < r; k++ {
		sk := s.S[k]
		if sk == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			uik := s.U.At(i, k) * sk
			if uik == 0 {
				continue
			}
			oi := out.data[i*n:]
			for j := 0; j < n; j++ {
				oi[j] += uik * s.V.At(j, k)
			}
		}
	}
	return out
}
