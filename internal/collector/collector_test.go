package collector

import (
	"context"
	"log/slog"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/rf"
	"tafloc/internal/wire"
)

func testChannel(t *testing.T) *rf.Channel {
	t.Helper()
	grid, err := geom.NewGrid(7.2, 4.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := rf.DefaultParams()
	p.Seed = 42
	ch, err := rf.NewChannel(p, geom.CrossedDeployment(7.2, 4.8, 10), grid)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0, 4); err == nil {
		t.Fatal("accepted zero links")
	}
	s, err := NewStore(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Links() != 3 {
		t.Fatalf("Links = %d", s.Links())
	}
}

func TestStoreLiveWindow(t *testing.T) {
	s, _ := NewStore(2, 3)
	for k := 0; k < 10; k++ {
		r := &wire.RSSReport{LinkID: 0, Seq: uint32(k + 1)}
		r.SetRSS(float64(k)) // 0..9; window keeps 7,8,9
		s.AddReport(r)
	}
	y, ok := s.LiveVector()
	if ok {
		t.Fatal("link 1 has no samples; ok must be false")
	}
	if math.Abs(y[0]-8) > 1e-9 {
		t.Fatalf("windowed mean = %g, want 8", y[0])
	}
	r := &wire.RSSReport{LinkID: 1, Seq: 1}
	r.SetRSS(-50)
	s.AddReport(r)
	if _, ok := s.LiveVector(); !ok {
		t.Fatal("all links have samples; ok must be true")
	}
}

func TestStoreSurveyPass(t *testing.T) {
	s, _ := NewStore(2, 4)
	s.BeginSurvey(17)
	for k := 0; k < 5; k++ {
		for link := uint16(0); link < 2; link++ {
			r := &wire.RSSReport{LinkID: link, Seq: uint32(k + 1), Flags: wire.FlagSurvey}
			r.SetRSS(-40 - float64(link)*10)
			s.AddReport(r)
		}
	}
	means, counts, cell := s.EndPass()
	if cell != 17 {
		t.Fatalf("cell = %d", cell)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("counts = %v", counts)
	}
	if means[0] != -40 || means[1] != -50 {
		t.Fatalf("means = %v", means)
	}
	// After the pass the mode is live again.
	r := &wire.RSSReport{LinkID: 0, Seq: 100}
	r.SetRSS(-33)
	s.AddReport(r)
	if c := s.PassCounts(); c[0] != 0 {
		t.Fatal("live-mode sample leaked into pass accumulator")
	}
}

func TestStoreVacantPassOnlyCountsVacantFrames(t *testing.T) {
	s, _ := NewStore(1, 4)
	s.BeginVacant()
	vac := &wire.RSSReport{LinkID: 0, Seq: 1, Flags: wire.FlagVacant}
	vac.SetRSS(-45)
	s.AddReport(vac)
	live := &wire.RSSReport{LinkID: 0, Seq: 2}
	live.SetRSS(-60)
	s.AddReport(live)
	means, counts, cell := s.EndPass()
	if cell != -1 {
		t.Fatalf("vacant pass cell = %d", cell)
	}
	if counts[0] != 1 || means[0] != -45 {
		t.Fatalf("vacant pass means=%v counts=%v", means, counts)
	}
}

func TestStoreDuplicateFramesExcludedFromPass(t *testing.T) {
	s, _ := NewStore(1, 4)
	s.BeginSurvey(0)
	r := &wire.RSSReport{LinkID: 0, Seq: 5}
	r.SetRSS(-40)
	s.AddReport(r)
	s.AddReport(r) // duplicate: same seq
	old := &wire.RSSReport{LinkID: 0, Seq: 3}
	old.SetRSS(-90)
	s.AddReport(old) // reordered: older seq
	_, counts, _ := s.EndPass()
	if counts[0] != 1 {
		t.Fatalf("duplicates counted: %d", counts[0])
	}
}

func TestStoreDropsUnknownLink(t *testing.T) {
	s, _ := NewStore(2, 4)
	r := &wire.RSSReport{LinkID: 9}
	s.AddReport(r)
	if st := s.Stats(); st.FramesDropped != 1 || st.FramesReceived != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// startCollector spins up a collector on loopback and returns it with its
// bound addresses.
func startCollector(t *testing.T, m int) (*Collector, string, string, context.CancelFunc) {
	t.Helper()
	c, err := New(m, 8, slog.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dataAddr, ctrlAddr, err := c.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		c.Wait()
	})
	return c, dataAddr, ctrlAddr, cancel
}

func TestCollectorEndToEndVacantCapture(t *testing.T) {
	ch := testChannel(t)
	c, dataAddr, ctrlAddr, _ := startCollector(t, ch.M())

	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	fleet, err := NewFleet(ch, dataAddr, AgentConfig{Interval: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(fleetCtx)
	}()

	orch, err := Dial(ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	if err := orch.StartVacant(80); err != nil {
		t.Fatal(err)
	}
	if !c.Store.WaitForCounts(80, 10*time.Second) {
		t.Fatal("timed out waiting for vacant samples")
	}
	means, counts, cell := c.Store.EndPass()
	if cell != -1 {
		t.Fatalf("vacant pass cell %d", cell)
	}
	truth := ch.TrueVacant(0)
	for i := range means {
		if counts[i] < 80 {
			t.Fatalf("link %d only %d samples", i, counts[i])
		}
		if math.Abs(means[i]-truth[i]) > 1.5 {
			t.Fatalf("link %d vacant mean %.2f vs truth %.2f", i, means[i], truth[i])
		}
	}
	if err := orch.Snapshot(); err != nil {
		t.Fatal(err)
	}
	stopFleet()
	wg.Wait()
}

func TestCollectorEndToEndSurveyPass(t *testing.T) {
	ch := testChannel(t)
	c, dataAddr, ctrlAddr, _ := startCollector(t, ch.M())

	cell := 40
	target := ch.Grid().Center(cell)
	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	fleet, err := NewFleet(ch, dataAddr, AgentConfig{
		Interval: 500 * time.Microsecond,
		Target:   func() (geom.Point, bool) { return target, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fleet.Run(fleetCtx)
	}()

	orch, err := Dial(ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()
	if err := orch.StartSurvey(cell, 80); err != nil {
		t.Fatal(err)
	}
	if !c.Store.WaitForCounts(80, 10*time.Second) {
		t.Fatal("timed out waiting for survey samples")
	}
	means, _, gotCell := c.Store.EndPass()
	if gotCell != cell {
		t.Fatalf("surveyed cell %d, want %d", gotCell, cell)
	}
	for i := range means {
		want := ch.TargetRSS(i, target, 0)
		if math.Abs(means[i]-want) > 1.5 {
			t.Fatalf("link %d survey mean %.2f vs truth %.2f", i, means[i], want)
		}
	}
	stopFleet()
	wg.Wait()
}

func TestCollectorDropsCorruptDatagrams(t *testing.T) {
	c, dataAddr, _, _ := startCollector(t, 4)
	conn, err := net.Dial("udp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send garbage, a truncated frame, and one valid frame.
	conn.Write([]byte("garbage data that is not a frame"))
	r := wire.RSSReport{LinkID: 1, Seq: 1}
	r.SetRSS(-50)
	valid := r.Encode()
	conn.Write(valid[:10])
	conn.Write(valid)

	// The 32-byte garbage datagram counts as one bad frame plus a runt
	// tail (2 drops), the truncated frame as one, so 4 frames arrive of
	// which 3 drop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Store.Stats()
		if st.FramesReceived >= 4 {
			if st.FramesDropped != 3 {
				t.Fatalf("dropped = %d, want 3", st.FramesDropped)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames not received: %+v", c.Store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOrchestratorUnknownMessage(t *testing.T) {
	_, _, ctrlAddr, _ := startCollector(t, 2)
	conn, err := net.Dial("tcp", ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cc := wire.NewControlConn(conn)
	if err := cc.Send(wire.ControlMessage{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	reply, err := cc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %+v, want error", reply)
	}
}

func TestCollectorStopUnblocks(t *testing.T) {
	c, _, _, cancel := startCollector(t, 2)
	cancel()
	done := make(chan struct{})
	go func() {
		c.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("collector did not shut down")
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil, "127.0.0.1:1", AgentConfig{}); err == nil {
		t.Fatal("accepted nil channel")
	}
	ch := testChannel(t)
	if _, err := NewFleet(ch, "not-an-address", AgentConfig{}); err == nil {
		t.Fatal("accepted bad address")
	}
}
