package collector

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"tafloc/internal/wire"
)

// TestCollectorBatchDatagramAndSink sends one concatenated-batch datagram
// and checks every frame reaches both the store and the registered sink.
func TestCollectorBatchDatagramAndSink(t *testing.T) {
	const links = 3
	c, err := New(links, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sunk []wire.RSSReport
	c.SetSink(func(r wire.RSSReport) {
		mu.Lock()
		sunk = append(sunk, r)
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	dataAddr, _, err := c.Start(ctx, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		c.Wait()
	})

	reports := make([]wire.RSSReport, links)
	for i := range reports {
		reports[i] = wire.RSSReport{LinkID: uint16(i), Seq: 1, Time: time.Now()}
		reports[i].SetRSS(-40 - float64(i))
	}
	conn, err := net.Dial("udp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.EncodeBatch(reports)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Store.Stats(); st.FramesReceived == links {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := c.Store.Stats(); st.FramesReceived != links || st.FramesDropped != 0 {
		t.Fatalf("stats after batch: %+v", st)
	}
	mu.Lock()
	if len(sunk) != links {
		mu.Unlock()
		t.Fatalf("sink saw %d reports, want %d", len(sunk), links)
	}
	for i, r := range sunk {
		if int(r.LinkID) != i || r.RSS() != -40-float64(i) {
			t.Errorf("sink report %d: %+v", i, r)
		}
	}
	mu.Unlock()

	// A batch whose second frame is corrupt: the corrupt frame costs
	// exactly one drop and the frames around it are salvaged.
	bad := wire.EncodeBatch(reports)
	bad[wire.FrameSize+4] ^= 0xFF
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if st := c.Store.Stats(); st.FramesReceived == 2*links {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := c.Store.Stats(); st.FramesReceived != 2*links || st.FramesDropped != 1 {
		t.Fatalf("stats after corrupt batch: %+v, want received=%d dropped=1", st, 2*links)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sunk) != 2*links-1 {
		t.Errorf("sink saw %d reports after corrupt batch, want %d", len(sunk), 2*links-1)
	}
}
