// Package collector implements the measurement-collection pipeline: link
// agents (simulated NIC drivers) stream RSS report frames over UDP to a
// Collector, which validates, aggregates, and exposes them to the
// localization pipeline; a TCP control plane orchestrates survey passes
// and vacant captures.
//
// The collector replaces the paper's driver-level RSS extraction: the
// fingerprint pipeline consumes the collector's aggregates exactly as it
// would consume driver reports.
package collector

import (
	"fmt"
	"sync"
	"time"

	"tafloc/internal/wire"
)

// Mode is the store's aggregation mode.
type Mode int

// Aggregation modes.
const (
	// ModeLive only feeds the per-link live window.
	ModeLive Mode = iota
	// ModeSurvey additionally accumulates samples into the current
	// survey pass.
	ModeSurvey
	// ModeVacant additionally accumulates vacant-flagged samples into
	// the vacant pass.
	ModeVacant
)

// Stats counts collector activity.
type Stats struct {
	FramesReceived uint64
	FramesDropped  uint64 // short, corrupt, bad link ID
	SurveyPasses   uint64
	VacantPasses   uint64
}

// Store is the concurrency-safe aggregation core shared by the UDP loop
// and the consumers.
type Store struct {
	mu    sync.Mutex
	m     int // number of links
	mode  Mode
	cell  int // surveyed cell while in ModeSurvey
	stats Stats

	// live sliding window per link
	window     int
	live       [][]float64
	lastSeq    []uint32
	lastSeqSet []bool

	// accumulation for the current survey or vacant pass
	accSum   []float64
	accCount []int
}

// NewStore builds a store for m links with the given live-window length
// per link (default 8 when <= 0).
func NewStore(m, window int) (*Store, error) {
	if m <= 0 {
		return nil, fmt.Errorf("collector: need at least one link, got %d", m)
	}
	if window <= 0 {
		window = 8
	}
	s := &Store{
		m:          m,
		window:     window,
		live:       make([][]float64, m),
		lastSeq:    make([]uint32, m),
		lastSeqSet: make([]bool, m),
		accSum:     make([]float64, m),
		accCount:   make([]int, m),
	}
	return s, nil
}

// Links returns the link count.
func (s *Store) Links() int { return s.m }

// AddReport ingests one decoded report. Reports with out-of-range link
// IDs are dropped. Duplicate or reordered frames (sequence not newer than
// the last seen) only feed the live window, never the pass accumulators,
// so a retransmitted survey frame cannot bias the average.
func (s *Store) AddReport(r *wire.RSSReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.FramesReceived++
	if int(r.LinkID) >= s.m {
		s.stats.FramesDropped++
		return
	}
	i := int(r.LinkID)
	fresh := !s.lastSeqSet[i] || r.Seq > s.lastSeq[i]
	if fresh {
		s.lastSeq[i] = r.Seq
		s.lastSeqSet[i] = true
	}
	rss := r.RSS()
	s.live[i] = append(s.live[i], rss)
	if len(s.live[i]) > s.window {
		s.live[i] = s.live[i][len(s.live[i])-s.window:]
	}
	if !fresh {
		return
	}
	switch s.mode {
	case ModeSurvey:
		s.accSum[i] += rss
		s.accCount[i]++
	case ModeVacant:
		if r.Vacant() {
			s.accSum[i] += rss
			s.accCount[i]++
		}
	}
}

// MarkDropped records an undecodable frame.
func (s *Store) MarkDropped() {
	s.mu.Lock()
	s.stats.FramesReceived++
	s.stats.FramesDropped++
	s.mu.Unlock()
}

// BeginSurvey switches to survey accumulation for the given cell,
// resetting the accumulators.
func (s *Store) BeginSurvey(cell int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = ModeSurvey
	s.cell = cell
	s.resetAccLocked()
}

// BeginVacant switches to vacant accumulation.
func (s *Store) BeginVacant() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = ModeVacant
	s.resetAccLocked()
}

// EndPass returns the per-link mean of the finished pass along with the
// surveyed cell (-1 for a vacant pass) and switches back to ModeLive.
// Links that contributed no samples report NaN-free zero means and a
// false ok flag per link via the counts slice.
func (s *Store) EndPass() (means []float64, counts []int, cell int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	means = make([]float64, s.m)
	counts = append([]int(nil), s.accCount...)
	for i := 0; i < s.m; i++ {
		if s.accCount[i] > 0 {
			means[i] = s.accSum[i] / float64(s.accCount[i])
		}
	}
	cell = -1
	switch s.mode {
	case ModeSurvey:
		cell = s.cell
		s.stats.SurveyPasses++
	case ModeVacant:
		s.stats.VacantPasses++
	}
	s.mode = ModeLive
	s.resetAccLocked()
	return means, counts, cell
}

// PassCounts returns how many samples each link has contributed to the
// pass in progress.
func (s *Store) PassCounts() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.accCount...)
}

// LiveVector returns the mean of each link's live window. ok is false
// when any link has an empty window.
func (s *Store) LiveVector() (y []float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	y = make([]float64, s.m)
	ok = true
	for i := 0; i < s.m; i++ {
		if len(s.live[i]) == 0 {
			ok = false
			continue
		}
		var sum float64
		for _, v := range s.live[i] {
			sum += v
		}
		y[i] = sum / float64(len(s.live[i]))
	}
	return y, ok
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) resetAccLocked() {
	for i := range s.accSum {
		s.accSum[i] = 0
		s.accCount[i] = 0
	}
}

// WaitForCounts polls until every link has at least want samples in the
// current pass or the timeout elapses; it reports whether the condition
// was met. Polling keeps the store free of condition variables on the
// hot ingest path.
func (s *Store) WaitForCounts(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		counts := s.PassCounts()
		done := true
		for _, c := range counts {
			if c < want {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
