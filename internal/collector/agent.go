package collector

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"tafloc/internal/geom"
	"tafloc/internal/rf"
	"tafloc/internal/wire"
)

// TargetFunc reports the current target position, or ok=false when the
// room is vacant. Agents sample it before every report, so a moving
// target is observed consistently across links.
type TargetFunc func() (p geom.Point, ok bool)

// AgentConfig configures a fleet of link agents.
type AgentConfig struct {
	// Interval between reports per link (the paper samples at 1 Hz; tests
	// accelerate this).
	Interval time.Duration
	// Days is the simulated age of the environment.
	Days float64
	// Target provides the target position; nil means always vacant.
	Target TargetFunc
}

// Fleet runs one sending goroutine per link of a channel, streaming RSS
// report frames to a collector's UDP address. It is the simulation stand-
// in for the per-node firmware of the paper's testbed.
type Fleet struct {
	ch   *rf.Channel
	cfg  AgentConfig
	conn *net.UDPConn
	wg   sync.WaitGroup

	mu   sync.Mutex
	seqs []uint32
}

// NewFleet dials the collector's UDP address and prepares agents for
// every link of ch.
func NewFleet(ch *rf.Channel, dataAddr string, cfg AgentConfig) (*Fleet, error) {
	if ch == nil {
		return nil, fmt.Errorf("collector: nil channel")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	ua, err := net.ResolveUDPAddr("udp", dataAddr)
	if err != nil {
		return nil, fmt.Errorf("collector: resolve data addr: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("collector: dial data plane: %w", err)
	}
	return &Fleet{
		ch:   ch,
		cfg:  cfg,
		conn: conn,
		seqs: make([]uint32, ch.M()),
	}, nil
}

// Run starts all agents and blocks until ctx is cancelled.
func (f *Fleet) Run(ctx context.Context) {
	for link := 0; link < f.ch.M(); link++ {
		f.wg.Add(1)
		go func(link int) {
			defer f.wg.Done()
			ticker := time.NewTicker(f.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					f.sendOne(link)
				}
			}
		}(link)
	}
	f.wg.Wait()
	f.conn.Close()
}

// sendOne samples the channel and transmits one frame. Send errors are
// dropped silently: UDP loss is part of the model and the store's
// sequence tracking tolerates it.
func (f *Fleet) sendOne(link int) {
	var rss float64
	var flags uint8
	var p geom.Point
	var present bool
	if f.cfg.Target != nil {
		p, present = f.cfg.Target()
	}
	f.mu.Lock()
	f.seqs[link]++
	seq := f.seqs[link]
	if present {
		rss = f.ch.SampleTarget(link, p, f.cfg.Days)
	} else {
		rss = f.ch.SampleVacant(link, f.cfg.Days)
		flags |= wire.FlagVacant
	}
	f.mu.Unlock()
	r := wire.RSSReport{
		Flags:  flags,
		LinkID: uint16(link),
		Seq:    seq,
		Time:   time.Now(),
	}
	r.SetRSS(rss)
	_, _ = f.conn.Write(r.Encode())
}

// Orchestrator drives survey passes and captures over the control plane.
type Orchestrator struct {
	cc   *wire.ControlConn
	conn net.Conn
}

// Dial connects to a collector's control address.
func Dial(ctrlAddr string) (*Orchestrator, error) {
	conn, err := net.Dial("tcp", ctrlAddr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial control: %w", err)
	}
	return &Orchestrator{cc: wire.NewControlConn(conn), conn: conn}, nil
}

// Close closes the control connection.
func (o *Orchestrator) Close() error { return o.conn.Close() }

func (o *Orchestrator) roundTrip(msg wire.ControlMessage) error {
	if err := o.cc.Send(msg); err != nil {
		return err
	}
	reply, err := o.cc.Recv()
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgAck {
		return fmt.Errorf("collector: control error: %s", reply.Detail)
	}
	return nil
}

// StartSurvey begins survey accumulation for cell.
func (o *Orchestrator) StartSurvey(cell, samples int) error {
	return o.roundTrip(wire.ControlMessage{Type: wire.MsgStartSurvey, Cell: cell, Samples: samples})
}

// StopSurvey ends the current pass.
func (o *Orchestrator) StopSurvey() error {
	return o.roundTrip(wire.ControlMessage{Type: wire.MsgStopSurvey})
}

// StartVacant begins vacant accumulation.
func (o *Orchestrator) StartVacant(samples int) error {
	return o.roundTrip(wire.ControlMessage{Type: wire.MsgVacantCapture, Samples: samples})
}

// Snapshot asks the collector for its counters (returned via error
// detail on failure; success means the collector is healthy).
func (o *Orchestrator) Snapshot() error {
	return o.roundTrip(wire.ControlMessage{Type: wire.MsgSnapshot})
}
