package collector

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"

	"tafloc/internal/wire"
)

// Collector receives RSS report frames over UDP and serves a TCP control
// plane for survey orchestration. Create with New, start with Start, stop
// by cancelling the context; Wait blocks until both loops exit.
type Collector struct {
	Store *Store

	log       *slog.Logger
	sink      func(wire.RSSReport)
	batchSink func([]wire.RSSReport)
	udpConn   *net.UDPConn
	tcpLis    net.Listener
	wg        sync.WaitGroup
	cancelMu  sync.Mutex
	cancel    context.CancelFunc
}

// New builds a collector for m links with the given live window.
func New(m, window int, log *slog.Logger) (*Collector, error) {
	store, err := NewStore(m, window)
	if err != nil {
		return nil, err
	}
	if log == nil {
		log = slog.Default()
	}
	return &Collector{Store: store, log: log}, nil
}

// SetSink registers fn to receive a copy of every successfully decoded
// data-plane report, in addition to the store — the hook that forwards
// measurements into the multi-zone serving layer. It must be called
// before Start. The callback runs on the UDP read loop, so it must be
// fast and non-blocking (e.g. enqueue into a bounded queue and shed on
// overflow).
func (c *Collector) SetSink(fn func(wire.RSSReport)) { c.sink = fn }

// SetBatchSink registers fn to receive each datagram's successfully
// decoded frames as one slice — the batch-preserving counterpart of
// SetSink, made to pair with serve.IngestSink so a whole UDP batch
// datagram travels the serving layer's shared ingest path as one batch.
// It must be called before Start. The slice is reused between
// datagrams: fn must not retain it past the call. Like SetSink, fn runs
// on the UDP read loop and must be fast and non-blocking.
func (c *Collector) SetBatchSink(fn func([]wire.RSSReport)) { c.batchSink = fn }

// Start binds the UDP data plane and TCP control plane on the given
// addresses ("127.0.0.1:0" picks free ports) and launches the serving
// loops. It returns the bound addresses.
func (c *Collector) Start(ctx context.Context, udpAddr, tcpAddr string) (dataAddr, ctrlAddr string, err error) {
	ua, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return "", "", fmt.Errorf("collector: resolve udp: %w", err)
	}
	c.udpConn, err = net.ListenUDP("udp", ua)
	if err != nil {
		return "", "", fmt.Errorf("collector: listen udp: %w", err)
	}
	c.tcpLis, err = net.Listen("tcp", tcpAddr)
	if err != nil {
		c.udpConn.Close()
		return "", "", fmt.Errorf("collector: listen tcp: %w", err)
	}
	ctx, cancel := context.WithCancel(ctx)
	c.cancelMu.Lock()
	c.cancel = cancel
	c.cancelMu.Unlock()

	c.wg.Add(3)
	go c.serveUDP()
	go c.serveTCP()
	go func() {
		defer c.wg.Done()
		<-ctx.Done()
		c.udpConn.Close()
		c.tcpLis.Close()
	}()
	return c.udpConn.LocalAddr().String(), c.tcpLis.Addr().String(), nil
}

// Stop cancels the serving loops.
func (c *Collector) Stop() {
	c.cancelMu.Lock()
	if c.cancel != nil {
		c.cancel()
	}
	c.cancelMu.Unlock()
}

// Wait blocks until the serving loops exit.
func (c *Collector) Wait() { c.wg.Wait() }

func (c *Collector) serveUDP() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	var report wire.RSSReport
	var frames []wire.RSSReport // per-datagram batch, reused across reads
	for {
		n, _, err := c.udpConn.ReadFromUDP(buf)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				c.log.Error("collector: udp read", "err", err)
			}
			return
		}
		// A datagram carries one frame or a whole concatenated batch
		// (wire.EncodeBatch); legal datagrams are exact multiples of
		// FrameSize, and a short tail counts as a dropped runt frame.
		// Frames are fixed-size with per-frame magic and CRC, so a
		// corrupt frame costs exactly one frame: resync at the next
		// boundary and salvage the rest of the batch.
		data := buf[:n]
		frames = frames[:0]
		for len(data) > 0 {
			if len(data) < wire.FrameSize {
				c.Store.MarkDropped() // runt datagram or trailing partial frame
				break
			}
			if err := report.DecodeFromBytes(data); err != nil {
				c.Store.MarkDropped()
			} else {
				c.Store.AddReport(&report)
				if c.sink != nil {
					c.sink(report)
				}
				if c.batchSink != nil {
					frames = append(frames, report)
				}
			}
			data = data[wire.FrameSize:]
		}
		if c.batchSink != nil && len(frames) > 0 {
			c.batchSink(frames)
		}
	}
}

func (c *Collector) serveTCP() {
	defer c.wg.Done()
	for {
		conn, err := c.tcpLis.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				c.log.Error("collector: tcp accept", "err", err)
			}
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.handleControl(conn)
		}()
	}
}

// handleControl runs one control session: each request receives an Ack
// (or Error) reply; EndPass results are reported through the snapshot
// flow by the orchestrator reading the store directly, keeping the
// control protocol minimal.
func (c *Collector) handleControl(conn net.Conn) {
	cc := wire.NewControlConn(conn)
	for {
		msg, err := cc.Recv()
		if err != nil {
			return // peer closed or broken stream
		}
		switch msg.Type {
		case wire.MsgStartSurvey:
			c.Store.BeginSurvey(msg.Cell)
			err = cc.Send(wire.ControlMessage{Type: wire.MsgAck})
		case wire.MsgStopSurvey:
			c.Store.EndPass()
			err = cc.Send(wire.ControlMessage{Type: wire.MsgAck})
		case wire.MsgVacantCapture:
			c.Store.BeginVacant()
			err = cc.Send(wire.ControlMessage{Type: wire.MsgAck})
		case wire.MsgSnapshot:
			stats := c.Store.Stats()
			err = cc.Send(wire.ControlMessage{
				Type:   wire.MsgAck,
				Detail: fmt.Sprintf("received=%d dropped=%d", stats.FramesReceived, stats.FramesDropped),
			})
		default:
			err = cc.Send(wire.ControlMessage{
				Type:   wire.MsgError,
				Detail: fmt.Sprintf("unknown message type %q", msg.Type),
			})
		}
		if err != nil {
			c.log.Error("collector: control send", "err", err)
			return
		}
	}
}
