package client

import (
	"context"
	"sync"
	"time"

	"tafloc/taflocerr"
)

// Reporter defaults.
const (
	defaultReporterBatch    = 64
	defaultReporterInterval = 100 * time.Millisecond
	defaultRetryInitial     = 100 * time.Millisecond
	defaultRetryMax         = 5 * time.Second
)

// ReporterOption configures a Reporter.
type ReporterOption func(*reporterConfig)

type reporterConfig struct {
	batch        int
	interval     time.Duration
	retryInitial time.Duration
	retryMax     time.Duration
}

// WithReporterBatch sets the buffered-report count that triggers a
// flush (default 64). A Send that fills the buffer to this size flushes
// inline.
func WithReporterBatch(n int) ReporterOption {
	return func(c *reporterConfig) {
		if n > 0 {
			c.batch = n
		}
	}
}

// WithReporterInterval sets how long buffered reports may wait before a
// background flush pushes them out regardless of batch size (default
// 100ms); d <= 0 disables the timer, leaving size- and Flush-triggered
// flushes only.
func WithReporterInterval(d time.Duration) ReporterOption {
	return func(c *reporterConfig) { c.interval = d }
}

// WithReporterRetry sets the capped exponential backoff for reopening
// the underlying stream after it drops (defaults 100ms initial, 5s
// cap).
func WithReporterRetry(initial, max time.Duration) ReporterOption {
	return func(c *reporterConfig) {
		if initial > 0 {
			c.retryInitial = initial
		}
		if max > 0 {
			c.retryMax = max
		}
	}
}

// ReporterStats is a Reporter's cumulative accounting, including every
// stream incarnation it has been through. Sent counts reports written
// to a stream; Accepted/Shed/Rejected follow the server's acks (see
// StreamStats); Dropped counts reports the Reporter discarded locally
// because the server stayed unreachable and the buffer cap was hit;
// Retries counts stream reconnects.
type ReporterStats struct {
	Buffered int
	Sent     uint64
	Accepted uint64
	Shed     uint64
	Rejected uint64
	Dropped  uint64
	Retries  uint64
}

// Reporter is the auto-batching produce side of the streaming ingest
// API: Send buffers individual reports, and the buffer flushes as one
// NDJSON stream line when it reaches the batch size, when the flush
// interval elapses, or on an explicit Flush. The underlying
// ReportStream is reopened with capped exponential backoff when it
// drops, so a transient server outage costs shed reports (bounded by
// the local buffer cap), never a wedged producer. It replaces
// hand-rolled Report loops:
//
//	rep, err := cli.NewReporter(ctx, "lobby")
//	...
//	rep.Send(reports...)        // buffered, flushed automatically
//	...
//	err = rep.Close()           // final flush + summary check
//
// A Reporter is safe for concurrent use.
type Reporter struct {
	cli  *Client
	zone string
	cfg  reporterConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	buf     []Report
	st      *ReportStream
	base    ReporterStats // accounting accumulated from dead streams
	retries uint64
	dropped uint64
	nextTry time.Time     // earliest next reconnect attempt
	backoff time.Duration // current reconnect delay
	closed  bool

	quit      chan struct{} // closed by Close to stop the flush loop
	timerDone chan struct{}
}

// NewReporter opens an auto-batching report stream for one zone. The
// initial stream is dialled eagerly, so an unknown zone fails here with
// the taxonomy sentinel. The reporter lives until Close or ctx
// cancellation.
func (c *Client) NewReporter(ctx context.Context, zone string, opts ...ReporterOption) (*Reporter, error) {
	cfg := reporterConfig{
		batch:        defaultReporterBatch,
		interval:     defaultReporterInterval,
		retryInitial: defaultRetryInitial,
		retryMax:     defaultRetryMax,
	}
	for _, o := range opts {
		o(&cfg)
	}
	rctx, cancel := context.WithCancel(ctx)
	st, err := c.ReportStream(rctx, zone)
	if err != nil {
		cancel()
		return nil, err
	}
	r := &Reporter{cli: c, zone: zone, cfg: cfg, ctx: rctx, cancel: cancel, st: st,
		quit: make(chan struct{})}
	if cfg.interval > 0 {
		r.timerDone = make(chan struct{})
		go r.flushLoop()
	}
	return r, nil
}

// Send buffers reports for the zone; a buffer reaching the batch size
// flushes inline. Send only fails once the reporter is closed or its
// context cancelled — transport trouble is absorbed by the
// reconnect/shed machinery and surfaces in Stats and Close.
func (r *Reporter) Send(reports ...Report) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "client: reporter for %s is closed", r.zone)
	}
	if err := r.ctx.Err(); err != nil {
		return err
	}
	r.buf = append(r.buf, reports...)
	// Cap the buffer at a few batches: when the server is unreachable,
	// old reports are stale data, not a backlog worth keeping.
	if limit := 8 * r.cfg.batch; len(r.buf) > limit {
		drop := len(r.buf) - limit
		r.dropped += uint64(drop)
		r.buf = append(r.buf[:0], r.buf[drop:]...)
	}
	if len(r.buf) >= r.cfg.batch {
		r.flushLocked()
	}
	return nil
}

// Flush pushes the buffered reports out now and waits until the server
// has acked everything sent so far, so Stats afterwards reflects the
// server's verdict on every report. It returns the stream error when
// the stream is down (the buffered reports stay queued for the next
// reconnect).
func (r *Reporter) Flush(ctx context.Context) error {
	r.mu.Lock()
	r.flushLocked()
	st := r.st
	r.mu.Unlock()
	if st == nil {
		return taflocerr.Errorf(taflocerr.CodeInternal, "client: reporter stream for %s is down", r.zone)
	}
	return st.Sync(ctx)
}

// Stats returns the reporter's cumulative accounting.
func (r *Reporter) Stats() ReporterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.base
	if r.st != nil {
		s := r.st.Stats()
		out.Sent += s.Reports
		out.Accepted += s.Accepted
		out.Shed += s.Shed
		out.Rejected += s.Rejected
	}
	out.Buffered = len(r.buf)
	out.Dropped = r.dropped
	out.Retries = r.retries
	return out
}

// Close flushes the buffer, ends the stream, and returns the first
// stream error (nil on a clean shutdown with a server trailer). If the
// stream is down and cannot be flushed, the buffered reports are
// counted into Dropped and Close reports the failure rather than
// pretending the shutdown was clean. Close is idempotent; repeated
// calls return nil.
func (r *Reporter) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.flushLocked()
	// A non-empty buffer here means the stream is down and the final
	// reconnect failed: those reports are lost, and say so.
	lost := len(r.buf)
	r.dropped += uint64(lost)
	r.buf = nil
	st := r.st
	r.st = nil
	r.mu.Unlock()
	close(r.quit)
	if r.timerDone != nil {
		<-r.timerDone
	}
	var err error
	if st != nil {
		var sum StreamSummary
		sum, err = st.Close()
		s := st.Stats()
		r.mu.Lock()
		r.base.Sent += s.Reports
		if err == nil {
			// The trailer is the server's authoritative accounting.
			r.base.Accepted += sum.Accepted
			r.base.Shed += sum.Shed
			r.base.Rejected += sum.Rejected
		} else {
			// No trailer — fall back to the ack-derived client counts so
			// already-acked reports do not vanish from Stats.
			r.base.Accepted += s.Accepted
			r.base.Shed += s.Shed
			r.base.Rejected += s.Rejected
		}
		r.mu.Unlock()
	}
	r.cancel()
	if err == nil && lost > 0 {
		err = taflocerr.Errorf(taflocerr.CodeInternal,
			"client: reporter for %s closed with the stream down; %d buffered reports dropped", r.zone, lost)
	}
	return err
}

// flushLocked writes the buffer as one stream line, reconnecting the
// stream first if it died (subject to the backoff schedule). On an
// unreachable server the buffer is retained for the next attempt —
// bounded by the Send-side cap. Caller holds r.mu.
func (r *Reporter) flushLocked() {
	if len(r.buf) == 0 {
		return
	}
	if r.st == nil && !r.reconnectLocked() {
		return
	}
	batch := r.buf
	r.buf = nil
	if err := r.st.Send(batch); err != nil {
		// The stream died under us. Fold its accounting into the base,
		// drop it, and keep the batch buffered for the reconnect.
		s := r.st.Stats()
		r.base.Sent += s.Reports
		r.base.Accepted += s.Accepted
		r.base.Shed += s.Shed
		r.base.Rejected += s.Rejected
		go func(st *ReportStream) { _, _ = st.Close() }(r.st)
		r.st = nil
		r.buf = append(batch, r.buf...)
	}
}

// reconnectLocked reopens the stream if the backoff schedule allows,
// reporting whether a live stream exists afterwards. Caller holds r.mu.
func (r *Reporter) reconnectLocked() bool {
	now := time.Now()
	if now.Before(r.nextTry) {
		return false
	}
	if r.backoff == 0 {
		r.backoff = r.cfg.retryInitial
	}
	r.retries++
	st, err := r.cli.ReportStream(r.ctx, r.zone)
	if err != nil {
		r.nextTry = now.Add(r.backoff)
		r.backoff *= 2
		if r.backoff > r.cfg.retryMax {
			r.backoff = r.cfg.retryMax
		}
		return false
	}
	r.st = st
	r.backoff = 0
	r.nextTry = time.Time{}
	return true
}

// flushLoop is the interval flusher.
func (r *Reporter) flushLoop() {
	defer close(r.timerDone)
	ticker := time.NewTicker(r.cfg.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-r.quit:
			return
		case <-ticker.C:
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				return
			}
			r.flushLocked()
			r.mu.Unlock()
		}
	}
}
