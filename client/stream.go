package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// StreamSummary is the server's end-of-stream accounting trailer.
type StreamSummary = api.StreamSummary

// StreamStats is a ReportStream's client-side accounting, derived from
// the per-line acks. Lines counts batches written and Acked how many of
// them the server has acknowledged so far (acks trail writes — the
// stream is pipelined). Reports counts reports written;
// Accepted/Shed/Rejected split the acked ones by outcome: accepted into
// the zone's queue, shed on a full queue (back off), or rejected by
// validation.
type StreamStats struct {
	Lines    uint64
	Acked    uint64
	Reports  uint64
	Accepted uint64
	Shed     uint64
	Rejected uint64
}

// ReportStream is one persistent NDJSON ingest stream
// (POST /v2/zones/{id}/reports:stream): batches go out as lines with
// Send, acks come back asynchronously and accumulate in Stats, and
// Close ends the stream and returns the server's summary trailer.
// Unlike per-request Report calls, a stream pays connection and header
// overhead once and pipelines batches — Send does not wait for the ack.
//
// A ReportStream is safe for concurrent use.
type ReportStream struct {
	zone string
	pw   *io.PipeWriter
	body io.ReadCloser

	// sendMu orders concurrent Sends: the pending-FIFO append and the
	// wire write must happen atomically with respect to other Sends, or
	// ack attribution (which pops pending in wire order) would skew.
	// It is never held while waiting on acks, so it cannot deadlock
	// against a server that stops reading until its acks are drained.
	sendMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every ack and on reader exit
	stats   StreamStats
	pending []int // report counts of sent-but-unacked lines, FIFO
	summary *StreamSummary
	err     error // first transport/protocol error, sticky
	closed  bool  // Send-side closed
	done    bool  // ack reader exited
}

// ReportStream opens a persistent ingest stream for one zone. The
// stream lives until Close (or ctx cancellation); the returned error
// carries the taxonomy sentinel when the server refuses the stream
// (e.g. taflocerr.ErrUnknownZone).
func (c *Client) ReportStream(ctx context.Context, zone string) (*ReportStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/reports:stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, fmt.Errorf("client: report stream %s: %w", zone, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		pw.Close()
		return nil, decodeError(resp)
	}
	st := &ReportStream{zone: zone, pw: pw, body: resp.Body}
	st.cond = sync.NewCond(&st.mu)
	go st.readAcks()
	return st, nil
}

// Send writes one batch as a stream line. It returns as soon as the
// line is on the wire — the ack arrives asynchronously and lands in
// Stats. A Send after the stream has failed (or been closed) returns
// the sticky stream error; the batch is the caller's to retry
// elsewhere.
func (st *ReportStream) Send(batch []Report) error {
	data, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return taflocerr.Errorf(taflocerr.CodeBadRequest, "client: report stream %s is closed", st.zone)
	}
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return err
	}
	st.stats.Lines++
	st.stats.Reports += uint64(len(batch))
	st.pending = append(st.pending, len(batch))
	st.mu.Unlock()
	// The pipe write blocks until the transport consumes the line — the
	// connection itself is the backpressure. sendMu keeps it in the same
	// order as the pending append above.
	if _, err := st.pw.Write(data); err != nil {
		st.fail(fmt.Errorf("client: report stream %s: %w", st.zone, err))
		return err
	}
	return nil
}

// Sync blocks until every line written so far has been acked (or the
// stream fails, or ctx is cancelled). After a nil return, Stats
// reflects the server's verdict on everything sent.
func (st *ReportStream) Sync(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	defer stop()
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.stats.Acked < st.stats.Lines {
		if st.err != nil {
			return st.err
		}
		if st.done {
			return taflocerr.Errorf(taflocerr.CodeInternal,
				"client: report stream %s ended with %d of %d acks",
				st.zone, st.stats.Acked, st.stats.Lines)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		st.cond.Wait()
	}
	return st.err
}

// Stats returns the stream's current client-side accounting.
func (st *ReportStream) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Close ends the stream: the request body is closed (the server's
// signal to finish), the remaining acks and the summary trailer are
// read, and the trailer is returned. Close reports the first stream
// error, if any; a nil error means every line was acked and the trailer
// received. Close is idempotent.
func (st *ReportStream) Close() (StreamSummary, error) {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		st.mu.Unlock()
		st.pw.Close()
		st.mu.Lock()
	}
	for !st.done {
		st.cond.Wait()
	}
	defer st.mu.Unlock()
	if st.summary != nil {
		return *st.summary, st.err
	}
	err := st.err
	if err == nil {
		err = taflocerr.Errorf(taflocerr.CodeInternal,
			"client: report stream %s ended without a trailer", st.zone)
	}
	return StreamSummary{}, err
}

// fail latches the first stream error and wakes waiters.
func (st *ReportStream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// readAcks consumes the response: one ack line per sent line, then the
// trailer. It classifies every ack into the stream stats and exits on
// the trailer, EOF, or a transport error.
func (st *ReportStream) readAcks() {
	defer func() {
		st.body.Close()
		st.mu.Lock()
		st.done = true
		st.cond.Broadcast()
		st.mu.Unlock()
	}()
	sc := bufio.NewScanner(st.body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ack api.StreamAck
		if err := json.Unmarshal(line, &ack); err != nil {
			st.fail(fmt.Errorf("client: report stream %s: bad ack line: %w", st.zone, err))
			return
		}
		if ack.Trailer != nil {
			st.mu.Lock()
			st.summary = ack.Trailer
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		st.mu.Lock()
		st.stats.Acked++
		// Acks arrive in send order, so the oldest pending line is the
		// one this ack answers; its report count sizes shed/reject.
		n := 0
		if len(st.pending) > 0 {
			n = st.pending[0]
			st.pending = st.pending[1:]
		}
		switch {
		case ack.Code == "":
			st.stats.Accepted += uint64(ack.Accepted)
		case ack.Code == taflocerr.CodeQueueFull:
			st.stats.Shed += uint64(n)
		default:
			st.stats.Rejected += uint64(n)
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		st.fail(fmt.Errorf("client: report stream %s: %w", st.zone, err))
	}
}
