package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// TestDecodeErrorRoundTrip pins the full error taxonomy against drift:
// every code the server can emit must come back through the HTTP layer
// as an error matching its errors.Is sentinel — including codes this
// client build does not know, which collapse onto ErrInternal.
func TestDecodeErrorRoundTrip(t *testing.T) {
	cases := []struct {
		code taflocerr.Code
		want error
	}{
		{taflocerr.CodeUnknownZone, taflocerr.ErrUnknownZone},
		{taflocerr.CodeZoneExists, taflocerr.ErrZoneExists},
		{taflocerr.CodeQueueFull, taflocerr.ErrQueueFull},
		{taflocerr.CodeBadLink, taflocerr.ErrBadLink},
		{taflocerr.CodeBadRequest, taflocerr.ErrBadRequest},
		{taflocerr.CodeMethodNotAllowed, taflocerr.ErrMethodNotAllowed},
		{taflocerr.CodeNotReady, taflocerr.ErrNotReady},
		{taflocerr.CodeZoneRemoved, taflocerr.ErrZoneRemoved},
		{taflocerr.CodeStarted, taflocerr.ErrStarted},
		{taflocerr.CodeUnsupported, taflocerr.ErrUnsupported},
		{taflocerr.CodeCancelled, taflocerr.ErrCancelled},
		{taflocerr.CodeSnapshotVersion, taflocerr.ErrSnapshotVersion},
		{taflocerr.CodeSnapshotCorrupt, taflocerr.ErrSnapshotCorrupt},
		{taflocerr.CodeInternal, taflocerr.ErrInternal},
		// A future server speaking a newer taxonomy must still yield a
		// typed error, not a nil or a panic.
		{taflocerr.Code("from_the_future"), taflocerr.ErrInternal},
	}
	for _, tc := range cases {
		t.Run(string(tc.code), func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(taflocerr.HTTPStatus(tc.code))
				_ = json.NewEncoder(w).Encode(api.ErrorBody{
					Error: "server-side message for " + string(tc.code),
					Code:  tc.code,
				})
			}))
			defer srv.Close()
			cli, err := New(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			_, err = cli.Position(context.Background(), "z")
			if err == nil {
				t.Fatal("error response decoded as success")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("code %q decoded to %v, does not match sentinel %v", tc.code, err, tc.want)
			}
			// The server's message survives the trip for humans.
			if want := "server-side message"; !strings.Contains(err.Error(), want) {
				t.Errorf("decoded error %q lost the server message", err)
			}
		})
	}

	// A non-JSON error body (a proxy's HTML 502, say) still yields a
	// typed internal error.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}))
	defer srv.Close()
	cli, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Position(context.Background(), "z"); !errors.Is(err, taflocerr.ErrInternal) {
		t.Errorf("non-JSON error body: %v", err)
	}
}

// flappingWatchServer serves SSE watch streams that drop after each
// event: connection k delivers the single estimate seq=k then closes,
// until all events are spent, after which it serves a terminal Final
// event. It also replays the previous estimate at the start of each
// stream (like the real server's snapshot-first contract) so the
// client's dedup is exercised.
type flappingWatchServer struct {
	mu       sync.Mutex
	events   int
	served   int
	connects int
}

func (f *flappingWatchServer) handler(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.connects++
	seq := f.served
	done := f.served >= f.events
	if !done {
		f.served++
	}
	f.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	writeEvent := func(e api.Estimate) {
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", data)
		fl.Flush()
	}
	if seq > 0 {
		// Replay of the current snapshot estimate, as the real server does.
		writeEvent(api.Estimate{Zone: "z", Seq: uint64(seq), Cell: seq})
	}
	if done {
		e := api.Estimate{Zone: "z", Seq: uint64(seq + 1), Cell: -1, Final: true}
		data, _ := json.Marshal(e)
		fmt.Fprintf(w, "event: gone\ndata: %s\n\n", data)
		fl.Flush()
		return
	}
	writeEvent(api.Estimate{Zone: "z", Seq: uint64(seq + 1), Cell: seq + 1})
	// Drop the connection abruptly — the flap.
}

// TestWatchRetryAgainstFlappingServer is the reconnect acceptance test:
// with WithWatchRetry, a Watch stream over a server that drops the
// connection after every single event still delivers the whole ordered
// sequence exactly once, ends with the Final event, and reports each
// reconnect through OnRetry.
func TestWatchRetryAgainstFlappingServer(t *testing.T) {
	const events = 5
	fs := &flappingWatchServer{events: events}
	srv := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer srv.Close()

	var retryMu sync.Mutex
	retries := 0
	cli, err := New(srv.URL, WithWatchRetry(WatchRetry{
		Initial: time.Millisecond,
		Max:     10 * time.Millisecond,
		OnRetry: func(err error, attempt int, delay time.Duration) {
			retryMu.Lock()
			retries++
			retryMu.Unlock()
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, err := cli.Watch(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}

	var got []Estimate
	for e := range ch {
		got = append(got, e)
	}
	if len(got) != events+1 {
		t.Fatalf("got %d events, want %d + Final: %+v", len(got), events, got)
	}
	for i := 0; i < events; i++ {
		if got[i].Seq != uint64(i+1) || got[i].Final {
			t.Errorf("event %d: %+v, want seq %d", i, got[i], i+1)
		}
	}
	if !got[events].Final {
		t.Errorf("last event not Final: %+v", got[events])
	}
	retryMu.Lock()
	defer retryMu.Unlock()
	if retries < events {
		t.Errorf("OnRetry saw %d reconnects, want >= %d (one per flap)", retries, events)
	}

	// Without the option, the first flap ends the stream — the legacy
	// contract is unchanged.
	fs2 := &flappingWatchServer{events: 3}
	srv2 := httptest.NewServer(http.HandlerFunc(fs2.handler))
	defer srv2.Close()
	plain, err := New(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := plain.Watch(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range ch2 {
		n++
	}
	if n != 1 {
		t.Errorf("plain watch over flapping server delivered %d events, want 1 then close", n)
	}
}

// TestWatchRetryTerminalOnZoneGone: when the zone disappears while the
// watcher is disconnected, the resumed watch still honours the removal
// contract — a Final estimate, then close.
func TestWatchRetryTerminalOnZoneGone(t *testing.T) {
	var mu sync.Mutex
	connects := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		connects++
		n := connects
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			data, _ := json.Marshal(api.Estimate{Zone: "z", Seq: 1, Cell: 4})
			fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", data)
			w.(http.Flusher).Flush()
			return // drop
		}
		// Zone removed while the client was away.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(api.ErrorBody{Error: "gone", Code: taflocerr.CodeUnknownZone})
	}))
	defer srv.Close()

	cli, err := New(srv.URL, WithWatchRetry(WatchRetry{Initial: time.Millisecond, Max: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	ch, err := cli.Watch(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	var got []Estimate
	for e := range ch {
		got = append(got, e)
	}
	if len(got) != 2 || got[0].Seq != 1 || !got[1].Final {
		t.Fatalf("events %+v, want one estimate then a synthesized Final", got)
	}
}

// TestWatchRetryGivesUp: MaxAttempts bounds reconnection against a dead
// server; the channel closes without a Final event (the lost-stream
// signal, distinct from removal).
func TestWatchRetryGivesUp(t *testing.T) {
	var mu sync.Mutex
	connects := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		connects++
		n := connects
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			data, _ := json.Marshal(api.Estimate{Zone: "z", Seq: 1, Cell: 4})
			fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", data)
			w.(http.Flusher).Flush()
			return
		}
		// Every reconnect fails hard.
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	cli, err := New(srv.URL, WithWatchRetry(WatchRetry{
		Initial: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	ch, err := cli.Watch(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	var got []Estimate
	for e := range ch {
		got = append(got, e)
	}
	if len(got) != 1 || got[0].Final {
		t.Fatalf("events %+v, want exactly the pre-drop estimate and no Final", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if connects != 4 { // initial + MaxAttempts
		t.Errorf("server saw %d connects, want 4", connects)
	}
}
