// Package client is the typed SDK for the TafLoc localization service's
// /v2 HTTP surface. It converses in the shared wire types of
// internal/api and translates error responses back into the taflocerr
// taxonomy, so a caller branches on errors.Is exactly as it would
// against an in-process serve.Service:
//
//	cli, err := client.Dial(ctx, "http://localhost:8750")
//	...
//	est, err := cli.Position(ctx, "lobby")
//	if errors.Is(err, taflocerr.ErrUnknownZone) { ... }
//
// Watch streams a zone's estimates over server-sent events:
//
//	ch, err := cli.Watch(ctx, "lobby")
//	for est := range ch { ... }
//
// The channel closes when ctx is cancelled, the connection drops, or the
// zone is removed server-side (the last event then has Final set).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// Wire types, shared with the server so the two cannot drift.
type (
	// Estimate is one position estimate of a zone.
	Estimate = api.Estimate
	// Report is one RSS sample addressed to one link of a zone.
	Report = api.Report
	// ZoneSpec parameterizes server-side zone creation.
	ZoneSpec = api.ZoneSpec
	// ZoneInfo describes a created or removed zone.
	ZoneInfo = api.ZoneInfo
	// Health is the service health summary.
	Health = api.Health
	// TrackPoint is one sample of a zone's smoothed trajectory.
	TrackPoint = api.TrackPoint
)

// Client is a typed handle on one TafLoc service. It is safe for
// concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	watchRetry *WatchRetry
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, proxies, instrumentation). The default is
// http.DefaultClient. Note that http.Client.Timeout bounds the entire
// response body read, so a client with a Timeout silently ends Watch
// streams when it elapses — bound individual calls with request
// contexts instead and leave Timeout zero if you use Watch.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WatchRetry configures automatic reconnection of Watch streams.
type WatchRetry struct {
	// Initial is the first reconnect delay (default 100ms).
	Initial time.Duration
	// Max caps the exponential backoff (default 5s).
	Max time.Duration
	// MaxAttempts bounds consecutive failed reconnect attempts before
	// the stream is declared lost and its channel closed; 0 retries
	// forever (until ctx is cancelled).
	MaxAttempts int
	// OnRetry, when non-nil, observes every reconnect attempt: the error
	// that ended the previous connection (or failed the previous
	// attempt), the 1-based consecutive attempt number, and the delay
	// before the attempt. It runs on the watch goroutine — keep it fast.
	OnRetry func(err error, attempt int, delay time.Duration)
}

// WithWatchRetry makes Watch streams survive connection drops: when the
// SSE stream ends without a terminal event, the client reconnects with
// capped exponential backoff and resumes the channel, deduplicating by
// estimate sequence number. The two stream endings stay
// distinguishable: a zone removal still delivers a Final estimate
// before the channel closes (terminal), while a channel that closes
// without one means the stream was lost for good — retries exhausted or
// the context cancelled. Without this option a Watch channel simply
// closes on the first network blip.
func WithWatchRetry(r WatchRetry) Option {
	return func(c *Client) {
		if r.Initial <= 0 {
			r.Initial = defaultRetryInitial
		}
		if r.Max <= 0 {
			r.Max = defaultRetryMax
		}
		c.watchRetry = &r
	}
}

// New builds a client for the service at baseURL without touching the
// network. Prefer Dial, which also verifies the service is reachable.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest, "client: invalid base URL %q", baseURL)
	}
	c := &Client{base: strings.TrimSuffix(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Dial builds a client and verifies the service responds on
// /v2/healthz.
func Dial(ctx context.Context, baseURL string, opts ...Option) (*Client, error) {
	c, err := New(baseURL, opts...)
	if err != nil {
		return nil, err
	}
	if _, err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", baseURL, err)
	}
	return c, nil
}

// Health fetches the service health summary.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v2/healthz", nil, &h)
	return h, err
}

// Zones lists the registered zone IDs in sorted order.
func (c *Client) Zones(ctx context.Context) ([]string, error) {
	var zl api.ZoneList
	if err := c.do(ctx, http.MethodGet, "/v2/zones", nil, &zl); err != nil {
		return nil, err
	}
	return zl.Zones, nil
}

// Position fetches a zone's most recent estimate. A zone that exists
// but has not published yet fails with taflocerr.ErrNotReady.
func (c *Client) Position(ctx context.Context, zone string) (Estimate, error) {
	var e Estimate
	err := c.do(ctx, http.MethodGet, "/v2/zones/"+url.PathEscape(zone)+"/position", nil, &e)
	return e, err
}

// Track fetches up to n samples of a zone's smoothed trajectory,
// oldest first (n <= 0 for everything the server buffers). Each sample
// carries the Kalman-filtered position, velocity, and uncertainty next
// to the raw fix it was folded from. Zones with tracking disabled fail
// with taflocerr.ErrUnsupported.
func (c *Client) Track(ctx context.Context, zone string, n int) ([]TrackPoint, error) {
	var tr api.TrackResponse
	if err := c.do(ctx, http.MethodGet, trackPath(zone, "track", n), nil, &tr); err != nil {
		return nil, err
	}
	return tr.Points, nil
}

// History fetches up to n of a zone's most recently published
// estimates, oldest first (n <= 0 for everything the server buffers) —
// the raw stream the smoothed track is derived from, including absent
// samples. Zones with history disabled fail with
// taflocerr.ErrUnsupported.
func (c *Client) History(ctx context.Context, zone string, n int) ([]Estimate, error) {
	var hr api.HistoryResponse
	if err := c.do(ctx, http.MethodGet, trackPath(zone, "history", n), nil, &hr); err != nil {
		return nil, err
	}
	return hr.Estimates, nil
}

func trackPath(zone, sub string, n int) string {
	p := "/v2/zones/" + url.PathEscape(zone) + "/" + sub
	if n > 0 {
		p += "?n=" + strconv.Itoa(n)
	}
	return p
}

// Report ingests a batch of RSS reports for a zone and returns the
// accepted count. A report addressing an out-of-range link fails the
// whole batch with taflocerr.ErrBadLink; an overloaded zone sheds with
// taflocerr.ErrQueueFull (retry later — ingestion never queues
// unboundedly).
func (c *Client) Report(ctx context.Context, zone string, reports []Report) (int, error) {
	var resp api.ReportResponse
	err := c.do(ctx, http.MethodPost, "/v2/report",
		api.ReportRequest{Zone: zone, Reports: reports}, &resp)
	return resp.Accepted, err
}

// AddZone creates a zone server-side through the service's zone
// factory. Servers without a factory fail with
// taflocerr.ErrUnsupported; an existing id with taflocerr.ErrZoneExists.
func (c *Client) AddZone(ctx context.Context, zone string, spec ZoneSpec) (ZoneInfo, error) {
	var zi ZoneInfo
	err := c.do(ctx, http.MethodPost, "/v2/zones/"+url.PathEscape(zone), spec, &zi)
	return zi, err
}

// RemoveZone removes a zone at runtime. Watchers of the zone receive a
// terminal estimate and their streams end.
func (c *Client) RemoveZone(ctx context.Context, zone string) error {
	return c.do(ctx, http.MethodDelete, "/v2/zones/"+url.PathEscape(zone), nil, nil)
}

// Snapshot exports a zone's calibrated deployment as an opaque,
// CRC-checked binary snapshot (the internal/snap format). The bytes can
// be persisted and later fed to RestoreZone — on the same server or
// another one — to warm-start the zone without recalibration. Servers
// without a ZoneFactory have not opted into remote zone administration
// and fail with taflocerr.ErrUnsupported.
func (c *Client) Snapshot(ctx context.Context, zone string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot %s: %w", zone, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RestoreZone warm-starts a zone server-side from a snapshot previously
// exported with Snapshot. The snapshot's zone ID must match zone.
// Corrupt or truncated snapshots fail with
// taflocerr.ErrSnapshotCorrupt (or ErrSnapshotVersion for a snapshot
// from an incompatible build); an existing id with
// taflocerr.ErrZoneExists.
func (c *Client) RestoreZone(ctx context.Context, zone string, snapshot []byte) (ZoneInfo, error) {
	var zi ZoneInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/snapshot", bytes.NewReader(snapshot))
	if err != nil {
		return zi, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return zi, fmt.Errorf("client: restore %s: %w", zone, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return zi, decodeError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&zi)
	return zi, err
}

// Watch subscribes to a zone's estimate stream over server-sent events.
// The returned channel yields every estimate the server publishes
// (starting with the current one, if any) until ctx is cancelled, the
// stream ends, or the zone is removed — in the removal case the last
// estimate received has Final set. The channel is always closed when
// the stream ends; cancelling ctx is the caller's way to unsubscribe.
//
// By default a dropped connection ends the stream. A client built with
// WithWatchRetry instead reconnects with capped exponential backoff and
// resumes the channel (estimates already delivered are deduplicated by
// sequence number); if the zone turns out to have been removed while
// disconnected, a Final estimate is synthesized so the terminal
// contract holds across reconnects.
func (c *Client) Watch(ctx context.Context, zone string) (<-chan Estimate, error) {
	resp, err := c.watchConnect(ctx, zone)
	if err != nil {
		return nil, err
	}
	ch := make(chan Estimate, 16)
	go func() {
		defer close(ch)
		var lastSeq uint64
		first := true
		for {
			sawFinal, delivered := c.pumpSSE(ctx, resp.Body, ch, &lastSeq, first)
			first = false
			if sawFinal || ctx.Err() != nil || c.watchRetry == nil {
				return
			}
			// The stream dropped mid-run; reconnect under the retry policy.
			resp = c.watchReconnect(ctx, zone, ch, delivered)
			if resp == nil {
				return
			}
		}
	}()
	return ch, nil
}

// watchConnect performs one watch connection attempt.
func (c *Client) watchConnect(ctx context.Context, zone string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/watch", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch %s: %w", zone, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// watchReconnect runs the capped-backoff reconnect loop after a watch
// stream drops. It returns the next live response, or nil when the
// watch is over — retries exhausted, ctx cancelled, or the zone gone
// (in which case a synthetic Final estimate is delivered first, keeping
// the removal contract).
func (c *Client) watchReconnect(ctx context.Context, zone string, ch chan Estimate, everDelivered bool) *http.Response {
	r := c.watchRetry
	delay := r.Initial
	err := errors.New("client: watch stream ended")
	for attempt := 1; ; attempt++ {
		if r.MaxAttempts > 0 && attempt > r.MaxAttempts {
			return nil
		}
		if r.OnRetry != nil {
			r.OnRetry(err, attempt, delay)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
		delay *= 2
		if delay > r.Max {
			delay = r.Max
		}
		resp, cerr := c.watchConnect(ctx, zone)
		if cerr == nil {
			return resp
		}
		err = cerr
		if errors.Is(cerr, taflocerr.ErrUnknownZone) && everDelivered {
			// The zone was removed while we were away: end the stream the
			// way an uninterrupted watch would have, with a Final estimate.
			select {
			case ch <- Estimate{Zone: zone, Cell: -1, Final: true, Time: time.Now()}:
			case <-ctx.Done():
			}
			return nil
		}
	}
}

// pumpSSE consumes one SSE connection, delivering estimates to ch. The
// initial snapshot estimate of a reconnect (or anything else already
// seen) is deduplicated via lastSeq; initial is true on the first
// connection, where the snapshot estimate is part of the contract.
// It reports whether a Final estimate ended the stream, and whether any
// estimate has ever been delivered.
func (c *Client) pumpSSE(ctx context.Context, body io.ReadCloser, ch chan Estimate, lastSeq *uint64, initial bool) (sawFinal, delivered bool) {
	defer body.Close()
	delivered = *lastSeq > 0
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			// SSE comment — the server's idle heartbeat. Not an event;
			// never surfaces on the channel.
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var e Estimate
			if json.Unmarshal([]byte(data), &e) == nil {
				if !initial && !e.Final && e.Seq <= *lastSeq {
					data = ""
					continue // replayed snapshot estimate after a reconnect
				}
				if e.Seq > *lastSeq {
					*lastSeq = e.Seq
				}
				select {
				case ch <- e:
					delivered = true
				case <-ctx.Done():
					return false, delivered
				}
				if e.Final {
					return true, delivered
				}
			}
			data = ""
		}
	}
	// Scanner stops on EOF, connection error, or ctx cancellation (the
	// transport closes the body); the caller decides whether that ends
	// the watch or triggers a reconnect.
	return false, delivered
}

// do performs one JSON request/response round trip. A non-2xx response
// is decoded into the taxonomy: the returned error matches the
// taflocerr sentinel for the code the server sent.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns an error response into a typed taxonomy error that
// preserves the server's message.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb api.ErrorBody
	if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
		// FromCode collapses codes this client build does not know about
		// onto ErrInternal, so errors.Is against the sentinels stays
		// exhaustive even against a newer server.
		return &taflocerr.Error{
			Code:    taflocerr.FromCode(eb.Code).Code,
			Message: fmt.Sprintf("client: %s (HTTP %d)", eb.Error, resp.StatusCode),
		}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return taflocerr.Errorf(taflocerr.CodeInternal, "client: HTTP %d: %s", resp.StatusCode, msg)
}
