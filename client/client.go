// Package client is the typed SDK for the TafLoc localization service's
// /v2 HTTP surface. It converses in the shared wire types of
// internal/api and translates error responses back into the taflocerr
// taxonomy, so a caller branches on errors.Is exactly as it would
// against an in-process serve.Service:
//
//	cli, err := client.Dial(ctx, "http://localhost:8750")
//	...
//	est, err := cli.Position(ctx, "lobby")
//	if errors.Is(err, taflocerr.ErrUnknownZone) { ... }
//
// Watch streams a zone's estimates over server-sent events:
//
//	ch, err := cli.Watch(ctx, "lobby")
//	for est := range ch { ... }
//
// The channel closes when ctx is cancelled, the connection drops, or the
// zone is removed server-side (the last event then has Final set).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"tafloc/internal/api"
	"tafloc/taflocerr"
)

// Wire types, shared with the server so the two cannot drift.
type (
	// Estimate is one position estimate of a zone.
	Estimate = api.Estimate
	// Report is one RSS sample addressed to one link of a zone.
	Report = api.Report
	// ZoneSpec parameterizes server-side zone creation.
	ZoneSpec = api.ZoneSpec
	// ZoneInfo describes a created or removed zone.
	ZoneInfo = api.ZoneInfo
	// Health is the service health summary.
	Health = api.Health
)

// Client is a typed handle on one TafLoc service. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, proxies, instrumentation). The default is
// http.DefaultClient. Note that http.Client.Timeout bounds the entire
// response body read, so a client with a Timeout silently ends Watch
// streams when it elapses — bound individual calls with request
// contexts instead and leave Timeout zero if you use Watch.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New builds a client for the service at baseURL without touching the
// network. Prefer Dial, which also verifies the service is reachable.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, taflocerr.Errorf(taflocerr.CodeBadRequest, "client: invalid base URL %q", baseURL)
	}
	c := &Client{base: strings.TrimSuffix(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Dial builds a client and verifies the service responds on
// /v2/healthz.
func Dial(ctx context.Context, baseURL string, opts ...Option) (*Client, error) {
	c, err := New(baseURL, opts...)
	if err != nil {
		return nil, err
	}
	if _, err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", baseURL, err)
	}
	return c, nil
}

// Health fetches the service health summary.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v2/healthz", nil, &h)
	return h, err
}

// Zones lists the registered zone IDs in sorted order.
func (c *Client) Zones(ctx context.Context) ([]string, error) {
	var zl api.ZoneList
	if err := c.do(ctx, http.MethodGet, "/v2/zones", nil, &zl); err != nil {
		return nil, err
	}
	return zl.Zones, nil
}

// Position fetches a zone's most recent estimate. A zone that exists
// but has not published yet fails with taflocerr.ErrNotReady.
func (c *Client) Position(ctx context.Context, zone string) (Estimate, error) {
	var e Estimate
	err := c.do(ctx, http.MethodGet, "/v2/zones/"+url.PathEscape(zone)+"/position", nil, &e)
	return e, err
}

// Report ingests a batch of RSS reports for a zone and returns the
// accepted count. A report addressing an out-of-range link fails the
// whole batch with taflocerr.ErrBadLink; an overloaded zone sheds with
// taflocerr.ErrQueueFull (retry later — ingestion never queues
// unboundedly).
func (c *Client) Report(ctx context.Context, zone string, reports []Report) (int, error) {
	var resp api.ReportResponse
	err := c.do(ctx, http.MethodPost, "/v2/report",
		api.ReportRequest{Zone: zone, Reports: reports}, &resp)
	return resp.Accepted, err
}

// AddZone creates a zone server-side through the service's zone
// factory. Servers without a factory fail with
// taflocerr.ErrUnsupported; an existing id with taflocerr.ErrZoneExists.
func (c *Client) AddZone(ctx context.Context, zone string, spec ZoneSpec) (ZoneInfo, error) {
	var zi ZoneInfo
	err := c.do(ctx, http.MethodPost, "/v2/zones/"+url.PathEscape(zone), spec, &zi)
	return zi, err
}

// RemoveZone removes a zone at runtime. Watchers of the zone receive a
// terminal estimate and their streams end.
func (c *Client) RemoveZone(ctx context.Context, zone string) error {
	return c.do(ctx, http.MethodDelete, "/v2/zones/"+url.PathEscape(zone), nil, nil)
}

// Snapshot exports a zone's calibrated deployment as an opaque,
// CRC-checked binary snapshot (the internal/snap format). The bytes can
// be persisted and later fed to RestoreZone — on the same server or
// another one — to warm-start the zone without recalibration. Servers
// without a ZoneFactory have not opted into remote zone administration
// and fail with taflocerr.ErrUnsupported.
func (c *Client) Snapshot(ctx context.Context, zone string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot %s: %w", zone, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RestoreZone warm-starts a zone server-side from a snapshot previously
// exported with Snapshot. The snapshot's zone ID must match zone.
// Corrupt or truncated snapshots fail with
// taflocerr.ErrSnapshotCorrupt (or ErrSnapshotVersion for a snapshot
// from an incompatible build); an existing id with
// taflocerr.ErrZoneExists.
func (c *Client) RestoreZone(ctx context.Context, zone string, snapshot []byte) (ZoneInfo, error) {
	var zi ZoneInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/snapshot", bytes.NewReader(snapshot))
	if err != nil {
		return zi, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return zi, fmt.Errorf("client: restore %s: %w", zone, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return zi, decodeError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&zi)
	return zi, err
}

// Watch subscribes to a zone's estimate stream over server-sent events.
// The returned channel yields every estimate the server publishes
// (starting with the current one, if any) until ctx is cancelled, the
// connection drops, or the zone is removed — in the removal case the
// last estimate received has Final set. The channel is always closed
// when the stream ends; cancelling ctx is the caller's way to
// unsubscribe.
func (c *Client) Watch(ctx context.Context, zone string) (<-chan Estimate, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/zones/"+url.PathEscape(zone)+"/watch", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch %s: %w", zone, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	ch := make(chan Estimate, 16)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, ":"):
				// SSE comment — the server's idle heartbeat. Not an event;
				// never surfaces on the channel.
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && data != "":
				var e Estimate
				if json.Unmarshal([]byte(data), &e) == nil {
					select {
					case ch <- e:
					case <-ctx.Done():
						return
					}
					if e.Final {
						return
					}
				}
				data = ""
			}
		}
		// Scanner stops on EOF, connection error, or ctx cancellation
		// (the transport closes the body); the closed channel is the
		// termination signal either way.
	}()
	return ch, nil
}

// do performs one JSON request/response round trip. A non-2xx response
// is decoded into the taxonomy: the returned error matches the
// taflocerr sentinel for the code the server sent.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns an error response into a typed taxonomy error that
// preserves the server's message.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb api.ErrorBody
	if json.Unmarshal(data, &eb) == nil && eb.Code != "" {
		// FromCode collapses codes this client build does not know about
		// onto ErrInternal, so errors.Is against the sentinels stays
		// exhaustive even against a newer server.
		return &taflocerr.Error{
			Code:    taflocerr.FromCode(eb.Code).Code,
			Message: fmt.Sprintf("client: %s (HTTP %d)", eb.Error, resp.StatusCode),
		}
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return taflocerr.Errorf(taflocerr.CodeInternal, "client: HTTP %d: %s", resp.StatusCode, msg)
}
