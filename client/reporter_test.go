package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"tafloc/internal/geom"
	"tafloc/taflocerr"
)

// TestReportStreamEndToEnd drives the NDJSON ingest stream against a
// real service: batches go out, per-line acks come back, the zone
// publishes, and the trailer's accounting matches the client's.
func TestReportStreamEndToEnd(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	st, err := f.cli.ReportStream(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.5, Y: 1.2}
	const lines = 10
	sent := 0
	for i := 0; i < lines; i++ {
		b := batch(f.dep, target)
		sent += len(b)
		if err := st.Send(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Lines != lines || stats.Acked != lines {
		t.Errorf("stats %+v, want %d lines acked", stats, lines)
	}
	if stats.Accepted+stats.Shed != uint64(sent) || stats.Rejected != 0 {
		t.Errorf("stats %+v do not cover %d sent reports", stats, sent)
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lines != lines || sum.Reports != uint64(sent) ||
		sum.Accepted != stats.Accepted || sum.Shed != stats.Shed {
		t.Errorf("trailer %+v disagrees with client stats %+v", sum, stats)
	}

	// The zone actually consumed the stream: an estimate appears.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := f.cli.Position(ctx, "z"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no estimate from streamed reports")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unknown zones are refused at open, with the sentinel.
	if _, err := f.cli.ReportStream(ctx, "nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("stream to unknown zone: %v", err)
	}
}

// TestReporterBatchesAndFlushes checks the auto-batching layer: sends
// buffer, the batch threshold flushes, Flush syncs acks, and Close
// returns cleanly with consistent accounting.
func TestReporterBatchesAndFlushes(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	rep, err := f.cli.NewReporter(ctx, "z",
		WithReporterBatch(12), WithReporterInterval(0)) // no timer: deterministic flush points
	if err != nil {
		t.Fatal(err)
	}
	target := geom.Point{X: 1.2, Y: 0.9}
	b := batch(f.dep, target) // 6 reports per batch in the fixture
	if err := rep.Send(b...); err != nil {
		t.Fatal(err)
	}
	if got := rep.Stats(); got.Buffered != len(b) || got.Sent != 0 {
		t.Errorf("after one send: %+v, want %d buffered and nothing sent", got, len(b))
	}
	// Second send crosses the threshold and flushes inline.
	if err := rep.Send(b...); err != nil {
		t.Fatal(err)
	}
	if got := rep.Stats(); got.Buffered != 0 || got.Sent != uint64(2*len(b)) {
		t.Errorf("after threshold: %+v, want 0 buffered, %d sent", got, 2*len(b))
	}

	// A partial buffer flushes on demand, and Flush waits for the acks.
	if err := rep.Send(b...); err != nil {
		t.Fatal(err)
	}
	if err := rep.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := rep.Stats()
	if got.Buffered != 0 || got.Sent != uint64(3*len(b)) {
		t.Errorf("after Flush: %+v", got)
	}
	if got.Accepted+got.Shed+got.Rejected != got.Sent {
		t.Errorf("accounting leak after sync: %+v", got)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rep.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := rep.Send(b...); err == nil {
		t.Error("Send after Close succeeded")
	}
	final := rep.Stats()
	if final.Sent != uint64(3*len(b)) || final.Accepted+final.Shed+final.Rejected != final.Sent {
		t.Errorf("final stats %+v", final)
	}
}

// TestReporterSurvivesServerRestart: killing the connection under a
// reporter must not wedge it — buffered reports flow again after the
// reconnect, with Retries counting the reopen.
func TestReporterSurvivesServerRestart(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	rep, err := f.cli.NewReporter(ctx, "z",
		WithReporterBatch(6), WithReporterInterval(10*time.Millisecond),
		WithReporterRetry(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	target := geom.Point{X: 1.5, Y: 1.2}
	b := batch(f.dep, target)
	if err := rep.Send(b...); err != nil {
		t.Fatal(err)
	}
	if err := rep.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill every open connection; the reporter's stream dies mid-life.
	f.srv.CloseClientConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = rep.Send(b...)
		st := rep.Stats()
		if st.Retries > 0 && st.Accepted > uint64(len(b)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reporter never recovered: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
