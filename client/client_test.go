package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tafloc/internal/api"
	"tafloc/internal/core"
	"tafloc/internal/geom"
	"tafloc/internal/serve"
	"tafloc/internal/testbed"
	"tafloc/taflocerr"
)

// fixture is a running service behind a real TCP HTTP server plus a
// dialled client.
type fixture struct {
	dep *testbed.Deployment
	svc *serve.Service
	srv *httptest.Server
	cli *Client
}

func newFixture(t *testing.T) (*fixture, context.CancelFunc) {
	t.Helper()
	cfg := testbed.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(serve.Config{
		Window:            2,
		BatchSize:         8,
		DetectThresholdDB: 0.25,
		ZoneFactory: func(ctx context.Context, id string, spec api.ZoneSpec) (*core.System, error) {
			return newTestSystem(t, dep), nil
		},
	})
	if err := svc.AddZone("z", newTestSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	cli, err := Dial(ctx, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{dep: dep, svc: svc, srv: srv, cli: cli}
	t.Cleanup(func() {
		srv.Close()
		cancel()
		svc.Wait()
	})
	return f, cancel
}

func newTestSystem(t *testing.T, dep *testbed.Deployment) *core.System {
	t.Helper()
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, dep.Config.RF.MaskExcessM())
	if err != nil {
		t.Fatal(err)
	}
	survey, _ := dep.Survey(0)
	sys, err := core.NewSystem(layout, survey, dep.VacantCapture(0, 50), core.DefaultSystemOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func batch(dep *testbed.Deployment, p geom.Point) []Report {
	y := dep.Channel.MeasureLive(p, 0)
	out := make([]Report, len(y))
	for i, v := range y {
		out[i] = Report{Link: i, RSS: v}
	}
	return out
}

// TestWatchStreamsEstimates is the SDK acceptance test: over a real HTTP
// connection, Watch must deliver at least three estimates while reports
// flow, and cancelling the watch context must terminate the stream
// promptly.
func TestWatchStreamsEstimates(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	// Pre-prepared batches: the channel sampler is not concurrency-safe.
	target := geom.Point{X: 1.5, Y: 1.2}
	var batches [][]Report
	for i := 0; i < 300; i++ {
		batches = append(batches, batch(f.dep, target))
	}

	watchCtx, cancelWatch := context.WithCancel(ctx)
	defer cancelWatch()
	ch, err := f.cli.Watch(watchCtx, "z")
	if err != nil {
		t.Fatal(err)
	}

	feedCtx, stopFeed := context.WithCancel(ctx)
	defer stopFeed()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-feedCtx.Done():
				return
			default:
			}
			_, _ = f.cli.Report(feedCtx, "z", batches[i%len(batches)])
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var got []Estimate
	deadline := time.After(15 * time.Second)
	for len(got) < 3 {
		select {
		case e, open := <-ch:
			if !open {
				t.Fatalf("watch stream ended after %d estimates", len(got))
			}
			if e.Zone != "z" {
				t.Errorf("estimate for zone %q", e.Zone)
			}
			got = append(got, e)
		case <-deadline:
			t.Fatalf("only %d streamed estimates before deadline", len(got))
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Errorf("streamed estimates out of order: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}

	// Cancelling the watch context must close the channel promptly.
	cancelWatch()
	select {
	case <-drained(ch):
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel not closed after context cancellation")
	}
	stopFeed()
	wg.Wait()
}

// drained returns a channel that closes once ch is fully drained/closed.
func drained(ch <-chan Estimate) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	return done
}

// TestWatchTerminalOnRemove checks the removal contract end to end: the
// stream of a removed zone ends with a Final estimate.
func TestWatchTerminalOnRemove(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	ch, err := f.cli.Watch(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	// One estimate so the stream is demonstrably live before removal.
	target := geom.Point{X: 1.2, Y: 0.9}
	for i := 0; i < 10; i++ {
		if _, err := f.cli.Report(ctx, "z", batch(f.dep, target)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("no estimate before removal")
	}
	if err := f.cli.RemoveZone(ctx, "z"); err != nil {
		t.Fatal(err)
	}
	sawFinal := false
	deadline := time.After(10 * time.Second)
	for {
		select {
		case e, open := <-ch:
			if !open {
				if !sawFinal {
					t.Error("stream ended without a Final estimate")
				}
				return
			}
			if e.Final {
				sawFinal = true
			}
		case <-deadline:
			t.Fatal("stream did not terminate after zone removal")
		}
	}
}

// TestTypedErrors asserts the wire taxonomy round-trips: every error
// class the server produces comes back as the matching sentinel.
func TestTypedErrors(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	if _, err := f.cli.Position(ctx, "nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("unknown zone: %v", err)
	}
	if _, err := f.cli.Report(ctx, "z", []Report{{Link: 99, RSS: -40}}); !errors.Is(err, taflocerr.ErrBadLink) {
		t.Errorf("bad link: %v", err)
	}
	if _, err := f.cli.Watch(ctx, "nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("watch unknown zone: %v", err)
	}
	if err := f.cli.RemoveZone(ctx, "nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("remove unknown zone: %v", err)
	}
	// Factory-backed creation works; duplicate is a typed conflict.
	if _, err := f.cli.AddZone(ctx, "extra", ZoneSpec{}); err != nil {
		t.Fatalf("AddZone: %v", err)
	}
	if _, err := f.cli.AddZone(ctx, "extra", ZoneSpec{}); !errors.Is(err, taflocerr.ErrZoneExists) {
		t.Errorf("duplicate AddZone: %v", err)
	}
	zones, err := f.cli.Zones(ctx)
	if err != nil || len(zones) != 2 {
		t.Errorf("zones: %v, %v", zones, err)
	}
	h, err := f.cli.Health(ctx)
	if err != nil || h.Status != "ok" || h.Zones != 2 {
		t.Errorf("health: %+v, %v", h, err)
	}
}

// TestSnapshotRoundTrip exports a zone over the SDK, removes it, and
// warm-restores it from the same bytes — the client-side deployment
// migration path.
func TestSnapshotRoundTrip(t *testing.T) {
	f, _ := newFixture(t)
	ctx := context.Background()

	data, err := f.cli.Snapshot(ctx, "z")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot")
	}
	if _, err := f.cli.Snapshot(ctx, "nope"); !errors.Is(err, taflocerr.ErrUnknownZone) {
		t.Errorf("snapshot of unknown zone: %v", err)
	}

	// Restoring over a live zone conflicts; after removal it succeeds.
	if _, err := f.cli.RestoreZone(ctx, "z", data); !errors.Is(err, taflocerr.ErrZoneExists) {
		t.Errorf("restore over live zone: %v", err)
	}
	if err := f.cli.RemoveZone(ctx, "z"); err != nil {
		t.Fatal(err)
	}
	zi, err := f.cli.RestoreZone(ctx, "z", data)
	if err != nil {
		t.Fatal(err)
	}
	if zi.Zone != "z" || zi.Links == 0 || zi.Cells == 0 {
		t.Errorf("restore info: %+v", zi)
	}

	// The restored zone serves: feed reports, read a position.
	target := geom.Point{X: 1.5, Y: 1.2}
	for i := 0; i < 10; i++ {
		if _, err := f.cli.Report(ctx, "z", batch(f.dep, target)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := f.cli.Position(ctx, "z"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restored zone never published")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Damaged snapshots come back as the typed sentinels.
	if _, err := f.cli.RestoreZone(ctx, "z2", data[:len(data)/2]); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("truncated restore: %v", err)
	}
	if _, err := f.cli.RestoreZone(ctx, "z2", []byte("junk")); !errors.Is(err, taflocerr.ErrSnapshotCorrupt) {
		t.Errorf("junk restore: %v", err)
	}
}

// TestWatchSkipsHeartbeats points Watch at a zone that publishes
// nothing while the server emits rapid heartbeat comments: the channel
// must stay open and deliver no spurious estimates, then deliver the
// real estimate once the zone finally publishes.
func TestWatchSkipsHeartbeats(t *testing.T) {
	cfg := testbed.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(serve.Config{
		Window:            2,
		DetectThresholdDB: 0.25,
		WatchHeartbeat:    10 * time.Millisecond,
	})
	if err := svc.AddZone("slow", newTestSystem(t, dep)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cli, err := Dial(ctx, srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	// The watch gets its own context, cancelled (LIFO) before srv.Close —
	// otherwise Close blocks on the still-open SSE connection.
	watchCtx, cancelWatch := context.WithCancel(ctx)
	defer cancelWatch()
	ch, err := cli.Watch(watchCtx, "slow")
	if err != nil {
		t.Fatal(err)
	}
	// ~20 heartbeats pass; none may surface as an estimate.
	select {
	case e, open := <-ch:
		t.Fatalf("idle watch produced an event: %+v (open=%v)", e, open)
	case <-time.After(200 * time.Millisecond):
	}

	target := geom.Point{X: 1.2, Y: 0.9}
	for i := 0; i < 10; i++ {
		if _, err := cli.Report(ctx, "slow", batch(dep, target)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case e, open := <-ch:
		if !open {
			t.Fatal("watch closed instead of delivering the estimate")
		}
		if e.Zone != "slow" {
			t.Errorf("estimate zone %q", e.Zone)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("estimate never arrived through the heartbeat stream")
	}
}

// TestDialValidation covers the constructor error paths.
func TestDialValidation(t *testing.T) {
	if _, err := New("not a url"); err == nil {
		t.Error("bad URL accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Dial(ctx, "http://127.0.0.1:1"); err == nil {
		t.Error("dial to dead port succeeded")
	}
}
