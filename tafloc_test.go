package tafloc_test

import (
	"testing"

	"tafloc"
)

// TestQuickstartFlow exercises the documented public-API path end to end:
// deploy, survey, drift, low-cost update, localize.
func TestQuickstartFlow(t *testing.T) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.References()) == 0 {
		t.Fatal("no references selected")
	}

	const days = 45
	refCols, cost := dep.SurveyCells(sys.References(), days)
	if cost.Hours() >= dep.FullSurveyCost().Hours()/3 {
		t.Fatalf("reference survey (%.2f h) is not a low-cost update vs %.2f h",
			cost.Hours(), dep.FullSurveyCost().Hours())
	}
	rec, err := sys.Update(refCols, dep.VacantCapture(days, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Iterations == 0 {
		t.Fatal("reconstruction did not run")
	}

	p := tafloc.Point{X: 3.3, Y: 2.1}
	y := dep.Channel.MeasureLive(p, days)
	loc, err := sys.Locate(y)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Point.Dist(p) > 3 {
		t.Fatalf("implausible localization error %.2f m", loc.Point.Dist(p))
	}
}

func TestPublicBaselines(t *testing.T) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	im, err := tafloc.NewRTIImager(dep.Channel.Links(), dep.Grid, tafloc.DefaultRTIOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := tafloc.Point{X: 2.1, Y: 2.7}
	vac := dep.Channel.TrueVacant(0)
	live := make([]float64, dep.Channel.M())
	for i := range live {
		live[i] = dep.Channel.TargetRSS(i, p, 0)
	}
	if _, err := im.Locate(vac, live); err != nil {
		t.Fatal(err)
	}
	tr, err := tafloc.NewRASSTracker(dep.Channel.TrueFingerprint(0), vac, dep.Grid, tafloc.DefaultRASSOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Locate(live, vac); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEvalHarness(t *testing.T) {
	cfg := tafloc.DefaultExperimentConfig()
	cfg.TestTargets = 8
	cfg.LiveWindow = 4
	if _, err := tafloc.Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := tafloc.Fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := tafloc.CostTable(); err != nil {
		t.Fatal(err)
	}
	s := tafloc.Summarize([]float64{1, 2, 3})
	if s.Mean != 2 {
		t.Fatalf("Summarize mean %g", s.Mean)
	}
	cdf := tafloc.NewCDF([]float64{1, 2, 3, 4})
	if got := cdf.At(2); got != 0.5 {
		t.Fatalf("CDF.At(2) = %g", got)
	}
}

func TestPublicTrackingAndAdaptive(t *testing.T) {
	f, err := tafloc.NewTrackFilter(tafloc.DefaultTrackOptions())
	if err != nil {
		t.Fatal(err)
	}
	var st tafloc.TrackState
	for k := 0; k < 20; k++ {
		var accepted bool
		st, accepted, err = f.Observe(tafloc.Point{X: float64(k) * 0.5, Y: 1}, 1)
		if err != nil || !accepted {
			t.Fatalf("observe %d: %v accepted=%v", k, err, accepted)
		}
	}
	if st.Velocity.X < 0.2 || st.Velocity.X > 0.8 {
		t.Fatalf("velocity estimate %v, want ~0.5 m/s", st.Velocity)
	}

	m, err := tafloc.NewDriftMonitor([]float64{-50, -52}, nil, 0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.Check([]float64{-54, -56}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.UpdateRecommended {
		t.Fatalf("4 dB drift not flagged: %+v", est)
	}
}

// TestOpenWithOptions exercises the v2 functional-options builders at
// the public surface: registry selection by name, failure on unknown
// names, and the options form of the service constructor.
func TestOpenWithOptions(t *testing.T) {
	cfg := tafloc.PaperConfig()
	cfg.SamplesPerCell = 5
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("bayes"))
	if err != nil {
		t.Fatal(err)
	}
	p := tafloc.Point{X: 3.3, Y: 2.1}
	loc, err := sys.Locate(dep.Channel.MeasureLive(p, 0))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Confidence == 0 {
		t.Error("bayes matcher selected by option should report a confidence")
	}

	if _, err := tafloc.OpenDeployment(dep, tafloc.WithMatcher("no-such")); err == nil {
		t.Error("unknown matcher name accepted by Open")
	}
	if _, err := tafloc.NewMatcherByName("knn"); err != nil {
		t.Errorf("registry re-export: %v", err)
	}
	if len(tafloc.MatcherNames()) < 4 || len(tafloc.DetectorNames()) < 3 {
		t.Errorf("registry names: %v / %v", tafloc.MatcherNames(), tafloc.DetectorNames())
	}

	svc, err := tafloc.NewService(
		tafloc.WithZoneQueue(8),
		tafloc.WithWindow(4),
		tafloc.WithDetector("rms"),
		tafloc.WithDetectThreshold(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddZone("z", sys); err != nil {
		t.Fatal(err)
	}
	if _, err := tafloc.NewService(tafloc.WithDetector("no-such")); err == nil {
		t.Error("unknown detector name accepted by NewService; want a taflocerr error, not a panic")
	}
	if got := svc.Zones(); len(got) != 1 || got[0] != "z" {
		t.Errorf("zones: %v", got)
	}
}
