module tafloc

go 1.21
