module tafloc

go 1.22

require golang.org/x/tools v0.28.1

replace golang.org/x/tools => ./third_party/golang.org/x/tools
