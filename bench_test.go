package tafloc_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tafloc"
	"tafloc/client"
)

// Benchmarks regenerating the paper's evaluation. Each Benchmark*
// corresponds to one figure or in-text table; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record. The figure
// benches measure the wall-clock of one full harness run (deployment,
// surveys, reconstruction, evaluation), which is the relevant cost for a
// user regenerating the results.

func benchConfig() tafloc.ExperimentConfig {
	cfg := tafloc.DefaultExperimentConfig()
	cfg.TestTargets = 30
	cfg.LiveWindow = 6
	return cfg
}

// BenchmarkFig1MatrixProperties regenerates Fig 1's matrix-structure
// characterization (singular spectrum, distorted share).
func BenchmarkFig1MatrixProperties(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ReconstructionError regenerates Fig 3: fingerprint
// reconstruction error CDFs at 3 d / 15 d / 45 d / 3 months.
func BenchmarkFig3ReconstructionError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4UpdateTimeCost regenerates Fig 4: update time cost vs
// area size, 6-36 m edges.
func BenchmarkFig4UpdateTimeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LocalizationComparison regenerates Fig 5: the four-system
// localization comparison at 3 months.
func BenchmarkFig5LocalizationComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftCalibration regenerates the in-text drift table
// (2.5 dBm @ 5 d, 6 dBm @ 45 d).
func BenchmarkDriftCalibration(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.DriftTable(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostTable regenerates the in-text 6 m x 6 m cost arithmetic
// (2.78 h vs 0.28 h).
func BenchmarkCostTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.CostTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDesignChoices regenerates the LoLi-IR design-choice
// ablation (term drops, reference and rank sweeps).
func BenchmarkAblationDesignChoices(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkLoLiIRReconstruction measures one LoLi-IR update on the paper
// deployment: the latency of TafLoc's fingerprint refresh.
func BenchmarkLoLiIRReconstruction(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	refCols, _ := dep.SurveyCells(sys.References(), 45)
	vacant := dep.VacantCapture(45, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Update(refCols, vacant); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocate measures one localization against the paper database.
func BenchmarkLocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Locate(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceSelection measures rank-revealing-QR reference
// selection on the paper fingerprint matrix.
func BenchmarkReferenceSelection(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := dep.Channel.TrueFingerprint(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.SelectReferences(x, tafloc.DefaultReferenceOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTILocate measures one RTI imaging localization.
func BenchmarkRTILocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	im, err := tafloc.NewRTIImager(dep.Channel.Links(), dep.Grid, tafloc.DefaultRTIOptions())
	if err != nil {
		b.Fatal(err)
	}
	vac := dep.Channel.TrueVacant(0)
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Locate(vac, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRASSLocate measures one RASS localization.
func BenchmarkRASSLocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	vac := dep.Channel.TrueVacant(0)
	tr, err := tafloc.NewRASSTracker(dep.Channel.TrueFingerprint(0), vac, dep.Grid, tafloc.DefaultRASSOptions())
	if err != nil {
		b.Fatal(err)
	}
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Locate(y, vac); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSurvey measures the simulated day-0 survey (the expensive
// pass TafLoc amortizes).
func BenchmarkFullSurvey(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Survey(0)
	}
}

// ---- Serving-layer and parallelism benchmarks ----

// BenchmarkParallelReconstruct measures one LoLi-IR update on a 12 m x
// 12 m deployment (400 cells, 17 links) with the parallel kernels forced
// serial vs GOMAXPROCS-sized. The two sub-benchmarks compute bitwise
// identical results; the ratio of their ns/op is the fan-out speedup.
func BenchmarkParallelReconstruct(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.SquareConfig(12))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	refCols, _ := dep.SurveyCells(sys.References(), 45)
	vacant := dep.VacantCapture(45, 100)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			prev := tafloc.SetWorkers(bc.workers)
			defer tafloc.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := sys.Update(refCols, vacant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRestore pins the point of the persistence layer: a
// warm start from a snapshot versus recalibrating the deployment from
// scratch. The "recalibrate" sub-benchmark pays the full day-0 pipeline
// (survey, mask learning, reference selection, system construction); the
// "restore" sub-benchmark decodes the versioned snapshot and rebuilds an
// identical serving zone from it. The ratio of their ns/op is how much
// faster a deploy or crash recovery gets with -state-dir.
func BenchmarkSnapshotRestore(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	buildZone := func() *tafloc.System {
		sys, err := tafloc.OpenDeployment(dep)
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	seed, err := tafloc.NewService()
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.AddZone("z", buildZone()); err != nil {
		b.Fatal(err)
	}
	snapshot, err := seed.SnapshotZone("z")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("recalibrate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := tafloc.NewService()
			if err != nil {
				b.Fatal(err)
			}
			if err := svc.AddZone("z", buildZone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.SetBytes(int64(len(snapshot)))
		for i := 0; i < b.N; i++ {
			svc, err := tafloc.NewService()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.RestoreZone(snapshot); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamIngest pins the point of the streaming ingest
// redesign: reports/sec over a real localhost HTTP connection, one
// zone, one producer. The "request" sub-benchmark pays one POST
// /v2/report round trip per batch (the pre-v2.1 client pattern); the
// "stream" sub-benchmark writes the same batches as NDJSON lines down
// one persistent reports:stream connection with pipelined acks. The
// ratio of their reports/s is what the persistent-stream architecture
// buys at the transport layer.
func BenchmarkStreamIngest(b *testing.B) {
	cfg := tafloc.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := tafloc.NewService(
		tafloc.WithWindow(4),
		tafloc.WithZoneQueue(1<<16),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.AddZone("z", sys); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cli, err := client.New(srv.URL, client.WithHTTPClient(&http.Client{}))
	if err != nil {
		b.Fatal(err)
	}

	const preparedBatches = 32
	var batches [][]client.Report
	for k := 0; k < preparedBatches; k++ {
		p := tafloc.Point{X: 0.3 + 3.0*float64(k)/preparedBatches, Y: 0.3 + 1.8*float64(k%7)/7}
		y := dep.Channel.MeasureLive(p, 0)
		batch := make([]client.Report, len(y))
		for i, v := range y {
			batch[i] = client.Report{Link: i, RSS: v}
		}
		batches = append(batches, batch)
	}
	reportsPerBatch := len(batches[0])

	b.Run("request", func(b *testing.B) {
		sent := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := cli.Report(ctx, "z", batches[i%preparedBatches])
			if err != nil {
				b.Fatal(err)
			}
			sent += n
		}
		b.StopTimer()
		b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "reports/s")
	})

	b.Run("stream", func(b *testing.B) {
		st, err := cli.ReportStream(ctx, "z")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Send(batches[i%preparedBatches]); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sum, err := st.Close()
		if err != nil {
			b.Fatal(err)
		}
		if got := sum.Accepted + sum.Shed; got != uint64(b.N*reportsPerBatch) {
			b.Fatalf("trailer covers %d reports, want %d", got, b.N*reportsPerBatch)
		}
		b.ReportMetric(float64(b.N*reportsPerBatch)/b.Elapsed().Seconds(), "reports/s")
	})
}

// BenchmarkLocateParallel pins the point of the Model split: locate
// throughput against ONE shared immutable Model from 1, 4, and
// GOMAXPROCS concurrent workers, each with its own reused Scratch. The
// read plane is an atomic pointer load plus lock-free matching into
// pooled buffers, so throughput should scale near-linearly with the
// worker count (the acceptance bar is >=2x at 4 workers vs 1). The mat
// kernels are pinned to one worker so the benchmark measures
// cross-request scaling, not intra-request fan-out.
func BenchmarkLocateParallel(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.SquareConfig(12))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	model := sys.Model()
	const probes = 16
	var ys [][]float64
	for k := 0; k < probes; k++ {
		p := tafloc.Point{X: 0.5 + 11.0*float64(k)/probes, Y: 0.5 + 11.0*float64((k*5)%probes)/probes}
		ys = append(ys, dep.Channel.MeasureLive(p, 0))
	}
	prev := tafloc.SetWorkers(1)
	defer tafloc.SetWorkers(prev)
	workerSet := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		workerSet = append(workerSet, gmp)
	}
	for _, workers := range workerSet {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var wg sync.WaitGroup
			var next atomic.Int64
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sc := tafloc.NewScratch()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						if _, err := model.Locate(ys[(i+w)%probes], sc); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "locates/s")
		})
	}
}

// BenchmarkManyZones measures the scheduler tentpole at fleet scale:
// 1000 zones on one service, sparse traffic (each op lands one report
// batch on one rotating zone). Under the worker-per-zone design this
// fleet cost 1000 parked goroutines; with the shared locate-executor
// pool the idle zones cost nothing and the pool does all the work. The
// zones share one calibrated System — safe now that the read plane is
// an immutable Model — so setup stays cheap. One op = one accepted
// batch (6 reports).
func BenchmarkManyZones(b *testing.B) {
	const zones = 1000
	const preparedBatches = 32
	cfg := tafloc.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := tafloc.NewService(
		tafloc.WithWindow(4),
		tafloc.WithDetectThreshold(0.25),
		tafloc.WithZoneQueue(64),
		tafloc.WithHistory(0),
	)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, zones)
	for z := 0; z < zones; z++ {
		ids[z] = fmt.Sprintf("zone-%04d", z)
		if err := svc.AddZone(ids[z], sys); err != nil {
			b.Fatal(err)
		}
	}
	var batches [][]tafloc.ZoneReport
	for k := 0; k < preparedBatches; k++ {
		p := tafloc.Point{X: 0.3 + 3.0*float64(k)/preparedBatches, Y: 0.3 + 1.8*float64(k%7)/7}
		y := dep.Channel.MeasureLive(p, 0)
		batch := make([]tafloc.ZoneReport, len(y))
		for i, v := range y {
			batch[i] = tafloc.ZoneReport{Link: i, RSS: v}
		}
		batches = append(batches, batch)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		b.Fatal(err)
	}
	goroutines := runtime.NumGoroutine()
	var stream atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(stream.Add(1)) * 7919
		for pb.Next() {
			id := ids[i%zones]
			batch := append([]tafloc.ZoneReport(nil), batches[i%preparedBatches]...)
			for svc.Report(id, batch) != nil {
				time.Sleep(10 * time.Microsecond)
			}
			i++
		}
	})
	b.StopTimer()
	var received uint64
	for _, st := range svc.Stats() {
		received += st.Received
	}
	b.ReportMetric(float64(received)/b.Elapsed().Seconds(), "reports/s")
	b.ReportMetric(float64(goroutines), "goroutines")
	cancel()
	svc.Wait()
}

// BenchmarkServeThroughput measures sustainable end-to-end ingest of the
// multi-zone service: four zones, parallel producers, bounded queues
// providing backpressure, one batched match query per processing round.
// One op is one accepted report batch (6 reports).
func BenchmarkServeThroughput(b *testing.B) {
	const zones = 4
	const preparedBatches = 32
	cfg := tafloc.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	svc, err := tafloc.NewService(
		tafloc.WithWindow(4),
		tafloc.WithDetectThreshold(0.25),
		tafloc.WithZoneQueue(4096),
	)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, zones)
	batches := make([][][]tafloc.ZoneReport, zones)
	for z := 0; z < zones; z++ {
		dep, err := tafloc.NewDeployment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := tafloc.OpenDeployment(dep)
		if err != nil {
			b.Fatal(err)
		}
		ids[z] = fmt.Sprintf("zone-%d", z)
		if err := svc.AddZone(ids[z], sys); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < preparedBatches; k++ {
			p := tafloc.Point{
				X: 0.3 + 3.0*float64(k)/preparedBatches,
				Y: 0.3 + 1.8*float64(k%7)/7,
			}
			y := dep.Channel.MeasureLive(p, 0)
			batch := make([]tafloc.ZoneReport, len(y))
			for i, v := range y {
				batch[i] = tafloc.ZoneReport{Link: i, RSS: v}
			}
			batches[z] = append(batches[z], batch)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		b.Fatal(err)
	}
	var stream atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(stream.Add(1)) * 7919 // distinct start per producer
		for pb.Next() {
			z := i % zones
			// The service takes ownership of the slice, so hand it a copy.
			batch := append([]tafloc.ZoneReport(nil), batches[z][i%preparedBatches]...)
			for svc.Report(ids[z], batch) != nil {
				time.Sleep(10 * time.Microsecond) // queue full: backpressure
			}
			i++
		}
	})
	b.StopTimer()
	var received uint64
	for _, st := range svc.Stats() {
		received += st.Received
	}
	b.ReportMetric(float64(received)/b.Elapsed().Seconds(), "reports/s")
	cancel()
	svc.Wait()
}

// BenchmarkEvictRehydrate prices one full residency round trip per op:
// checkpoint a zone's calibrated state into the snapshot store and drop
// its Model, then restore it from the stored bytes. This is the tax a
// service over its hot-zone cap pays when traffic returns to a cold
// zone, measured against both production backends.
func BenchmarkEvictRehydrate(b *testing.B) {
	cfg := tafloc.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	backends := []struct {
		name  string
		store tafloc.SnapshotStore
	}{
		{"mem", tafloc.NewMemStore()},
		{"dir", tafloc.NewDirStore(b.TempDir())},
	}
	for _, backend := range backends {
		b.Run(backend.name, func(b *testing.B) {
			svc, err := tafloc.NewService(tafloc.WithSnapshotStore(backend.store))
			if err != nil {
				b.Fatal(err)
			}
			if err := svc.AddZone("z", sys); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.EvictZone("z"); err != nil {
					b.Fatal(err)
				}
				if err := svc.RehydrateZone("z"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManyZonesColdStart is the cold-start leg of
// BenchmarkManyZones: the same thousand-zone parallel ingest, but with
// the resident-Model cache capped at 64, so producers sweeping the zone
// space continuously force evictions and rehydrations. The gap between
// this bench's reports/s and BenchmarkManyZones' is the throughput cost
// of running 1000 zones in the memory footprint of 64.
func BenchmarkManyZonesColdStart(b *testing.B) {
	const zones = 1000
	const hotCap = 64
	const preparedBatches = 32
	cfg := tafloc.PaperConfig()
	cfg.RoomW, cfg.RoomH = 3.6, 2.4
	cfg.Links = 6
	cfg.SamplesPerCell = 5
	dep, err := tafloc.NewDeployment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.OpenDeployment(dep)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := tafloc.NewService(
		tafloc.WithWindow(4),
		tafloc.WithDetectThreshold(0.25),
		tafloc.WithZoneQueue(64),
		tafloc.WithHistory(0),
		tafloc.WithMaxHotZones(hotCap),
	)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, zones)
	for z := 0; z < zones; z++ {
		ids[z] = fmt.Sprintf("zone-%04d", z)
		if err := svc.AddZone(ids[z], sys); err != nil {
			b.Fatal(err)
		}
	}
	var batches [][]tafloc.ZoneReport
	for k := 0; k < preparedBatches; k++ {
		p := tafloc.Point{X: 0.3 + 3.0*float64(k)/preparedBatches, Y: 0.3 + 1.8*float64(k%7)/7}
		y := dep.Channel.MeasureLive(p, 0)
		batch := make([]tafloc.ZoneReport, len(y))
		for i, v := range y {
			batch[i] = tafloc.ZoneReport{Link: i, RSS: v}
		}
		batches = append(batches, batch)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.Start(ctx); err != nil {
		b.Fatal(err)
	}
	var stream atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(stream.Add(1)) * 7919
		for pb.Next() {
			id := ids[i%zones]
			batch := append([]tafloc.ZoneReport(nil), batches[i%preparedBatches]...)
			for svc.Report(id, batch) != nil {
				time.Sleep(10 * time.Microsecond)
			}
			i++
		}
	})
	b.StopTimer()
	var received, rehydrates uint64
	for _, st := range svc.Stats() {
		received += st.Received
		rehydrates += st.Rehydrates
	}
	b.ReportMetric(float64(received)/b.Elapsed().Seconds(), "reports/s")
	b.ReportMetric(float64(rehydrates), "rehydrates")
	cancel()
	svc.Wait()
}
