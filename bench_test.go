package tafloc_test

import (
	"testing"

	"tafloc"
)

// Benchmarks regenerating the paper's evaluation. Each Benchmark*
// corresponds to one figure or in-text table; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record. The figure
// benches measure the wall-clock of one full harness run (deployment,
// surveys, reconstruction, evaluation), which is the relevant cost for a
// user regenerating the results.

func benchConfig() tafloc.ExperimentConfig {
	cfg := tafloc.DefaultExperimentConfig()
	cfg.TestTargets = 30
	cfg.LiveWindow = 6
	return cfg
}

// BenchmarkFig1MatrixProperties regenerates Fig 1's matrix-structure
// characterization (singular spectrum, distorted share).
func BenchmarkFig1MatrixProperties(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ReconstructionError regenerates Fig 3: fingerprint
// reconstruction error CDFs at 3 d / 15 d / 45 d / 3 months.
func BenchmarkFig3ReconstructionError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4UpdateTimeCost regenerates Fig 4: update time cost vs
// area size, 6-36 m edges.
func BenchmarkFig4UpdateTimeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LocalizationComparison regenerates Fig 5: the four-system
// localization comparison at 3 months.
func BenchmarkFig5LocalizationComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftCalibration regenerates the in-text drift table
// (2.5 dBm @ 5 d, 6 dBm @ 45 d).
func BenchmarkDriftCalibration(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.DriftTable(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostTable regenerates the in-text 6 m x 6 m cost arithmetic
// (2.78 h vs 0.28 h).
func BenchmarkCostTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.CostTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDesignChoices regenerates the LoLi-IR design-choice
// ablation (term drops, reference and rank sweeps).
func BenchmarkAblationDesignChoices(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkLoLiIRReconstruction measures one LoLi-IR update on the paper
// deployment: the latency of TafLoc's fingerprint refresh.
func BenchmarkLoLiIRReconstruction(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.BuildSystem(dep)
	if err != nil {
		b.Fatal(err)
	}
	refCols, _ := dep.SurveyCells(sys.References(), 45)
	vacant := dep.VacantCapture(45, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Update(refCols, vacant); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocate measures one localization against the paper database.
func BenchmarkLocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := tafloc.BuildSystem(dep)
	if err != nil {
		b.Fatal(err)
	}
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Locate(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceSelection measures rank-revealing-QR reference
// selection on the paper fingerprint matrix.
func BenchmarkReferenceSelection(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := dep.Channel.TrueFingerprint(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tafloc.SelectReferences(x, tafloc.DefaultReferenceOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTILocate measures one RTI imaging localization.
func BenchmarkRTILocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	im, err := tafloc.NewRTIImager(dep.Channel.Links(), dep.Grid, tafloc.DefaultRTIOptions())
	if err != nil {
		b.Fatal(err)
	}
	vac := dep.Channel.TrueVacant(0)
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Locate(vac, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRASSLocate measures one RASS localization.
func BenchmarkRASSLocate(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	vac := dep.Channel.TrueVacant(0)
	tr, err := tafloc.NewRASSTracker(dep.Channel.TrueFingerprint(0), vac, dep.Grid, tafloc.DefaultRASSOptions())
	if err != nil {
		b.Fatal(err)
	}
	y := dep.Channel.MeasureLive(tafloc.Point{X: 3.3, Y: 2.1}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Locate(y, vac); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSurvey measures the simulated day-0 survey (the expensive
// pass TafLoc amortizes).
func BenchmarkFullSurvey(b *testing.B) {
	dep, err := tafloc.NewDeployment(tafloc.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Survey(0)
	}
}
