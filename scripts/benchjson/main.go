// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout), so CI can publish the
// serving-layer performance trajectory (BENCH_serve.json) as a build
// artifact instead of burying the numbers in a log.
//
// Usage:
//
//	go test -run '^$' -bench 'Serve|Snapshot' -benchtime=1x . | go run ./scripts/benchjson > BENCH_serve.json
//
// Each benchmark result line
//
//	BenchmarkSnapshotRestore/restore-4   3   56749 ns/op   283.76 MB/s
//
// becomes one entry with the iteration count and every metric pair
// keyed by its unit (ns/op, MB/s, reports/s, ...). Context lines (goos,
// goarch, pkg, cpu) are captured once at the top level.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GeneratedAt time.Time         `json:"generated_at"`
	Context     map[string]string `json:"context,omitempty"`
	Benchmarks  []result          `json:"benchmarks"`
}

func main() {
	doc := document{
		GeneratedAt: time.Now().UTC(),
		Context:     map[string]string{},
		Benchmarks:  []result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				doc.Context[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
